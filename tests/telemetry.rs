//! End-to-end telemetry tests: instrument full task pipelines with a
//! [`Recorder`], and check that the observability layer (a) agrees with the
//! task metrics it shadows, (b) respects its memory bounds, and (c) is
//! invisible when disabled.

use std::sync::Arc;

use halo::core::tasks::seizure;
use halo::core::{HaloConfig, HaloSystem, Task, TaskMetrics};
use halo::signal::{Recording, RecordingConfig, RegionProfile};
use halo::telemetry::{chrome_trace, json, EventKind, NullSink, Recorder};

/// A task configuration and session recording known to exercise the whole
/// pipeline — for seizure prediction, an SVM trained on labeled recordings
/// and a session whose ictal episode triggers closed-loop stimulation.
fn scenario(task: Task) -> (HaloConfig, Recording) {
    match task {
        Task::SeizurePrediction => {
            let channels = 8;
            let config = HaloConfig::small_test(channels).channels(channels);
            let window = config.feature_window_frames();
            let train_a = RecordingConfig::new(RegionProfile::arm())
                .channels(channels)
                .duration_ms(700)
                .seizure_at(6 * window, 14 * window)
                .generate(9);
            let train_b = RecordingConfig::new(RegionProfile::arm())
                .channels(channels)
                .duration_ms(700)
                .seizure_at(12 * window, 20 * window)
                .generate(19);
            let svm = seizure::train(&config, &[&train_a, &train_b]).unwrap();
            let session = RecordingConfig::new(RegionProfile::arm())
                .channels(channels)
                .duration_ms(700)
                .seizure_at(8 * window, 16 * window)
                .generate(10);
            (config.with_svm(svm), session)
        }
        _ => {
            let channels = 4;
            let config = HaloConfig::small_test(channels);
            let session = RecordingConfig::new(RegionProfile::arm())
                .channels(channels)
                .duration_ms(300)
                .generate(7);
            (config, session)
        }
    }
}

fn run(task: Task, recorder: Option<Arc<Recorder>>) -> TaskMetrics {
    let (config, session) = scenario(task);
    let mut system = HaloSystem::new(task, config).unwrap();
    if let Some(r) = recorder {
        system.attach_telemetry(r);
    }
    system.process(&session).unwrap()
}

/// Conservation along the pipeline: everything the radio sent was emitted
/// by some PE first, so per-PE bytes-out must cover the radio stream.
#[test]
fn pe_bytes_out_cover_radio_bytes() {
    for task in [Task::SeizurePrediction, Task::CompressLzma] {
        let recorder = Arc::new(Recorder::new(4096).with_sample_rate_hz(30_000));
        let metrics = run(task, Some(recorder.clone()));
        let snap = recorder.snapshot();

        assert!(
            metrics.radio_bytes > 0,
            "{task:?}: nothing reached the radio"
        );
        let recorded_out: u64 = snap.pes.iter().map(|p| p.bytes_out).sum();
        assert!(
            recorded_out >= metrics.radio_bytes,
            "{task:?}: PEs recorded {recorded_out} bytes out but radio sent {}",
            metrics.radio_bytes
        );
        // The recorder's view and the metrics' view of the same run agree.
        let activity_out: u64 = metrics.pe_activity.iter().map(|p| p.bytes_out).sum();
        assert_eq!(recorded_out, activity_out, "{task:?}");
        assert_eq!(snap.radio_bytes, metrics.radio_bytes, "{task:?}");
        assert_eq!(snap.frames, metrics.frames, "{task:?}");
        // NoC traffic was recorded per link and matches the bus total.
        assert_eq!(snap.noc_bytes(), metrics.bus_bytes, "{task:?}");
        assert!(!snap.links.is_empty(), "{task:?}: no NoC links recorded");
    }
}

/// The event ring is bounded: a tiny capacity cannot grow, and overflow is
/// counted instead of silently lost.
#[test]
fn event_ring_respects_bound() {
    let small = Arc::new(Recorder::new(8));
    run(Task::SeizurePrediction, Some(small.clone()));
    assert_eq!(small.event_capacity(), 8);
    assert!(small.events().len() <= 8);
    assert!(
        small.dropped_events() > 0,
        "a 700 ms seizure run must overflow an 8-event ring"
    );

    // A roomy ring keeps everything, in frame order.
    let big = Arc::new(Recorder::new(65536));
    let metrics = run(Task::SeizurePrediction, Some(big.clone()));
    assert_eq!(big.dropped_events(), 0);
    assert!(!metrics.stim_events.is_empty(), "scenario must stimulate");
    let events = big.events();
    assert!(events.windows(2).all(|w| w[0].frame <= w[1].frame));
    assert!(events
        .iter()
        .any(|e| matches!(e.kind, EventKind::PeWindow { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e.kind, EventKind::PowerSample { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e.kind, EventKind::Detection { positive: true })));
    assert!(events
        .iter()
        .any(|e| matches!(e.kind, EventKind::Stim { .. })));
}

/// Telemetry is observation, not simulation: a run with the disabled
/// [`NullSink`] attached produces byte-identical metrics to a run with no
/// sink attached at all.
#[test]
fn null_sink_is_invisible() {
    for task in [Task::SeizurePrediction, Task::CompressLzma] {
        let (config, session) = scenario(task);

        let mut plain = HaloSystem::new(task, config.clone()).unwrap();
        let plain_metrics = plain.process(&session).unwrap();

        let mut nulled = HaloSystem::new(task, config).unwrap();
        nulled.attach_telemetry(Arc::new(NullSink));
        let nulled_metrics = nulled.process(&session).unwrap();

        assert_eq!(
            plain_metrics.radio_stream, nulled_metrics.radio_stream,
            "{task:?}"
        );
        assert_eq!(
            plain_metrics.pe_activity, nulled_metrics.pe_activity,
            "{task:?}"
        );
        assert_eq!(
            plain_metrics.radio_bytes, nulled_metrics.radio_bytes,
            "{task:?}"
        );
        assert_eq!(
            plain_metrics.bus_bytes, nulled_metrics.bus_bytes,
            "{task:?}"
        );
        assert_eq!(plain_metrics.frames, nulled_metrics.frames, "{task:?}");
        assert_eq!(
            plain_metrics.detections, nulled_metrics.detections,
            "{task:?}"
        );
        assert_eq!(
            plain_metrics.controller_cycles, nulled_metrics.controller_cycles,
            "{task:?}"
        );
    }
}

/// The Chrome trace of a real run is valid JSON and carries one track per
/// active PE plus the NoC and power timelines.
#[test]
fn chrome_trace_of_real_run_is_valid() {
    let recorder = Arc::new(Recorder::new(65536).with_sample_rate_hz(30_000));
    let metrics = run(Task::SeizurePrediction, Some(recorder.clone()));
    let trace = chrome_trace::render(&recorder);
    json::validate(&trace).expect("trace must be valid JSON");

    // One named track per active PE.
    for pe in recorder.snapshot().pes {
        assert!(
            trace.contains(&format!("\"tid\":{}", 100 + pe.slot)),
            "no track for PE slot {}",
            pe.slot
        );
    }
    assert!(trace.contains("NoC bytes/s"), "missing NoC counter track");
    assert!(trace.contains("power PE"), "missing power timeline track");
    assert!(metrics.frames > 0);
}

/// Exposition conformance: the text format rules exporters most often
/// violate, checked over a real instrumented run.
mod exposition_conformance {
    use super::*;
    use halo::telemetry::expose::{self, escape_label, is_valid_metric_name, Exposition};
    use halo::telemetry::{HealthConfig, HealthMonitor};

    #[test]
    fn label_values_escape_backslash_quote_and_newline() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\"b"), "a\\\"b");
        assert_eq!(escape_label("a\\b"), "a\\\\b");
        assert_eq!(escape_label("a\nb"), "a\\nb");
        assert_eq!(escape_label("\\\"\n"), "\\\\\\\"\\n");
    }

    #[test]
    fn metric_name_grammar_is_enforced() {
        for good in ["halo_frames_total", "_x", "a:b:c", "A9"] {
            assert!(is_valid_metric_name(good), "{good:?} should be legal");
        }
        for bad in ["", "9a", "halo-frames", "halo frames", "é", "a{b}"] {
            assert!(!is_valid_metric_name(bad), "{bad:?} should be illegal");
        }
    }

    #[test]
    #[should_panic(expected = "declared twice")]
    fn duplicate_family_declaration_panics() {
        let mut e = Exposition::new();
        e.family("halo_dup", "counter", "first");
        e.family("halo_dup", "counter", "second");
    }

    #[test]
    #[should_panic(expected = "invalid metric family name")]
    fn invalid_family_name_panics() {
        let mut e = Exposition::new();
        e.family("bad-name", "counter", "nope");
    }

    #[test]
    fn help_text_is_escaped_and_headers_appear_once() {
        let mut e = Exposition::new();
        e.family("halo_x", "gauge", "line one\nline two \\ done");
        e.value("halo_x", "k=\"v\"", 1);
        let text = e.finish();
        assert!(text.contains("# HELP halo_x line one\\nline two \\\\ done\n"));
        assert_eq!(text.matches("# HELP halo_x").count(), 1);
        assert_eq!(text.matches("# TYPE halo_x").count(), 1);
    }

    /// Health exposition over a real run: HELP/TYPE exactly once per
    /// family (recorder + health + tracing sections share one declaration
    /// table), stable ordering across renders, and every sample value
    /// parses back to the number rendered.
    #[test]
    fn health_exposition_is_conformant_and_stable() {
        let recorder = Arc::new(Recorder::new(4096).with_sample_rate_hz(30_000));
        let monitor = Arc::new(HealthMonitor::new(recorder, HealthConfig::default()));
        let (config, recording) = scenario(Task::CompressLz4);
        let mut system = HaloSystem::new(Task::CompressLz4, config).unwrap();
        system.attach_health(monitor.clone());
        system.process(&recording).unwrap();

        let first = expose::render_health(&monitor);
        let second = expose::render_health(&monitor);
        assert_eq!(first, second, "same monitor must render byte-identically");

        let mut helps: Vec<&str> = Vec::new();
        let mut types: Vec<&str> = Vec::new();
        for line in first.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split_whitespace().next().unwrap();
                assert!(!helps.contains(&name), "duplicate HELP for {name}");
                helps.push(name);
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let name = rest.split_whitespace().next().unwrap();
                assert!(!types.contains(&name), "duplicate TYPE for {name}");
                types.push(name);
            } else if !line.is_empty() {
                let metric = line.split(['{', ' ']).next().unwrap();
                assert!(
                    is_valid_metric_name(metric),
                    "illegal metric name {metric:?}"
                );
                let value = line.rsplit(' ').next().unwrap();
                let parsed: f64 = value.parse().expect("sample value must parse");
                // Round-trip: rendering the parsed value reproduces the
                // token (integers stay integers, floats stay floats).
                assert_eq!(format!("{parsed}"), value, "lossy sample {line:?}");
            }
        }
        assert_eq!(helps, types, "HELP/TYPE declarations must pair up");
    }
}
