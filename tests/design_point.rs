//! Full §V-A design-point runs: 96 channels at 30 kHz through the real PE
//! graphs (not the scaled test configs). The quick tests stream ~50 ms;
//! the `#[ignore]`d closed-loop test streams multiple seconds (run it with
//! `cargo test --release -- --ignored`).

use halo::core::tasks::{seizure, spike};
use halo::core::{HaloConfig, HaloSystem, Task};
use halo::signal::{RecordingConfig, RegionProfile};

#[test]
fn full_array_compression_at_design_point() {
    let config = HaloConfig::new(); // 96 ch, 30 kHz, 4 KB history, depth 128
    let rec = RecordingConfig::new(RegionProfile::arm())
        .channels(config.channels)
        .duration_ms(50)
        .generate(201);
    for task in [Task::CompressLz4, Task::CompressLzma, Task::CompressDwtma] {
        let mut sys = HaloSystem::new(task, config.clone()).unwrap();
        let metrics = sys.process(&rec).unwrap();
        assert!(metrics.compression_ratio().unwrap() > 1.0, "{task}");
        let power = sys.power_report(&metrics);
        assert!(power.within_budget(), "{task} at the design point: {power}");
    }
}

#[test]
fn full_array_spike_detection_at_design_point() {
    let config = HaloConfig::new();
    let baseline = RecordingConfig::new(RegionProfile::arm().without_spikes())
        .channels(config.channels)
        .duration_ms(30)
        .generate(202);
    let threshold =
        spike::calibrate_threshold(Task::SpikeDetectNeo, &config, &baseline, 1.5).unwrap();
    let config = config.spike_threshold(threshold);
    let rec = RecordingConfig::new(RegionProfile::arm())
        .channels(config.channels)
        .duration_ms(50)
        .generate(203);
    let mut sys = HaloSystem::new(Task::SpikeDetectNeo, config).unwrap();
    let metrics = sys.process(&rec).unwrap();
    assert!(metrics.bandwidth_fraction() < 0.4);
    assert!(sys.power_report(&metrics).within_budget());
}

#[test]
fn full_array_encryption_at_design_point() {
    let config = HaloConfig::new();
    let rec = RecordingConfig::new(RegionProfile::leg())
        .channels(config.channels)
        .duration_ms(50)
        .generate(204);
    let key = config.aes_key;
    let mut sys = HaloSystem::new(Task::EncryptRaw, config).unwrap();
    let metrics = sys.process(&rec).unwrap();
    let plain = halo::kernels::Aes128::new(key).decrypt_ecb(&metrics.radio_stream);
    let expected = rec.to_bytes_le();
    assert_eq!(&plain[..expected.len()], &expected[..]);
    let power = sys.power_report(&metrics);
    // Encryption is the radio-heaviest pipeline; still under budget.
    assert!(power.radio_mw > 8.0, "radio {:.2}", power.radio_mw);
    assert!(power.within_budget());
}

/// The paper-geometry closed loop: 1024-point FFT with 32× decimation
/// (1.09 s feature windows) over multi-second recordings. Slow — run
/// explicitly with `--ignored`.
#[test]
#[ignore = "multi-second design-point run; invoke with --ignored"]
fn full_array_seizure_closed_loop_at_design_point() {
    let config = HaloConfig::new();
    let window = config.feature_window_frames(); // 32768 frames
    let train = RecordingConfig::new(RegionProfile::arm())
        .channels(config.channels)
        .samples(6 * window)
        .seizure_at(2 * window, 4 * window)
        .generate(205);
    let svm = seizure::train(&config, &[&train]).unwrap();
    let config = config.with_svm(svm);
    let test = RecordingConfig::new(RegionProfile::arm())
        .channels(config.channels)
        .samples(8 * window)
        .seizure_at(4 * window, 7 * window)
        .generate(206);
    let mut sys = HaloSystem::new(Task::SeizurePrediction, config).unwrap();
    let metrics = sys.process(&test).unwrap();
    assert!(!metrics.stim_events.is_empty(), "no stimulation");
    assert!(sys.power_report(&metrics).within_budget());
}
