//! Randomized-input tests at the PE layer: the decomposed PE chains must
//! equal their monolithic kernels for arbitrary inputs, multi-channel PEs
//! must never mix channels, and fixed-point datapaths must stay within
//! their error budgets.
//!
//! Inputs come from the deterministic [`SimRng`], so every run covers the
//! same cases and failures reproduce exactly.

use halo::kernels::{Bbf, BbfDesign, BbfFloat, LzMatcher, LzmaCodec, Neo};
use halo::pe::pes::{LzPe, MaMode, MaPe, NeoPe, RcPe};
use halo::pe::{ProcessingElement, Token};
use halo::signal::SimRng;

/// Runs bytes through the LZ→MA→RC PE chain, returning the framed stream.
fn run_lzma_chain(data: &[u8], history: usize, block: usize) -> Vec<u8> {
    let matcher = LzMatcher::new(history).unwrap().with_min_match(8);
    let mut pes: Vec<Box<dyn ProcessingElement>> = vec![
        Box::new(LzPe::new(matcher, block)),
        Box::new(MaPe::new(MaMode::Lzma, 16)),
        Box::new(RcPe::new()),
    ];
    let mut framed = Vec::new();
    let mut pending = Vec::new();
    let drain = |pes: &mut Vec<Box<dyn ProcessingElement>>,
                 framed: &mut Vec<u8>,
                 pending: &mut Vec<u8>| loop {
        let mut moved = false;
        for i in 0..pes.len() {
            while let Some(t) = pes[i].pull() {
                moved = true;
                if i + 1 < pes.len() {
                    pes[i + 1].push(0, t).unwrap();
                } else {
                    match t {
                        Token::Byte(b) => pending.push(b),
                        Token::BlockEnd { raw_len } => {
                            framed.extend_from_slice(&raw_len.to_le_bytes());
                            framed.extend_from_slice(&(pending.len() as u32).to_le_bytes());
                            framed.append(pending);
                        }
                        _ => {}
                    }
                }
            }
        }
        if !moved {
            break;
        }
    };
    for &b in data {
        pes[0].push(0, Token::Byte(b)).unwrap();
        drain(&mut pes, &mut framed, &mut pending);
    }
    for i in 0..pes.len() {
        pes[i].flush();
        drain(&mut pes, &mut framed, &mut pending);
    }
    framed
}

/// For ARBITRARY bytes, the decomposed LZ→MA→RC pipeline equals the
/// monolithic codec bit for bit, and decodes losslessly — the §IV-A
/// invariant as a property, not an example.
#[test]
fn lzma_chain_equals_codec() {
    let mut rng = SimRng::new(0x2241);
    for case in 0..32 {
        let len = rng.range_usize(0, 3000);
        let data = rng.bytes(len);
        let block = rng.range_usize(256, 2048);
        let codec = LzmaCodec::new(1024).unwrap().with_block_size(block);
        let want = codec.compress(&data);
        let got = run_lzma_chain(&data, 1024, block);
        assert_eq!(got, want, "case {case}: block {block}, len {}", data.len());
        assert_eq!(codec.decompress(&got).unwrap(), data, "case {case}");
    }
}

/// The multi-channel NEO PE equals per-channel scalar kernels on
/// arbitrary interleaved data.
#[test]
fn multichannel_neo_equals_per_channel_kernels() {
    let mut rng = SimRng::new(0x2242);
    for case in 0..32 {
        let channels = 3;
        let nframes = rng.range_usize(3, 64);
        let frames: Vec<Vec<i16>> = (0..nframes).map(|_| rng.samples(channels)).collect();
        let mut pe = NeoPe::with_channels(channels);
        for f in &frames {
            for &s in f {
                pe.push(0, Token::Sample(s)).unwrap();
            }
        }
        let got: Vec<i64> = std::iter::from_fn(|| pe.pull())
            .filter_map(|t| match t {
                Token::Value(v) => Some(v),
                _ => None,
            })
            .collect();
        // Reference: run the scalar kernel per channel, reinterleave.
        let mut want = vec![0i64; frames.len() * channels];
        for c in 0..channels {
            let series: Vec<i16> = frames.iter().map(|f| f[c]).collect();
            let psi = Neo::process_block(&series);
            for (t, &v) in psi.iter().enumerate() {
                // Kernel output for x[n] arrives when x[n+1] does.
                want[(t + 2) * channels + c] = v;
            }
        }
        assert_eq!(got, want, "case {case}: {nframes} frames");
    }
}

/// The fixed-point BBF tracks the floating-point reference within 1%
/// RMS for arbitrary band edges and white input (the paper's <0.1%
/// claim is for its narrow design bands; wide random bands get a
/// looser but still-tight bound).
#[test]
fn bbf_fixed_point_error_bounded() {
    let mut rng = SimRng::new(0x2243);
    let mut checked = 0;
    while checked < 32 {
        let lo_bin = rng.range_u64(1, 20);
        let width = rng.range_u64(1, 20);
        let fs = 1000u32;
        let lo = lo_bin as f64 * 10.0;
        let hi = lo + width as f64 * 10.0;
        if hi >= 480.0 {
            continue;
        }
        let design = BbfDesign::new(lo, hi, fs).unwrap();
        let mut fixed = Bbf::new(&design);
        let mut float = BbfFloat::new(&design);
        let mut state = rng.next_u64() | 1;
        let mut err_acc = 0.0f64;
        let mut sig_acc = 0.0f64;
        for _ in 0..2000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = ((state >> 48) as i16) / 2;
            let yf = float.process(x as f64);
            let yx = fixed.process(x) as f64;
            err_acc += (yf - yx) * (yf - yx);
            sig_acc += yf * yf;
        }
        if sig_acc <= 1e4 {
            continue; // skip degenerate all-zero cases
        }
        checked += 1;
        let rel = (err_acc / sig_acc).sqrt();
        assert!(rel < 0.01, "band [{lo}, {hi}]: relative error {rel}");
    }
}

/// GATE never emits more tokens than it receives, and `passed + dropped`
/// exactly accounts for every paired token.
#[test]
fn gate_conservation() {
    use halo::pe::pes::GatePe;
    let mut pe = GatePe::with_channels(3, 2, 1);
    let n = 500;
    let mut pushed = 0u64;
    for i in 0..n {
        pe.push(0, Token::Sample(i as i16)).unwrap();
        pe.push(1, Token::Flag(i % 7 == 0)).unwrap();
        pushed += 1;
    }
    let emitted = std::iter::from_fn(|| pe.pull()).count() as u64;
    assert_eq!(pe.passed(), emitted);
    assert_eq!(pe.passed() + pe.dropped(), pushed);
    assert!(emitted < pushed);
}
