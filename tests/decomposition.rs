//! PE decomposition must not change algorithmic functionality (§IV-A):
//! the decomposed PE pipelines produce **bit-identical** output to the
//! monolithic codecs they were refactored from.

use halo::kernels::{DwtmaCodec, Lz4Codec, LzmaCodec};
use halo::noc::{Fabric, NodeId, Route};
use halo::pe::pes::{DwtMode, DwtPe, InterleaverPe, LicPe, LzPe, MaMode, MaPe, RcPe};
use halo::pe::{ProcessingElement, Token};
use halo::signal::{RecordingConfig, RegionProfile};

/// Pushes a byte stream through a linear chain of PEs and collects the
/// framed output ([raw_len][payload_len][payload] per block), mirroring
/// the codecs' container format.
fn run_chain(pes: &mut [Box<dyn ProcessingElement>], input: &[Token]) -> Vec<u8> {
    // Sanity: the chain itself is a valid fabric configuration.
    let mut fabric = Fabric::new();
    for i in 1..pes.len() {
        fabric
            .connect(Route {
                from: NodeId(i - 1),
                to: NodeId(i),
                to_port: 0,
            })
            .unwrap();
    }
    let refs: Vec<&dyn ProcessingElement> = pes.iter().map(|b| b.as_ref()).collect();
    fabric.validate(&refs).unwrap();

    let mut framed = Vec::new();
    let mut pending: Vec<u8> = Vec::new();
    let feed = |pes: &mut [Box<dyn ProcessingElement>],
                framed: &mut Vec<u8>,
                pending: &mut Vec<u8>| {
        loop {
            let mut moved = false;
            for i in 0..pes.len() {
                while let Some(t) = pes[i].pull() {
                    moved = true;
                    if i + 1 < pes.len() {
                        pes[i + 1].push(0, t).unwrap();
                    } else {
                        match t {
                            Token::Byte(b) => pending.push(b),
                            Token::BlockEnd { raw_len } => {
                                framed.extend_from_slice(&raw_len.to_le_bytes());
                                framed.extend_from_slice(&(pending.len() as u32).to_le_bytes());
                                framed.append(pending);
                            }
                            _ => {}
                        }
                    }
                }
            }
            if !moved {
                break;
            }
        }
    };
    for t in input {
        pes[0].push(0, t.clone()).unwrap();
        feed(pes, &mut framed, &mut pending);
    }
    for i in 0..pes.len() {
        pes[i].flush();
        feed(pes, &mut framed, &mut pending);
    }
    framed.extend_from_slice(&pending);
    framed
}

fn neural_bytes(seed: u64, ms: usize) -> Vec<u8> {
    RecordingConfig::new(RegionProfile::arm())
        .channels(2)
        .duration_ms(ms)
        .generate(seed)
        .to_bytes_le()
}

#[test]
fn lzma_pipeline_is_bit_identical_to_the_monolithic_codec() {
    let data = neural_bytes(21, 60);
    let block = 4096;
    let history = 1024;

    let codec = LzmaCodec::new(history).unwrap().with_block_size(block);
    let want = codec.compress(&data);

    let matcher = halo::kernels::LzMatcher::new(history)
        .unwrap()
        .with_min_match(8);
    let mut pes: Vec<Box<dyn ProcessingElement>> = vec![
        Box::new(LzPe::new(matcher, block)),
        Box::new(MaPe::new(MaMode::Lzma, 16)),
        Box::new(RcPe::new()),
    ];
    let tokens: Vec<Token> = data.iter().map(|&b| Token::Byte(b)).collect();
    let got = run_chain(&mut pes, &tokens);

    assert_eq!(got, want, "LZ→MA→RC diverged from the monolithic LZMA");
    // And it still decodes.
    assert_eq!(codec.decompress(&got).unwrap(), data);
}

#[test]
fn lz4_pipeline_is_bit_identical_to_the_monolithic_codec() {
    let data = neural_bytes(22, 60);
    let block = 4096;
    let history = 1024;

    let codec = Lz4Codec::new(history).unwrap().with_block_size(block);
    let want = codec.compress(&data);

    let matcher = halo::kernels::LzMatcher::new(history).unwrap();
    let mut pes: Vec<Box<dyn ProcessingElement>> =
        vec![Box::new(LzPe::new(matcher, block)), Box::new(LicPe::new())];
    let tokens: Vec<Token> = data.iter().map(|&b| Token::Byte(b)).collect();
    let got = run_chain(&mut pes, &tokens);

    assert_eq!(got, want, "LZ→LIC diverged from the monolithic LZ4");
    assert_eq!(codec.decompress(&got).unwrap(), data);
}

#[test]
fn dwtma_pipeline_is_bit_identical_to_the_monolithic_codec() {
    let recording = RecordingConfig::new(RegionProfile::leg())
        .channels(2)
        .duration_ms(60)
        .generate(23);
    let samples: Vec<i16> = recording.samples().to_vec();
    let levels = 1;
    let block_samples = 2048;

    let codec = DwtmaCodec::new(levels)
        .unwrap()
        .with_block_samples(block_samples);
    let want = codec.compress(&samples);

    let dwt = halo::kernels::Dwt::new(levels).unwrap();
    let mut pes: Vec<Box<dyn ProcessingElement>> = vec![
        Box::new(DwtPe::new(dwt, DwtMode::Compress, block_samples)),
        Box::new(MaPe::new(MaMode::Dwt { levels }, 16)),
        Box::new(RcPe::new()),
    ];
    let tokens: Vec<Token> = samples.iter().map(|&s| Token::Sample(s)).collect();
    let got = run_chain(&mut pes, &tokens);

    assert_eq!(got, want, "DWT→MA→RC diverged from the monolithic DWTMA");
    assert_eq!(codec.decompress(&got).unwrap(), samples);
}

#[test]
fn interleaver_is_exactly_invertible_bookkeeping() {
    // The interleaver only reorders samples — nothing is lost or
    // duplicated, and the inverse permutation recovers the frame order.
    let channels = 3;
    let depth = 4;
    let frames = 10; // includes a partial final run (10 % 4 != 0)
    let mut pe = InterleaverPe::new(channels, depth);
    let mut pushed = Vec::new();
    for t in 0..frames {
        for c in 0..channels {
            let v = (t * channels + c) as i16;
            pushed.push(v);
            pe.push(0, Token::Sample(v)).unwrap();
        }
    }
    pe.flush();
    let mut out = Vec::new();
    while let Some(t) = pe.pull() {
        if let Token::Sample(s) = t {
            out.push(s);
        }
    }
    assert_eq!(out.len(), pushed.len());
    let mut sorted_in = pushed.clone();
    let mut sorted_out = out.clone();
    sorted_in.sort_unstable();
    sorted_out.sort_unstable();
    assert_eq!(sorted_in, sorted_out, "interleaver lost or duplicated data");
    // Invert: walk runs and place samples back.
    let mut recovered = vec![0i16; pushed.len()];
    let mut idx = 0;
    let mut t0 = 0;
    while t0 < frames {
        let run = depth.min(frames - t0);
        for c in 0..channels {
            for k in 0..run {
                recovered[(t0 + k) * channels + c] = out[idx];
                idx += 1;
            }
        }
        t0 += run;
    }
    assert_eq!(recovered, pushed);
}
