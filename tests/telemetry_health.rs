//! End-to-end tests for the active observability layer: the
//! safety-envelope watchdog on a real seizure closed-loop run, recorder
//! ring-buffer wraparound, snapshot determinism under concurrent
//! recording, and randomized checks that histogram percentile digests
//! bound the true sample quantiles.

use std::sync::Arc;
use std::thread;

use halo::core::tasks::seizure;
use halo::core::{HaloConfig, HaloSystem, SystemError, Task};
use halo::signal::{Recording, RecordingConfig, RegionProfile, SimRng};
use halo::telemetry::{
    expose, json, summary, AlertKind, AlertPolicy, Counter, Event, EventKind, HealthConfig,
    HealthMonitor, LogHistogram, Recorder, Scope, Severity, TelemetrySink,
};

/// The seizure closed-loop scenario: an SVM trained on labeled recordings
/// and a session whose ictal episode triggers stimulation.
fn seizure_scenario() -> (HaloConfig, Recording) {
    let channels = 8;
    let config = HaloConfig::small_test(channels).channels(channels);
    let window = config.feature_window_frames();
    let train_a = RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(700)
        .seizure_at(6 * window, 14 * window)
        .generate(9);
    let train_b = RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(700)
        .seizure_at(12 * window, 20 * window)
        .generate(19);
    let svm = seizure::train(&config, &[&train_a, &train_b]).unwrap();
    let session = RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(700)
        .seizure_at(8 * window, 16 * window)
        .generate(10);
    (config.with_svm(svm), session)
}

fn monitor_with(budget_mw: f64, policy: AlertPolicy) -> Arc<HealthMonitor> {
    let recorder = Arc::new(Recorder::new(65536).with_sample_rate_hz(30_000));
    Arc::new(HealthMonitor::new(
        recorder,
        HealthConfig {
            budget_mw,
            policy,
            ..HealthConfig::default()
        },
    ))
}

/// The ISSUE acceptance scenario: a seizure closed-loop run against an
/// artificially lowered power budget must raise at least one structured
/// `PowerBudget` alert, latch a valid post-mortem JSON dump, and surface
/// non-empty latency percentiles in both the text summary and the
/// Prometheus exposition.
#[test]
fn lowered_budget_raises_power_alert_with_postmortem() {
    let (config, session) = seizure_scenario();
    // Far below what any pipeline draws, so every window violates.
    let monitor = monitor_with(0.001, AlertPolicy::Record);
    let mut system = HaloSystem::new(Task::SeizurePrediction, config).unwrap();
    system.attach_health(monitor.clone());
    let metrics = system.process(&session).unwrap();
    assert!(!metrics.stim_events.is_empty(), "scenario must stimulate");
    for stim in &metrics.stim_events {
        // Firmware latency is real (cycles > 0) but comfortably inside
        // the 30-frame (1 ms) deadline.
        assert!(stim.latency_frames > 0);
        assert!(stim.latency_frames <= 30);
    }

    let status = monitor.status();
    let power_alerts = status
        .alerts
        .iter()
        .filter(|a| matches!(a.kind(), AlertKind::PowerBudget { .. }))
        .count();
    assert!(power_alerts >= 1, "no PowerBudget alert raised");
    assert!(status.headroom_fraction().unwrap() < 0.0);
    assert_eq!(status.active_pipeline, Task::SeizurePrediction.label());

    let dump = monitor
        .postmortem()
        .expect("critical alert must latch dump");
    json::validate(&dump).expect("post-mortem must be valid JSON");
    assert!(dump.contains("power_budget"));
    assert!(dump.contains("recent_events"));

    let text = summary::render(monitor.recorder());
    assert!(text.contains("frame latency (us):"), "{text}");
    assert!(text.contains("worst window"), "{text}");
    let exposition = expose::render_health(&monitor);
    assert!(exposition.contains("halo_frame_latency_ns_count"));
    assert!(exposition.contains("quantile=\"0.99\""));
    assert!(exposition.contains("kind=\"power_budget\",severity=\"critical\""));

    // The percentile digests are non-empty and ordered.
    let snap = monitor.recorder().snapshot();
    let pipeline = &snap.pipelines[0];
    assert!(pipeline.latency.count > 0);
    assert!(pipeline.latency.p50 > 0);
    assert!(pipeline.latency.p99 >= pipeline.latency.p50);
}

/// Under a fail-fast policy the same overload aborts the run with a
/// structured error instead of returning metrics.
#[test]
fn failfast_policy_aborts_the_run() {
    let (config, session) = seizure_scenario();
    let monitor = monitor_with(0.001, AlertPolicy::FailFast);
    let mut system = HaloSystem::new(Task::SeizurePrediction, config).unwrap();
    system.attach_health(monitor.clone());
    match system.process(&session) {
        Err(SystemError::Health { alert }) => assert_eq!(alert, "power_budget"),
        other => panic!("expected health trip, got {other:?}"),
    }
    assert!(monitor.tripped());
    assert!(monitor.postmortem().is_some());
}

/// A generous budget raises nothing: the monitor is pure observation on a
/// healthy run, and the callback policy never fires.
#[test]
fn healthy_run_raises_no_alerts() {
    let (config, session) = seizure_scenario();
    let fired = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let fired_in_cb = fired.clone();
    let monitor = monitor_with(
        1.0e6,
        AlertPolicy::Callback(Arc::new(move |_| {
            fired_in_cb.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        })),
    );
    let mut system = HaloSystem::new(Task::SeizurePrediction, config).unwrap();
    system.attach_health(monitor.clone());
    system.process(&session).unwrap();
    let status = monitor.status();
    // Power/deadline/radio envelopes hold; FIFO backpressure may warn but
    // nothing critical happens and no post-mortem latches.
    assert_eq!(status.severity_counts[Severity::Critical as usize], 0);
    assert!(monitor.postmortem().is_none());
    assert!(!monitor.tripped());
    assert_eq!(
        fired.load(std::sync::atomic::Ordering::Relaxed) as u64,
        status.total_alerts()
    );
    assert!(status.power_windows > 0, "watchdog saw no power windows");
}

/// An injected over-deadline `ClosedLoop` event raises the critical
/// deadline-miss alert (natural runs respond within a frame or two, so
/// the envelope is exercised by construction).
#[test]
fn deadline_miss_is_judged_from_closed_loop_events() {
    let monitor = monitor_with(15.0, AlertPolicy::Record);
    monitor.event(Event {
        frame: 900,
        kind: EventKind::ClosedLoop {
            detect_frame: 900,
            latency_frames: 31,
        },
    });
    let status = monitor.status();
    assert_eq!(status.alerts.len(), 1);
    assert!(matches!(
        status.alerts[0].kind(),
        AlertKind::DeadlineMiss {
            latency_frames: 31,
            deadline_frames: 30,
        }
    ));
    assert_eq!(status.alerts[0].severity(), Severity::Critical);
    let dump = monitor.postmortem().unwrap();
    json::validate(&dump).unwrap();
    assert!(dump.contains("deadline_miss"));
}

/// Ring wraparound: a full ring keeps exactly the newest `capacity`
/// events in order and counts, rather than silently loses, the rest.
#[test]
fn recorder_ring_wraps_to_the_newest_events() {
    let capacity = 32;
    let rec = Recorder::new(capacity);
    for i in 0..(capacity as u64 * 3) {
        rec.event(Event {
            frame: i,
            kind: EventKind::Detection {
                positive: i % 2 == 0,
            },
        });
    }
    let events = rec.events();
    assert_eq!(events.len(), capacity);
    assert_eq!(rec.dropped_events(), capacity as u64 * 2);
    // The survivors are the newest `capacity` events, oldest first.
    let expected_first = capacity as u64 * 2;
    for (i, event) in events.iter().enumerate() {
        assert_eq!(event.frame, expected_first + i as u64);
    }
}

/// Concurrent `add()`/`latency()` calls from many threads produce the
/// same snapshot as the sequential sum — counters are atomic and the
/// histograms are mutex-guarded, so nothing is lost or double-counted.
#[test]
fn snapshot_is_deterministic_under_concurrent_adds() {
    let threads = 8u64;
    let per_thread = 1000u64;
    let rec = Arc::new(Recorder::new(16));
    rec.declare_pe(0, "LZ");
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let rec = rec.clone();
            thread::spawn(move || {
                for i in 0..per_thread {
                    rec.add(Scope::Pe(0), Counter::BusyCycles, 3);
                    rec.add(Scope::Link { from: 0, to: 1 }, Counter::BytesOut, 2);
                    rec.add(Scope::Link { from: 0, to: 1 }, Counter::TokensOut, 1);
                    rec.hwm(Scope::Pe(0), Counter::FifoPeakDepth, t * per_thread + i);
                    rec.latency(Scope::System, 1000 + i);
                    rec.latency(Scope::Pe(0), 500);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = rec.snapshot();
    assert_eq!(snap.pes[0].busy_cycles, threads * per_thread * 3);
    assert_eq!(snap.links[0].bytes, threads * per_thread * 2);
    assert_eq!(snap.links[0].transfers, threads * per_thread);
    // The high-water mark is the max over every thread's sequence.
    assert_eq!(snap.pes[0].fifo_peak_depth, threads * per_thread - 1);
    assert_eq!(snap.pes[0].service.count, threads * per_thread);
    assert_eq!(snap.pes[0].service.p50, 500);
    assert_eq!(snap.pipelines[0].latency.count, threads * per_thread);
    // Identical reruns of snapshot() agree (snapshots don't drain state).
    let again = rec.snapshot();
    assert_eq!(snap.pes[0], again.pes[0]);
    assert_eq!(snap.pipelines[0].latency, again.pipelines[0].latency);
}

/// Property-style check (deterministic [`SimRng`], per repo convention):
/// for arbitrary insert sequences, every percentile digest is an upper
/// bound on the true sample quantile, and is tight to within one
/// sub-bucket (≤25% relative error).
#[test]
fn histogram_percentiles_bound_true_quantiles() {
    let mut rng = SimRng::new(0x4A11);
    for case in 0..64 {
        let len = rng.range_usize(1, 4000);
        // Mix scales: uniform small, uniform wide, and heavy-tailed.
        let mut samples: Vec<u64> = (0..len)
            .map(|_| match rng.range_u64(0, 3) {
                0 => rng.range_u64(0, 100),
                1 => rng.range_u64(0, 1_000_000),
                _ => 1u64 << rng.range_u64(0, 50),
            })
            .collect();
        let mut hist = LogHistogram::new();
        for &s in &samples {
            hist.record(s);
        }
        samples.sort_unstable();
        for p in [50.0, 90.0, 99.0, 100.0] {
            let rank = ((p / 100.0) * len as f64).ceil().max(1.0) as usize;
            let truth = samples[rank - 1];
            let est = hist.percentile(p);
            assert!(
                est >= truth,
                "case {case}: p{p} estimate {est} below true quantile {truth}"
            );
            assert!(
                est <= truth + truth / 4 + 1,
                "case {case}: p{p} estimate {est} too loose for {truth}"
            );
        }
        assert_eq!(hist.max(), *samples.last().unwrap());
        assert_eq!(hist.count(), len as u64);
    }
}

/// The disabled path stays invisible: attaching a health monitor and then
/// running with `NullSink` semantics (enabled() == false) is covered by
/// `telemetry.rs`; here we check the monitor itself forwards counters so
/// the wrapped recorder agrees with an unwrapped one.
#[test]
fn monitor_forwards_everything_to_its_recorder() {
    let (config, session) = seizure_scenario();

    let bare = Arc::new(Recorder::new(65536).with_sample_rate_hz(30_000));
    let mut direct = HaloSystem::new(Task::SeizurePrediction, config.clone()).unwrap();
    direct.attach_telemetry(bare.clone());
    let m1 = direct.process(&session).unwrap();

    let monitor = monitor_with(1.0e6, AlertPolicy::Record);
    let mut wrapped = HaloSystem::new(Task::SeizurePrediction, config).unwrap();
    wrapped.attach_health(monitor.clone());
    let m2 = wrapped.process(&session).unwrap();

    assert_eq!(m1.radio_stream, m2.radio_stream);
    let s1 = bare.snapshot();
    let s2 = monitor.recorder().snapshot();
    assert_eq!(s1.frames, s2.frames);
    assert_eq!(s1.radio_bytes, s2.radio_bytes);
    assert_eq!(s1.noc_bytes(), s2.noc_bytes());
    for (a, b) in s1.pes.iter().zip(&s2.pes) {
        assert_eq!(a, b);
    }
    assert_eq!(s1.pipelines[0].latency, s2.pipelines[0].latency);
}
