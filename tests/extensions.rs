//! Integration tests for the §VII extensions: the Hjorth feature PE in the
//! seizure pipeline, the BWT+MA/RC codec, approximate entropy as an ictal
//! discriminator, and Hann-windowed spectra.

use halo::core::tasks::seizure;
use halo::core::{HaloConfig, HaloSystem, Task};
use halo::kernels::apen::{apen, default_tolerance};
use halo::kernels::bwt::BwtmaCodec;
use halo::kernels::hann::HannWindow;
use halo::kernels::hjorth::hjorth;
use halo::kernels::Fft;
use halo::signal::{RecordingConfig, RegionProfile};

/// The seizure pipeline with the Hjorth PE enabled still trains, runs
/// closed-loop, and stimulates during ictal activity — the §IV
/// extensibility claim exercised end to end.
#[test]
fn seizure_pipeline_with_hjorth_features() {
    let channels = 4;
    let mut config = HaloConfig::small_test(channels);
    config.use_hjorth = true;
    let window = config.feature_window_frames();
    assert_eq!(config.svm_port_dims().len(), 4);

    let a = RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(600)
        .seizure_at(5 * window, 12 * window)
        .generate(91);
    let b = RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(600)
        .seizure_at(9 * window, 15 * window)
        .generate(92);
    let svm = seizure::train(&config, &[&a, &b]).unwrap();
    assert_eq!(svm.weights().len(), config.svm_dim());
    let config = config.with_svm(svm);

    let test = RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(600)
        .seizure_at(7 * window, 14 * window)
        .generate(93);
    let mut sys = HaloSystem::new(Task::SeizurePrediction, config).unwrap();
    let metrics = sys.process(&test).unwrap();
    assert!(
        !metrics.stim_events.is_empty(),
        "hjorth-augmented pipeline never stimulated"
    );
    let power = sys.power_report(&metrics);
    assert!(power.within_budget(), "{power}");
}

/// Hjorth mobility separates ictal from interictal activity on the
/// synthetic data (the reason it is on the paper's kernel roadmap).
#[test]
fn hjorth_separates_ictal_from_rest() {
    let rec = RecordingConfig::new(RegionProfile::arm())
        .channels(1)
        .duration_ms(400)
        .seizure_at(6000, 12000)
        .generate(94);
    let ch = rec.channel(0);
    let rest = hjorth(&ch[0..4096]);
    let ictal = hjorth(&ch[6500..10596]);
    // Ictal discharges: much larger amplitude.
    assert!(
        ictal.activity > 5.0 * rest.activity,
        "ictal activity {} vs rest {}",
        ictal.activity,
        rest.activity
    );
}

/// Approximate entropy drops during regular ictal discharges.
#[test]
fn apen_drops_during_seizure() {
    let rec = RecordingConfig::new(RegionProfile::arm())
        .channels(1)
        .duration_ms(300)
        .seizure_at(4000, 8500)
        .generate(95);
    let ch = rec.channel(0);
    // Decimate 16x so the 4 Hz rhythm is visible inside short ApEn windows.
    let decimate = |s: &[i16]| -> Vec<i16> {
        s.chunks(16)
            .map(|c| (c.iter().map(|&x| x as i32).sum::<i32>() / c.len() as i32) as i16)
            .collect()
    };
    let rest = decimate(&ch[0..3200]);
    let ictal = decimate(&ch[4500..7700]);
    let e_rest = apen(&rest, 2, default_tolerance(&rest));
    let e_ictal = apen(&ictal, 2, default_tolerance(&ictal));
    assert!(
        e_ictal < e_rest,
        "ictal ApEn {e_ictal} should be below rest {e_rest}"
    );
}

/// The BWT codec is lossless on real pipeline byte streams and interacts
/// sanely with the existing codecs.
#[test]
fn bwtma_is_lossless_on_neural_streams() {
    let rec = RecordingConfig::new(RegionProfile::leg())
        .channels(4)
        .duration_ms(150)
        .generate(96);
    let bytes = rec.to_bytes_le();
    for block in [4096usize, 1 << 16] {
        let codec = BwtmaCodec::new().with_block_size(block);
        let c = codec.compress(&bytes);
        assert_eq!(codec.decompress(&c).unwrap(), bytes, "block {block}");
        assert!(c.len() < bytes.len(), "should compress at block {block}");
    }
}

/// Hann windowing reduces out-of-band leakage in the movement-intent
/// band-power feature.
#[test]
fn hann_window_sharpens_band_power() {
    let n = 512;
    let fft = Fft::new(n).unwrap();
    let hann = HannWindow::new(n);
    // A strong off-band tone plus a weak in-band one; leakage from the
    // strong tone contaminates the weak band without a window.
    let samples: Vec<i16> = (0..n)
        .map(|t| {
            let strong = 14_000.0 * (std::f64::consts::TAU * 97.3 * t as f64 / n as f64).sin();
            let weak = 500.0 * (std::f64::consts::TAU * 20.0 * t as f64 / n as f64).sin();
            (strong + weak) as i16
        })
        .collect();
    let raw = fft.power_spectrum(&samples);
    let windowed = fft.power_spectrum(&hann.apply(&samples));
    // The weak tone sits at bin 20; measure its local contrast.
    let contrast = |s: &[u64]| {
        let peak = s[18..23].iter().copied().max().unwrap() as f64;
        let floor = (s[30..60].iter().sum::<u64>() as f64 / 30.0).max(1.0);
        peak / floor
    };
    assert!(
        contrast(&windowed) > 2.0 * contrast(&raw),
        "windowed contrast {:.1} vs raw {:.1}",
        contrast(&windowed),
        contrast(&raw)
    );
}
