//! Distributed-BCI integration: the seizure-alert link must survive
//! chaos. Alerts ride the core ARQ layer, so injected drops and
//! reordering retransmit and re-sequence instead of silently losing a
//! stimulation trigger; unrecoverable loss is a typed error.

use halo::core::{
    AlertLink, ArqChannel, ChannelVerdict, DistributedBci, DistributedMetrics, HaloConfig,
    SystemError,
};
use halo::signal::{Recording, RecordingConfig, RegionProfile};

fn trained_config(channels: usize) -> HaloConfig {
    let config = HaloConfig::small_test(channels).channels(channels);
    let window = config.feature_window_frames();
    let a = RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(600)
        .seizure_at(5 * window, 12 * window)
        .generate(71);
    let b = RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(600)
        .seizure_at(9 * window, 15 * window)
        .generate(72);
    let svm = halo::core::tasks::seizure::train(&config, &[&a, &b]).expect("training");
    config.with_svm(svm)
}

fn seizure_recording(channels: usize, window: usize) -> Recording {
    RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(600)
        .seizure_at(7 * window, 14 * window)
        .generate(73)
}

fn run_with_link(link: AlertLink) -> DistributedMetrics {
    let config = trained_config(4);
    let window = config.feature_window_frames();
    let mut bci = DistributedBci::new(config, link).unwrap();
    bci.process(&seizure_recording(4, window)).unwrap()
}

fn delivered_frames(metrics: &DistributedMetrics) -> Vec<u64> {
    metrics
        .remote_stims
        .iter()
        .map(|e| e.detect_frame)
        .collect()
}

/// A hostile medium: drops every third first transmission and smears
/// arrival times so later sequence numbers can overtake earlier ones.
/// The ARQ reorder buffer must still release alerts in order.
struct ReorderingChannel {
    sends: u64,
}

impl ArqChannel for ReorderingChannel {
    fn data_verdict(&mut self, now: u64, seq: u32, attempt: u32) -> ChannelVerdict {
        self.sends += 1;
        if attempt == 0 && seq.is_multiple_of(2) {
            return ChannelVerdict::Drop;
        }
        // Earlier seqs wait longer: seq N+1 sent in the same window
        // arrives before seq N.
        ChannelVerdict::Deliver {
            at_frame: now + 1 + u64::from(seq % 4) * 2,
        }
    }
    fn ack_verdict(&mut self, now: u64, _seq: u32) -> ChannelVerdict {
        ChannelVerdict::Deliver { at_frame: now + 1 }
    }
}

/// A dead medium: every data transmission is lost.
struct BlackholeChannel;

impl ArqChannel for BlackholeChannel {
    fn data_verdict(&mut self, _now: u64, _seq: u32, _attempt: u32) -> ChannelVerdict {
        ChannelVerdict::Drop
    }
    fn ack_verdict(&mut self, now: u64, _seq: u32) -> ChannelVerdict {
        ChannelVerdict::Deliver { at_frame: now + 1 }
    }
}

#[test]
fn clean_link_counts_are_exact() {
    let metrics = run_with_link(AlertLink::default());
    assert!(metrics.alerts_sent > 0, "no alerts fired");
    assert_eq!(metrics.alerts_delivered, metrics.alerts_sent);
    assert_eq!(metrics.link_drops, 0);
    assert_eq!(metrics.arq.giveups, 0);
    assert_eq!(metrics.link_bytes, metrics.alerts_sent * 8);
    // ARQ framing: [seq:4][len:4][payload:8][crc:2] per transmission.
    assert_eq!(metrics.wire_bytes, metrics.alerts_sent * 18);
}

#[test]
fn alert_round_trip_survives_injected_drops() {
    let clean = run_with_link(AlertLink::default());
    let lossy = run_with_link(AlertLink {
        loss_permille: 300,
        seed: 0xD20,
        ..AlertLink::default()
    });
    // Same detector stream, so the same alerts — and every one must
    // arrive despite a 30% loss rate, via retransmission.
    assert_eq!(delivered_frames(&lossy), delivered_frames(&clean));
    assert_eq!(lossy.alerts_delivered, lossy.alerts_sent);
    assert!(lossy.link_drops > 0, "a 30% channel must force retries");
    assert_eq!(lossy.arq.giveups, 0);
    assert!(
        lossy.wire_bytes > clean.wire_bytes,
        "retransmissions must show up in the energy accounting"
    );
    // Retried alerts arrive late but never silently vanish.
    for ev in &lossy.remote_stims {
        assert!(ev.latency_ms >= 5.0);
    }
}

#[test]
fn alert_round_trip_survives_reordering() {
    let config = trained_config(4);
    let window = config.feature_window_frames();
    let rec = seizure_recording(4, window);

    let mut clean_bci = DistributedBci::new(config.clone(), AlertLink::default()).unwrap();
    let clean = clean_bci.process(&rec).unwrap();

    let mut bci = DistributedBci::new(config, AlertLink::default()).unwrap();
    let metrics = bci
        .process_over(&rec, ReorderingChannel { sends: 0 })
        .unwrap();
    assert_eq!(delivered_frames(&metrics), delivered_frames(&clean));
    let frames = delivered_frames(&metrics);
    assert!(
        frames.windows(2).all(|w| w[0] < w[1]),
        "alerts must land in detection order: {frames:?}"
    );
    assert_eq!(metrics.alerts_delivered, metrics.alerts_sent);
    assert!(metrics.link_drops > 0, "dropped sends must be counted");
    assert_eq!(metrics.arq.giveups, 0);
}

#[test]
fn unrecoverable_alert_loss_is_a_typed_error() {
    let config = trained_config(4);
    let window = config.feature_window_frames();
    let mut bci = DistributedBci::new(config, AlertLink::default()).unwrap();
    let err = bci
        .process_over(&seizure_recording(4, window), BlackholeChannel)
        .unwrap_err();
    match err {
        SystemError::AlertLoss { lost } => assert!(lost > 0),
        other => panic!("expected AlertLoss, got {other:?}"),
    }
}

#[test]
fn lossy_alert_link_is_deterministic() {
    let link = AlertLink {
        loss_permille: 250,
        seed: 0xABCD,
        ..AlertLink::default()
    };
    let a = run_with_link(link);
    let b = run_with_link(link);
    assert_eq!(delivered_frames(&a), delivered_frames(&b));
    assert_eq!(a.arq, b.arq);
    assert_eq!(a.wire_bytes, b.wire_bytes);
}
