//! Power-budget integration tests: the paper's headline claim is that
//! every task pipeline fits the 12 mW processing / 15 mW device budgets
//! (§V-A, Figure 5), while the software and monolithic-ASIC baselines do
//! not (Figure 4).

use halo::core::{HaloConfig, HaloSystem, Task};
use halo::pe::PeKind;
use halo::power::{
    packet_mesh_power_mw, MonolithicAsic, VddComparator, DEVICE_BUDGET_MW, PROCESSING_BUDGET_MW,
};
use halo::signal::{RecordingConfig, RegionProfile};

/// Every task, streamed end to end at a 16-channel configuration, fits the
/// budgets. (The full 96-channel design point is exercised by the
/// experiment harness in release mode; functional scaling is linear.)
#[test]
fn all_tasks_fit_the_budget_end_to_end() {
    let channels = 16;
    let recording = RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(100)
        .generate(31);
    for task in Task::all() {
        let config = HaloConfig::small_test(channels).channels(channels);
        let mut sys = HaloSystem::new(task, config).unwrap();
        let metrics = sys.process(&recording).unwrap();
        let power = sys.power_report(&metrics);
        assert!(
            power.within_budget(),
            "{task}: processing {:.2} mW, device {:.2} mW\n{power}",
            power.processing_mw(),
            power.device_mw()
        );
    }
}

/// Table IV pipeline sums at the paper's design point stay within the
/// 12 mW processing budget once radio/control/NoC overheads are added
/// with the paper's own numbers.
#[test]
fn paper_design_point_pipelines_fit() {
    use halo::power::pe_anchor;
    for task in Task::all() {
        let pes: f64 = task
            .pe_kinds()
            .iter()
            .map(|&k| pe_anchor(k).total_mw())
            .sum();
        // Paper-style overheads: idle-dominated controller (leakage plus
        // 30% activity = 0.954 mW), NoC well under its 0.3 mW bound,
        // stimulation 0.48 mW where used, radio bounded by the raw-stream
        // cost for encryption and by ratios measured on the synthetic
        // data elsewhere (LZ4 is the tightest case at ~1.31x).
        let radio = match task {
            Task::EncryptRaw => 9.216,
            Task::CompressLz4 => 9.216 / 1.31,
            Task::CompressLzma => 9.216 / 2.8,
            Task::CompressDwtma => 9.216 / 2.6,
            Task::SpikeDetectNeo | Task::SpikeDetectDwt => 9.216 * 0.1,
            _ => 0.05,
        };
        let stim = if task.uses_stimulation() { 0.48 } else { 0.0 };
        let total = pes + 0.954 + 0.15 + stim + radio;
        assert!(
            total <= PROCESSING_BUDGET_MW,
            "{task}: {total:.2} mW exceeds the processing budget"
        );
        assert!(total + 2.88 <= DEVICE_BUDGET_MW, "{task}: device budget");
    }
}

/// The monolithic-ASIC alternative busts the budget for the heavy
/// pipelines ("monolithic ASICs exceed the 15 mW power budget … in many
/// cases", §I).
#[test]
fn monolithic_asics_exceed_the_budget_for_heavy_tasks() {
    for task in [Task::CompressLzma, Task::SeizurePrediction] {
        let kinds: Vec<PeKind> = task
            .pe_kinds()
            .into_iter()
            .filter(|k| *k != PeKind::Interleaver)
            .collect();
        let asic = MonolithicAsic::power(&kinds).total_mw();
        let radio = if task == Task::CompressLzma {
            3.3
        } else {
            0.05
        };
        assert!(
            asic + 1.0 + radio > PROCESSING_BUDGET_MW,
            "{task}: monolithic ASIC at {asic:.2} mW unexpectedly fits"
        );
    }
}

/// A packet-switched mesh alone would consume several times the whole
/// budget (§IV-D: >50 mW).
#[test]
fn packet_switched_noc_is_not_viable() {
    let mesh = packet_mesh_power_mw(16, 5_760_000.0);
    assert!(mesh > 50.0);
    assert!(mesh > 3.0 * DEVICE_BUDGET_MW);
}

/// The Vdd comparator interrupts the controller on overshoot (§IV-E), and
/// the controller can shed load (modeled as dropping the radio) to return
/// under budget.
#[test]
fn overshoot_interrupt_and_recovery() {
    let mut comparator = VddComparator::new(PROCESSING_BUDGET_MW);
    // A hypothetical misconfiguration: encryption plus an uncompressed
    // high-rate radio.
    let overshoot = 0.112 + 1.0 + 9.216 + 3.0;
    assert!(comparator.sample(overshoot), "comparator must trip");
    assert!(comparator.interrupt_pending());
    // Controller sheds the radio: back under budget.
    let recovered = overshoot - 9.216;
    comparator.acknowledge();
    assert!(!comparator.sample(recovered));
    assert!(!comparator.interrupt_pending());
    assert_eq!(comparator.trip_count(), 1);
}
