//! Scalar ↔ vector kernel equivalence: every SoA-batched or bit-sliced
//! kernel must be *bit-identical* to its scalar reference — same Q15
//! rounding, same per-stage scaling, same output bytes — across sizes,
//! channel counts (including non-multiples of the lane width), and
//! extreme fixed-point inputs.
//!
//! Inputs come from the deterministic [`SimRng`], so every run covers the
//! same cases and any failure reproduces exactly. The suite runs in CI
//! both in debug (where `chunks_exact` loops stay scalar) and under
//! `--release` (where the autovectorizer lifts them to SIMD) — the
//! contract is identical output either way.

use std::sync::Arc;

use halo::core::{HaloConfig, HaloSystem, Task};
use halo::kernels::{
    hjorth::{hjorth, hjorth_lanes},
    Aes128, Bbf, BbfDesign, BlockXcor, ChannelBlock, Dwt, Fft, Gate, LinearSvm, StreamingXcor,
    Threshold, XcorConfig,
};
use halo::signal::{RecordingConfig, RegionProfile, SimRng};
use halo::telemetry::Tracer;

/// Samples with the Q15 extremes overrepresented: full-scale rails hit
/// the widening/overflow edge cases ordinary noise never reaches.
fn extreme_samples(rng: &mut SimRng, len: usize) -> Vec<i16> {
    (0..len)
        .map(|_| match rng.range_u64(0, 8) {
            0 => i16::MIN,
            1 => i16::MAX,
            2 => i16::MIN + 1,
            3 => -1,
            _ => rng.samples(1)[0],
        })
        .collect()
}

#[test]
fn channel_block_round_trips_interleaved() {
    let mut rng = SimRng::new(0x7001);
    for _ in 0..32 {
        let channels = rng.range_usize(1, 17);
        let frames = rng.range_usize(1, 200);
        let interleaved = extreme_samples(&mut rng, channels * frames);
        let mut block = ChannelBlock::new();
        block.fill_from_interleaved(&interleaved, channels);
        assert_eq!(block.channels(), channels);
        assert_eq!(block.frames(), frames);
        for c in 0..channels {
            let row: Vec<i16> = interleaved
                .iter()
                .skip(c)
                .step_by(channels)
                .copied()
                .collect();
            assert_eq!(block.channel(c), &row[..]);
        }
        let mut back = Vec::new();
        block.write_interleaved(&mut back);
        assert_eq!(back, interleaved);
    }
}

#[test]
fn fft_lanes_match_scalar_spectra() {
    let mut rng = SimRng::new(0x7002);
    for points in [8usize, 32, 256] {
        let fft = Fft::new(points).unwrap();
        // Lane counts straddling the autovectorizer's natural widths.
        for lanes in [1usize, 2, 3, 5, 8, 13] {
            let windows: Vec<Vec<i16>> = (0..lanes)
                .map(|_| extreme_samples(&mut rng, points))
                .collect();
            let refs: Vec<&[i16]> = windows.iter().map(|w| w.as_slice()).collect();
            let batched = fft.power_spectrum_lanes(&refs);
            for (l, w) in windows.iter().enumerate() {
                assert_eq!(
                    batched[l],
                    fft.power_spectrum(w),
                    "points={points} lanes={lanes} lane={l}"
                );
            }
        }
    }
}

#[test]
fn dwt_lanes_match_scalar_lifting() {
    let mut rng = SimRng::new(0x7003);
    for levels in 1..=5 {
        let dwt = Dwt::new(levels).unwrap();
        for lanes in [1usize, 2, 3, 7] {
            let n = rng.range_usize(1, 9) * dwt.block_multiple();
            let mut soa = vec![0i32; n * lanes];
            let mut scalar: Vec<Vec<i32>> = vec![Vec::with_capacity(n); lanes];
            for i in 0..n {
                for (l, chan) in scalar.iter_mut().enumerate() {
                    let v = extreme_samples(&mut rng, 1)[0] as i32;
                    soa[i * lanes + l] = v;
                    chan.push(v);
                }
            }
            dwt.forward_lanes(&mut soa, lanes);
            for (l, chan) in scalar.iter_mut().enumerate() {
                dwt.forward(chan);
                let got: Vec<i32> = (0..n).map(|i| soa[i * lanes + l]).collect();
                assert_eq!(&got, chan, "levels={levels} lanes={lanes} lane={l}");
            }
        }
    }
}

#[test]
fn xcor_block_pushes_match_frame_pushes() {
    let mut rng = SimRng::new(0x7004);
    for case in 0..24 {
        let channels = rng.range_usize(2, 7);
        let window = rng.range_usize(4, 65);
        let lag = rng.range_usize(0, (window - 2).min(8) + 1);
        let pairs: Vec<(u8, u8)> = (0..channels as u8 - 1).map(|c| (c, c + 1)).collect();
        let config = XcorConfig::new(channels, window, lag, pairs).unwrap();
        let frames = rng.range_usize(1, 6) * window + rng.range_usize(0, window);
        let stream = extreme_samples(&mut rng, frames * channels);

        // Streaming engine: SoA block push vs per-frame scalar.
        let mut scalar = StreamingXcor::new(config.clone());
        let mut expect: Vec<Vec<f64>> = Vec::new();
        for frame in stream.chunks_exact(channels) {
            if let Some(r) = scalar.push_frame(frame) {
                expect.push(r);
            }
        }
        let mut block = ChannelBlock::new();
        block.fill_from_interleaved(&stream, channels);
        let mut got: Vec<Vec<f64>> = Vec::new();
        StreamingXcor::new(config.clone()).push_block(&block, &mut got);
        assert_eq!(got.len(), expect.len(), "case {case}");
        for (g, e) in got.iter().zip(&expect) {
            let gb: Vec<u64> = g.iter().map(|v| v.to_bits()).collect();
            let eb: Vec<u64> = e.iter().map(|v| v.to_bits()).collect();
            assert_eq!(gb, eb, "case {case}: streaming correlations drifted");
        }

        // Naive engine: interleaved block push vs per-frame scalar.
        let mut scalar = BlockXcor::new(config.clone());
        let mut expect: Vec<Vec<f64>> = Vec::new();
        for frame in stream.chunks_exact(channels) {
            if let Some(r) = scalar.push_frame(frame) {
                expect.push(r);
            }
        }
        let mut got: Vec<Vec<f64>> = Vec::new();
        BlockXcor::new(config).push_interleaved(&stream, &mut got);
        assert_eq!(got.len(), expect.len(), "case {case}");
        for (g, e) in got.iter().zip(&expect) {
            let gb: Vec<u64> = g.iter().map(|v| v.to_bits()).collect();
            let eb: Vec<u64> = e.iter().map(|v| v.to_bits()).collect();
            assert_eq!(gb, eb, "case {case}: naive correlations drifted");
        }
    }
}

#[test]
fn hjorth_lanes_match_scalar_windows() {
    let mut rng = SimRng::new(0x7005);
    for _ in 0..24 {
        let lanes = rng.range_usize(1, 10);
        let len = rng.range_usize(3, 300);
        let windows: Vec<Vec<i16>> = (0..lanes).map(|_| extreme_samples(&mut rng, len)).collect();
        let refs: Vec<&[i16]> = windows.iter().map(|w| w.as_slice()).collect();
        let batched = hjorth_lanes(&refs);
        for (l, w) in windows.iter().enumerate() {
            let scalar = hjorth(w);
            assert_eq!(
                batched[l].to_features(),
                scalar.to_features(),
                "lane {l} of {lanes}, len {len}"
            );
        }
    }
}

#[test]
fn svm_lanes_match_scalar_decision() {
    let mut rng = SimRng::new(0x7006);
    for _ in 0..48 {
        // Feature counts straddling the 8-lane split, weights/features at
        // Q15-scale extremes (products stay exact in i64).
        let n = rng.range_usize(1, 40);
        let weights: Vec<i32> = extreme_samples(&mut rng, n)
            .iter()
            .map(|&v| v as i32)
            .collect();
        let features: Vec<i32> = extreme_samples(&mut rng, n)
            .iter()
            .map(|&v| v as i32 * 4096)
            .collect();
        let bias = rng.range_u64(0, 1 << 40) as i64 - (1 << 39);
        let svm = LinearSvm::new(weights, bias).unwrap();
        assert_eq!(svm.decision_lanes(&features), svm.decision(&features));
    }
}

#[test]
fn threshold_packed_words_match_scalar_bits() {
    let mut rng = SimRng::new(0x7007);
    for _ in 0..32 {
        let value = rng.range_u64(0, 1 << 32) as i64 - (1 << 31);
        let thr = if rng.range_u64(0, 2) == 0 {
            Threshold::above(value)
        } else {
            Threshold::below(value)
        };
        // Lengths around the 64-bit word boundary, inputs including the
        // exact threshold and i64 rails.
        let len = rng.range_usize(1, 200);
        let inputs: Vec<i64> = (0..len)
            .map(|_| match rng.range_u64(0, 8) {
                0 => i64::MIN,
                1 => i64::MAX,
                2 => value,
                3 => value - 1,
                4 => value + 1,
                _ => rng.range_u64(0, 1 << 33) as i64 - (1 << 32),
            })
            .collect();
        let mut packed = Vec::new();
        thr.check_block_packed(&inputs, &mut packed);
        assert_eq!(packed.len(), len.div_ceil(64));
        for (k, &x) in inputs.iter().enumerate() {
            let bit = packed[k / 64] >> (k % 64) & 1;
            assert_eq!(bit == 1, thr.check(x), "bit {k} for input {x}");
        }
        // Unused high bits of the tail word must be zero.
        if !len.is_multiple_of(64) {
            assert_eq!(packed[len / 64] >> (len % 64), 0);
        }
    }
}

#[test]
fn gate_packed_control_matches_scalar_stream() {
    let mut rng = SimRng::new(0x7008);
    for _ in 0..32 {
        let hold = rng.range_usize(0, 100);
        let mut scalar = Gate::new(hold);
        let mut packed_gate = Gate::new(hold);
        // Several consecutive blocks so hold state carries across calls;
        // control densities from all-closed to all-open exercise the
        // whole-word short-circuits.
        for _ in 0..4 {
            let len = rng.range_usize(1, 300);
            let data = extreme_samples(&mut rng, len);
            let density = rng.range_u64(0, 101);
            let control: Vec<bool> = (0..len).map(|_| rng.range_u64(0, 100) < density).collect();
            let mut words = vec![0u64; len.div_ceil(64)];
            for (k, &c) in control.iter().enumerate() {
                words[k / 64] |= (c as u64) << (k % 64);
            }
            let expect: Vec<i16> = data
                .iter()
                .zip(&control)
                .filter_map(|(&d, &c)| scalar.process(d, c))
                .collect();
            let mut got = Vec::new();
            packed_gate.process_packed(&data, &words, &mut got);
            assert_eq!(got, expect, "hold={hold} len={len} density={density}");
        }
    }
}

#[test]
fn aes_bitsliced_groups_match_scalar_blocks() {
    let mut rng = SimRng::new(0x7009);
    for _ in 0..24 {
        let mut key = [0u8; 16];
        key.copy_from_slice(&rng.bytes(16));
        let aes = Aes128::new(key);
        // Block counts around the 4-block bitsliced group width: the ECB
        // path slices 64-byte groups and falls back to scalar for the
        // remainder.
        let blocks = rng.range_usize(1, 24);
        let data = rng.bytes(blocks * 16);
        let fast = aes.encrypt_ecb(&data);
        let mut expect = Vec::with_capacity(data.len());
        for chunk in data.chunks_exact(16) {
            let mut block = [0u8; 16];
            block.copy_from_slice(chunk);
            aes.encrypt_block(&mut block);
            expect.extend_from_slice(&block);
        }
        assert_eq!(fast, expect, "{blocks} blocks");
    }
}

#[test]
fn bbf_energy_of_matches_per_sample_filtering() {
    let mut rng = SimRng::new(0x700a);
    let design = BbfDesign::new(50.0, 150.0, 1000).unwrap();
    for case in 0..16 {
        let mut scalar = Bbf::new(&design);
        let mut batched = Bbf::new(&design);
        // Split one stream into ragged segments: `energy_of` must carry
        // filter state across calls exactly like per-sample processing.
        for seg in 0..5 {
            let len = rng.range_usize(1, 400);
            let xs = extreme_samples(&mut rng, len);
            let mut expect = 0i64;
            for &x in &xs {
                let y = scalar.process(x);
                expect += y as i64 * y as i64;
            }
            assert_eq!(
                batched.energy_of(&xs),
                expect,
                "case {case} segment {seg} (len {len})"
            );
        }
    }
}

/// Every stock pipeline must produce byte-identical outputs with the
/// runtime's batched quiet-frame dispatch on (the default) and off (the
/// pure per-frame scalar path): radio stream, detector flags, stim
/// events, and every per-PE activity counter.
#[test]
fn pipelines_are_byte_identical_with_block_dispatch_on_and_off() {
    let channels = 8;
    let config = HaloConfig::small_test(channels);
    let rec = RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(80)
        .generate(9);
    for task in Task::all() {
        let run = |on: bool| {
            let mut sys = HaloSystem::new(task, config.clone()).unwrap();
            sys.set_block_dispatch(on);
            sys.process(&rec).unwrap()
        };
        let scalar = run(false);
        let batched = run(true);
        assert_eq!(batched.frames, scalar.frames, "{task:?}: frames");
        assert_eq!(
            batched.radio_stream, scalar.radio_stream,
            "{task:?}: radio stream"
        );
        assert_eq!(
            batched.detections, scalar.detections,
            "{task:?}: MCU detections"
        );
        assert_eq!(
            batched.stim_events.len(),
            scalar.stim_events.len(),
            "{task:?}: stim events"
        );
        assert_eq!(
            batched.pe_activity, scalar.pe_activity,
            "{task:?}: per-PE activity"
        );
        assert_eq!(batched.bus_bytes, scalar.bus_bytes, "{task:?}: bus bytes");
    }
}

/// Block dispatch must also leave causal traces untouched: with a 1-in-64
/// sampler attached, the batched runtime must stop at every sampled frame
/// and every linger boundary, yielding span trees identical to the scalar
/// path's.
#[test]
fn traced_pipelines_produce_identical_span_trees_either_way() {
    let channels = 8;
    let config = HaloConfig::small_test(channels);
    let rec = RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(80)
        .generate(11);
    for task in [Task::MovementIntent, Task::SeizurePrediction] {
        let run = |on: bool| {
            let mut sys = HaloSystem::new(task, config.clone()).unwrap();
            let tracer = Arc::new(Tracer::new(7, 64));
            sys.attach_tracing(tracer.clone());
            sys.set_block_dispatch(on);
            let metrics = sys.process(&rec).unwrap();
            (metrics, tracer.trees(), tracer.stats())
        };
        let (scalar_m, scalar_trees, scalar_stats) = run(false);
        let (batched_m, batched_trees, batched_stats) = run(true);
        assert_eq!(batched_m.radio_stream, scalar_m.radio_stream, "{task:?}");
        assert_eq!(batched_m.pe_activity, scalar_m.pe_activity, "{task:?}");
        assert_eq!(batched_stats, scalar_stats, "{task:?}: trace stats");
        assert_eq!(batched_trees, scalar_trees, "{task:?}: span trees");
    }
}
