//! Property tests for the RISC-V substrate: the assembler's encodings must
//! decode back to themselves, arithmetic must match Rust reference
//! semantics, and the compressed ISA must agree with its 32-bit
//! equivalents.

use halo::riscv::asm::Asm;
use halo::riscv::decode::{decode16, decode32, AluOp, Instr};
use halo::riscv::{Cpu, Memory, SystemBus};
use proptest::prelude::*;

/// Runs a two-operand ALU program and returns rd.
fn run_alu(build: impl Fn(&mut Asm, u8, u8, u8), a: u32, b: u32) -> u32 {
    let mut asm = Asm::new();
    build(&mut asm, 3, 1, 2);
    asm.ecall();
    let program = asm.assemble(0).unwrap();
    let mut bus = SystemBus::new(Memory::new(0x100));
    bus.load_program(0, &program);
    let mut cpu = Cpu::new();
    cpu.set_reg(1, a);
    cpu.set_reg(2, b);
    cpu.run(&mut bus, 100).unwrap();
    cpu.reg(3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Register-register arithmetic matches Rust's wrapping semantics.
    #[test]
    fn alu_matches_reference(a in any::<u32>(), b in any::<u32>()) {
        prop_assert_eq!(run_alu(|m, d, s1, s2| m.add(d, s1, s2), a, b), a.wrapping_add(b));
        prop_assert_eq!(run_alu(|m, d, s1, s2| m.sub(d, s1, s2), a, b), a.wrapping_sub(b));
        prop_assert_eq!(run_alu(|m, d, s1, s2| m.xor(d, s1, s2), a, b), a ^ b);
        prop_assert_eq!(run_alu(|m, d, s1, s2| m.and(d, s1, s2), a, b), a & b);
        prop_assert_eq!(run_alu(|m, d, s1, s2| m.or(d, s1, s2), a, b), a | b);
        prop_assert_eq!(run_alu(|m, d, s1, s2| m.sll(d, s1, s2), a, b), a.wrapping_shl(b & 31));
        prop_assert_eq!(run_alu(|m, d, s1, s2| m.srl(d, s1, s2), a, b), a.wrapping_shr(b & 31));
        prop_assert_eq!(
            run_alu(|m, d, s1, s2| m.sra(d, s1, s2), a, b),
            ((a as i32).wrapping_shr(b & 31)) as u32
        );
        prop_assert_eq!(run_alu(|m, d, s1, s2| m.mul(d, s1, s2), a, b), a.wrapping_mul(b));
        prop_assert_eq!(
            run_alu(|m, d, s1, s2| m.slt(d, s1, s2), a, b),
            ((a as i32) < (b as i32)) as u32
        );
        prop_assert_eq!(run_alu(|m, d, s1, s2| m.sltu(d, s1, s2), a, b), (a < b) as u32);
    }

    /// Division/remainder follow the RISC-V special cases exactly.
    #[test]
    fn div_rem_match_spec(a in any::<u32>(), b in any::<u32>()) {
        let sa = a as i32;
        let sb = b as i32;
        let want_div = if sb == 0 { u32::MAX }
            else if sa == i32::MIN && sb == -1 { a }
            else { sa.wrapping_div(sb) as u32 };
        let want_rem = if sb == 0 { a }
            else if sa == i32::MIN && sb == -1 { 0 }
            else { sa.wrapping_rem(sb) as u32 };
        prop_assert_eq!(run_alu(|m, d, s1, s2| m.div(d, s1, s2), a, b), want_div);
        prop_assert_eq!(run_alu(|m, d, s1, s2| m.rem(d, s1, s2), a, b), want_rem);
        let want_divu = if b == 0 { u32::MAX } else { a / b };
        let want_remu = if b == 0 { a } else { a % b };
        prop_assert_eq!(run_alu(|m, d, s1, s2| m.divu(d, s1, s2), a, b), want_divu);
        prop_assert_eq!(run_alu(|m, d, s1, s2| m.remu(d, s1, s2), a, b), want_remu);
    }

    /// `li` materializes any 32-bit constant.
    #[test]
    fn li_materializes_all_constants(v in any::<i32>()) {
        let mut asm = Asm::new();
        asm.li(5, v);
        asm.ecall();
        let program = asm.assemble(0).unwrap();
        let mut bus = SystemBus::new(Memory::new(0x100));
        bus.load_program(0, &program);
        let mut cpu = Cpu::new();
        cpu.run(&mut bus, 10).unwrap();
        prop_assert_eq!(cpu.reg(5) as i32, v);
    }

    /// Assembled OP-IMM/OP encodings decode back to what was asked for.
    #[test]
    fn assembler_decoder_round_trip(rd in 0u8..32, rs1 in 0u8..32, rs2 in 0u8..32,
                                    imm in -2048i32..2048) {
        let mut asm = Asm::new();
        asm.addi(rd, rs1, imm);
        asm.add(rd, rs1, rs2);
        asm.lw(rd, rs1, imm);
        asm.sw(rs1, rs2, imm);
        let w = asm.assemble(0).unwrap();
        prop_assert_eq!(
            decode32(w[0]).unwrap(),
            Instr::OpImm { op: AluOp::Add, rd, rs1, imm }
        );
        prop_assert_eq!(
            decode32(w[1]).unwrap(),
            Instr::Op { op: AluOp::Add, rd, rs1, rs2 }
        );
        let load_ok = matches!(
            decode32(w[2]).unwrap(),
            Instr::Load { rd: d, rs1: s, offset, .. } if d == rd && s == rs1 && offset == imm
        );
        prop_assert!(load_ok);
        let store_ok = matches!(
            decode32(w[3]).unwrap(),
            Instr::Store { rs1: s1, rs2: s2, offset, .. } if s1 == rs1 && s2 == rs2 && offset == imm
        );
        prop_assert!(store_ok);
    }

    /// Memory round trips through every access width.
    #[test]
    fn memory_width_round_trips(value in any::<u32>(), addr in 0u32..0x200) {
        let addr = addr & !3;
        let mut asm = Asm::new();
        asm.li(1, value as i32);
        asm.li(2, addr as i32);
        asm.sw(2, 1, 0);
        asm.lw(3, 2, 0);
        asm.lhu(4, 2, 0);
        asm.lbu(5, 2, 0);
        asm.lh(6, 2, 2);
        asm.lb(7, 2, 3);
        asm.ecall();
        let program = asm.assemble(0).unwrap();
        let mut bus = SystemBus::new(Memory::new(0x1000));
        // Keep data away from the code.
        bus.load_program(0x800, &program);
        let mut cpu = Cpu::new();
        cpu.pc = 0x800;
        cpu.run(&mut bus, 100).unwrap();
        prop_assert_eq!(cpu.reg(3), value);
        prop_assert_eq!(cpu.reg(4), value & 0xffff);
        prop_assert_eq!(cpu.reg(5), value & 0xff);
        prop_assert_eq!(cpu.reg(6), ((value >> 16) as u16) as i16 as i32 as u32);
        prop_assert_eq!(cpu.reg(7), ((value >> 24) as u8) as i8 as i32 as u32);
    }

    /// C.ADDI / C.LI / C.MV / C.ADD expand to semantics identical to their
    /// 32-bit counterparts.
    #[test]
    fn compressed_equivalence(v in -32i32..32, x in any::<u32>(), y in any::<u32>()) {
        // C.LI x5, v decodes to addi x5, x0, v for the full CI range.
        let h = (0b010u16 << 13)
            | (((v as u16) & 0x20) << 7)
            | (5u16 << 7)
            | (((v as u16) & 0x1f) << 2)
            | 0b01;
        prop_assert_eq!(
            decode16(h).unwrap(),
            Instr::OpImm { op: AluOp::Add, rd: 5, rs1: 0, imm: v }
        );
        // C.MV x5, x6 then C.ADD x5, x7 executed against the ALU reference.
        let c_mv: u16 = (0b100u16 << 13) | (5 << 7) | (6 << 2) | 0b10;
        let c_add: u16 = (0b100u16 << 13) | (1 << 12) | (5 << 7) | (7 << 2) | 0b10;
        let mut bus = SystemBus::new(Memory::new(0x100));
        bus.store16(0, c_mv);
        bus.store16(2, c_add);
        bus.store32(4, 0x0000_0073); // ecall
        let mut cpu = Cpu::new();
        cpu.set_reg(6, x);
        cpu.set_reg(7, y);
        cpu.run(&mut bus, 10).unwrap();
        prop_assert_eq!(cpu.reg(5), x.wrapping_add(y));
    }
}
