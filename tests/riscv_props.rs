//! Randomized-input tests for the RISC-V substrate: the assembler's
//! encodings must decode back to themselves, arithmetic must match Rust
//! reference semantics, and the compressed ISA must agree with its 32-bit
//! equivalents.
//!
//! Inputs come from the deterministic [`SimRng`], so every run covers the
//! same cases and failures reproduce exactly.

use halo::riscv::asm::Asm;
use halo::riscv::decode::{decode16, decode32, AluOp, Instr};
use halo::riscv::{Cpu, Memory, SystemBus};
use halo::signal::SimRng;

/// Runs a two-operand ALU program and returns rd.
fn run_alu(build: impl Fn(&mut Asm, u8, u8, u8), a: u32, b: u32) -> u32 {
    let mut asm = Asm::new();
    build(&mut asm, 3, 1, 2);
    asm.ecall();
    let program = asm.assemble(0).unwrap();
    let mut bus = SystemBus::new(Memory::new(0x100));
    bus.load_program(0, &program);
    let mut cpu = Cpu::new();
    cpu.set_reg(1, a);
    cpu.set_reg(2, b);
    cpu.run(&mut bus, 100).unwrap();
    cpu.reg(3)
}

/// Arbitrary u32 pairs, seeded with the corner cases that break naive
/// ALU implementations.
fn operand_pairs(seed: u64, n: usize) -> Vec<(u32, u32)> {
    let mut rng = SimRng::new(seed);
    let corners = [0u32, 1, 0x7fff_ffff, 0x8000_0000, u32::MAX];
    let mut pairs = Vec::with_capacity(n + corners.len() * corners.len());
    for &a in &corners {
        for &b in &corners {
            pairs.push((a, b));
        }
    }
    pairs.extend((0..n).map(|_| (rng.next_u32(), rng.next_u32())));
    pairs
}

/// Register-register arithmetic matches Rust's wrapping semantics.
#[test]
fn alu_matches_reference() {
    for (a, b) in operand_pairs(0x3341, 128) {
        assert_eq!(
            run_alu(|m, d, s1, s2| m.add(d, s1, s2), a, b),
            a.wrapping_add(b)
        );
        assert_eq!(
            run_alu(|m, d, s1, s2| m.sub(d, s1, s2), a, b),
            a.wrapping_sub(b)
        );
        assert_eq!(run_alu(|m, d, s1, s2| m.xor(d, s1, s2), a, b), a ^ b);
        assert_eq!(run_alu(|m, d, s1, s2| m.and(d, s1, s2), a, b), a & b);
        assert_eq!(run_alu(|m, d, s1, s2| m.or(d, s1, s2), a, b), a | b);
        assert_eq!(
            run_alu(|m, d, s1, s2| m.sll(d, s1, s2), a, b),
            a.wrapping_shl(b & 31)
        );
        assert_eq!(
            run_alu(|m, d, s1, s2| m.srl(d, s1, s2), a, b),
            a.wrapping_shr(b & 31)
        );
        assert_eq!(
            run_alu(|m, d, s1, s2| m.sra(d, s1, s2), a, b),
            ((a as i32).wrapping_shr(b & 31)) as u32
        );
        assert_eq!(
            run_alu(|m, d, s1, s2| m.mul(d, s1, s2), a, b),
            a.wrapping_mul(b)
        );
        assert_eq!(
            run_alu(|m, d, s1, s2| m.slt(d, s1, s2), a, b),
            ((a as i32) < (b as i32)) as u32
        );
        assert_eq!(
            run_alu(|m, d, s1, s2| m.sltu(d, s1, s2), a, b),
            (a < b) as u32
        );
    }
}

/// Division/remainder follow the RISC-V special cases exactly.
#[test]
fn div_rem_match_spec() {
    for (a, b) in operand_pairs(0x3342, 128) {
        let sa = a as i32;
        let sb = b as i32;
        let want_div = if sb == 0 {
            u32::MAX
        } else if sa == i32::MIN && sb == -1 {
            a
        } else {
            sa.wrapping_div(sb) as u32
        };
        let want_rem = if sb == 0 {
            a
        } else if sa == i32::MIN && sb == -1 {
            0
        } else {
            sa.wrapping_rem(sb) as u32
        };
        assert_eq!(run_alu(|m, d, s1, s2| m.div(d, s1, s2), a, b), want_div);
        assert_eq!(run_alu(|m, d, s1, s2| m.rem(d, s1, s2), a, b), want_rem);
        let want_divu = a.checked_div(b).unwrap_or(u32::MAX);
        let want_remu = a.checked_rem(b).unwrap_or(a);
        assert_eq!(run_alu(|m, d, s1, s2| m.divu(d, s1, s2), a, b), want_divu);
        assert_eq!(run_alu(|m, d, s1, s2| m.remu(d, s1, s2), a, b), want_remu);
    }
}

/// `li` materializes any 32-bit constant.
#[test]
fn li_materializes_all_constants() {
    let mut rng = SimRng::new(0x3343);
    let corners = [
        0i32,
        1,
        -1,
        0x7ff,
        0x800,
        -0x800,
        -0x801,
        i32::MIN,
        i32::MAX,
    ];
    let values: Vec<i32> = corners
        .into_iter()
        .chain((0..128).map(|_| rng.next_u32() as i32))
        .collect();
    for v in values {
        let mut asm = Asm::new();
        asm.li(5, v);
        asm.ecall();
        let program = asm.assemble(0).unwrap();
        let mut bus = SystemBus::new(Memory::new(0x100));
        bus.load_program(0, &program);
        let mut cpu = Cpu::new();
        cpu.run(&mut bus, 10).unwrap();
        assert_eq!(cpu.reg(5) as i32, v, "li {v:#x}");
    }
}

/// Assembled OP-IMM/OP encodings decode back to what was asked for.
#[test]
fn assembler_decoder_round_trip() {
    let mut rng = SimRng::new(0x3344);
    for case in 0..128 {
        let rd = rng.range_u64(0, 32) as u8;
        let rs1 = rng.range_u64(0, 32) as u8;
        let rs2 = rng.range_u64(0, 32) as u8;
        let imm = rng.range_u64(0, 4096) as i32 - 2048;
        let mut asm = Asm::new();
        asm.addi(rd, rs1, imm);
        asm.add(rd, rs1, rs2);
        asm.lw(rd, rs1, imm);
        asm.sw(rs1, rs2, imm);
        let w = asm.assemble(0).unwrap();
        assert_eq!(
            decode32(w[0]).unwrap(),
            Instr::OpImm {
                op: AluOp::Add,
                rd,
                rs1,
                imm
            },
            "case {case}"
        );
        assert_eq!(
            decode32(w[1]).unwrap(),
            Instr::Op {
                op: AluOp::Add,
                rd,
                rs1,
                rs2
            },
            "case {case}"
        );
        let load_ok = matches!(
            decode32(w[2]).unwrap(),
            Instr::Load { rd: d, rs1: s, offset, .. } if d == rd && s == rs1 && offset == imm
        );
        assert!(load_ok, "case {case}: lw rd={rd} rs1={rs1} imm={imm}");
        let store_ok = matches!(
            decode32(w[3]).unwrap(),
            Instr::Store { rs1: s1, rs2: s2, offset, .. } if s1 == rs1 && s2 == rs2 && offset == imm
        );
        assert!(store_ok, "case {case}: sw rs1={rs1} rs2={rs2} imm={imm}");
    }
}

/// Memory round trips through every access width.
#[test]
fn memory_width_round_trips() {
    let mut rng = SimRng::new(0x3345);
    for case in 0..128 {
        let value = rng.next_u32();
        let addr = (rng.range_u64(0, 0x200) as u32) & !3;
        let mut asm = Asm::new();
        asm.li(1, value as i32);
        asm.li(2, addr as i32);
        asm.sw(2, 1, 0);
        asm.lw(3, 2, 0);
        asm.lhu(4, 2, 0);
        asm.lbu(5, 2, 0);
        asm.lh(6, 2, 2);
        asm.lb(7, 2, 3);
        asm.ecall();
        let program = asm.assemble(0).unwrap();
        let mut bus = SystemBus::new(Memory::new(0x1000));
        // Keep data away from the code.
        bus.load_program(0x800, &program);
        let mut cpu = Cpu::new();
        cpu.pc = 0x800;
        cpu.run(&mut bus, 100).unwrap();
        assert_eq!(cpu.reg(3), value, "case {case}");
        assert_eq!(cpu.reg(4), value & 0xffff, "case {case}");
        assert_eq!(cpu.reg(5), value & 0xff, "case {case}");
        assert_eq!(
            cpu.reg(6),
            ((value >> 16) as u16) as i16 as i32 as u32,
            "case {case}"
        );
        assert_eq!(
            cpu.reg(7),
            ((value >> 24) as u8) as i8 as i32 as u32,
            "case {case}"
        );
    }
}

/// C.ADDI / C.LI / C.MV / C.ADD expand to semantics identical to their
/// 32-bit counterparts.
#[test]
fn compressed_equivalence() {
    let mut rng = SimRng::new(0x3346);
    for v in -32i32..32 {
        // C.LI x5, v decodes to addi x5, x0, v for the full CI range.
        let h = (0b010u16 << 13)
            | (((v as u16) & 0x20) << 7)
            | (5u16 << 7)
            | (((v as u16) & 0x1f) << 2)
            | 0b01;
        assert_eq!(
            decode16(h).unwrap(),
            Instr::OpImm {
                op: AluOp::Add,
                rd: 5,
                rs1: 0,
                imm: v
            }
        );
    }
    for case in 0..64 {
        let x = rng.next_u32();
        let y = rng.next_u32();
        // C.MV x5, x6 then C.ADD x5, x7 executed against the ALU reference.
        let c_mv: u16 = (0b100u16 << 13) | (5 << 7) | (6 << 2) | 0b10;
        let c_add: u16 = (0b100u16 << 13) | (1 << 12) | (5 << 7) | (7 << 2) | 0b10;
        let mut bus = SystemBus::new(Memory::new(0x100));
        bus.store16(0, c_mv);
        bus.store16(2, c_add);
        bus.store32(4, 0x0000_0073); // ecall
        let mut cpu = Cpu::new();
        cpu.set_reg(6, x);
        cpu.set_reg(7, y);
        cpu.run(&mut bus, 10).unwrap();
        assert_eq!(cpu.reg(5), x.wrapping_add(y), "case {case}");
    }
}
