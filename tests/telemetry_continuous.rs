//! End-to-end tests for the continuous-telemetry layer: the embedded
//! time-series store scraping a real pipeline run, multi-resolution
//! downsampling, byte-stable snapshots, burn-rate alerting under a
//! shrinking power budget, and anomaly detections surfacing in the
//! continuous status.

use std::sync::Arc;

use halo::core::{HaloConfig, HaloSystem, Task};
use halo::signal::{Recording, RecordingConfig, RegionProfile};
use halo::telemetry::{
    expose, json, AlertKind, AlertPolicy, ContinuousConfig, ContinuousTelemetry, HealthConfig,
    HealthMonitor, Recorder, SeriesKind, SloConfig, Tsdb, TsdbConfig,
};

const CHANNELS: usize = 8;

fn session(frames: usize, seed: u64) -> Recording {
    RecordingConfig::new(RegionProfile::arm())
        .channels(CHANNELS)
        .samples(frames)
        .generate(seed)
}

/// A compression system with the continuous layer attached. `bucket_frames`
/// shrinks the downsampling tiers so short test runs still seal buckets.
fn build(
    budget_mw: f64,
    slo: SloConfig,
    bucket_frames: [u64; 2],
) -> (HaloSystem, Arc<ContinuousTelemetry>) {
    let config = HaloConfig::small_test(CHANNELS).channels(CHANNELS);
    let recorder = Arc::new(Recorder::new(65_536).with_sample_rate_hz(30_000));
    let monitor = Arc::new(HealthMonitor::new(
        recorder,
        HealthConfig {
            budget_mw,
            policy: AlertPolicy::Record,
            ..HealthConfig::default()
        },
    ));
    let continuous = Arc::new(ContinuousTelemetry::new(
        monitor,
        ContinuousConfig {
            tsdb: TsdbConfig {
                bucket_frames,
                ..TsdbConfig::default()
            },
            slo,
            ..ContinuousConfig::default()
        },
    ));
    let mut system = HaloSystem::new(Task::CompressLz4, config).expect("system");
    system.attach_continuous(continuous.clone());
    (system, continuous)
}

#[test]
fn pipeline_run_populates_every_power_series() {
    let config = HaloConfig::small_test(CHANNELS).channels(CHANNELS);
    let window = config.feature_window_frames() as u64;
    let (mut system, continuous) = build(
        15.0,
        SloConfig::default(),
        TsdbConfig::default().bucket_frames,
    );
    system.process(&session(120 * window as usize, 3)).unwrap();

    let status = continuous.status();
    let points = |kind: SeriesKind| {
        status
            .series
            .iter()
            .find(|(k, ..)| *k == kind)
            .map(|(_, total, ..)| *total)
            .unwrap_or(0)
    };
    // One power window per feature window, plus the flushed tail.
    assert_eq!(points(SeriesKind::PowerMw), 120);
    assert_eq!(points(SeriesKind::PowerUtilization), 120);
    assert!(points(SeriesKind::RadioBps) > 0, "radio windows scraped");
    assert!(points(SeriesKind::FrameLatencyNs) > 0, "latency scraped");
    // Utilization is draw over budget, so it must sit strictly inside
    // (0, 1) under the generous default envelope.
    let (.., latest) = status
        .series
        .iter()
        .find(|(k, ..)| *k == SeriesKind::PowerUtilization)
        .unwrap();
    let utilization = latest.as_ref().map(|p| p.value).unwrap();
    assert!(utilization > 0.0 && utilization < 1.0, "{utilization}");
}

#[test]
fn snapshots_are_byte_stable_across_identical_runs_and_repeated_flushes() {
    let run = || {
        let (mut system, continuous) = build(
            15.0,
            SloConfig::default(),
            TsdbConfig::default().bucket_frames,
        );
        system.process(&session(4096, 7)).unwrap();
        continuous
    };
    let a = run();
    let b = run();
    let snap_a = a.snapshot_json();
    assert_eq!(snap_a, b.snapshot_json(), "identical histories must match");
    // flush() is idempotent: snapshotting again changes nothing.
    assert_eq!(snap_a, a.snapshot_json(), "re-snapshot must be stable");
    json::parse(&snap_a).expect("snapshot must be valid JSON");
}

#[test]
fn downsampling_tiers_seal_buckets_that_bound_the_raw_points() {
    let config = HaloConfig::small_test(CHANNELS).channels(CHANNELS);
    let window = config.feature_window_frames() as u64;
    // Tier 0 buckets span 8 feature windows; 96 windows => 12 sealed.
    let (mut system, continuous) = build(15.0, SloConfig::default(), [8 * window, 48 * window]);
    system.process(&session(96 * window as usize, 11)).unwrap();

    let snapshot = json::parse(&continuous.snapshot_json()).unwrap();
    let series = snapshot.get("series").and_then(|s| s.as_array()).unwrap();
    let power = series
        .iter()
        .find(|s| s.get("name").and_then(|n| n.as_str()) == Some("power_mw"))
        .unwrap();
    let raw: Vec<f64> = power
        .get("raw")
        .and_then(|r| r.as_array())
        .unwrap()
        .iter()
        .filter_map(|p| p.get("v").and_then(|v| v.as_f64()))
        .collect();
    let tiers = power.get("tiers").and_then(|t| t.as_array()).unwrap();
    let buckets = tiers[0].get("buckets").and_then(|b| b.as_array()).unwrap();
    assert!(buckets.len() >= 11, "sealed {} buckets", buckets.len());

    let raw_min = raw.iter().cloned().fold(f64::MAX, f64::min);
    let raw_max = raw.iter().cloned().fold(f64::MIN, f64::max);
    let mut covered = 0u64;
    for bucket in buckets {
        let min = bucket.get("min").and_then(|v| v.as_f64()).unwrap();
        let max = bucket.get("max").and_then(|v| v.as_f64()).unwrap();
        let count = bucket.get("count").and_then(|v| v.as_u64()).unwrap();
        assert!(min >= raw_min && max <= raw_max, "{min}..{max}");
        assert!(min <= max);
        covered += count;
    }
    // Every bucketed point came from the raw stream (raw ring retains
    // all 96 windows here, so the aggregate can't invent points).
    assert!(covered <= raw.len() as u64);
    assert!(covered >= 88, "buckets aggregate the bulk of the stream");
}

#[test]
fn budget_squeeze_fires_burn_rate_alert_through_the_monitor() {
    let config = HaloConfig::small_test(CHANNELS).channels(CHANNELS);
    let window = config.feature_window_frames() as u64;
    let frames = 120 * window;
    let (mut system, continuous) = build(
        15.0,
        SloConfig::scaled_to(frames),
        TsdbConfig::default().bucket_frames,
    );
    let monitor = continuous.monitor().clone();
    let recording = session(frames as usize, 13);
    let samples = recording.samples();

    // First half healthy, second half browned out to just above the
    // draw: utilization crosses the SLO margin without a hard trip.
    let half = (frames / 2) as usize * CHANNELS;
    system.push_block(&samples[..half]).unwrap();
    let draw = continuous
        .status()
        .series
        .iter()
        .find(|(k, ..)| *k == SeriesKind::PowerMw)
        .and_then(|(.., latest)| latest.as_ref().map(|p| p.value))
        .expect("draw measured");
    monitor.set_budget_mw(draw * 1.05);
    system.push_block(&samples[half..]).unwrap();
    system.finalize().unwrap();

    let status = monitor.status();
    let burn_alerts: Vec<_> = status
        .alerts
        .iter()
        .filter(|a| matches!(a.kind(), AlertKind::SloBurnRate { .. }))
        .collect();
    assert!(!burn_alerts.is_empty(), "squeeze must fire a burn alert");
    let squeeze_frame = frames / 2;
    assert!(
        burn_alerts.iter().all(|a| a.first_frame > squeeze_frame),
        "burn alerts must postdate the squeeze"
    );
    // No hard envelope violation: the budget stayed above the draw.
    assert!(
        !status
            .alerts
            .iter()
            .any(|a| matches!(a.kind(), AlertKind::PowerBudget { .. })),
        "soft alert must not come with a hard trip"
    );
    assert!(continuous.status().slo.total_fired() > 0);
}

#[test]
fn budget_step_registers_as_a_power_utilization_anomaly() {
    let config = HaloConfig::small_test(CHANNELS).channels(CHANNELS);
    let window = config.feature_window_frames() as u64;
    let frames = 120 * window;
    let (mut system, continuous) = build(
        15.0,
        SloConfig::default(),
        TsdbConfig::default().bucket_frames,
    );
    let monitor = continuous.monitor().clone();
    let recording = session(frames as usize, 17);
    let samples = recording.samples();
    let half = (frames / 2) as usize * CHANNELS;
    system.push_block(&samples[..half]).unwrap();
    // A 4x budget cut quadruples utilization in one window — a spike the
    // EWMA z-score detector must flag once warmed up.
    monitor.set_budget_mw(15.0 / 4.0);
    system.push_block(&samples[half..]).unwrap();
    system.finalize().unwrap();

    let status = continuous.status();
    assert!(status.anomalies_total > 0, "step change must be flagged");
    assert!(
        status
            .detections
            .iter()
            .any(|d| d.series == SeriesKind::PowerUtilization),
        "the utilization series carries the spike"
    );
}

#[test]
fn continuous_families_surface_in_the_exposition() {
    let (mut system, continuous) = build(
        15.0,
        SloConfig::default(),
        TsdbConfig::default().bucket_frames,
    );
    system.process(&session(4096, 19)).unwrap();
    let exposition = expose::render_continuous(&continuous.status());
    for family in [
        "halo_tsdb_points_total",
        "halo_tsdb_last_value",
        "halo_slo_burn_rate",
        "halo_slo_firing",
        "halo_anomaly_detections_total",
    ] {
        assert!(exposition.contains(family), "missing {family}");
    }
    assert!(exposition.contains("series=\"power_mw\""));
}

#[test]
fn samples_exactly_on_a_tier_edge_land_in_exactly_one_bucket() {
    // Off-by-one audit of the downsampling boundary: a sample whose
    // frame is an exact multiple of a tier's bucket width must open the
    // new bucket, not fold into (or duplicate across) the one it seals.
    // Values equal frames, so min/max expose each bucket's membership.
    let config = TsdbConfig {
        raw_capacity: 64,
        bucket_frames: [10, 60],
        bucket_capacity: 16,
    };
    let mut tsdb = Tsdb::new(&config);
    let frames: Vec<u64> = (0..=60).step_by(5).collect();
    for &frame in &frames {
        tsdb.record(SeriesKind::PowerMw, frame, frame as f64);
    }
    let series = tsdb.series(SeriesKind::PowerMw);

    for (tier, width) in [(0usize, 10u64), (1, 60)] {
        let buckets = series.buckets(tier);
        // Every sample is in some bucket, and only one: counts tile.
        let counted: u64 = buckets.iter().map(|b| b.count).sum();
        assert_eq!(
            counted,
            frames.len() as u64,
            "tier {tier} lost/duped a sample"
        );
        // Starts are aligned, unique, and strictly increasing — a
        // boundary sample that leaked backwards would duplicate a start.
        let starts: Vec<u64> = buckets.iter().map(|b| b.start_frame).collect();
        assert!(starts.iter().all(|s| s % width == 0));
        assert!(
            starts.windows(2).all(|w| w[0] < w[1]),
            "tier {tier}: {starts:?}"
        );
        // Membership respects the half-open range [start, start+width):
        // the edge sample belongs to the bucket it *starts*.
        for b in &buckets {
            assert!(
                b.min >= b.start_frame as f64 && b.max < (b.start_frame + width) as f64,
                "tier {tier} bucket {} holds frames outside [{}, {})",
                b.start_frame,
                b.start_frame,
                b.start_frame + width
            );
        }
    }

    // Tier 0 in detail: each sealed decade holds exactly its two samples
    // (s and s+5), so an edge leak would show up in the sums.
    let tier0 = series.buckets(0);
    assert_eq!(
        tier0.iter().map(|b| b.start_frame).collect::<Vec<_>>(),
        vec![0, 10, 20, 30, 40, 50, 60]
    );
    for b in &tier0[..6] {
        assert_eq!(b.count, 2, "bucket {}", b.start_frame);
        assert_eq!(
            b.sum,
            (2 * b.start_frame + 5) as f64,
            "bucket {}",
            b.start_frame
        );
    }
    // Frame 60 sits alone in the still-open bucket it just started.
    assert_eq!(tier0[6].count, 1);
    assert_eq!(tier0[6].sum, 60.0);

    // Tier 1: frame 60 must have sealed [0, 60) with all twelve earlier
    // samples and none of its own.
    let tier1 = series.buckets(1);
    assert_eq!(
        tier1
            .iter()
            .map(|b| (b.start_frame, b.count))
            .collect::<Vec<_>>(),
        vec![(0, 12), (60, 1)]
    );
    assert_eq!(tier1[0].max, 55.0, "the 60-edge sample leaked into [0, 60)");
}

#[test]
fn tier_edge_is_half_open_under_dense_recording() {
    // Densely record every frame across several boundaries and assert
    // the sealed bucket immediately left of each edge excludes the edge
    // frame while the next includes it — for both tiers at once, where
    // the frame is simultaneously a 10- and 60-edge.
    let config = TsdbConfig {
        raw_capacity: 512,
        bucket_frames: [10, 60],
        bucket_capacity: 32,
    };
    let mut tsdb = Tsdb::new(&config);
    for frame in 0..=180u64 {
        tsdb.record(SeriesKind::FifoDepth, frame, frame as f64);
    }
    let series = tsdb.series(SeriesKind::FifoDepth);
    for (tier, width) in [(0usize, 10u64), (1, 60)] {
        for b in series.buckets(tier) {
            let sealed_width = b.count.min(width);
            assert_eq!(b.min, b.start_frame as f64, "tier {tier}");
            assert_eq!(
                b.max,
                (b.start_frame + sealed_width - 1) as f64,
                "tier {tier} bucket {} absorbed its right edge",
                b.start_frame
            );
        }
    }
    // 181 samples: 18 sealed decades + open [180, 190), and 3 sealed
    // minutes + open [180, 240).
    assert_eq!(series.buckets(0).iter().map(|b| b.count).sum::<u64>(), 181);
    assert_eq!(series.buckets(1).iter().map(|b| b.count).sum::<u64>(), 181);
    assert_eq!(series.buckets(1).len(), 4);
    assert_eq!(series.buckets(1)[3].count, 1);
}
