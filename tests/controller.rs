//! Micro-controller integration: runtime reconfiguration between tasks
//! and firmware-driven device bring-up (§IV-E).

use halo::core::controller::{Controller, StimCommand};
use halo::core::pipeline::Pipeline;
use halo::core::{HaloConfig, HaloSystem, Task};
use halo::noc::Fabric;
use halo::riscv::asm::Asm;
use halo::riscv::{Cpu, HaltReason, Memory, SystemBus};
use halo::signal::{RecordingConfig, RegionProfile};

/// The same device object (one controller) reconfigures across all eight
/// tasks — the flexibility claim of Table I ("HALO can be configured to
/// treat any of the diseases targeted by existing BCIs").
#[test]
fn one_controller_reconfigures_across_all_tasks() {
    let config = HaloConfig::small_test(4);
    let mut mcu = Controller::new();
    let mut fabric = Fabric::new();
    let mut cycles_before = 0;
    for task in Task::all() {
        let pipeline = Pipeline::build(task, &config).unwrap();
        mcu.program_switches(&mut fabric, &pipeline.routes).unwrap();
        assert_eq!(fabric.switch_count(), pipeline.routes.len(), "{task}");
        assert!(mcu.cycles() >= cycles_before, "{task}");
        cycles_before = mcu.cycles();
    }
}

/// Each reconfiguration costs only microseconds of controller time at
/// 25 MHz — pipeline switching is interactive for the clinician.
#[test]
fn reconfiguration_is_cheap() {
    let config = HaloConfig::small_test(4);
    let pipeline = Pipeline::build(Task::SeizurePrediction, &config).unwrap();
    let mut mcu = Controller::new();
    let mut fabric = Fabric::new();
    mcu.program_switches(&mut fabric, &pipeline.routes).unwrap();
    let us = mcu.cycles() as f64 / 25.0; // cycles at 25 MHz -> µs
    assert!(us < 100.0, "switch programming took {us} µs");
}

/// Stimulation commands cover exactly the requested channels at the
/// requested amplitude, straight from firmware MMIO writes.
#[test]
fn stimulation_commands_from_firmware() {
    let mut mcu = Controller::new();
    for channels in [1usize, 4, 16] {
        let commands = mcu.stimulate(channels, 321).unwrap();
        assert_eq!(commands.len(), channels);
        let chans: Vec<u8> = commands.iter().map(|c| c.channel).collect();
        assert_eq!(chans, (0..channels as u8).collect::<Vec<_>>());
        assert!(commands.iter().all(|c| c.amplitude_ua == 321));
    }
}

/// The full bring-up sequence — firmware switch programming, fabric
/// validation, streaming — works twice in a row on fresh systems
/// (chronic devices reconfigure repeatedly over their 12–15-year life).
#[test]
fn repeated_bringup() {
    let channels = 4;
    let rec = RecordingConfig::new(RegionProfile::leg())
        .channels(channels)
        .duration_ms(30)
        .generate(41);
    for _ in 0..2 {
        for task in [Task::CompressLz4, Task::SpikeDetectNeo] {
            let config = HaloConfig::small_test(channels);
            let mut sys = HaloSystem::new(task, config).unwrap();
            let metrics = sys.process(&rec).unwrap();
            assert_eq!(metrics.frames as usize, rec.samples_per_channel());
            assert!(metrics.controller_cycles > 0);
        }
    }
}

/// The controller ISA is complete enough to run real signal-processing
/// firmware: a NEO kernel in RV32 assembly produces the same energies as
/// the hardware PE's kernel, and its measured cycle count grounds the
/// Figure 4 software-baseline cycle model.
#[test]
fn software_neo_matches_hardware_kernel() {
    // r10 = sample base, r11 = count, r12 = output base.
    let mut a = Asm::new();
    a.label("loop");
    a.slti(5, 11, 3); // fewer than 3 samples left?
    a.bne(5, 0, "done");
    a.lh(6, 10, 0); // x[n-1]
    a.lh(7, 10, 2); // x[n]
    a.lh(8, 10, 4); // x[n+1]
    a.mul(9, 7, 7);
    a.mul(6, 6, 8);
    a.sub(9, 9, 6);
    a.sw(12, 9, 0);
    a.addi(10, 10, 2);
    a.addi(12, 12, 4);
    a.addi(11, 11, -1);
    a.j("loop");
    a.label("done");
    a.ecall();
    let program = a.assemble(0).unwrap();

    let samples: Vec<i16> = (0..64)
        .map(|t| ((t * 37) % 101 - 50) as i16 * 100)
        .collect();
    let want = halo::kernels::Neo::process_block(&samples);

    let mut bus = SystemBus::new(Memory::new(0x10000));
    bus.load_program(0, &program);
    let bytes: Vec<u8> = samples.iter().flat_map(|s| s.to_le_bytes()).collect();
    bus.load_bytes(0x4000, &bytes);
    let mut cpu = Cpu::new();
    cpu.set_reg(10, 0x4000);
    cpu.set_reg(11, samples.len() as u32);
    cpu.set_reg(12, 0x8000);
    let result = cpu.run(&mut bus, 100_000).unwrap();
    assert_eq!(result.halt, HaltReason::Ecall);

    for (i, &psi) in want.iter().enumerate() {
        let got = bus.load32(0x8000 + 4 * i as u32) as i32 as i64;
        assert_eq!(got, psi, "sample {i}");
    }
    // Grounding for the software baseline: cycles per NEO output.
    let per_output = result.cycles as f64 / want.len() as f64;
    assert!(
        (10.0..40.0).contains(&per_output),
        "NEO costs {per_output} cycles/sample in software"
    );
}

#[test]
fn stim_command_word_format_is_stable() {
    let c = StimCommand {
        channel: 7,
        amplitude_ua: 0x1234,
    };
    assert_eq!(c.encode(), 0x0007_1234);
}

/// A second grounded point for the Figure 4 cycle model: one level of the
/// 5/3 lifting DWT in RV32 assembly, verified bit-identical against the
/// hardware kernel and measured for cycles/sample.
#[test]
fn software_dwt_level_matches_hardware_kernel() {
    // Layout: r10 = input base (i32 words, interleaved s/d), r11 = half
    // count, r12 = approx out base, r13 = detail out base.
    let mut a = Asm::new();
    // ---- predict pass: d[i] = x[2i+1] - ((x[2i] + x[2i+2 or 2i]) >> 1)
    a.li(5, 0); // i
    a.label("predict");
    a.bge(5, 11, "predict_done");
    a.slli(6, 5, 3); // byte offset of x[2i]
    a.add(6, 6, 10);
    a.lw(7, 6, 0); // s_i
    a.lw(8, 6, 4); // d_i (odd sample)
                   // s_next: x[2i+2] unless last pair, else s_i
    a.addi(9, 5, 1);
    a.blt(9, 11, "have_next");
    a.mv(9, 7); // boundary: s_next = s_i
    a.j("pred_sum");
    a.label("have_next");
    a.lw(9, 6, 8);
    a.label("pred_sum");
    a.add(9, 9, 7);
    a.srai(9, 9, 1);
    a.sub(8, 8, 9);
    // store detail
    a.slli(9, 5, 2);
    a.add(9, 9, 13);
    a.sw(9, 8, 0);
    a.addi(5, 5, 1);
    a.j("predict");
    a.label("predict_done");
    // ---- update pass: s[i] = x[2i] + ((d[i-1] + d[i] + 2) >> 2), d[-1]=d[0]
    a.li(5, 0);
    a.label("update");
    a.bge(5, 11, "update_done");
    a.slli(6, 5, 2);
    a.add(6, 6, 13);
    a.lw(7, 6, 0); // d[i]
    a.beq(5, 0, "left_is_d0");
    a.lw(8, 6, -4); // d[i-1]
    a.j("upd_sum");
    a.label("left_is_d0");
    a.mv(8, 7);
    a.label("upd_sum");
    a.add(8, 8, 7);
    a.addi(8, 8, 2);
    a.srai(8, 8, 2);
    a.slli(6, 5, 3);
    a.add(6, 6, 10);
    a.lw(7, 6, 0); // s_i
    a.add(7, 7, 8);
    a.slli(6, 5, 2);
    a.add(6, 6, 12);
    a.sw(6, 7, 0);
    a.addi(5, 5, 1);
    a.j("update");
    a.label("update_done");
    a.ecall();
    let program = a.assemble(0).unwrap();

    let n = 64;
    let samples: Vec<i16> = (0..n)
        .map(|t| (((t * 73) % 997) as i16 - 500).saturating_mul(13))
        .collect();
    // Hardware reference: one forward level.
    let dwt = halo::kernels::Dwt::new(1).unwrap();
    let mut want: Vec<i32> = samples.iter().map(|&s| s as i32).collect();
    dwt.forward(&mut want);

    let mut bus = SystemBus::new(Memory::new(0x10000));
    bus.load_program(0, &program);
    let in_base = 0x4000u32;
    for (i, &s) in samples.iter().enumerate() {
        bus.store32(in_base + 4 * i as u32, s as i32 as u32);
    }
    let mut cpu = Cpu::new();
    cpu.set_reg(10, in_base);
    cpu.set_reg(11, (n / 2) as u32);
    cpu.set_reg(12, 0x8000);
    cpu.set_reg(13, 0xA000);
    let result = cpu.run(&mut bus, 100_000).unwrap();
    assert_eq!(result.halt, HaltReason::Ecall);

    for i in 0..n / 2 {
        let approx = bus.load32(0x8000 + 4 * i as u32) as i32;
        let detail = bus.load32(0xA000 + 4 * i as u32) as i32;
        assert_eq!(approx, want[i], "approx {i}");
        assert_eq!(detail, want[n / 2 + i], "detail {i}");
    }
    // Cycle grounding: lifting costs ~20-40 cycles/sample in software.
    let per_sample = result.cycles as f64 / n as f64;
    assert!(
        (10.0..60.0).contains(&per_sample),
        "DWT costs {per_sample} cycles/sample in software"
    );
}
