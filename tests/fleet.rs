//! Fleet observatory integration: merged exposition arithmetic, text
//! conformance, and triage round-trips over real multi-session runs.

use halo::fleet::{registry, triage, FleetConfig, SessionReport, SessionSpec};
use halo::telemetry::json;

fn run_fleet(sessions: usize, config: &FleetConfig) -> Vec<SessionReport> {
    let specs = SessionSpec::mixed(sessions, config);
    let reports = halo::fleet::run(specs, config).unwrap().into_reports();
    assert_eq!(reports.len(), sessions);
    reports
}

/// All samples of `family` in a text exposition as `(labels, value)`.
fn samples<'a>(exposition: &'a str, family: &str) -> Vec<(&'a str, f64)> {
    exposition
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .filter_map(|line| {
            let (metric, value) = line.rsplit_once(' ')?;
            let (name, labels) = match metric.split_once('{') {
                Some((n, rest)) => (n, rest.trim_end_matches('}')),
                None => (metric, ""),
            };
            (name == family).then(|| (labels, value.parse::<f64>().unwrap()))
        })
        .collect()
}

fn single(exposition: &str, family: &str) -> f64 {
    let s = samples(exposition, family);
    assert_eq!(s.len(), 1, "{family} should have exactly one sample");
    s[0].1
}

#[test]
fn fleet_totals_equal_sum_of_session_totals() {
    let config = FleetConfig::default().frames_per_session(300);
    let reports = run_fleet(12, &config);
    let text = registry::render_exposition(&reports);

    for (fleet_family, session_family) in [
        ("halo_fleet_frames_total", "halo_session_frames_total"),
        (
            "halo_fleet_radio_bytes_total",
            "halo_session_radio_bytes_total",
        ),
    ] {
        let fleet_total = single(&text, fleet_family);
        let per_session = samples(&text, session_family);
        assert_eq!(per_session.len(), 12);
        let sum: f64 = per_session.iter().map(|(_, v)| v).sum();
        assert_eq!(
            fleet_total, sum,
            "{fleet_family} != sum of {session_family}"
        );
    }

    // Aggregate power is the sum of per-session gauges (floats: compare
    // with a tolerance).
    let fleet_mw = single(&text, "halo_fleet_power_mw");
    let session_mw: f64 = samples(&text, "halo_session_power_mw")
        .iter()
        .map(|(_, v)| v)
        .sum();
    assert!((fleet_mw - session_mw).abs() < 1e-6);

    // Alert totals roll up by severity.
    for severity in ["info", "warning", "critical"] {
        let key = format!("severity=\"{severity}\"");
        let fleet: f64 = samples(&text, "halo_fleet_alerts_total")
            .iter()
            .filter(|(l, _)| l.contains(&key))
            .map(|(_, v)| v)
            .sum();
        let sessions: f64 = samples(&text, "halo_session_alerts_total")
            .iter()
            .filter(|(l, _)| l.contains(&key))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(fleet, sessions, "severity {severity}");
    }

    // The merged latency histogram saw exactly one sample per frame.
    let hist_count = single(&text, "halo_fleet_frame_latency_ns_count");
    assert_eq!(hist_count, single(&text, "halo_fleet_frames_total"));
}

#[test]
fn fleet_exposition_is_conformant_and_stable() {
    let config = FleetConfig::default().frames_per_session(240);
    let reports = run_fleet(8, &config);
    let first = registry::render_exposition(&reports);
    let second = registry::render_exposition(&reports);
    assert_eq!(
        first, second,
        "render must be byte-stable over same reports"
    );

    // Every family declares HELP and TYPE exactly once, before its
    // samples; every sample value parses.
    let mut helps: Vec<&str> = Vec::new();
    let mut types: Vec<&str> = Vec::new();
    for line in first.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap();
            assert!(!helps.contains(&name), "duplicate HELP for {name}");
            helps.push(name);
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let name = rest.split_whitespace().next().unwrap();
            assert!(!types.contains(&name), "duplicate TYPE for {name}");
            types.push(name);
        } else if !line.is_empty() {
            let metric = line.split(['{', ' ']).next().unwrap();
            let family = metric
                .trim_end_matches("_bucket")
                .trim_end_matches("_sum")
                .trim_end_matches("_count");
            assert!(
                types.contains(&family) || types.contains(&metric),
                "sample {metric} precedes its TYPE header"
            );
            let value = line.rsplit(' ').next().unwrap();
            assert!(
                value.parse::<f64>().is_ok(),
                "unparseable sample value {value:?}"
            );
        }
    }
    assert_eq!(helps, types, "HELP and TYPE sets must match in order");

    // Histogram buckets are cumulative and end at the count.
    let buckets = samples(&first, "halo_fleet_frame_latency_ns_bucket");
    assert!(buckets.windows(2).all(|w| w[0].1 <= w[1].1));
    assert_eq!(
        buckets.last().unwrap().1,
        single(&first, "halo_fleet_frame_latency_ns_count")
    );
}

#[test]
fn triage_document_round_trips_and_embeds_postmortems() {
    // Starve the power budget so every session trips critical alerts and
    // latches a flight-recorder dump.
    let config = FleetConfig::default()
        .frames_per_session(400)
        .budget_mw(0.0001);
    let reports = run_fleet(6, &config);
    let doc = triage::render_triage(&reports, 3);
    let value = json::parse(&doc).expect("triage must be valid JSON");

    assert_eq!(value.get("sessions").and_then(|v| v.as_u64()), Some(6));
    let critical = value
        .get("alerts")
        .and_then(|a| a.get("critical"))
        .and_then(|v| v.as_u64())
        .unwrap();
    assert!(critical > 0, "starved budget must raise critical alerts");

    let worst = value.get("worst").and_then(|v| v.as_array()).unwrap();
    assert_eq!(worst.len(), 3);
    for row in worst {
        // The embedded post-mortem is a JSON object (the session's raw
        // flight-recorder dump), not a string blob.
        let pm = row.get("postmortem").expect("postmortem key");
        assert!(
            pm.get("alerts").is_some() || pm.get("reason").is_some(),
            "postmortem must embed the flight recorder verbatim"
        );
    }

    // Scores are non-increasing.
    let scores: Vec<f64> = worst
        .iter()
        .map(|r| r.get("score").and_then(|v| v.as_f64()).unwrap())
        .collect();
    assert!(scores.windows(2).all(|w| w[0] >= w[1]));
}

#[test]
fn exemplar_traces_cover_the_fleet_deterministically() {
    let config = FleetConfig::default().frames_per_session(600);
    let reports = run_fleet(16, &config);
    let traces = halo::fleet::exemplar::collect(&reports);
    assert!(!traces.is_empty(), "elections must produce exemplar traces");

    // Election is derived from the fleet seed alone: a rerun elects the
    // same sessions and frames.
    let reports2 = run_fleet(16, &config);
    let traces2 = halo::fleet::exemplar::collect(&reports2);
    let key = |ts: &[halo::fleet::ExemplarTrace]| {
        ts.iter()
            .map(|t| (t.session, t.root_frame))
            .collect::<Vec<_>>()
    };
    assert_eq!(key(&traces), key(&traces2));

    // Sampling stays stratified: traced sessions span more than one
    // election group (16 sessions / group_size 8 = 2 groups).
    let mut groups: Vec<u64> = traces.iter().map(|t| t.session / 8).collect();
    groups.sort_unstable();
    groups.dedup();
    assert_eq!(groups.len(), 2);
}

#[test]
fn continuous_tsdb_snapshots_are_byte_identical_across_thread_counts() {
    // The continuous layer rides inside each session's deterministic
    // stream, so its serialized history must not depend on how the
    // scheduler interleaved sessions across workers.
    let snapshots_at = |threads: usize| -> Vec<(u64, String)> {
        let config = FleetConfig::default()
            .frames_per_session(600)
            .threads(threads);
        let mut out: Vec<(u64, String)> = run_fleet(8, &config)
            .iter()
            .map(|r| {
                let continuous = r.continuous.as_ref().expect("fleet runs with tsdb");
                (r.spec.id, continuous.snapshot_json())
            })
            .collect();
        out.sort_by_key(|(id, _)| *id);
        out
    };
    let serial = snapshots_at(1);
    let parallel = snapshots_at(4);
    assert_eq!(serial.len(), 8);
    for ((id_a, snap_a), (id_b, snap_b)) in serial.iter().zip(parallel.iter()) {
        assert_eq!(id_a, id_b);
        json::parse(snap_a).expect("snapshot must be valid JSON");
        assert_eq!(
            snap_a, snap_b,
            "session {id_a} tsdb snapshot differs across thread counts"
        );
    }
    // And the histories are non-trivial: every session recorded power.
    for (_, snap) in &serial {
        assert!(snap.contains("\"power_mw\""));
    }
}

#[test]
fn triage_carries_slo_and_anomaly_sections() {
    let config = FleetConfig::default().frames_per_session(400);
    let reports = run_fleet(6, &config);
    let doc = triage::render_triage(&reports, 3);
    let value = json::parse(&doc).expect("triage must parse");
    assert!(value.get("slo").is_some(), "fleet slo totals missing");
    assert!(
        value.get("anomalies").is_some(),
        "fleet anomaly total missing"
    );
    // The fleet-level profile verdict and its dominant frame.
    let profile = value.get("profile").expect("fleet profile section");
    assert!(
        profile
            .get("total_cycles")
            .and_then(|v| v.as_u64())
            .unwrap()
            > 0
    );
    assert!(profile.get("dominant").is_some());
    let worst = value.get("worst").and_then(|v| v.as_array()).unwrap();
    for row in worst {
        assert!(row.get("slo").is_some(), "per-session slo section missing");
        let anomalies = row.get("anomalies").expect("per-session anomalies");
        assert!(anomalies.get("total").is_some());
        let profile = row.get("profile").expect("per-session profile section");
        assert!(profile.get("divergence").and_then(|v| v.as_f64()).is_some());
    }
}

#[test]
fn session_profiles_are_byte_identical_across_thread_counts() {
    // The profiler rides the deterministic busy-cycle counters, so a
    // session's folded flamegraph must not depend on how the scheduler
    // interleaved sessions across workers.
    let profiles_at = |threads: usize| -> Vec<(u64, String, String)> {
        let config = FleetConfig::default()
            .frames_per_session(600)
            .threads(threads);
        let mut out: Vec<(u64, String, String)> = run_fleet(8, &config)
            .iter()
            .map(|r| {
                let profile = r.profile.as_ref().expect("fleet sessions are profiled");
                (r.spec.id, profile.folded(), profile.to_json())
            })
            .collect();
        out.sort_by_key(|(id, _, _)| *id);
        out
    };
    let serial = profiles_at(1);
    let parallel = profiles_at(4);
    assert_eq!(serial.len(), 8);
    for ((id_a, folded_a, json_a), (id_b, folded_b, json_b)) in serial.iter().zip(parallel.iter()) {
        assert_eq!(id_a, id_b);
        assert!(!folded_a.is_empty(), "session {id_a} profile is empty");
        assert_eq!(
            folded_a, folded_b,
            "session {id_a} flamegraph differs across thread counts"
        );
        assert_eq!(json_a, json_b);
        json::parse(json_a).expect("profile JSON must parse");
    }
}

#[test]
fn fleet_profile_merges_sessions_and_lands_in_the_exposition() {
    let config = FleetConfig::default().frames_per_session(300);
    let reports = run_fleet(6, &config);
    let fleet = registry::fleet_profile(&reports);
    assert_eq!(fleet.device, "fleet");
    let session_total: u64 = reports
        .iter()
        .filter_map(|r| r.profile.as_ref())
        .map(|p| p.total_cycles())
        .sum();
    assert_eq!(fleet.total_cycles(), session_total);
    let session_frames: u64 = reports
        .iter()
        .filter_map(|r| r.profile.as_ref())
        .map(|p| p.frames)
        .sum();
    assert_eq!(fleet.frames, session_frames);

    let text = registry::render_exposition(&reports);
    let cycles = samples(&text, "halo_profile_cycles_total");
    assert!(!cycles.is_empty(), "profile families missing from rollup");
    assert!(cycles.iter().all(|(l, _)| l.contains("device=\"fleet\"")));
    let exported: f64 = cycles.iter().map(|(_, v)| v).sum();
    assert_eq!(exported, session_total as f64);
}
