//! End-to-end causal-tracing tests: deterministic sampling, well-formed
//! span trees across the stock pipelines, zero perturbation of device
//! outputs, and bit-identical capture/replay of a closed-loop seizure run.

use std::sync::Arc;

use halo::core::tasks::seizure;
use halo::core::{trace, HaloConfig, HaloSystem, Task};
use halo::signal::{Recording, RecordingConfig, RegionProfile};
use halo::telemetry::{SpanKind, SpanTree, TraceLog, TraceSampler, Tracer};

/// A task configuration and session recording known to exercise the whole
/// pipeline — for seizure prediction, an SVM trained on labeled recordings
/// and a session whose ictal episode triggers closed-loop stimulation.
fn scenario(task: Task) -> (HaloConfig, Recording) {
    match task {
        Task::SeizurePrediction => {
            let channels = 8;
            let config = HaloConfig::small_test(channels).channels(channels);
            let window = config.feature_window_frames();
            let train_a = RecordingConfig::new(RegionProfile::arm())
                .channels(channels)
                .duration_ms(700)
                .seizure_at(6 * window, 14 * window)
                .generate(9);
            let train_b = RecordingConfig::new(RegionProfile::arm())
                .channels(channels)
                .duration_ms(700)
                .seizure_at(12 * window, 20 * window)
                .generate(19);
            let svm = seizure::train(&config, &[&train_a, &train_b]).unwrap();
            let session = RecordingConfig::new(RegionProfile::arm())
                .channels(channels)
                .duration_ms(700)
                .seizure_at(8 * window, 16 * window)
                .generate(10);
            (config.with_svm(svm), session)
        }
        _ => {
            let channels = 4;
            let config = HaloConfig::small_test(channels);
            let session = RecordingConfig::new(RegionProfile::arm())
                .channels(channels)
                .duration_ms(200)
                .generate(7);
            (config, session)
        }
    }
}

/// The sampler is a pure function of (seed, frame): two instances agree
/// frame-for-frame, and its hit rate lands within ±1 of the configured
/// 1-in-N over any horizon.
#[test]
fn sampler_is_deterministic_and_rate_accurate() {
    const FRAMES: u64 = 10_000;
    const EVERY: u64 = 64;
    let a = TraceSampler::new(0xC0FFEE, EVERY);
    let b = TraceSampler::new(0xC0FFEE, EVERY);
    let mut hits = 0u64;
    for frame in 0..FRAMES {
        let hit = a.would_sample(frame);
        assert_eq!(hit, b.would_sample(frame), "diverged at frame {frame}");
        hits += u64::from(hit);
    }
    let expected = FRAMES / EVERY;
    assert!(
        hits.abs_diff(expected) <= 1,
        "{hits} hits over {FRAMES} frames, expected ~{expected}"
    );
    // A different seed picks different frames (same rate).
    let c = TraceSampler::new(0xBEEF, EVERY);
    assert!((0..FRAMES).any(|f| a.would_sample(f) != c.would_sample(f)));
    // Rate zero never samples until escalation forces it.
    let idle = TraceSampler::new(1, 0);
    assert!((0..FRAMES).all(|f| !idle.would_sample(f)));
}

/// Every stock pipeline yields complete, well-formed span trees: one per
/// sampled frame, each assembling into a tree whose per-hop attribution
/// tiles the end-to-end latency.
#[test]
fn stock_pipelines_yield_well_formed_trees() {
    for task in [
        Task::SpikeDetectNeo,
        Task::CompressLz4,
        Task::CompressLzma,
        Task::MovementIntent,
        Task::SeizurePrediction,
    ] {
        let (config, session) = scenario(task);
        let tracer = Arc::new(Tracer::new(0x51D, 64).with_done_capacity(4096));
        let mut system = HaloSystem::new(task, config).unwrap();
        system.attach_tracing(tracer.clone());
        system.process(&session).unwrap();

        let stats = tracer.stats();
        let trees = tracer.trees();
        assert!(stats.sampled > 0, "{task:?}: nothing sampled");
        assert_eq!(
            stats.completed, stats.sampled,
            "{task:?}: a sampled frame did not close into a tree"
        );
        assert_eq!(trees.len() as u64, stats.completed, "{task:?}");
        for record in &trees {
            let tree = SpanTree::assemble(record)
                .unwrap_or_else(|e| panic!("{task:?}: malformed tree: {e}"));
            let total = tree.end_to_end_ns();
            assert!(total > 0, "{task:?}: empty trace");
            // Frames that flow through the fabric must record PE service.
            assert!(
                record.spans.iter().any(|s| s.kind == SpanKind::PeService),
                "{task:?}: no PE service spans"
            );
            // Attribution is a tiling of the root interval: the per-hop
            // self-times sum to the end-to-end latency exactly.
            let attributed: u64 = tree.attribution().iter().map(|h| h.ns).sum();
            assert_eq!(
                attributed, total,
                "{task:?}: attribution covers {attributed} of {total} ns"
            );
        }
    }
}

/// Tracing is observation: a run with a 1-in-64 tracer attached produces
/// byte-identical outputs to an untraced run.
#[test]
fn tracing_does_not_perturb_outputs() {
    let (config, session) = scenario(Task::CompressLzma);
    let mut plain = HaloSystem::new(Task::CompressLzma, config.clone()).unwrap();
    let plain_metrics = plain.process(&session).unwrap();

    let mut traced = HaloSystem::new(Task::CompressLzma, config).unwrap();
    traced.attach_tracing(Arc::new(Tracer::new(7, 64)));
    let traced_metrics = traced.process(&session).unwrap();

    assert_eq!(plain_metrics.radio_stream, traced_metrics.radio_stream);
    assert_eq!(plain_metrics.detections, traced_metrics.detections);
    assert_eq!(plain_metrics.pe_activity, traced_metrics.pe_activity);
    assert_eq!(plain_metrics.bus_bytes, traced_metrics.bus_bytes);
}

/// The flagship acceptance path: a traced closed-loop seizure run is
/// captured to a trace log, the log survives serialization bit-exactly,
/// and replaying it through a fresh device reproduces every output byte.
#[test]
fn seizure_closed_loop_capture_replays_bit_identically() {
    let (config, session) = scenario(Task::SeizurePrediction);
    let tracer = Arc::new(Tracer::new(0xA11CE, 64));
    let mut system = HaloSystem::new(Task::SeizurePrediction, config.clone()).unwrap();
    system.attach_tracing(tracer.clone());
    let metrics = system.process(&session).unwrap();
    assert!(
        !metrics.stim_events.is_empty(),
        "scenario must trigger closed-loop stimulation"
    );

    let log = trace::capture(&system, &session, &metrics);
    // Serialization is binary-stable: write -> read -> write is a fixpoint.
    let text = log.write();
    let reread = TraceLog::read(&text).unwrap();
    assert_eq!(reread, log);
    assert_eq!(reread.write(), text);

    let (replayed, report) = trace::replay(&reread, config).unwrap();
    assert!(report.identical(), "replay diverged: {report}");
    assert_eq!(replayed.radio_stream, metrics.radio_stream);
    assert_eq!(replayed.detections, metrics.detections);
    assert_eq!(replayed.stim_events.len(), metrics.stim_events.len());
}
