//! Property-based tests over the kernel substrate: losslessness and
//! algorithm-equivalence invariants that must hold for *arbitrary* inputs,
//! not just neural data.

use halo::kernels::{
    Aes128, BlockXcor, Dwt, DwtmaCodec, FenwickTree, Lz4Codec, LzMatcher, LzmaCodec,
    RangeDecoder, RangeEncoder, StreamingXcor, XcorConfig,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LZ4 compression is lossless for arbitrary byte strings.
    #[test]
    fn lz4_round_trips(data in proptest::collection::vec(any::<u8>(), 0..4096),
                       history_pow in 8u32..14,
                       block in 64usize..2048) {
        let codec = Lz4Codec::new(1 << history_pow).unwrap().with_block_size(block);
        let compressed = codec.compress(&data);
        prop_assert_eq!(codec.decompress(&compressed).unwrap(), data);
    }

    /// LZMA compression is lossless for arbitrary byte strings and counter
    /// widths (counter saturation never loses data, §IV-B).
    #[test]
    fn lzma_round_trips(data in proptest::collection::vec(any::<u8>(), 0..4096),
                        counter_bits in 4u32..=16,
                        block in 64usize..2048) {
        let codec = LzmaCodec::new(1024).unwrap()
            .with_block_size(block)
            .with_counter_bits(counter_bits);
        let compressed = codec.compress(&data);
        prop_assert_eq!(codec.decompress(&compressed).unwrap(), data);
    }

    /// DWTMA compression is lossless for arbitrary sample streams at every
    /// supported transform depth.
    #[test]
    fn dwtma_round_trips(samples in proptest::collection::vec(any::<i16>(), 0..4096),
                         levels in 1usize..=5,
                         block in 32usize..1024) {
        let codec = DwtmaCodec::new(levels).unwrap().with_block_samples(block);
        let compressed = codec.compress(&samples);
        prop_assert_eq!(codec.decompress(&compressed).unwrap(), samples);
    }

    /// The LZ parse always reconstructs its input (arbitrary history).
    #[test]
    fn lz_parse_reconstructs(data in proptest::collection::vec(any::<u8>(), 0..2048),
                             history_pow in 8u32..14,
                             min_match in 4usize..16) {
        let lz = LzMatcher::new(1 << history_pow).unwrap().with_min_match(min_match);
        let ops = lz.parse(&data);
        prop_assert_eq!(LzMatcher::reconstruct(&ops), data);
    }

    /// The integer DWT is exactly invertible at every depth.
    #[test]
    fn dwt_perfect_reconstruction(raw in proptest::collection::vec(any::<i16>(), 1..64),
                                  levels in 1usize..=5) {
        let dwt = Dwt::new(levels).unwrap();
        let m = dwt.block_multiple();
        let n = raw.len().div_ceil(m) * m;
        let mut data: Vec<i32> = raw.iter().map(|&x| x as i32).collect();
        data.resize(n, 0);
        let original = data.clone();
        dwt.forward(&mut data);
        dwt.inverse(&mut data);
        prop_assert_eq!(data, original);
    }

    /// Range coder round trip for arbitrary frequency tables and symbol
    /// sequences.
    #[test]
    fn range_coder_round_trips(freqs in proptest::collection::vec(1u32..500, 2..32),
                               picks in proptest::collection::vec(any::<u16>(), 0..512)) {
        let total: u32 = freqs.iter().sum();
        let cums: Vec<u32> = freqs.iter().scan(0, |acc, &f| { let c = *acc; *acc += f; Some(c) }).collect();
        let symbols: Vec<usize> = picks.iter().map(|&p| p as usize % freqs.len()).collect();
        let mut enc = RangeEncoder::new();
        for &s in &symbols {
            enc.encode(cums[s], freqs[s], total);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        for &s in &symbols {
            let target = dec.decode_freq(total);
            let sym = cums.iter().rposition(|&c| c <= target).unwrap();
            prop_assert_eq!(sym, s);
            dec.decode_update(cums[sym], freqs[sym], total);
        }
    }

    /// AES-128 decrypt(encrypt(x)) == x for arbitrary keys and blocks.
    #[test]
    fn aes_round_trips(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
        let aes = Aes128::new(key);
        let mut buf = block;
        aes.encrypt_block(&mut buf);
        aes.decrypt_block(&mut buf);
        prop_assert_eq!(buf, block);
    }

    /// Fenwick `find` is the exact inverse of `prefix_sum` for arbitrary
    /// count tables.
    #[test]
    fn fenwick_find_inverts(counts in proptest::collection::vec(0u32..100, 1..64)) {
        let mut t = FenwickTree::new(counts.len());
        for (i, &c) in counts.iter().enumerate() {
            t.add(i, c);
        }
        prop_assume!(t.total() > 0);
        // Check a spread of targets.
        let total = t.total();
        for target in [0, total / 3, total / 2, total - 1] {
            let s = t.find(target);
            prop_assert!(t.prefix_sum(s) <= target);
            prop_assert!(t.prefix_sum(s + 1) > target);
        }
    }

    /// Spatial reprogramming does not change XCOR's output: the streaming
    /// Algorithm 3 equals the block Algorithm 2 bit for bit (§IV-A/B).
    #[test]
    fn xcor_streaming_equals_block(
        frames in proptest::collection::vec(proptest::collection::vec(any::<i16>(), 3), 8..96),
        lag in 0usize..6,
    ) {
        let window = 8;
        prop_assume!(lag + 2 <= window);
        let config = XcorConfig::new(3, window, lag, vec![(0, 1), (1, 2), (0, 2)]).unwrap();
        let mut block = BlockXcor::new(config.clone());
        let mut stream = StreamingXcor::new(config);
        for f in &frames {
            let a = block.push_frame(f);
            let b = stream.push_frame(f);
            prop_assert_eq!(a, b);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Failure injection: decoders must never panic or over-allocate on
    /// arbitrary garbage — corrupted radio streams are a fact of life for
    /// an implant. (Bounded-allocation behaviour is what distinguishes a
    /// recoverable telemetry glitch from a device reset.)
    #[test]
    fn decoders_survive_garbage(garbage in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Lz4Codec::new(1024).unwrap().decompress(&garbage);
        let _ = LzmaCodec::new(1024).unwrap().decompress(&garbage);
        let _ = DwtmaCodec::new(2).unwrap().decompress(&garbage);
        let _ = halo::kernels::bwt::BwtmaCodec::new().decompress(&garbage);
        let _ = halo::kernels::lic_decode(&garbage);
    }

    /// Bit-flip injection: flipping any single bit of a valid compressed
    /// stream either errors out or decodes to different data — but never
    /// panics.
    #[test]
    fn single_bit_flips_never_panic(seed in any::<u64>(), flip in 0usize..10_000) {
        let data: Vec<u8> = (0..400u32)
            .map(|i| (i.wrapping_mul(seed as u32 | 1) >> 24) as u8)
            .collect();
        let codec = LzmaCodec::new(1024).unwrap();
        let mut stream = codec.compress(&data);
        prop_assume!(!stream.is_empty());
        let bit = flip % (stream.len() * 8);
        stream[bit / 8] ^= 1 << (bit % 8);
        let _ = codec.decompress(&stream); // must return, Ok or Err
    }
}
