//! Randomized-input tests over the kernel substrate: losslessness and
//! algorithm-equivalence invariants that must hold for *arbitrary* inputs,
//! not just neural data.
//!
//! Inputs are drawn from the workspace's deterministic [`SimRng`]
//! (xoshiro256++), so every run explores the same input set and failures
//! reproduce exactly — the offline build environment has no property-test
//! framework, and determinism is what we actually want in CI anyway.

use halo::kernels::{
    Aes128, BlockXcor, Dwt, DwtmaCodec, FenwickTree, Lz4Codec, LzMatcher, LzmaCodec, RangeDecoder,
    RangeEncoder, StreamingXcor, XcorConfig,
};
use halo::signal::SimRng;

/// LZ4 compression is lossless for arbitrary byte strings.
#[test]
fn lz4_round_trips() {
    let mut rng = SimRng::new(0x1141);
    for case in 0..64 {
        let len = rng_len(&mut rng, 4096);
        let data = rng.bytes(len);
        let history = 1 << rng.range_u64(8, 14);
        let block = rng.range_usize(64, 2048);
        let codec = Lz4Codec::new(history).unwrap().with_block_size(block);
        let compressed = codec.compress(&data);
        assert_eq!(
            codec.decompress(&compressed).unwrap(),
            data,
            "case {case}: history {history}, block {block}, len {}",
            data.len()
        );
    }
}

/// LZMA compression is lossless for arbitrary byte strings and counter
/// widths (counter saturation never loses data, §IV-B).
#[test]
fn lzma_round_trips() {
    let mut rng = SimRng::new(0x1142);
    for case in 0..48 {
        let len = rng_len(&mut rng, 4096);
        let data = rng.bytes(len);
        let counter_bits = rng.range_u64(4, 17) as u32;
        let block = rng.range_usize(64, 2048);
        let codec = LzmaCodec::new(1024)
            .unwrap()
            .with_block_size(block)
            .with_counter_bits(counter_bits);
        let compressed = codec.compress(&data);
        assert_eq!(
            codec.decompress(&compressed).unwrap(),
            data,
            "case {case}: counter_bits {counter_bits}, block {block}"
        );
    }
}

/// DWTMA compression is lossless for arbitrary sample streams at every
/// supported transform depth.
#[test]
fn dwtma_round_trips() {
    let mut rng = SimRng::new(0x1143);
    for case in 0..48 {
        let len = rng_len(&mut rng, 4096);
        let samples = rng.samples(len);
        let levels = rng.range_usize(1, 6);
        let block = rng.range_usize(32, 1024);
        let codec = DwtmaCodec::new(levels).unwrap().with_block_samples(block);
        let compressed = codec.compress(&samples);
        assert_eq!(
            codec.decompress(&compressed).unwrap(),
            samples,
            "case {case}: levels {levels}, block {block}"
        );
    }
}

/// The LZ parse always reconstructs its input (arbitrary history).
#[test]
fn lz_parse_reconstructs() {
    let mut rng = SimRng::new(0x1144);
    for case in 0..64 {
        let len = rng_len(&mut rng, 2048);
        let data = rng.bytes(len);
        let history = 1 << rng.range_u64(8, 14);
        let min_match = rng.range_usize(4, 16);
        let lz = LzMatcher::new(history).unwrap().with_min_match(min_match);
        let ops = lz.parse(&data);
        assert_eq!(
            LzMatcher::reconstruct(&ops),
            data,
            "case {case}: history {history}, min_match {min_match}"
        );
    }
}

/// The integer DWT is exactly invertible at every depth.
#[test]
fn dwt_perfect_reconstruction() {
    let mut rng = SimRng::new(0x1145);
    for case in 0..64 {
        let len = rng.range_usize(1, 64);
        let raw = rng.samples(len);
        let levels = rng.range_usize(1, 6);
        let dwt = Dwt::new(levels).unwrap();
        let m = dwt.block_multiple();
        let n = raw.len().div_ceil(m) * m;
        let mut data: Vec<i32> = raw.iter().map(|&x| x as i32).collect();
        data.resize(n, 0);
        let original = data.clone();
        dwt.forward(&mut data);
        dwt.inverse(&mut data);
        assert_eq!(data, original, "case {case}: levels {levels}, n {n}");
    }
}

/// Range coder round trip for arbitrary frequency tables and symbol
/// sequences.
#[test]
fn range_coder_round_trips() {
    let mut rng = SimRng::new(0x1146);
    for case in 0..64 {
        let nsyms = rng.range_usize(2, 32);
        let freqs: Vec<u32> = (0..nsyms).map(|_| rng.range_u64(1, 500) as u32).collect();
        let total: u32 = freqs.iter().sum();
        let cums: Vec<u32> = freqs
            .iter()
            .scan(0, |acc, &f| {
                let c = *acc;
                *acc += f;
                Some(c)
            })
            .collect();
        let nsym_draws = rng_len(&mut rng, 512);
        let symbols: Vec<usize> = (0..nsym_draws).map(|_| rng.range_usize(0, nsyms)).collect();
        let mut enc = RangeEncoder::new();
        for &s in &symbols {
            enc.encode(cums[s], freqs[s], total);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        for &s in &symbols {
            let target = dec.decode_freq(total);
            let sym = cums.iter().rposition(|&c| c <= target).unwrap();
            assert_eq!(sym, s, "case {case}");
            dec.decode_update(cums[sym], freqs[sym], total);
        }
    }
}

/// AES-128 decrypt(encrypt(x)) == x for arbitrary keys and blocks.
#[test]
fn aes_round_trips() {
    let mut rng = SimRng::new(0x1147);
    for case in 0..128 {
        let mut key = [0u8; 16];
        let mut block = [0u8; 16];
        rng.fill_bytes(&mut key);
        rng.fill_bytes(&mut block);
        let aes = Aes128::new(key);
        let mut buf = block;
        aes.encrypt_block(&mut buf);
        aes.decrypt_block(&mut buf);
        assert_eq!(buf, block, "case {case}: key {key:02x?}");
    }
}

/// Fenwick `find` is the exact inverse of `prefix_sum` for arbitrary
/// count tables.
#[test]
fn fenwick_find_inverts() {
    let mut rng = SimRng::new(0x1148);
    let mut nonzero_cases = 0;
    while nonzero_cases < 64 {
        let n = rng.range_usize(1, 64);
        let counts: Vec<u32> = (0..n).map(|_| rng.range_u64(0, 100) as u32).collect();
        let mut t = FenwickTree::new(counts.len());
        for (i, &c) in counts.iter().enumerate() {
            t.add(i, c);
        }
        if t.total() == 0 {
            continue;
        }
        nonzero_cases += 1;
        let total = t.total();
        for target in [0, total / 3, total / 2, total - 1] {
            let s = t.find(target);
            assert!(t.prefix_sum(s) <= target, "counts {counts:?}");
            assert!(t.prefix_sum(s + 1) > target, "counts {counts:?}");
        }
    }
}

/// Spatial reprogramming does not change XCOR's output: the streaming
/// Algorithm 3 equals the block Algorithm 2 bit for bit (§IV-A/B).
#[test]
fn xcor_streaming_equals_block() {
    let mut rng = SimRng::new(0x1149);
    for case in 0..64 {
        let window = 8;
        let lag = rng.range_usize(0, 6);
        if lag + 2 > window {
            continue;
        }
        let nframes = rng.range_usize(8, 96);
        let frames: Vec<Vec<i16>> = (0..nframes).map(|_| rng.samples(3)).collect();
        let config = XcorConfig::new(3, window, lag, vec![(0, 1), (1, 2), (0, 2)]).unwrap();
        let mut block = BlockXcor::new(config.clone());
        let mut stream = StreamingXcor::new(config);
        for f in &frames {
            let a = block.push_frame(f);
            let b = stream.push_frame(f);
            assert_eq!(a, b, "case {case}: lag {lag}");
        }
    }
}

/// Failure injection: decoders must never panic or over-allocate on
/// arbitrary garbage — corrupted radio streams are a fact of life for
/// an implant. (Bounded-allocation behaviour is what distinguishes a
/// recoverable telemetry glitch from a device reset.)
#[test]
fn decoders_survive_garbage() {
    let mut rng = SimRng::new(0x114a);
    for _ in 0..128 {
        let len = rng_len(&mut rng, 512);
        let garbage = rng.bytes(len);
        let _ = Lz4Codec::new(1024).unwrap().decompress(&garbage);
        let _ = LzmaCodec::new(1024).unwrap().decompress(&garbage);
        let _ = DwtmaCodec::new(2).unwrap().decompress(&garbage);
        let _ = halo::kernels::bwt::BwtmaCodec::new().decompress(&garbage);
        let _ = halo::kernels::lic_decode(&garbage);
    }
}

/// Bit-flip injection: flipping any single bit of a valid compressed
/// stream either errors out or decodes to different data — but never
/// panics.
#[test]
fn single_bit_flips_never_panic() {
    let mut rng = SimRng::new(0x114b);
    for _ in 0..128 {
        let seed = rng.next_u64();
        let data: Vec<u8> = (0..400u32)
            .map(|i| (i.wrapping_mul(seed as u32 | 1) >> 24) as u8)
            .collect();
        let codec = LzmaCodec::new(1024).unwrap();
        let mut stream = codec.compress(&data);
        assert!(!stream.is_empty());
        let bit = rng.range_usize(0, stream.len() * 8);
        stream[bit / 8] ^= 1 << (bit % 8);
        let _ = codec.decompress(&stream); // must return, Ok or Err
    }
}

/// Length in `[0, max)` skewed toward small values, including zero — the
/// analogue of proptest's size-biased collection strategy.
fn rng_len(rng: &mut SimRng, max: usize) -> usize {
    match rng.range_u64(0, 4) {
        0 => rng.range_usize(0, 16),
        1 => rng.range_usize(0, 256),
        _ => rng.range_usize(0, max),
    }
}
