//! Fault-injection integration: the chaos machinery must behave
//! identically with the runtime's quiet-frame block dispatch on and
//! off. Faults scheduled inside a provably-quiet chunk must still be
//! observed (the dispatcher clamps its skip at the next due fault), and
//! checkpoint recovery must be byte-identical whichever dispatch mode
//! snapshotted or restored the run.

use halo::core::runtime::{FaultAction, RuntimeError, ScheduledFault};
use halo::core::{HaloConfig, HaloSystem, SystemError, Task};
use halo::faults::{ChaosConfig, ChaosSession, Checkpoint, FaultPlan, FaultPlanConfig, Outcome};
use halo::signal::{RecordingConfig, RegionProfile};

fn chaos_config(task: Task, block_dispatch: bool) -> ChaosConfig {
    let mut cfg = ChaosConfig::new(task);
    cfg.block_dispatch = block_dispatch;
    cfg.block_bytes = 512;
    cfg.plan.data_faults = 4;
    cfg.plan.rogue_mmio = 2;
    cfg.plan.link_faults = 1;
    cfg.plan.radio_drop_permille = 200;
    cfg.plan.radio_corrupt_permille = 100;
    cfg
}

#[test]
fn fault_plan_replays_from_seed() {
    let config = FaultPlanConfig::default();
    let a = FaultPlan::generate(&config);
    let b = FaultPlan::generate(&config);
    assert_eq!(a.fingerprint(), b.fingerprint());
    assert_eq!(a.schedule, b.schedule);
    let mut other = FaultPlanConfig::default();
    other.seed ^= 1;
    assert_ne!(a.fingerprint(), FaultPlan::generate(&other).fingerprint());
}

/// An all-zero stream is provably quiet, so block dispatch would skip
/// whole chunks — but a fault scheduled mid-chunk must still fire at
/// its exact frame (the dispatcher clamps the skip at the next due
/// fault). The cursor proves the injection was not jumped over.
#[test]
fn quiet_chunk_faults_are_observed_under_block_dispatch() {
    for action in [
        FaultAction::FifoBitFlip { slot: 0, bit: 7 },
        FaultAction::FifoOverflow { slot: 0 },
    ] {
        let config = HaloConfig::small_test(2);
        let mut system = HaloSystem::new(Task::SpikeDetectNeo, config).unwrap();
        system.set_block_dispatch(true);
        system
            .runtime_mut()
            .attach_faults(vec![ScheduledFault { frame: 100, action }]);
        let zeros = vec![0i16; 256 * 2];
        match system.push_block(&zeros) {
            // Landed on empty state: harmless, but observed.
            Ok(()) => assert_eq!(system.runtime().frames(), 256),
            // Landed on live state: the typed integrity error names it.
            Err(SystemError::Runtime(
                RuntimeError::FifoParity { .. } | RuntimeError::FifoOverflow { .. },
            )) => {}
            Err(other) => panic!("unexpected error: {other:?}"),
        }
        assert_eq!(
            system.runtime().fault_cursor(),
            1,
            "quiet-chunk dispatch must not skip over a due fault"
        );
    }
}

/// The same chaos plan recovers with block dispatch on and off, and
/// both verdicts are strict byte-identity against their references.
#[test]
fn chaos_recovers_with_dispatch_on_and_off() {
    let on = ChaosSession::new(chaos_config(Task::CompressLz4, true))
        .run()
        .unwrap();
    let off = ChaosSession::new(chaos_config(Task::CompressLz4, false))
        .run()
        .unwrap();
    assert_eq!(on.outcome, Outcome::Recovered, "reason: {:?}", on.reason);
    assert_eq!(off.outcome, Outcome::Recovered, "reason: {:?}", off.reason);
    assert_eq!(on.plan_fingerprint, off.plan_fingerprint);
    assert_eq!(on.faults_injected, off.faults_injected);
    assert_eq!(on.faults_detected, off.faults_detected);
}

/// Property: snapshot under one dispatch mode, restore under the other
/// (all four combinations, several seeds) — the resumed outputs must be
/// byte-identical to an uninterrupted reference run.
#[test]
fn checkpoint_recovery_is_byte_identical_across_dispatch_modes() {
    for seed in [3u64, 11, 29] {
        let config = HaloConfig::small_test(2).block_bytes(256);
        let rec = RecordingConfig::new(RegionProfile::arm())
            .channels(2)
            .duration_ms(30)
            .generate(seed);
        let samples = rec.samples();

        let mut reference = HaloSystem::new(Task::CompressLzma, config.clone()).unwrap();
        let expected = reference.process(&rec).unwrap();

        // Seed-varied cut point, aligned to whole frames.
        let cut = {
            let frames = samples.len() / 2;
            let frame = frames / 3 + (seed as usize * 17) % (frames / 3);
            frame * 2
        };
        for snap_dispatch in [true, false] {
            for restore_dispatch in [true, false] {
                let mut first = HaloSystem::new(Task::CompressLzma, config.clone()).unwrap();
                first.set_block_dispatch(snap_dispatch);
                first.push_block(&samples[..cut]).unwrap();
                let ckpt = Checkpoint::snapshot(&first, &samples[..cut]);
                drop(first);

                let mut resumed = ckpt.restore(config.clone(), restore_dispatch).unwrap();
                resumed.push_block(&samples[cut..]).unwrap();
                let got = resumed.finalize().unwrap();
                assert_eq!(
                    got.radio_stream, expected.radio_stream,
                    "seed {seed}: snap={snap_dispatch} restore={restore_dispatch}"
                );
                assert_eq!(got.detections, expected.detections);
                assert_eq!(got.frames, expected.frames);
            }
        }
    }
}
