//! Scientific validation of the synthetic-electrophysiology substrate:
//! the generated signals must carry the spectral structure the pipelines
//! are built to detect (1/f background, resting beta rhythm, ictal
//! rhythmicity) — otherwise every downstream result would be vacuous.

use halo::kernels::hann::HannWindow;
use halo::kernels::Fft;
use halo::signal::{RecordingConfig, RegionProfile};

/// Averaged Hann-windowed power spectrum of a channel, decimated by
/// `decimate` so low frequencies are resolvable.
fn spectrum(samples: &[i16], decimate: usize, points: usize) -> Vec<f64> {
    let dec: Vec<i16> = samples
        .chunks(decimate)
        .map(|c| (c.iter().map(|&x| x as i64).sum::<i64>() / c.len() as i64) as i16)
        .collect();
    let fft = Fft::new(points).unwrap();
    let hann = HannWindow::new(points);
    let mut acc = vec![0.0f64; points / 2 + 1];
    let mut windows = 0;
    for w in dec.chunks_exact(points) {
        let spec = fft.power_spectrum(&hann.apply(w));
        for (a, &p) in acc.iter_mut().zip(&spec) {
            *a += p as f64;
        }
        windows += 1;
    }
    assert!(windows > 0, "need at least one full window");
    for a in &mut acc {
        *a /= windows as f64;
    }
    acc
}

#[test]
fn background_spectrum_is_one_over_f() {
    let rec = RecordingConfig::new(RegionProfile::arm().without_spikes())
        .channels(1)
        .duration_ms(2000)
        .generate(301);
    // Decimate 32x -> 937.5 Hz effective rate, 256-pt windows -> 3.66 Hz bins.
    let spec = spectrum(&rec.channel(0), 32, 256);
    let band = |lo: usize, hi: usize| spec[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
    let low = band(1, 8); // ~4-30 Hz
    let mid = band(16, 40); // ~60-150 Hz
    let high = band(60, 110); // ~220-400 Hz
    assert!(low > 10.0 * mid, "1/f slope missing: low {low} mid {mid}");
    assert!(
        mid > high,
        "spectrum should keep falling: mid {mid} high {high}"
    );
}

#[test]
fn resting_beta_peak_disappears_during_movement() {
    let mut profile = RegionProfile::arm().without_spikes();
    profile.beta_amplitude_uv = 60.0; // emphasize the rhythm for a clean peak
    let per_s = 30_000;
    let rec = RecordingConfig::new(profile)
        .channels(1)
        .duration_ms(4000)
        .movement_at(2 * per_s, 4 * per_s)
        .generate(302);
    let ch = rec.channel(0);
    let rest = spectrum(&ch[0..2 * per_s], 32, 256);
    let moving = spectrum(&ch[2 * per_s..4 * per_s], 32, 256);
    // Beta at 20 Hz -> bin ~5.5 with 3.66 Hz bins.
    let beta = |s: &[f64]| s[4..8].iter().sum::<f64>();
    let rest_beta = beta(&rest);
    let move_beta = beta(&moving);
    assert!(
        rest_beta > 5.0 * move_beta,
        "beta desynchronization missing: rest {rest_beta} vs move {move_beta}"
    );
}

#[test]
fn ictal_rhythm_dominates_the_seizure_spectrum() {
    let per_s = 30_000;
    let rec = RecordingConfig::new(RegionProfile::arm().without_spikes())
        .channels(1)
        .duration_ms(4000)
        .seizure_at(2 * per_s, 4 * per_s)
        .generate(303);
    let ch = rec.channel(0);
    let rest = spectrum(&ch[0..2 * per_s], 32, 256);
    let ictal = spectrum(&ch[2 * per_s..4 * per_s], 32, 256);
    // 4 Hz discharge -> bin ~1 with 3.66 Hz bins.
    let delta = |s: &[f64]| s[1..3].iter().sum::<f64>();
    assert!(
        delta(&ictal) > 20.0 * delta(&rest),
        "ictal rhythm missing: {} vs {}",
        delta(&ictal),
        delta(&rest)
    );
}

#[test]
fn cross_channel_synchrony_rises_during_seizures() {
    let per_s = 30_000;
    let rec = RecordingConfig::new(RegionProfile::arm())
        .channels(2)
        .duration_ms(2000)
        .seizure_at(per_s, 2 * per_s)
        .generate(304);
    let a = rec.channel(0);
    let b = rec.channel(1);
    let corr = |x: &[i16], y: &[i16]| {
        let n = x.len() as f64;
        let mx = x.iter().map(|&v| v as f64).sum::<f64>() / n;
        let my = y.iter().map(|&v| v as f64).sum::<f64>() / n;
        let mut cov = 0.0;
        let mut vx = 0.0;
        let mut vy = 0.0;
        for (&xi, &yi) in x.iter().zip(y) {
            cov += (xi as f64 - mx) * (yi as f64 - my);
            vx += (xi as f64 - mx).powi(2);
            vy += (yi as f64 - my).powi(2);
        }
        cov / (vx * vy).sqrt()
    };
    let rest = corr(&a[0..per_s], &b[0..per_s]);
    let ictal = corr(&a[per_s..2 * per_s], &b[per_s..2 * per_s]);
    assert!(
        ictal > rest + 0.1,
        "synchrony should rise: rest {rest:.3} ictal {ictal:.3}"
    );
    assert!(ictal > 0.8, "ictal synchrony {ictal:.3} too low");
}
