//! End-to-end integration tests: every task pipeline on synthetic
//! recordings, with functional correctness checks against ground truth.

use halo::core::tasks::{movement, seizure, spike};
use halo::core::{HaloConfig, HaloSystem, SystemError, Task};
use halo::kernels::{Aes128, DwtmaCodec, Lz4Codec, LzmaCodec};
use halo::signal::{EpisodeKind, Recording, RecordingConfig, RegionProfile};

fn arm_recording(channels: usize, ms: usize, seed: u64) -> Recording {
    RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(ms)
        .generate(seed)
}

/// Rebuilds the interleaver output ordering (depth-run channel-major).
fn interleaved_bytes(rec: &Recording, depth: usize) -> Vec<u8> {
    let mut out = Vec::new();
    let n = rec.samples_per_channel();
    let mut t = 0;
    while t < n {
        let end = (t + depth).min(n);
        for c in 0..rec.channels() {
            for tt in t..end {
                out.extend_from_slice(&rec.frame(tt)[c].to_le_bytes());
            }
        }
        t = end;
    }
    out
}

#[test]
fn lz4_pipeline_is_lossless() {
    let config = HaloConfig::small_test(4);
    let rec = arm_recording(4, 60, 1);
    let mut sys = HaloSystem::new(Task::CompressLz4, config.clone()).unwrap();
    let metrics = sys.process(&rec).unwrap();
    let codec = Lz4Codec::new(config.lz_history)
        .unwrap()
        .with_block_size(config.block_bytes);
    let plain = codec.decompress(&metrics.radio_stream).unwrap();
    assert_eq!(plain, interleaved_bytes(&rec, config.interleave_depth));
}

#[test]
fn lzma_pipeline_is_lossless_and_beats_lz4() {
    let config = HaloConfig::small_test(4);
    let rec = arm_recording(4, 80, 2);
    let mut lzma = HaloSystem::new(Task::CompressLzma, config.clone()).unwrap();
    let mut lz4 = HaloSystem::new(Task::CompressLz4, config.clone()).unwrap();
    let m_lzma = lzma.process(&rec).unwrap();
    let m_lz4 = lz4.process(&rec).unwrap();
    let codec = LzmaCodec::new(config.lz_history)
        .unwrap()
        .with_block_size(config.block_bytes);
    let plain = codec.decompress(&m_lzma.radio_stream).unwrap();
    assert_eq!(plain, interleaved_bytes(&rec, config.interleave_depth));
    assert!(
        m_lzma.radio_bytes < m_lz4.radio_bytes,
        "LZMA ({}) should out-compress LZ4 ({})",
        m_lzma.radio_bytes,
        m_lz4.radio_bytes
    );
}

#[test]
fn dwtma_pipeline_is_lossless() {
    let config = HaloConfig::small_test(4);
    let rec = arm_recording(4, 60, 3);
    let mut sys = HaloSystem::new(Task::CompressDwtma, config.clone()).unwrap();
    let metrics = sys.process(&rec).unwrap();
    let codec = DwtmaCodec::new(config.dwt_levels_compress)
        .unwrap()
        .with_block_samples(config.block_bytes / 2);
    let plain = codec.decompress(&metrics.radio_stream).unwrap();
    let expected: Vec<i16> = interleaved_bytes(&rec, config.interleave_depth)
        .chunks_exact(2)
        .map(|b| i16::from_le_bytes([b[0], b[1]]))
        .collect();
    assert_eq!(plain, expected);
}

#[test]
fn encryption_pipeline_round_trips() {
    let config = HaloConfig::small_test(4);
    let key = config.aes_key;
    let rec = arm_recording(4, 30, 4);
    let mut sys = HaloSystem::new(Task::EncryptRaw, config).unwrap();
    let metrics = sys.process(&rec).unwrap();
    let plain = Aes128::new(key).decrypt_ecb(&metrics.radio_stream);
    let expected = rec.to_bytes_le();
    assert_eq!(&plain[..expected.len()], &expected[..]);
}

#[test]
fn neo_spike_detection_finds_most_spikes_and_cuts_bandwidth() {
    let channels = 4;
    let config = HaloConfig::small_test(channels);
    let baseline = RecordingConfig::new(RegionProfile::arm().without_spikes())
        .channels(channels)
        .duration_ms(80)
        .generate(5);
    let threshold =
        spike::calibrate_threshold(Task::SpikeDetectNeo, &config, &baseline, 1.5).unwrap();
    let config = config.spike_threshold(threshold);

    let rec = arm_recording(channels, 150, 6);
    let mut sys = HaloSystem::new(Task::SpikeDetectNeo, config).unwrap();
    let metrics = sys.process(&rec).unwrap();

    // Radio bandwidth collapses relative to the raw stream (§III: spike
    // rarity is what makes detection a compressor).
    assert!(
        metrics.bandwidth_fraction() < 0.35,
        "gate passed {:.1}% of the stream",
        100.0 * metrics.bandwidth_fraction()
    );

    // Detector recall: most ground-truth spikes coincide with a positive
    // detection within a few samples.
    let positives = metrics.positive_detections();
    let spikes: usize = rec.spike_truth().iter().map(Vec::len).sum();
    let mut hits = 0;
    for (c, onsets) in rec.spike_truth().iter().enumerate() {
        let _ = c;
        for &onset in onsets {
            let found = positives
                .iter()
                .any(|&f| (f as i64 - onset as i64).abs() <= 40);
            if found {
                hits += 1;
            }
        }
    }
    let recall = hits as f64 / spikes.max(1) as f64;
    assert!(recall > 0.7, "recall {recall} over {spikes} spikes");
}

#[test]
fn dwt_spike_detection_cuts_bandwidth() {
    let channels = 4;
    let config = HaloConfig::small_test(channels);
    let baseline = RecordingConfig::new(RegionProfile::arm().without_spikes())
        .channels(channels)
        .duration_ms(80)
        .generate(7);
    let threshold =
        spike::calibrate_threshold(Task::SpikeDetectDwt, &config, &baseline, 1.5).unwrap();
    let config = config.spike_threshold(threshold);

    let rec = arm_recording(channels, 150, 8);
    let mut sys = HaloSystem::new(Task::SpikeDetectDwt, config).unwrap();
    let metrics = sys.process(&rec).unwrap();
    assert!(metrics.radio_bytes > 0, "no spikes passed at all");
    assert!(
        metrics.bandwidth_fraction() < 0.5,
        "gate passed {:.1}% of the stream",
        100.0 * metrics.bandwidth_fraction()
    );
}

#[test]
fn seizure_prediction_closed_loop_stimulates_during_ictal_activity() {
    let channels = 8;
    let config = HaloConfig::small_test(channels).channels(channels);
    let window = config.feature_window_frames();
    let train_a = RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(700)
        .seizure_at(6 * window, 14 * window)
        .generate(9);
    let train_b = RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(700)
        .seizure_at(12 * window, 20 * window)
        .generate(19);
    let svm = seizure::train(&config, &[&train_a, &train_b]).unwrap();
    let config = config.with_svm(svm);

    let test_rec = RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(700)
        .seizure_at(8 * window, 16 * window)
        .generate(10);
    let mut sys = HaloSystem::new(Task::SeizurePrediction, config).unwrap();
    let metrics = sys.process(&test_rec).unwrap();

    assert!(
        !metrics.stim_events.is_empty(),
        "no stimulation during seizure"
    );
    // Stimulation must be *inside or near* the seizure: the closed-loop
    // response (detection window + controller) lands within one feature
    // window of ictal activity.
    let ictal = test_rec
        .episodes()
        .iter()
        .find(|e| e.kind() == EpisodeKind::Seizure)
        .unwrap();
    for ev in &metrics.stim_events {
        let f = ev.frame as usize;
        assert!(
            f + window >= ictal.start() && f <= ictal.end() + window,
            "stimulated at {f}, seizure at {}..{}",
            ictal.start(),
            ictal.end()
        );
        assert_eq!(ev.commands.len(), 16, "full stimulation array");
    }
}

#[test]
fn movement_intent_closed_loop() {
    let channels = 4;
    let config = HaloConfig::small_test(channels);
    let window = config.feature_window_frames();
    let calib = RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(500)
        .movement_at(3 * window, 7 * window)
        .generate(11);
    let threshold = movement::calibrate_threshold(&config, &calib).unwrap();
    let config = config.movement_threshold(threshold);

    let session = RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(500)
        .movement_at(5 * window, 10 * window)
        .generate(18);
    let mut sys = HaloSystem::new(Task::MovementIntent, config).unwrap();
    let metrics = sys.process(&session).unwrap();
    assert!(
        !metrics.stim_events.is_empty(),
        "movement should trigger stimulation"
    );
    // No stimulation long before the movement starts.
    let movement_start = 5 * window;
    for ev in &metrics.stim_events {
        assert!(
            ev.frame as usize + window >= movement_start,
            "stimulated at rest: frame {}",
            ev.frame
        );
    }
}

#[test]
fn detection_latency_is_within_tens_of_milliseconds_of_window_end() {
    // The paper's closed-loop requirement: tens of milliseconds between
    // onset and stimulation (§I). With small test windows (~68 ms) the
    // first in-seizure window closes within ~2 windows of onset.
    let channels = 4;
    let config = HaloConfig::small_test(channels);
    let window = config.feature_window_frames();
    let train_a = RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(600)
        .seizure_at(5 * window, 12 * window)
        .generate(13);
    let train_b = RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(600)
        .seizure_at(9 * window, 15 * window)
        .generate(15);
    let svm = seizure::train(&config, &[&train_a, &train_b]).unwrap();
    let config = config.with_svm(svm);
    let test_rec = RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(600)
        .seizure_at(6 * window, 13 * window)
        .generate(14);
    let mut sys = HaloSystem::new(Task::SeizurePrediction, config).unwrap();
    let metrics = sys.process(&test_rec).unwrap();
    let onset = 6 * window;
    if let Some(first) = metrics.stim_events.first() {
        let latency_windows = (first.frame as f64 - onset as f64) / window as f64;
        assert!(
            latency_windows <= 3.0,
            "stimulation lagged onset by {latency_windows} windows"
        );
    } else {
        panic!("no stimulation events");
    }
}

#[test]
fn calibration_helpers_return_typed_errors_instead_of_panicking() {
    let config = HaloConfig::small_test(4);

    // Wrong task class for spike calibration.
    let rec = arm_recording(4, 40, 21);
    let err = spike::detector_values(Task::CompressLz4, &config, &rec).unwrap_err();
    assert!(
        matches!(err, SystemError::Calibration { ref what } if what.contains("not a spike-detection task")),
        "unexpected error: {err}"
    );

    // Baseline too short to produce any detector output.
    let empty = RecordingConfig::new(RegionProfile::arm().without_spikes())
        .channels(4)
        .duration_ms(0)
        .generate(22);
    let err = spike::calibrate_threshold(Task::SpikeDetectNeo, &config, &empty, 1.5).unwrap_err();
    assert!(
        matches!(err, SystemError::Calibration { .. }),
        "unexpected error: {err}"
    );

    // Movement calibration on a recording with no movement episodes.
    let quiet = arm_recording(4, 300, 23);
    let err = movement::calibrate_threshold(&config, &quiet).unwrap_err();
    assert!(
        matches!(err, SystemError::Calibration { ref what } if what.contains("movement")),
        "unexpected error: {err}"
    );

    // SVM training with only one class present.
    let window = config.feature_window_frames();
    let all_seizure = RecordingConfig::new(RegionProfile::arm())
        .channels(4)
        .duration_ms(600)
        .seizure_at(0, 100 * window)
        .generate(24);
    let err = seizure::train(&config, &[&all_seizure]).unwrap_err();
    assert!(
        matches!(err, SystemError::Calibration { ref what } if what.contains("both classes")),
        "unexpected error: {err}"
    );
}
