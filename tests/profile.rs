//! Cycle-profiler integration: accounting neutrality, exact phase
//! tiling, batched-dispatch equivalence, and reconfiguration epochs over
//! real end-to-end streams.

use halo::core::{HaloConfig, HaloSystem, Task};
use halo::signal::{Recording, RecordingConfig, RegionProfile};
use halo::telemetry::{json, CycleProfile, Phase, ProfileDiff};

const CHANNELS: usize = 8;

fn recording(ms: usize, seed: u64) -> Recording {
    RecordingConfig::new(RegionProfile::arm())
        .channels(CHANNELS)
        .duration_ms(ms)
        .generate(seed)
}

fn profiled_run(task: Task, rec: &Recording) -> (HaloSystem, CycleProfile) {
    let mut sys = HaloSystem::new(task, HaloConfig::small_test(CHANNELS)).unwrap();
    sys.attach_profile();
    sys.process(rec).unwrap();
    let profile = sys.profile("dev").expect("profiler attached");
    (sys, profile)
}

#[test]
fn armed_profiler_is_accounting_neutral() {
    // The profiler observes the deterministic counters; arming it must
    // not perturb a single one of them, on any pipeline.
    let rec = recording(60, 11);
    for task in Task::all() {
        let mut bare = HaloSystem::new(task, HaloConfig::small_test(CHANNELS)).unwrap();
        let bare_metrics = bare.process(&rec).unwrap();
        let (armed, _) = profiled_run(task, &rec);
        assert_eq!(
            bare.runtime().slot_totals(),
            armed.runtime().slot_totals(),
            "{}: slot totals diverged under profiling",
            task.label()
        );
        let mut armed2 = HaloSystem::new(task, HaloConfig::small_test(CHANNELS)).unwrap();
        armed2.attach_profile();
        let armed_metrics = armed2.process(&rec).unwrap();
        assert_eq!(bare_metrics.frames, armed_metrics.frames);
        assert_eq!(bare_metrics.input_bytes, armed_metrics.input_bytes);
        assert_eq!(bare_metrics.radio_stream, armed_metrics.radio_stream);
    }
}

#[test]
fn phases_tile_busy_cycles_exactly() {
    // ingest + compute + drain + quiet-skip must equal the slot's busy
    // cycles with no residue — the attribution is a partition, not an
    // estimate.
    let rec = recording(60, 12);
    for task in Task::all() {
        let (sys, profile) = profiled_run(task, &rec);
        let busy: u64 = sys
            .runtime()
            .slot_totals()
            .iter()
            .map(|t| t.busy_cycles)
            .sum();
        assert_eq!(
            profile.total_cycles(),
            busy,
            "{}: phases do not tile busy cycles",
            task.label()
        );
        assert!(profile.total_energy_uj().is_finite());
        assert!(profile.total_energy_uj() >= 0.0);
    }
}

#[test]
fn batched_dispatch_shifts_phases_but_preserves_totals() {
    // Quiet chunks dispatched on the batched fast path are attributed to
    // quiet-skip in one charge; the scalar path attributes the same
    // frames to ingest/compute. Either way the totals must agree — the
    // two paths are bit-identical, so their attribution mass is too.
    let rec = recording(80, 13);
    for task in [Task::SeizurePrediction, Task::MovementIntent] {
        let run = |block_dispatch: bool| {
            let mut sys = HaloSystem::new(task, HaloConfig::small_test(CHANNELS)).unwrap();
            sys.set_block_dispatch(block_dispatch);
            sys.attach_profile();
            sys.process(&rec).unwrap();
            sys.profile("dev").expect("profiler attached")
        };
        let batched = run(true);
        let scalar = run(false);
        assert_eq!(batched.frames, scalar.frames);
        assert_eq!(
            batched.total_cycles(),
            scalar.total_cycles(),
            "{}: dispatch mode changed total attribution",
            task.label()
        );
        let quiet = |p: &CycleProfile| -> u64 {
            p.rows
                .iter()
                .filter(|r| r.phase == Phase::QuietSkip)
                .map(|r| r.cycles)
                .sum()
        };
        assert_eq!(
            quiet(&scalar),
            0,
            "scalar path must never charge quiet-skip"
        );
        assert!(
            quiet(&batched) > 0,
            "{}: batched path found no quiet chunks",
            task.label()
        );
    }
}

#[test]
fn identical_runs_diff_empty_and_profiles_are_deterministic() {
    let rec = recording(60, 14);
    let (_, a) = profiled_run(Task::CompressLzma, &rec);
    let (_, b) = profiled_run(Task::CompressLzma, &rec);
    assert_eq!(a.folded(), b.folded());
    assert_eq!(a.to_json(), b.to_json());
    json::parse(&a.to_json()).expect("profile JSON parses");
    assert!(ProfileDiff::between(&a, &b, 0.001).is_empty());
    // A run twice as long pays the same per-frame ingest cost: the
    // diff's normalization must cancel the length difference out of the
    // steady-state phases. (Drain is a fixed end-of-stream cost and the
    // adaptive compressor's compute is data-dependent, so those phases
    // may genuinely move — that is signal, not noise.)
    let (_, long) = profiled_run(Task::CompressLzma, &recording(120, 14));
    let diff = ProfileDiff::between(&a, &long, 0.05);
    let steady: Vec<&str> = diff
        .rows
        .iter()
        .map(|r| r.frame.as_str())
        .filter(|f| f.ends_with(";ingest") || f.ends_with(";quiet-skip"))
        .collect();
    assert!(
        steady.is_empty(),
        "run length leaked into steady-state per-frame deltas: {steady:?}"
    );
}

#[test]
fn reconfigure_banks_attribution_across_pipeline_epochs() {
    // Swapping tasks mid-session must not lose the retiring pipeline's
    // cycles: the profile accumulates one subtree per pipeline epoch.
    let rec = recording(50, 15);
    let mut sys = HaloSystem::new(Task::CompressLz4, HaloConfig::small_test(CHANNELS)).unwrap();
    sys.attach_profile();
    sys.process(&rec).unwrap();
    let first_epoch = sys.profile("dev").unwrap();
    sys.reconfigure(Task::SpikeDetectNeo).unwrap();
    sys.process(&rec).unwrap();
    let both = sys.profile("dev").unwrap();

    let pipelines: Vec<&str> = {
        let mut p: Vec<&str> = both.rows.iter().map(|r| r.pipeline.as_str()).collect();
        p.sort();
        p.dedup();
        p
    };
    assert_eq!(pipelines, vec!["Compr(LZ4)", "SpikeDet(NEO)"]);
    assert_eq!(both.frames, 2 * first_epoch.frames);
    let lz4_cycles = |p: &CycleProfile| -> u64 {
        p.rows
            .iter()
            .filter(|r| r.pipeline == "Compr(LZ4)")
            .map(|r| r.cycles)
            .sum()
    };
    assert_eq!(
        lz4_cycles(&both),
        lz4_cycles(&first_epoch),
        "reconfigure lost the retiring epoch's attribution"
    );
    assert!(both.folded().starts_with("dev;"));
}
