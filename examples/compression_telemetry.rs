//! Compression telemetry: run all three lossless compression pipelines on
//! arm- and leg-region recordings and compare ratio, radio bandwidth, and
//! power — the workload behind Figures 5, 7–9 of the paper.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example compression_telemetry
//! ```

use halo::core::{HaloConfig, HaloSystem, Task};
use halo::kernels::{DwtmaCodec, LzmaCodec};
use halo::signal::{RecordingConfig, RegionProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let channels = 16;
    println!(
        "{:<14} {:<6} {:>8} {:>12} {:>10} {:>10}",
        "task", "region", "ratio", "radio kbps", "PEs mW", "total mW"
    );
    for profile in [RegionProfile::arm(), RegionProfile::leg()] {
        let recording = RecordingConfig::new(profile.clone())
            .channels(channels)
            .duration_ms(400)
            .generate(7)
            .clone();
        for task in [Task::CompressLz4, Task::CompressLzma, Task::CompressDwtma] {
            let config = HaloConfig::new().channels(channels);
            let mut system = HaloSystem::new(task, config.clone())?;
            let metrics = system.process(&recording)?;
            let power = system.power_report(&metrics);

            // Prove losslessness: decode the radio stream with the
            // monolithic decoder and compare sizes.
            match task {
                Task::CompressLzma => {
                    let codec =
                        LzmaCodec::new(config.lz_history)?.with_block_size(config.block_bytes);
                    let plain = codec.decompress(&metrics.radio_stream)?;
                    assert_eq!(plain.len() as u64, metrics.input_bytes);
                }
                Task::CompressDwtma => {
                    let codec = DwtmaCodec::new(config.dwt_levels_compress)?
                        .with_block_samples(config.block_bytes / 2);
                    let plain = codec.decompress(&metrics.radio_stream)?;
                    assert_eq!(plain.len() as u64 * 2, metrics.input_bytes);
                }
                _ => {}
            }

            println!(
                "{:<14} {:<6} {:>8.2} {:>12.0} {:>10.2} {:>10.2}",
                task.label(),
                profile.name,
                metrics.compression_ratio().unwrap_or(1.0),
                metrics.radio_bits_per_second() / 1e3,
                power.pe_total_mw(),
                power.processing_mw()
            );
            assert!(power.within_budget(), "{task} exceeded the budget");
        }
    }
    println!("\nall pipelines lossless and within the 12 mW processing budget");
    Ok(())
}
