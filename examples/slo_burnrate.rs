//! Burn-rate alerting under a battery brownout: the slow-burn SLO alert
//! fires while the implant is still *inside* its hard power envelope,
//! long before the envelope itself trips.
//!
//! The narrative: a calibration pass measures the pipeline's steady
//! per-window draw, then the session re-runs under a shrinking power
//! budget — a mild brownout (budget squeezed to just above the draw, so
//! utilization climbs past the SLO margin but nothing hard-fails)
//! followed by a deep brownout (budget below the draw, tripping the
//! `PowerBudget` critical). The continuous-telemetry layer's burn-rate
//! engine must raise its `SloBurnRate` warning during the mild phase —
//! strictly earlier than the hard trip — which is the entire point of
//! error-budget alerting: hours of warning instead of a page.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example slo_burnrate [-- <out-dir>]
//! ```
//!
//! Writes `tsdb_snapshot.json` and `continuous.prom` under `<out-dir>`
//! (default `target/slo_burnrate`).

use std::path::PathBuf;
use std::sync::Arc;

use halo::core::{HaloConfig, HaloSystem, Task};
use halo::faults::BrownoutWindow;
use halo::signal::{Recording, RecordingConfig, RegionProfile};
use halo::telemetry::{
    expose, json, summary, AlertKind, AlertPolicy, ContinuousConfig, ContinuousTelemetry,
    HealthConfig, HealthMonitor, Recorder, Severity, SloConfig, TsdbConfig,
};

const CHANNELS: usize = 8;
const SAMPLE_RATE_HZ: u32 = 30_000;

/// Builds a fresh system + continuous layer for one run over `frames`.
fn build(
    frames: u64,
    budget_mw: f64,
) -> Result<(HaloSystem, Arc<ContinuousTelemetry>), Box<dyn std::error::Error>> {
    let config = HaloConfig::small_test(CHANNELS).channels(CHANNELS);
    let window = config.feature_window_frames() as u64;
    let recorder = Arc::new(Recorder::new(65_536).with_sample_rate_hz(SAMPLE_RATE_HZ));
    let monitor = Arc::new(HealthMonitor::new(
        recorder,
        HealthConfig {
            budget_mw,
            policy: AlertPolicy::Record,
            ..HealthConfig::default()
        },
    ));
    let continuous = Arc::new(ContinuousTelemetry::new(
        monitor,
        ContinuousConfig {
            tsdb: TsdbConfig {
                // Tighten the downsampling tiers so a short demo session
                // still seals buckets (the defaults are sized for hours).
                bucket_frames: [20 * window, 120 * window],
                ..TsdbConfig::default()
            },
            slo: SloConfig::scaled_to(frames),
            ..ContinuousConfig::default()
        },
    ));
    let mut system = HaloSystem::new(Task::CompressLz4, config)?;
    system.attach_continuous(continuous.clone());
    Ok((system, continuous))
}

/// Per-window draws from a finished run's time-series snapshot, dropping
/// the final (possibly partial) window.
fn window_draws(continuous: &ContinuousTelemetry) -> Vec<f64> {
    let snapshot = json::parse(&continuous.snapshot_json()).expect("snapshot must parse");
    let series = snapshot
        .get("series")
        .and_then(|s| s.as_array())
        .expect("series array");
    let power = series
        .iter()
        .find(|s| s.get("name").and_then(|n| n.as_str()) == Some("power_mw"))
        .expect("power_mw series");
    let mut draws: Vec<f64> = power
        .get("raw")
        .and_then(|r| r.as_array())
        .expect("raw points")
        .iter()
        .filter_map(|p| p.get("v").and_then(|v| v.as_f64()))
        .collect();
    draws.pop();
    draws
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("target/slo_burnrate"), PathBuf::from);
    let config = HaloConfig::small_test(CHANNELS).channels(CHANNELS);
    let window = config.feature_window_frames() as u64;
    let frames = 240 * window;
    let recording: Recording = RecordingConfig::new(RegionProfile::arm())
        .channels(CHANNELS)
        .samples(frames as usize)
        .generate(41);

    // --- Calibration: what does this pipeline actually draw? ---
    let (mut reference, ref_continuous) = build(frames, HealthConfig::default().budget_mw)?;
    reference.process(&recording)?;
    let draws = window_draws(&ref_continuous);
    let steady_max = draws.iter().cloned().fold(f64::MIN, f64::max);
    let steady_min = draws.iter().cloned().fold(f64::MAX, f64::min);
    println!(
        "calibration: {} windows, draw {:.4}..{:.4} mW",
        draws.len(),
        steady_min,
        steady_max
    );

    // --- The brownout schedule ---
    // Healthy: utilization ~0.5, well under the 0.8 SLO margin. Mild
    // brownout: budget just above the worst window — nothing trips, but
    // every window burns error budget. Deep brownout: budget below the
    // *best* window, so the hard envelope must trip.
    let healthy_mw = steady_max * 2.0;
    let mild = BrownoutWindow {
        start_frame: frames / 4,
        end_frame: frames * 85 / 100,
        budget_mw: steady_max * 1.02,
    };
    let deep = BrownoutWindow {
        start_frame: frames * 88 / 100,
        end_frame: frames,
        budget_mw: steady_min * 0.9,
    };
    println!(
        "budgets: healthy {:.3} mW, mild {:.3} mW @ [{}, {}), deep {:.3} mW @ [{}, {})",
        healthy_mw,
        mild.budget_mw,
        mild.start_frame,
        mild.end_frame,
        deep.budget_mw,
        deep.start_frame,
        deep.end_frame
    );

    // --- Stream the session, browning out the budget mid-flight ---
    let (mut system, continuous) = build(frames, healthy_mw)?;
    let monitor = continuous.monitor().clone();
    let samples = recording.samples();
    let mut frame = 0u64;
    while frame < frames {
        let batch = window.min(frames - frame);
        let budget = if deep.contains(frame) {
            deep.budget_mw
        } else if mild.contains(frame) {
            mild.budget_mw
        } else {
            healthy_mw
        };
        if budget != monitor.budget_mw() {
            monitor.set_budget_mw(budget);
        }
        let lo = (frame as usize) * CHANNELS;
        let hi = lo + (batch as usize) * CHANNELS;
        system.push_block(&samples[lo..hi])?;
        frame += batch;
    }
    let metrics = system.finalize()?;
    println!("processed {} frames\n", metrics.frames);

    // --- The punchline: slow burn fires before the envelope trips ---
    let status = monitor.status();
    let first_burn = status
        .alerts
        .iter()
        .filter(|a| matches!(a.kind(), AlertKind::SloBurnRate { .. }))
        .map(|a| a.first_frame)
        .min()
        .expect("the mild brownout must fire a burn-rate alert");
    let first_trip = status
        .alerts
        .iter()
        .filter(|a| matches!(a.kind(), AlertKind::PowerBudget { .. }))
        .map(|a| a.first_frame)
        .min()
        .expect("the deep brownout must trip the power envelope");
    assert!(
        first_burn < first_trip,
        "burn-rate warning (frame {first_burn}) must precede the hard trip (frame {first_trip})"
    );
    println!(
        "slo burn-rate alert at frame {} — {} windows of warning before the envelope tripped at frame {}",
        first_burn,
        (first_trip - first_burn) / window,
        first_trip
    );
    for alert in &status.alerts {
        println!(
            "  [{}] {} frames {}..{} (x{})",
            alert.severity().label(),
            alert.kind().name(),
            alert.first_frame,
            alert.last_frame,
            alert.repeat_count
        );
    }
    assert!(
        status.severity_counts[Severity::Critical as usize] > 0,
        "deep brownout must raise criticals"
    );

    // --- Continuous-layer state: series, burn rates, anomalies ---
    let cs = continuous.status();
    println!("\n{}", summary::render_continuous(&cs));

    std::fs::create_dir_all(&out_dir)?;
    let snapshot = continuous.snapshot_json();
    json::validate(&snapshot).expect("snapshot must be valid JSON");
    let snapshot_path = out_dir.join("tsdb_snapshot.json");
    std::fs::write(&snapshot_path, &snapshot)?;
    println!(
        "wrote {} ({} bytes)",
        snapshot_path.display(),
        snapshot.len()
    );

    let exposition = expose::render_continuous(&cs);
    assert!(exposition.contains("halo_slo_burn_rate"));
    let prom_path = out_dir.join("continuous.prom");
    std::fs::write(&prom_path, &exposition)?;
    println!("wrote {} ({} bytes)", prom_path.display(), exposition.len());
    Ok(())
}
