//! Quick start: configure HALO for spike detection and stream synthetic
//! motor-cortex data through it.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use halo::core::tasks::spike;
use halo::core::{HaloConfig, HaloSystem, Task};
use halo::signal::{RecordingConfig, RegionProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 16-channel array; everything else at the paper's defaults.
    let channels = 16;
    let config = HaloConfig::new().channels(channels);

    // Calibrate the NEO threshold on a spike-free baseline with the same
    // background statistics, as a clinician would before enabling the
    // detector.
    let baseline = RecordingConfig::new(RegionProfile::arm().without_spikes())
        .channels(channels)
        .duration_ms(100)
        .generate(1);
    let threshold = spike::calibrate_threshold(Task::SpikeDetectNeo, &config, &baseline, 1.5)?;
    println!("calibrated NEO threshold: {threshold}");

    // Configure the device. The RISC-V controller programs the switch
    // fabric; the runtime validates every route.
    let config = config.spike_threshold(threshold);
    let mut system = HaloSystem::new(Task::SpikeDetectNeo, config)?;

    // Stream 200 ms of synthetic arm-region activity.
    let recording = RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(200)
        .generate(42);
    let metrics = system.process(&recording)?;

    let truth: usize = recording.spike_truth().iter().map(Vec::len).sum();
    println!(
        "streamed {} frames ({:.0} ms), {} ground-truth spikes",
        metrics.frames,
        metrics.duration_s * 1e3,
        truth
    );
    println!(
        "radio transmitted {} of {} raw bytes ({:.1}% of the stream)",
        metrics.radio_bytes,
        metrics.input_bytes,
        100.0 * metrics.bandwidth_fraction()
    );

    let power = system.power_report(&metrics);
    print!("{power}");
    assert!(power.within_budget(), "spike detection must fit the budget");
    Ok(())
}
