//! Secure exfiltration: AES-128 encrypt the raw stream before the radio
//! ("HIPAA, NIST, and NSA require using AES with an encryption key of at
//! least 128 bits", §III) and verify an authorized receiver recovers the
//! data exactly.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example secure_exfiltration
//! ```

use halo::core::{HaloConfig, HaloSystem, Task};
use halo::kernels::Aes128;
use halo::signal::{RecordingConfig, RegionProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let channels = 16;
    let key: [u8; 16] = *b"patient-key-0042";
    let mut config = HaloConfig::new().channels(channels);
    config.aes_key = key;

    let mut system = HaloSystem::new(Task::EncryptRaw, config)?;
    let recording = RecordingConfig::new(RegionProfile::leg())
        .channels(channels)
        .duration_ms(100)
        .generate(9);
    let metrics = system.process(&recording)?;

    // The ciphertext must not resemble the plaintext…
    let plain = recording.to_bytes_le();
    let same = metrics
        .radio_stream
        .iter()
        .zip(&plain)
        .filter(|(a, b)| a == b)
        .count();
    println!(
        "ciphertext/plaintext byte coincidence: {:.2}% (chance level ~0.4%)",
        100.0 * same as f64 / plain.len() as f64
    );
    assert!(same * 50 < plain.len(), "ciphertext leaks plaintext");

    // …but the clinic (with the key) recovers it exactly.
    let receiver = Aes128::new(key);
    let decrypted = receiver.decrypt_ecb(&metrics.radio_stream);
    assert_eq!(&decrypted[..plain.len()], &plain[..]);
    println!("receiver decrypted {} bytes exactly", plain.len());

    // Encrypting the full stream costs the most radio power of any task
    // (Figure 5) but still fits the budget.
    let power = system.power_report(&metrics);
    print!("{power}");
    assert!(power.within_budget());
    Ok(())
}
