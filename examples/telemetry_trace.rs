//! Minimal telemetry walkthrough: instrument a compression pipeline,
//! print the counter summary, and export a Perfetto-loadable trace.
//!
//! ```text
//! cargo run --release --example telemetry_trace [out.json]
//! ```
//!
//! Open the written file at <https://ui.perfetto.dev> (or
//! `chrome://tracing`): one track per processing element with its busy
//! windows, a counter track for NoC traffic, and per-clock-domain power
//! timelines.

use std::sync::Arc;

use halo::core::{HaloConfig, HaloSystem, Task};
use halo::signal::{RecordingConfig, RegionProfile};
use halo::telemetry::{chrome_trace, summary, Recorder};

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "telemetry_trace.json".to_string());

    let channels = 8;
    let config = HaloConfig::small_test(channels).channels(channels);
    let sample_rate = config.sample_rate_hz;
    let mut system = HaloSystem::new(Task::CompressLzma, config).unwrap();

    // A Recorder is a TelemetrySink holding atomic counters and a bounded
    // event ring; share it with the system, keep a handle for export.
    let recorder = Arc::new(Recorder::new(16_384).with_sample_rate_hz(sample_rate));
    system.attach_telemetry(recorder.clone());

    let recording = RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(250)
        .generate(42);
    let metrics = system.process(&recording).unwrap();

    println!("{}", summary::render(&recorder));
    println!(
        "compression ratio {:.2}, NoC bus utilization {:.4}%",
        metrics.compression_ratio().unwrap_or(1.0),
        100.0 * metrics.noc_bus_utilization()
    );

    let trace = chrome_trace::render(&recorder);
    std::fs::write(&out, &trace).unwrap();
    println!(
        "wrote {out} ({} bytes) — open at ui.perfetto.dev",
        trace.len()
    );
}
