//! Always-on cycle profiling of a seizure-prediction session, exported
//! as a collapsed-stack flamegraph.
//!
//! The narrative: a clinician asks "where do this implant's cycles and
//! microjoules actually go?" The profiler rides the deterministic cost
//! model — no wall clocks, no sampling — so the answer is exact,
//! byte-stable across machines, and cheap enough to leave armed in
//! production (the `profile_overhead` bench section holds it under 2%).
//! One replay yields a hierarchical attribution over
//! *device → pipeline → PE@slot → kernel phase* (ingest / compute /
//! drain / quiet-skip), folded into the collapsed-stack format that
//! inferno, speedscope, and `flamegraph.pl` consume directly, plus the
//! `halo_profile_*` Prometheus families.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example profile_flamegraph [-- <out-dir>]
//! ```
//!
//! Writes `profile.folded` and `profile.prom` under `<out-dir>`
//! (default `target/profile_flamegraph`).

use std::path::PathBuf;

use halo::core::{HaloConfig, HaloSystem, Task};
use halo::pe::PeKind;
use halo::signal::{RecordingConfig, RegionProfile};
use halo::telemetry::json;

const CHANNELS: usize = 8;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("target/profile_flamegraph"), PathBuf::from);

    let recording = RecordingConfig::new(RegionProfile::arm())
        .channels(CHANNELS)
        .duration_ms(200)
        .generate(17);
    let config = HaloConfig::small_test(CHANNELS).channels(CHANNELS);
    let mut system = HaloSystem::new(Task::SeizurePrediction, config)?;
    system.attach_profile();
    let metrics = system.process(&recording)?;
    let profile = system
        .profile("implant-07")
        .expect("profiler was attached before the stream");
    println!(
        "profiled {} frames: {} modeled cycles, {:.1} uJ across {} attribution frames\n",
        profile.frames,
        profile.total_cycles(),
        profile.total_energy_uj(),
        profile.rows.len()
    );
    assert_eq!(profile.frames, metrics.frames);

    // Top-5 self-cycle frames — the terminal verdict.
    println!("{}", profile.render_summary(5));

    // Annotate the dominant frame with its cost-model anchor: the frame
    // path names the PE, and `PeKind::from_name` maps it back to the
    // cycles-per-token the attribution was built from.
    let (frame, share) = profile.dominant_frame().expect("profile is non-empty");
    let pe_name = frame
        .split(';')
        .nth(1)
        .and_then(|s| s.split('@').next())
        .unwrap_or("");
    if let Some(kind) = PeKind::from_name(pe_name) {
        println!(
            "dominant: {frame} holds {:.1}% of cycles ({} charges {} cycles/token)\n",
            share * 100.0,
            kind.name(),
            kind.cycles_per_token()
        );
    }

    std::fs::create_dir_all(&out_dir)?;

    let folded = profile.folded();
    assert!(!folded.is_empty(), "profile must attribute cycles");
    assert!(
        folded.lines().all(|l| l.starts_with("implant-07;")),
        "every stack is rooted at the device"
    );
    let folded_path = out_dir.join("profile.folded");
    std::fs::write(&folded_path, &folded)?;
    println!(
        "wrote {} ({} stacks)",
        folded_path.display(),
        folded.lines().count()
    );

    let exposition = profile.render_exposition();
    assert!(exposition.contains("halo_profile_cycles_total"));
    assert!(exposition.contains("halo_profile_energy_microjoules"));
    let prom_path = out_dir.join("profile.prom");
    std::fs::write(&prom_path, &exposition)?;
    println!("wrote {} ({} bytes)", prom_path.display(), exposition.len());

    json::validate(&profile.to_json()).expect("profile JSON must be valid");
    Ok(())
}
