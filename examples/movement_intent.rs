//! Movement intent: detect beta-band desynchronization and stimulate only
//! while the limb is in use — "a better option is to stimulate brain
//! tissue when neuronal firing indicates use of the affected limb" (§III).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example movement_intent
//! ```

use halo::core::tasks::movement;
use halo::core::{HaloConfig, HaloSystem, Task};
use halo::signal::{EpisodeKind, RecordingConfig, RegionProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let channels = 8;
    let config = HaloConfig::small_test(channels).channels(channels);
    let window = config.feature_window_frames();

    // Calibration session: alternating rest and movement.
    let calib = RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(600)
        .movement_at(4 * window, 8 * window)
        .generate(5);
    let threshold = movement::calibrate_threshold(&config, &calib)?;
    println!("calibrated beta-power threshold: {threshold}");

    // Deploy.
    let config = config.movement_threshold(threshold);
    let mut system = HaloSystem::new(Task::MovementIntent, config)?;
    let session = RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(600)
        .movement_at(6 * window, 12 * window)
        .generate(17);
    let metrics = system.process(&session)?;

    let movement_span: Vec<(usize, usize)> = session
        .episodes()
        .iter()
        .filter(|e| e.kind() == EpisodeKind::Movement)
        .map(|e| (e.start(), e.end()))
        .collect();
    println!("movement episodes at {movement_span:?}");
    for event in &metrics.stim_events {
        println!(
            "stimulated {} channels at frame {}",
            event.commands.len(),
            event.frame
        );
    }
    assert!(
        !metrics.stim_events.is_empty(),
        "beta desynchronization should trigger stimulation"
    );

    let power = system.power_report(&metrics);
    print!("{power}");
    assert!(power.within_budget());
    Ok(())
}
