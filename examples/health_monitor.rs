//! Runtime health monitoring: run the seizure closed-loop task under the
//! safety-envelope watchdog, force a power-budget violation by lowering
//! the budget far below what the pipeline draws, and dump the black-box
//! post-mortem plus a Prometheus-style exposition.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example health_monitor [-- <out-dir>]
//! ```
//!
//! Writes `postmortem.json` and `exposition.prom` under `<out-dir>`
//! (default `target/health_monitor` — generated artifacts stay out of
//! the repository; CI validates and archives both).

use std::path::PathBuf;
use std::sync::Arc;

use halo::core::tasks::seizure;
use halo::core::{HaloConfig, HaloSystem, Task};
use halo::signal::{RecordingConfig, RegionProfile};
use halo::telemetry::{
    expose, json, summary, AlertKind, AlertPolicy, HealthConfig, HealthMonitor, Recorder,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("target/health_monitor"), PathBuf::from);
    let channels = 8;
    let config = HaloConfig::small_test(channels).channels(channels);
    let window = config.feature_window_frames();

    // --- Offline personalization, as in the seizure_closed_loop example ---
    let train_rec = RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(800)
        .seizure_at(8 * window, 16 * window)
        .generate(11);
    let svm = seizure::train(&config, &[&train_rec])?;
    let config = config.with_svm(svm);

    // --- Attach the watchdog with an induced overload ---
    // The real envelope is 15 mW; pretend the battery controller demanded
    // 1 µW so every sampling window violates the budget and the flight
    // recorder latches a post-mortem.
    let recorder = Arc::new(Recorder::new(65536).with_sample_rate_hz(30_000));
    let monitor = Arc::new(HealthMonitor::new(
        recorder,
        HealthConfig {
            budget_mw: 0.001,
            policy: AlertPolicy::Record,
            ..HealthConfig::default()
        },
    ));
    let mut system = HaloSystem::new(Task::SeizurePrediction, config)?;
    system.attach_health(monitor.clone());

    let session = RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(800)
        .seizure_at(10 * window, 20 * window)
        .generate(23);
    let metrics = system.process(&session)?;
    println!(
        "processed {} frames, {} stimulation events",
        metrics.frames,
        metrics.stim_events.len()
    );
    for stim in &metrics.stim_events {
        println!(
            "  stim at frame {}: {} channels, {} frame(s) detection-to-pulse",
            stim.frame,
            stim.commands.len(),
            stim.latency_frames
        );
    }

    // --- What did the watchdog see? ---
    let status = monitor.status();
    println!(
        "\nhealth: {} alerts ({} critical), worst window {:.3} mW vs {:.3} mW budget",
        status.total_alerts(),
        status.severity_counts[halo::telemetry::Severity::Critical as usize],
        status.worst_window.map_or(0.0, |(_, mw)| mw),
        status.budget_mw
    );
    let power_alerts = status
        .alerts
        .iter()
        .filter(|a| matches!(a.kind(), AlertKind::PowerBudget { .. }))
        .count();
    assert!(power_alerts >= 1, "induced overload must raise an alert");

    // --- Black-box post-mortem ---
    let dump = monitor
        .postmortem()
        .expect("a critical alert latches the flight recorder");
    json::validate(&dump).expect("post-mortem must be valid JSON");
    std::fs::create_dir_all(&out_dir)?;
    let postmortem_path = out_dir.join("postmortem.json");
    std::fs::write(&postmortem_path, &dump)?;
    println!("wrote {} ({} bytes)", postmortem_path.display(), dump.len());

    // --- Text summary + Prometheus exposition ---
    println!("\n{}", summary::render(monitor.recorder()));
    let exposition = expose::render_health(&monitor);
    assert!(exposition.contains("halo_frame_latency_ns_count"));
    let exposition_path = out_dir.join("exposition.prom");
    std::fs::write(&exposition_path, &exposition)?;
    println!(
        "wrote {} ({} bytes)",
        exposition_path.display(),
        exposition.len()
    );
    Ok(())
}
