//! Causal frame tracing and deterministic replay: run the seizure
//! closed-loop task with a 1-in-64 trace sampler, assemble the sampled
//! frames' span trees, print the critical-path attribution ("where did
//! the latency go?"), then capture the run to a trace log and replay it
//! through a fresh device, asserting bit-identical outputs.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example trace_replay [-- <out-dir>]
//! ```
//!
//! Writes `trace_log.json`, `trace_perfetto.json`, and
//! `trace_exposition.prom` under `<out-dir>` (default
//! `target/trace_replay` — generated artifacts stay out of the
//! repository; CI validates and archives all three; load the Perfetto
//! file at <https://ui.perfetto.dev> to see the span slices and flow
//! arrows).

use std::path::PathBuf;
use std::sync::Arc;

use halo::core::tasks::seizure;
use halo::core::{trace, HaloConfig, HaloSystem, Task};
use halo::signal::{RecordingConfig, RegionProfile};
use halo::telemetry::{
    chrome_trace, expose, json, summary, CriticalPathSummary, Recorder, SpanTree, TraceLog, Tracer,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("target/trace_replay"), PathBuf::from);
    let channels = 8;
    let config = HaloConfig::small_test(channels).channels(channels);
    let window = config.feature_window_frames();

    // --- Offline personalization, as in the seizure_closed_loop example ---
    let train_rec = RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(800)
        .seizure_at(8 * window, 16 * window)
        .generate(11);
    let svm = seizure::train(&config, &[&train_rec])?;
    let config = config.with_svm(svm);

    // --- Run with a recorder and a 1-in-64 deterministic trace sampler ---
    let recorder = Arc::new(Recorder::new(65536).with_sample_rate_hz(config.sample_rate_hz));
    let tracer = Arc::new(Tracer::new(0xA11CE, 64).with_done_capacity(4096));
    let mut system = HaloSystem::new(Task::SeizurePrediction, config.clone())?;
    system.attach_telemetry(recorder.clone());
    system.attach_tracing(tracer.clone());

    let session = RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(800)
        .seizure_at(10 * window, 20 * window)
        .generate(23);
    let metrics = system.process(&session)?;
    println!(
        "processed {} frames, {} stimulation events",
        metrics.frames,
        metrics.stim_events.len()
    );
    assert!(
        !metrics.stim_events.is_empty(),
        "scenario must trigger closed-loop stimulation"
    );

    // --- Span trees and critical-path attribution ---
    let stats = tracer.stats();
    let trees = tracer.trees();
    println!(
        "\nsampled {} of {} frames -> {} complete span trees",
        stats.sampled, metrics.frames, stats.completed
    );
    assert!(stats.sampled > 0, "1-in-64 sampling must fire");
    assert_eq!(
        stats.completed, stats.sampled,
        "every sampled frame must close into a tree"
    );
    for record in &trees {
        let tree = SpanTree::assemble(record)?;
        let total = tree.end_to_end_ns();
        let attributed: u64 = tree.attribution().iter().map(|h| h.ns).sum();
        // Acceptance: attribution covers 100% (±1%) of end-to-end latency.
        assert!(
            (attributed as f64 - total as f64).abs() <= total as f64 * 0.01,
            "attribution covers {attributed} of {total} ns"
        );
    }
    let agg = CriticalPathSummary::from_traces(&trees);
    println!("{}", summary::render_tracing(&tracer));
    if let Some((hop, fraction)) = agg.dominant() {
        println!(
            "=> p99-style verdict: latency dominated by {} ({}), {:.0}%",
            hop.label,
            hop.kind.label(),
            fraction * 100.0
        );
    }

    // --- Artifacts: trace log, Perfetto JSON, Prometheus exposition ---
    std::fs::create_dir_all(&out_dir)?;
    let log_path = out_dir.join("trace_log.json");
    let log = trace::capture(&system, &session, &metrics);
    let log_text = log.write();
    std::fs::write(&log_path, &log_text)?;
    println!("wrote {} ({} bytes)", log_path.display(), log_text.len());

    let perfetto = chrome_trace::render(&recorder);
    json::validate(&perfetto).expect("Perfetto trace must be valid JSON");
    assert!(
        perfetto.contains("\"cat\":\"trace\""),
        "span slices missing from the Perfetto trace"
    );
    let perfetto_path = out_dir.join("trace_perfetto.json");
    std::fs::write(&perfetto_path, &perfetto)?;
    println!(
        "wrote {} ({} bytes)",
        perfetto_path.display(),
        perfetto.len()
    );

    let exposition = expose::render_tracing(&tracer);
    assert!(exposition.contains("halo_trace_sampled_total"));
    let exposition_path = out_dir.join("trace_exposition.prom");
    std::fs::write(&exposition_path, &exposition)?;
    println!(
        "wrote {} ({} bytes)",
        exposition_path.display(),
        exposition.len()
    );

    // --- Deterministic replay through a fresh device ---
    let reread = TraceLog::read(&std::fs::read_to_string(&log_path)?)?;
    assert_eq!(reread, log, "trace log must survive serialization");
    let (replayed, report) = trace::replay(&reread, config)?;
    println!("\nreplay: {report}");
    assert!(report.identical(), "replay diverged: {report}");
    assert_eq!(replayed.radio_stream, metrics.radio_stream);
    println!(
        "replay reproduced {} radio bytes, {} detections, {} stim events bit-identically",
        replayed.radio_bytes,
        replayed.detections.len(),
        replayed.stim_events.len()
    );
    Ok(())
}
