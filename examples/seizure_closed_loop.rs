//! Closed-loop seizure prediction: train a patient-specific SVM offline,
//! load it onto the device, and watch the controller fire stimulation when
//! ictal activity appears — the paper's flagship closed-loop task.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example seizure_closed_loop
//! ```

use halo::core::tasks::seizure;
use halo::core::{HaloConfig, HaloSystem, Task};
use halo::signal::{EpisodeKind, RecordingConfig, RegionProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let channels = 8;
    // Short feature windows so the example runs in seconds: 256-point FFT
    // with 8x decimation = ~68 ms windows at 30 kHz.
    let config = HaloConfig::small_test(channels).channels(channels);
    let window = config.feature_window_frames();

    // --- Offline personalization (runs off the implant, §IV-C) ---
    // A training session with a labeled seizure in the middle.
    let train_rec = RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(800)
        .seizure_at(8 * window, 16 * window)
        .generate(11);
    let svm = seizure::train(&config, &[&train_rec])?;
    println!(
        "trained SVM: {} weights, bias {}",
        svm.weights().len(),
        svm.bias()
    );

    // --- Deploy and run closed-loop ---
    let config = config.with_svm(svm);
    let mut system = HaloSystem::new(Task::SeizurePrediction, config)?;
    let test_rec = RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(800)
        .seizure_at(10 * window, 20 * window)
        .generate(23);
    let metrics = system.process(&test_rec)?;

    let onset = test_rec
        .episodes()
        .iter()
        .find(|e| e.kind() == EpisodeKind::Seizure)
        .expect("test recording has a seizure")
        .start() as u64;
    println!("seizure onset at frame {onset}");
    for event in &metrics.stim_events {
        let latency_ms = (event.frame.saturating_sub(onset)) as f64 * 1000.0
            / system.config().sample_rate_hz as f64;
        println!(
            "stimulated {} channels at frame {} ({latency_ms:.1} ms after onset)",
            event.commands.len(),
            event.frame
        );
    }
    assert!(
        !metrics.stim_events.is_empty(),
        "the device should have stimulated during the seizure"
    );

    let power = system.power_report(&metrics);
    print!("{power}");
    assert!(power.within_budget());
    Ok(())
}
