//! Distributed two-site deployment (§VII): a HALO detector on one brain
//! sub-center predicts seizures and alerts a stimulation unit on another
//! sub-center over a low-bandwidth RF link — mitigating the "spread" of
//! seizures across centers.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example distributed_seizure
//! ```

use halo::core::tasks::seizure;
use halo::core::{AlertLink, DistributedBci, HaloConfig};
use halo::signal::{RecordingConfig, RegionProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let channels = 8;
    let config = HaloConfig::small_test(channels).channels(channels);
    let window = config.feature_window_frames();

    // Train the detector's SVM on two labeled sessions (offline).
    let a = RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(700)
        .seizure_at(6 * window, 13 * window)
        .generate(81);
    let b = RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(700)
        .seizure_at(10 * window, 18 * window)
        .generate(82);
    let svm = seizure::train(&config, &[&a, &b])?;
    let config = config.with_svm(svm);

    // Deploy: detector at the hippocampal site, stimulator at the
    // anterior-thalamic site, 5 ms alert link between them.
    let mut bci = DistributedBci::new(config, AlertLink::default())?;

    let session = RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(700)
        .seizure_at(8 * window, 16 * window)
        .generate(83);
    let metrics = bci.process(&session)?;

    println!(
        "detector streamed {} frames; {} alerts crossed the link ({} bytes)",
        metrics.detector.frames,
        metrics.remote_stims.len(),
        metrics.link_bytes
    );
    for ev in &metrics.remote_stims {
        println!(
            "  detect @ frame {} -> remote stimulation of {} channels after {:.1} ms",
            ev.detect_frame,
            ev.commands.len(),
            ev.latency_ms
        );
    }
    assert!(!metrics.remote_stims.is_empty());

    let det = bci.detector_power(&metrics);
    println!("\ndetector device:");
    print!("{det}");
    println!(
        "stimulation unit: {:.2} mW (controller + chronic stimulation)",
        bci.stimulator_power_mw()
    );
    assert!(det.within_budget());
    assert!(bci.stimulator_power_mw() < 12.0);
    println!("\nboth devices within their implant budgets");
    Ok(())
}
