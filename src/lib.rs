//! HALO — Hardware Architecture for LOw-power brain-computer interfaces.
//!
//! A from-scratch Rust reproduction of *Hardware-Software Co-Design for
//! Brain-Computer Interfaces* (ISCA 2020): a general-purpose implantable
//! BCI architecture built as a heterogeneous array of processing elements
//! on a circuit-switched NoC, orchestrated by a RISC-V micro-controller,
//! under a 15 mW implant budget.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`signal`] — synthetic extracellular electrophysiology (the
//!   evaluation substrate standing in for the paper's non-human-primate
//!   recordings).
//! * [`kernels`] — every Table III kernel: FFT, XCOR, BBF, SVM, NEO, DWT,
//!   THR, GATE, LZ, LIC, MA, RC, AES, plus the composed LZ4/LZMA/DWTMA
//!   codecs with full decoders.
//! * [`pe`] — the processing-element framework: typed token streams, FIFO
//!   adapters, clock domains, one PE wrapper per kernel, the interleaver.
//! * [`noc`] — the programmable circuit-switched interconnect.
//! * [`riscv`] — the RV32IM(C) micro-controller simulator and assembler.
//! * [`power`] — the power/area model anchored at the paper's Table IV.
//! * [`core`] — the assembled system: eight task pipelines, the streaming
//!   runtime, controller firmware, metrics, and budget-checked power
//!   reports.
//! * [`telemetry`] — observability: per-PE counters, NoC/power timelines,
//!   and Chrome-trace export (see `docs/observability.md`).
//! * [`fleet`] — the fleet observatory: many concurrent patient sessions
//!   on a work-stealing scheduler, with merged Prometheus rollups, health
//!   triage, cross-session exemplar tracing, and seeded chaos campaigns.
//! * [`faults`] — deterministic fault injection and automated recovery:
//!   seeded fault plans, the lossy-radio ARQ channel, checkpoint/restore,
//!   degraded-mode supervision, and the chaos harness (see
//!   `docs/robustness.md`).
//!
//! # Quick start
//!
//! ```
//! use halo::core::{HaloConfig, HaloSystem, Task};
//! use halo::signal::{RecordingConfig, RegionProfile};
//!
//! let config = HaloConfig::new().channels(4);
//! let mut system = HaloSystem::new(Task::CompressLzma, config).unwrap();
//! let recording = RecordingConfig::new(RegionProfile::arm())
//!     .channels(4)
//!     .duration_ms(30)
//!     .generate(1);
//! let metrics = system.process(&recording).unwrap();
//! println!(
//!     "ratio {:.2}, {:.2} mW",
//!     metrics.compression_ratio().unwrap_or(1.0),
//!     system.power_report(&metrics).processing_mw()
//! );
//! ```

pub use halo_core as core;
pub use halo_faults as faults;
pub use halo_fleet as fleet;
pub use halo_kernels as kernels;
pub use halo_noc as noc;
pub use halo_pe as pe;
pub use halo_power as power;
pub use halo_riscv as riscv;
pub use halo_signal as signal;
pub use halo_telemetry as telemetry;
