//! Binary-stable trace-log capture and deterministic replay verification.
//!
//! A [`TraceLog`] freezes everything a run consumed (task, config
//! fingerprint, fabric programming words, raw input samples) alongside
//! everything it produced (radio bytes, MCU detection flags, stimulation
//! commands). [`TraceLog::write`] emits hand-rolled JSON with hex-encoded
//! byte payloads — the same document always serializes to the same bytes,
//! so logs can be diffed and checksummed — and [`TraceLog::read`] parses it
//! back via [`crate::json::parse`].
//!
//! The simulator side (`halo-core`) re-drives the captured samples and
//! fabric programming through a fresh runtime; [`Replayer::verify`] then
//! compares the fresh outputs byte-for-byte against the captured ones,
//! turning every captured post-mortem into a reproducible test case.

use crate::json::{self, Value};

/// One captured closed-loop stimulation response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StimRecord {
    /// Sample frame of the detection that triggered stimulation.
    pub frame: u64,
    /// Controller response latency converted to sample frames.
    pub latency_frames: u64,
    /// Number of stim channel commands issued.
    pub commands: u32,
}

/// A captured run: inputs + fabric programming + reference outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceLog {
    /// Task label (`Task::label()`), e.g. `"SeizurePred"`.
    pub task: String,
    /// Fingerprint of the full `HaloConfig` the run used. Replay refuses a
    /// config whose fingerprint differs — bit-identity is only meaningful
    /// for the same parameters.
    pub config_fingerprint: u64,
    /// Channel count of the input stream.
    pub channels: u32,
    /// ADC sample rate in Hz.
    pub sample_rate_hz: u32,
    /// Encoded switch programming words, in route order (the fabric image
    /// the run executed with).
    pub switch_words: Vec<u32>,
    /// Raw frame-major input samples.
    pub samples: Vec<i16>,
    /// Reference radio uplink stream.
    pub radio: Vec<u8>,
    /// Reference MCU detection flags `(frame, flag)`.
    pub mcu_flags: Vec<(u64, bool)>,
    /// Reference stimulation responses.
    pub stim: Vec<StimRecord>,
}

/// Format version written into every log.
pub const TRACE_LOG_VERSION: u64 = 1;

fn hex_of_bytes(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(HEX[(b >> 4) as usize] as char);
        out.push(HEX[(b & 0xF) as usize] as char);
    }
    out
}

fn bytes_of_hex(hex: &str) -> Result<Vec<u8>, String> {
    let raw = hex.as_bytes();
    if !raw.len().is_multiple_of(2) {
        return Err("odd-length hex payload".to_string());
    }
    let nibble = |c: u8| -> Result<u8, String> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            _ => Err(format!("bad hex byte {c:?}")),
        }
    };
    let mut out = Vec::with_capacity(raw.len() / 2);
    for pair in raw.chunks_exact(2) {
        out.push((nibble(pair[0])? << 4) | nibble(pair[1])?);
    }
    Ok(out)
}

fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn field_u64(v: &Value, key: &str) -> Result<u64, String> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| format!("field {key:?} is not an unsigned integer"))
}

impl TraceLog {
    /// Serializes to binary-stable JSON (same log ⇒ same bytes).
    pub fn write(&self) -> String {
        let sample_bytes: Vec<u8> = self.samples.iter().flat_map(|s| s.to_le_bytes()).collect();
        let mut out = String::with_capacity(128 + sample_bytes.len() * 2 + self.radio.len() * 2);
        // The fingerprint travels as a hex string: a u64 does not survive
        // a round trip through a JSON f64 number above 2^53.
        out.push_str(&format!(
            "{{\"halo_trace_log\":{TRACE_LOG_VERSION},\"task\":{},\"config_fingerprint\":\"{:016x}\",\"channels\":{},\"sample_rate_hz\":{}",
            json::string(&self.task),
            self.config_fingerprint,
            self.channels,
            self.sample_rate_hz,
        ));
        out.push_str(",\"switch_words\":[");
        for (i, w) in self.switch_words.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&w.to_string());
        }
        out.push_str("],\"samples\":\"");
        out.push_str(&hex_of_bytes(&sample_bytes));
        out.push_str("\",\"radio\":\"");
        out.push_str(&hex_of_bytes(&self.radio));
        out.push_str("\",\"mcu_flags\":[");
        for (i, (frame, flag)) in self.mcu_flags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{},{}]", frame, u8::from(*flag)));
        }
        out.push_str("],\"stim\":[");
        for (i, s) in self.stim.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"frame\":{},\"latency_frames\":{},\"commands\":{}}}",
                s.frame, s.latency_frames, s.commands
            ));
        }
        out.push_str("]}");
        out
    }

    /// Parses a document produced by [`TraceLog::write`].
    pub fn read(input: &str) -> Result<TraceLog, String> {
        let doc = json::parse(input)?;
        let version = field_u64(&doc, "halo_trace_log")?;
        if version != TRACE_LOG_VERSION {
            return Err(format!(
                "unsupported trace log version {version} (want {TRACE_LOG_VERSION})"
            ));
        }
        let task = field(&doc, "task")?
            .as_str()
            .ok_or("task is not a string")?
            .to_string();
        let config_fingerprint = u64::from_str_radix(
            field(&doc, "config_fingerprint")?
                .as_str()
                .ok_or("config_fingerprint is not a string")?,
            16,
        )
        .map_err(|e| format!("bad config_fingerprint: {e}"))?;
        let channels = field_u64(&doc, "channels")? as u32;
        let sample_rate_hz = field_u64(&doc, "sample_rate_hz")? as u32;
        let switch_words = field(&doc, "switch_words")?
            .as_array()
            .ok_or("switch_words is not an array")?
            .iter()
            .map(|w| {
                w.as_u64()
                    .filter(|w| *w <= u32::MAX as u64)
                    .map(|w| w as u32)
                    .ok_or_else(|| "bad switch word".to_string())
            })
            .collect::<Result<Vec<u32>, String>>()?;
        let sample_bytes =
            bytes_of_hex(field(&doc, "samples")?.as_str().ok_or("samples not hex")?)?;
        if !sample_bytes.len().is_multiple_of(2) {
            return Err("samples payload is not i16-aligned".to_string());
        }
        let samples = sample_bytes
            .chunks_exact(2)
            .map(|p| i16::from_le_bytes([p[0], p[1]]))
            .collect();
        let radio = bytes_of_hex(field(&doc, "radio")?.as_str().ok_or("radio not hex")?)?;
        let mcu_flags = field(&doc, "mcu_flags")?
            .as_array()
            .ok_or("mcu_flags is not an array")?
            .iter()
            .map(|entry| {
                let pair = entry.as_array().filter(|p| p.len() == 2);
                let pair = pair.ok_or_else(|| "bad mcu flag entry".to_string())?;
                let frame = pair[0].as_u64().ok_or("bad flag frame")?;
                let flag = pair[1].as_u64().ok_or("bad flag value")? != 0;
                Ok((frame, flag))
            })
            .collect::<Result<Vec<(u64, bool)>, String>>()?;
        let stim = field(&doc, "stim")?
            .as_array()
            .ok_or("stim is not an array")?
            .iter()
            .map(|entry| {
                Ok(StimRecord {
                    frame: field_u64(entry, "frame")?,
                    latency_frames: field_u64(entry, "latency_frames")?,
                    commands: field_u64(entry, "commands")? as u32,
                })
            })
            .collect::<Result<Vec<StimRecord>, String>>()?;
        Ok(TraceLog {
            task,
            config_fingerprint,
            channels,
            sample_rate_hz,
            switch_words,
            samples,
            radio,
            mcu_flags,
            stim,
        })
    }
}

/// Outcome of comparing a replayed run against the captured reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// Radio uplink bytes matched exactly.
    pub radio_identical: bool,
    /// MCU detection flags matched exactly.
    pub flags_identical: bool,
    /// Stimulation responses matched exactly.
    pub stim_identical: bool,
    /// Byte offset of the first radio divergence, if any.
    pub first_radio_divergence: Option<usize>,
    /// Reference radio length vs replayed length.
    pub radio_len: (usize, usize),
}

impl ReplayReport {
    /// Every captured output was reproduced bit-identically.
    pub fn identical(&self) -> bool {
        self.radio_identical && self.flags_identical && self.stim_identical
    }
}

impl std::fmt::Display for ReplayReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.identical() {
            write!(
                f,
                "replay identical: radio {} bytes, flags ok, stim ok",
                self.radio_len.0
            )
        } else {
            write!(
                f,
                "replay DIVERGED: radio {} (first divergence {:?}, lens {:?}), flags {}, stim {}",
                if self.radio_identical {
                    "ok"
                } else {
                    "mismatch"
                },
                self.first_radio_divergence,
                self.radio_len,
                if self.flags_identical {
                    "ok"
                } else {
                    "mismatch"
                },
                if self.stim_identical {
                    "ok"
                } else {
                    "mismatch"
                },
            )
        }
    }
}

/// Compares replayed outputs against a captured [`TraceLog`].
#[derive(Debug, Clone)]
pub struct Replayer {
    log: TraceLog,
}

impl Replayer {
    /// Wraps a captured log.
    pub fn new(log: TraceLog) -> Self {
        Self { log }
    }

    /// The captured log.
    pub fn log(&self) -> &TraceLog {
        &self.log
    }

    /// Verifies freshly produced outputs against the capture.
    pub fn verify(
        &self,
        radio: &[u8],
        mcu_flags: &[(u64, bool)],
        stim: &[StimRecord],
    ) -> ReplayReport {
        let first_radio_divergence = self
            .log
            .radio
            .iter()
            .zip(radio.iter())
            .position(|(a, b)| a != b)
            .or_else(|| {
                if self.log.radio.len() != radio.len() {
                    Some(self.log.radio.len().min(radio.len()))
                } else {
                    None
                }
            });
        ReplayReport {
            radio_identical: first_radio_divergence.is_none(),
            flags_identical: self.log.mcu_flags == mcu_flags,
            stim_identical: self.log.stim == stim,
            first_radio_divergence,
            radio_len: (self.log.radio.len(), radio.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> TraceLog {
        TraceLog {
            task: "SeizurePred".to_string(),
            config_fingerprint: 0xDEAD_BEEF_1234,
            channels: 8,
            sample_rate_hz: 30_000,
            switch_words: vec![0x8000_0102, 0x8000_0203],
            samples: vec![-1, 0, 1, 32767, -32768, 42],
            radio: vec![0x00, 0xFF, 0x7A],
            mcu_flags: vec![(100, false), (2048, true)],
            stim: vec![StimRecord {
                frame: 2048,
                latency_frames: 7,
                commands: 2,
            }],
        }
    }

    #[test]
    fn log_round_trips_bit_identically() {
        let log = sample_log();
        let text = log.write();
        crate::json::validate(&text).unwrap();
        let back = TraceLog::read(&text).unwrap();
        assert_eq!(back, log);
        // Binary stability: serialize -> parse -> serialize is a fixpoint.
        assert_eq!(back.write(), text);
    }

    #[test]
    fn read_rejects_malformed_logs() {
        assert!(TraceLog::read("{}").is_err());
        assert!(TraceLog::read("{\"halo_trace_log\":99}").is_err());
        let mut text = sample_log().write();
        text = text.replace("\"radio\":\"00ff7a\"", "\"radio\":\"00ff7\"");
        assert!(TraceLog::read(&text).is_err());
    }

    #[test]
    fn verify_detects_divergence() {
        let log = sample_log();
        let replayer = Replayer::new(log.clone());
        assert!(replayer
            .verify(&log.radio, &log.mcu_flags, &log.stim)
            .identical());

        let mut bad = log.radio.clone();
        bad[1] ^= 0x01;
        let report = replayer.verify(&bad, &log.mcu_flags, &log.stim);
        assert!(!report.identical());
        assert_eq!(report.first_radio_divergence, Some(1));

        let report = replayer.verify(&log.radio[..2], &log.mcu_flags, &log.stim);
        assert!(!report.radio_identical);
        assert_eq!(report.first_radio_divergence, Some(2));

        let report = replayer.verify(&log.radio, &[], &log.stim);
        assert!(!report.flags_identical);
    }
}
