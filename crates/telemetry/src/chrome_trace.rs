//! Chrome Trace Format exporter.
//!
//! Renders a [`Recorder`] into the JSON object format documented at
//! <https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>
//! and understood by Perfetto (<https://ui.perfetto.dev>) and
//! `chrome://tracing`. Track layout:
//!
//! * pid 0, tid `100 + slot` — one slice track per PE. `PeWindow` events
//!   become complete (`"X"`) slices whose duration is the sampling window,
//!   with busy/stall cycles and byte counts in `args`.
//! * `"NoC bytes/s"` — a counter (`"C"`) track fed by `NocWindow` events.
//! * `"power <PE> (mW)"` — one counter track per clock domain, fed by
//!   `PowerSample` events.
//! * pid 0, tid 99 — the controller track: instant (`"i"`) events for
//!   switch programming, stimulation pulses, and detections.
//! * Causal-trace spans ([`EventKind::Span`]) become `"X"` slices on their
//!   PE's track (system spans land on the controller track), offset from
//!   the traced frame's timestamp by their begin time on the trace clock.
//!   Each NoC-hop span additionally emits a flow-event pair
//!   (`ph:"s"`/`ph:"f"`) so Perfetto draws the causal arrow from the
//!   producer's track to the consumer's.
//!
//! Tracks carry `thread_sort_index` metadata (controller first, then PEs by
//! slot) so the UI lists them in placement order instead of hash order.
//!
//! Timestamps are microseconds of *biological* time: event frame indices
//! divided by the recorder's sample rate.

use crate::json;
use crate::recorder::Recorder;
use crate::sink::EventKind;
use crate::tracing::{SpanKind, NO_NODE};

/// tid of the controller/annotation track.
const CONTROLLER_TID: u32 = 99;
/// tid offset for PE tracks (tid = PE_TID_BASE + slot).
const PE_TID_BASE: u32 = 100;

/// Render `recorder` as a Chrome Trace Format JSON document.
pub fn render(recorder: &Recorder) -> String {
    let snap = recorder.snapshot();
    let events = recorder.events();
    let us_per_frame = 1.0e6 / recorder.sample_rate_hz() as f64;
    let ts = |frame: u64| json::number(frame as f64 * us_per_frame);

    let mut entries: Vec<String> = Vec::new();

    // Metadata: name the process and one thread per declared/active PE.
    entries.push(
        "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"HALO device\"}}"
            .to_string(),
    );
    entries.push(format!(
        "{{\"ph\":\"M\",\"pid\":0,\"tid\":{CONTROLLER_TID},\"name\":\"thread_name\",\
         \"args\":{{\"name\":\"controller\"}}}}"
    ));
    // Explicit sort indices: controller on top, then PEs in placement
    // (slot) order. Without these the UI falls back to ordering tracks by
    // name hash, which scatters the pipeline.
    entries.push(format!(
        "{{\"ph\":\"M\",\"pid\":0,\"tid\":{CONTROLLER_TID},\"name\":\"thread_sort_index\",\
         \"args\":{{\"sort_index\":0}}}}"
    ));
    for pe in &snap.pes {
        entries.push(format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":{name}}}}}",
            tid = PE_TID_BASE + pe.slot as u32,
            name = json::string(&format!("PE{} {}", pe.slot, pe.name)),
        ));
        entries.push(format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_sort_index\",\
             \"args\":{{\"sort_index\":{idx}}}}}",
            tid = PE_TID_BASE + pe.slot as u32,
            idx = pe.slot as u32 + 1,
        ));
    }

    for event in &events {
        match &event.kind {
            EventKind::PeWindow {
                slot,
                name,
                frames,
                busy_cycles,
                stall_cycles,
                bytes_in,
                bytes_out,
            } => {
                entries.push(format!(
                    "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\
                     \"cat\":\"pe\",\"name\":{name},\"args\":{{\
                     \"busy_cycles\":{busy_cycles},\"stall_cycles\":{stall_cycles},\
                     \"bytes_in\":{bytes_in},\"bytes_out\":{bytes_out}}}}}",
                    tid = PE_TID_BASE + *slot as u32,
                    ts = ts(event.frame),
                    dur = json::number(*frames as f64 * us_per_frame),
                    name = json::string(name),
                ));
            }
            EventKind::NocWindow {
                frames,
                bytes,
                transfers,
            } => {
                let window_s = *frames as f64 / recorder.sample_rate_hz() as f64;
                let rate = if window_s > 0.0 {
                    *bytes as f64 / window_s
                } else {
                    0.0
                };
                entries.push(format!(
                    "{{\"ph\":\"C\",\"pid\":0,\"ts\":{ts},\"name\":\"NoC bytes/s\",\
                     \"args\":{{\"bytes_per_s\":{rate},\"transfers\":{transfers}}}}}",
                    ts = ts(event.frame),
                    rate = json::number(rate),
                ));
            }
            EventKind::PowerSample {
                slot,
                name,
                milliwatts,
            } => {
                entries.push(format!(
                    "{{\"ph\":\"C\",\"pid\":0,\"ts\":{ts},\"name\":{name},\
                     \"args\":{{\"mW\":{mw}}}}}",
                    ts = ts(event.frame),
                    name = json::string(&format!("power PE{slot} {name} (mW)")),
                    mw = json::number(*milliwatts),
                ));
            }
            EventKind::SwitchProgram { words, generation } => {
                entries.push(instant(
                    &ts(event.frame),
                    "switch program",
                    &format!("{{\"words\":{words},\"generation\":{generation}}}"),
                ));
            }
            EventKind::FifoWindow {
                slot,
                name,
                depth,
                peak,
            } => {
                entries.push(format!(
                    "{{\"ph\":\"C\",\"pid\":0,\"ts\":{ts},\"name\":{name},\
                     \"args\":{{\"depth\":{depth},\"peak\":{peak}}}}}",
                    ts = ts(event.frame),
                    name = json::string(&format!("fifo PE{slot} {name} (tokens)")),
                ));
            }
            EventKind::RadioWindow { frames, bytes } => {
                let window_s = *frames as f64 / recorder.sample_rate_hz() as f64;
                let rate = if window_s > 0.0 {
                    *bytes as f64 * 8.0 / window_s
                } else {
                    0.0
                };
                entries.push(format!(
                    "{{\"ph\":\"C\",\"pid\":0,\"ts\":{ts},\"name\":\"radio bits/s\",\
                     \"args\":{{\"bits_per_s\":{rate},\"bytes\":{bytes}}}}}",
                    ts = ts(event.frame),
                    rate = json::number(rate),
                ));
            }
            EventKind::ClosedLoop {
                detect_frame,
                latency_frames,
            } => {
                entries.push(instant(
                    &ts(event.frame),
                    "closed loop",
                    &format!(
                        "{{\"detect_frame\":{detect_frame},\
                         \"latency_frames\":{latency_frames}}}"
                    ),
                ));
            }
            EventKind::Health {
                name,
                severity,
                value,
                limit,
            } => {
                entries.push(instant(
                    &ts(event.frame),
                    &format!("health {name}"),
                    &format!(
                        "{{\"severity\":{sev},\"value\":{value},\"limit\":{limit}}}",
                        sev = json::string(severity.label()),
                        value = json::number(*value),
                        limit = json::number(*limit),
                    ),
                ));
            }
            EventKind::Stim {
                channel,
                amplitude_ua,
            } => {
                entries.push(instant(
                    &ts(event.frame),
                    "stim",
                    &format!("{{\"channel\":{channel},\"amplitude_ua\":{amplitude_ua}}}"),
                ));
            }
            EventKind::Detection { positive } => {
                entries.push(instant(
                    &ts(event.frame),
                    "detection",
                    &format!("{{\"positive\":{positive}}}"),
                ));
            }
            EventKind::Marker { name } => {
                entries.push(instant(&ts(event.frame), name, "{}"));
            }
            EventKind::Fault {
                kind,
                slot,
                detail,
                detected,
            } => {
                entries.push(instant(
                    &ts(event.frame),
                    "fault",
                    &format!(
                        "{{\"kind\":{},\"slot\":{slot},\"detail\":{detail},\
                         \"detected\":{detected}}}",
                        json::string(kind)
                    ),
                ));
            }
            EventKind::Span(span) => {
                let base_us = event.frame as f64 * us_per_frame;
                let span_ts = json::number(base_us + span.begin_ns as f64 / 1000.0);
                let dur = json::number(span.duration_ns() as f64 / 1000.0);
                let tid = if span.node == NO_NODE {
                    CONTROLLER_TID
                } else {
                    PE_TID_BASE + span.node as u32
                };
                let name = match span.kind {
                    SpanKind::PeService => span.name.to_string(),
                    SpanKind::Frame => "frame".to_string(),
                    _ => format!("{} {}", span.kind.label(), span.name),
                };
                entries.push(format!(
                    "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{span_ts},\"dur\":{dur},\
                     \"cat\":\"trace\",\"name\":{name},\"args\":{{\
                     \"trace\":{trace},\"span\":{id},\"parent\":{parent},\
                     \"tokens\":{tokens},\"bytes\":{bytes}}}}}",
                    name = json::string(&name),
                    trace = span.trace.0,
                    id = span.id.0,
                    parent = span.parent.map_or("null".to_string(), |p| p.0.to_string()),
                    tokens = span.tokens,
                    bytes = span.bytes,
                ));
                // A NoC hop crosses tracks: emit a flow pair so the UI
                // draws the causal arrow producer -> consumer.
                if span.kind == SpanKind::NocHop && span.to_node != NO_NODE {
                    let flow_id = (span.trace.0 << 16) | span.id.0 as u64;
                    let end_ts = json::number(base_us + span.end_ns as f64 / 1000.0);
                    entries.push(format!(
                        "{{\"ph\":\"s\",\"pid\":0,\"tid\":{tid},\"ts\":{span_ts},\
                         \"cat\":\"trace\",\"name\":\"hop\",\"id\":{flow_id}}}"
                    ));
                    entries.push(format!(
                        "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":0,\"tid\":{to_tid},\"ts\":{end_ts},\
                         \"cat\":\"trace\",\"name\":\"hop\",\"id\":{flow_id}}}",
                        to_tid = PE_TID_BASE + span.to_node as u32,
                    ));
                }
            }
        }
    }

    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{");
    out.push_str(&format!(
        "\"sample_rate_hz\":{},\"frames\":{},\"dropped_events\":{}",
        recorder.sample_rate_hz(),
        snap.frames,
        snap.dropped_events
    ));
    out.push_str("},\"traceEvents\":[");
    out.push_str(&entries.join(","));
    out.push_str("]}");
    out
}

fn instant(ts: &str, name: &str, args: &str) -> String {
    format!(
        "{{\"ph\":\"i\",\"pid\":0,\"tid\":{CONTROLLER_TID},\"ts\":{ts},\"s\":\"t\",\
         \"name\":{name},\"args\":{args}}}",
        name = json::string(name),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{Counter, Event, Scope, TelemetrySink};

    fn populated_recorder() -> Recorder {
        let rec = Recorder::new(256).with_sample_rate_hz(30_000);
        rec.declare_pe(0, "LZ");
        rec.declare_pe(1, "AES \"quoted\"");
        rec.add(Scope::Pe(0), Counter::BusyCycles, 500);
        rec.add(Scope::Pe(1), Counter::BusyCycles, 100);
        rec.event(Event {
            frame: 0,
            kind: EventKind::PeWindow {
                slot: 0,
                name: "LZ",
                frames: 30,
                busy_cycles: 500,
                stall_cycles: 3,
                bytes_in: 64,
                bytes_out: 40,
            },
        });
        rec.event(Event {
            frame: 30,
            kind: EventKind::NocWindow {
                frames: 30,
                bytes: 128,
                transfers: 2,
            },
        });
        rec.event(Event {
            frame: 30,
            kind: EventKind::PowerSample {
                slot: 0,
                name: "LZ",
                milliwatts: 0.728,
            },
        });
        rec.event(Event {
            frame: 31,
            kind: EventKind::SwitchProgram {
                words: 6,
                generation: 2,
            },
        });
        rec.event(Event {
            frame: 31,
            kind: EventKind::FifoWindow {
                slot: 0,
                name: "LZ",
                depth: 3,
                peak: 7,
            },
        });
        rec.event(Event {
            frame: 31,
            kind: EventKind::RadioWindow {
                frames: 30,
                bytes: 4800,
            },
        });
        rec.event(Event {
            frame: 42,
            kind: EventKind::ClosedLoop {
                detect_frame: 40,
                latency_frames: 2,
            },
        });
        rec.event(Event {
            frame: 43,
            kind: EventKind::Health {
                name: "power_budget",
                severity: crate::sink::Severity::Critical,
                value: 16.2,
                limit: 15.0,
            },
        });
        rec.event(Event {
            frame: 40,
            kind: EventKind::Stim {
                channel: 2,
                amplitude_ua: 100,
            },
        });
        rec.event(Event {
            frame: 40,
            kind: EventKind::Detection { positive: true },
        });
        rec.event(Event {
            frame: 41,
            kind: EventKind::Marker { name: "done" },
        });
        for span in trace_spans() {
            rec.event(Event {
                frame: 60,
                kind: EventKind::Span(span),
            });
        }
        rec
    }

    fn trace_spans() -> Vec<crate::tracing::SpanRecord> {
        use crate::tracing::{DeliveryCosts, Tracer};
        let tracer = Tracer::new(9, 0).with_linger_frames(8);
        tracer.sampler().force_next(1);
        let tag = tracer.begin_frame(60);
        tracer.delivery(
            tag,
            None,
            0,
            "LZ",
            4,
            8,
            DeliveryCosts {
                noc_ns: 0,
                wait_ns: 0,
                cross_ns: 0,
                service_ns: 100,
            },
        );
        tracer.delivery(
            tag,
            Some((0, "LZ")),
            1,
            "AES",
            4,
            8,
            DeliveryCosts {
                noc_ns: 170,
                wait_ns: 20,
                cross_ns: 5,
                service_ns: 50,
            },
        );
        tracer.finalize_all();
        tracer.trees().pop().unwrap().spans
    }

    #[test]
    fn trace_is_valid_json() {
        let trace = render(&populated_recorder());
        json::validate(&trace).unwrap();
    }

    #[test]
    fn trace_names_every_expected_track() {
        let trace = render(&populated_recorder());
        assert!(trace.contains("\"PE0 LZ\""));
        assert!(trace.contains("PE1 AES \\\"quoted\\\""));
        assert!(trace.contains("NoC bytes/s"));
        assert!(trace.contains("power PE0 LZ (mW)"));
        assert!(trace.contains("\"controller\""));
        assert!(trace.contains("switch program"));
        assert!(trace.contains("fifo PE0 LZ (tokens)"));
        assert!(trace.contains("radio bits/s"));
        assert!(trace.contains("closed loop"));
        assert!(trace.contains("health power_budget"));
    }

    #[test]
    fn frame_timestamps_convert_to_microseconds() {
        let rec = Recorder::new(16).with_sample_rate_hz(30_000);
        rec.event(Event {
            frame: 30,
            kind: EventKind::Marker { name: "tick" },
        });
        let trace = render(&rec);
        // 30 frames at 30 kHz = 1 ms = 1000 us.
        assert!(trace.contains("\"ts\":1000"), "{trace}");
    }

    #[test]
    fn empty_recorder_still_renders_valid_trace() {
        let rec = Recorder::new(16);
        let trace = render(&rec);
        json::validate(&trace).unwrap();
        assert!(trace.contains("traceEvents"));
    }

    #[test]
    fn tracks_carry_sort_indices_in_slot_order() {
        let trace = render(&populated_recorder());
        assert!(
            trace.contains("\"tid\":99,\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":0}")
        );
        assert!(trace
            .contains("\"tid\":100,\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":1}"));
        assert!(trace
            .contains("\"tid\":101,\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":2}"));
    }

    #[test]
    fn spans_render_as_slices_with_flow_arrows() {
        let trace = render(&populated_recorder());
        json::validate(&trace).unwrap();
        // Root frame span lands on the controller track.
        assert!(trace.contains("\"cat\":\"trace\",\"name\":\"frame\""));
        // Service spans land on the PE tracks.
        assert!(trace.contains("\"cat\":\"trace\",\"name\":\"LZ\""));
        assert!(trace.contains("\"cat\":\"trace\",\"name\":\"AES\""));
        // The LZ->AES hop emits a bound flow pair across the two tracks.
        assert!(trace.contains("\"ph\":\"s\""), "{trace}");
        assert!(trace.contains("\"ph\":\"f\",\"bp\":\"e\""));
        // Span slices are offset from the traced frame's timestamp:
        // frame 60 at 30 kHz = 2000 us; the AES burst begins 100 ns in.
        assert!(trace.contains("\"ts\":2000.1"), "{trace}");
    }
}
