//! Chrome Trace Format exporter.
//!
//! Renders a [`Recorder`] into the JSON object format documented at
//! <https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>
//! and understood by Perfetto (<https://ui.perfetto.dev>) and
//! `chrome://tracing`. Track layout:
//!
//! * pid 0, tid `100 + slot` — one slice track per PE. `PeWindow` events
//!   become complete (`"X"`) slices whose duration is the sampling window,
//!   with busy/stall cycles and byte counts in `args`.
//! * `"NoC bytes/s"` — a counter (`"C"`) track fed by `NocWindow` events.
//! * `"power <PE> (mW)"` — one counter track per clock domain, fed by
//!   `PowerSample` events.
//! * pid 0, tid 99 — the controller track: instant (`"i"`) events for
//!   switch programming, stimulation pulses, and detections.
//!
//! Timestamps are microseconds of *biological* time: event frame indices
//! divided by the recorder's sample rate.

use crate::json;
use crate::recorder::Recorder;
use crate::sink::EventKind;

/// tid of the controller/annotation track.
const CONTROLLER_TID: u32 = 99;
/// tid offset for PE tracks (tid = PE_TID_BASE + slot).
const PE_TID_BASE: u32 = 100;

/// Render `recorder` as a Chrome Trace Format JSON document.
pub fn render(recorder: &Recorder) -> String {
    let snap = recorder.snapshot();
    let events = recorder.events();
    let us_per_frame = 1.0e6 / recorder.sample_rate_hz() as f64;
    let ts = |frame: u64| json::number(frame as f64 * us_per_frame);

    let mut entries: Vec<String> = Vec::new();

    // Metadata: name the process and one thread per declared/active PE.
    entries.push(
        "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"HALO device\"}}"
            .to_string(),
    );
    entries.push(format!(
        "{{\"ph\":\"M\",\"pid\":0,\"tid\":{CONTROLLER_TID},\"name\":\"thread_name\",\
         \"args\":{{\"name\":\"controller\"}}}}"
    ));
    for pe in &snap.pes {
        entries.push(format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":{name}}}}}",
            tid = PE_TID_BASE + pe.slot as u32,
            name = json::string(&format!("PE{} {}", pe.slot, pe.name)),
        ));
    }

    for event in &events {
        match &event.kind {
            EventKind::PeWindow {
                slot,
                name,
                frames,
                busy_cycles,
                stall_cycles,
                bytes_in,
                bytes_out,
            } => {
                entries.push(format!(
                    "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\
                     \"cat\":\"pe\",\"name\":{name},\"args\":{{\
                     \"busy_cycles\":{busy_cycles},\"stall_cycles\":{stall_cycles},\
                     \"bytes_in\":{bytes_in},\"bytes_out\":{bytes_out}}}}}",
                    tid = PE_TID_BASE + *slot as u32,
                    ts = ts(event.frame),
                    dur = json::number(*frames as f64 * us_per_frame),
                    name = json::string(name),
                ));
            }
            EventKind::NocWindow {
                frames,
                bytes,
                transfers,
            } => {
                let window_s = *frames as f64 / recorder.sample_rate_hz() as f64;
                let rate = if window_s > 0.0 {
                    *bytes as f64 / window_s
                } else {
                    0.0
                };
                entries.push(format!(
                    "{{\"ph\":\"C\",\"pid\":0,\"ts\":{ts},\"name\":\"NoC bytes/s\",\
                     \"args\":{{\"bytes_per_s\":{rate},\"transfers\":{transfers}}}}}",
                    ts = ts(event.frame),
                    rate = json::number(rate),
                ));
            }
            EventKind::PowerSample {
                slot,
                name,
                milliwatts,
            } => {
                entries.push(format!(
                    "{{\"ph\":\"C\",\"pid\":0,\"ts\":{ts},\"name\":{name},\
                     \"args\":{{\"mW\":{mw}}}}}",
                    ts = ts(event.frame),
                    name = json::string(&format!("power PE{slot} {name} (mW)")),
                    mw = json::number(*milliwatts),
                ));
            }
            EventKind::SwitchProgram { words, generation } => {
                entries.push(instant(
                    &ts(event.frame),
                    "switch program",
                    &format!("{{\"words\":{words},\"generation\":{generation}}}"),
                ));
            }
            EventKind::FifoWindow {
                slot,
                name,
                depth,
                peak,
            } => {
                entries.push(format!(
                    "{{\"ph\":\"C\",\"pid\":0,\"ts\":{ts},\"name\":{name},\
                     \"args\":{{\"depth\":{depth},\"peak\":{peak}}}}}",
                    ts = ts(event.frame),
                    name = json::string(&format!("fifo PE{slot} {name} (tokens)")),
                ));
            }
            EventKind::RadioWindow { frames, bytes } => {
                let window_s = *frames as f64 / recorder.sample_rate_hz() as f64;
                let rate = if window_s > 0.0 {
                    *bytes as f64 * 8.0 / window_s
                } else {
                    0.0
                };
                entries.push(format!(
                    "{{\"ph\":\"C\",\"pid\":0,\"ts\":{ts},\"name\":\"radio bits/s\",\
                     \"args\":{{\"bits_per_s\":{rate},\"bytes\":{bytes}}}}}",
                    ts = ts(event.frame),
                    rate = json::number(rate),
                ));
            }
            EventKind::ClosedLoop {
                detect_frame,
                latency_frames,
            } => {
                entries.push(instant(
                    &ts(event.frame),
                    "closed loop",
                    &format!(
                        "{{\"detect_frame\":{detect_frame},\
                         \"latency_frames\":{latency_frames}}}"
                    ),
                ));
            }
            EventKind::Health {
                name,
                severity,
                value,
                limit,
            } => {
                entries.push(instant(
                    &ts(event.frame),
                    &format!("health {name}"),
                    &format!(
                        "{{\"severity\":{sev},\"value\":{value},\"limit\":{limit}}}",
                        sev = json::string(severity.label()),
                        value = json::number(*value),
                        limit = json::number(*limit),
                    ),
                ));
            }
            EventKind::Stim {
                channel,
                amplitude_ua,
            } => {
                entries.push(instant(
                    &ts(event.frame),
                    "stim",
                    &format!("{{\"channel\":{channel},\"amplitude_ua\":{amplitude_ua}}}"),
                ));
            }
            EventKind::Detection { positive } => {
                entries.push(instant(
                    &ts(event.frame),
                    "detection",
                    &format!("{{\"positive\":{positive}}}"),
                ));
            }
            EventKind::Marker { name } => {
                entries.push(instant(&ts(event.frame), name, "{}"));
            }
        }
    }

    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{");
    out.push_str(&format!(
        "\"sample_rate_hz\":{},\"frames\":{},\"dropped_events\":{}",
        recorder.sample_rate_hz(),
        snap.frames,
        snap.dropped_events
    ));
    out.push_str("},\"traceEvents\":[");
    out.push_str(&entries.join(","));
    out.push_str("]}");
    out
}

fn instant(ts: &str, name: &str, args: &str) -> String {
    format!(
        "{{\"ph\":\"i\",\"pid\":0,\"tid\":{CONTROLLER_TID},\"ts\":{ts},\"s\":\"t\",\
         \"name\":{name},\"args\":{args}}}",
        name = json::string(name),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{Counter, Event, Scope, TelemetrySink};

    fn populated_recorder() -> Recorder {
        let rec = Recorder::new(256).with_sample_rate_hz(30_000);
        rec.declare_pe(0, "LZ");
        rec.declare_pe(1, "AES \"quoted\"");
        rec.add(Scope::Pe(0), Counter::BusyCycles, 500);
        rec.add(Scope::Pe(1), Counter::BusyCycles, 100);
        rec.event(Event {
            frame: 0,
            kind: EventKind::PeWindow {
                slot: 0,
                name: "LZ",
                frames: 30,
                busy_cycles: 500,
                stall_cycles: 3,
                bytes_in: 64,
                bytes_out: 40,
            },
        });
        rec.event(Event {
            frame: 30,
            kind: EventKind::NocWindow {
                frames: 30,
                bytes: 128,
                transfers: 2,
            },
        });
        rec.event(Event {
            frame: 30,
            kind: EventKind::PowerSample {
                slot: 0,
                name: "LZ",
                milliwatts: 0.728,
            },
        });
        rec.event(Event {
            frame: 31,
            kind: EventKind::SwitchProgram {
                words: 6,
                generation: 2,
            },
        });
        rec.event(Event {
            frame: 31,
            kind: EventKind::FifoWindow {
                slot: 0,
                name: "LZ",
                depth: 3,
                peak: 7,
            },
        });
        rec.event(Event {
            frame: 31,
            kind: EventKind::RadioWindow {
                frames: 30,
                bytes: 4800,
            },
        });
        rec.event(Event {
            frame: 42,
            kind: EventKind::ClosedLoop {
                detect_frame: 40,
                latency_frames: 2,
            },
        });
        rec.event(Event {
            frame: 43,
            kind: EventKind::Health {
                name: "power_budget",
                severity: crate::sink::Severity::Critical,
                value: 16.2,
                limit: 15.0,
            },
        });
        rec.event(Event {
            frame: 40,
            kind: EventKind::Stim {
                channel: 2,
                amplitude_ua: 100,
            },
        });
        rec.event(Event {
            frame: 40,
            kind: EventKind::Detection { positive: true },
        });
        rec.event(Event {
            frame: 41,
            kind: EventKind::Marker { name: "done" },
        });
        rec
    }

    #[test]
    fn trace_is_valid_json() {
        let trace = render(&populated_recorder());
        json::validate(&trace).unwrap();
    }

    #[test]
    fn trace_names_every_expected_track() {
        let trace = render(&populated_recorder());
        assert!(trace.contains("\"PE0 LZ\""));
        assert!(trace.contains("PE1 AES \\\"quoted\\\""));
        assert!(trace.contains("NoC bytes/s"));
        assert!(trace.contains("power PE0 LZ (mW)"));
        assert!(trace.contains("\"controller\""));
        assert!(trace.contains("switch program"));
        assert!(trace.contains("fifo PE0 LZ (tokens)"));
        assert!(trace.contains("radio bits/s"));
        assert!(trace.contains("closed loop"));
        assert!(trace.contains("health power_budget"));
    }

    #[test]
    fn frame_timestamps_convert_to_microseconds() {
        let rec = Recorder::new(16).with_sample_rate_hz(30_000);
        rec.event(Event {
            frame: 30,
            kind: EventKind::Marker { name: "tick" },
        });
        let trace = render(&rec);
        // 30 frames at 30 kHz = 1 ms = 1000 us.
        assert!(trace.contains("\"ts\":1000"), "{trace}");
    }

    #[test]
    fn empty_recorder_still_renders_valid_trace() {
        let rec = Recorder::new(16);
        let trace = render(&rec);
        json::validate(&trace).unwrap();
        assert!(trace.contains("traceEvents"));
    }
}
