//! The [`TelemetrySink`] trait and its zero-cost [`NullSink`] default.

/// Where a counter update happened in the modeled system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scope {
    /// A processing element, identified by its runtime slot index.
    Pe(u8),
    /// A circuit-switched NoC link between two node slots.
    Link { from: u8, to: u8 },
    /// The RV32 control processor.
    Controller,
    /// Whole-device counters (frames ingested, radio bytes, ...).
    System,
}

/// What is being counted. Not every counter is meaningful in every
/// [`Scope`]; the mapping is documented per variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Cycles a PE spent doing useful work (`Scope::Pe`), or cycles retired
    /// by the control processor (`Scope::Controller`).
    BusyCycles,
    /// Cycles a PE was ready but back-pressured by a non-empty output FIFO
    /// (`Scope::Pe`).
    StallCycles,
    /// Payload bytes entering a PE (`Scope::Pe`).
    BytesIn,
    /// Payload bytes leaving a PE (`Scope::Pe`) or crossing a link
    /// (`Scope::Link`).
    BytesOut,
    /// Tokens entering a PE (`Scope::Pe`).
    TokensIn,
    /// Tokens leaving a PE (`Scope::Pe`) or transfers on a link
    /// (`Scope::Link`).
    TokensOut,
    /// High-water mark of a PE's output FIFO in tokens (`Scope::Pe`,
    /// use [`TelemetrySink::hwm`]).
    FifoHighWater,
    /// Peak *end-of-window* occupancy of a PE's output FIFO in tokens
    /// (`Scope::Pe`, use [`TelemetrySink::hwm`]). Unlike
    /// [`Counter::FifoHighWater`] — the within-burst peak, which sizes the
    /// hardware buffer — this counts tokens still queued when a sampling
    /// window closed, i.e. sustained backpressure the consumer never
    /// caught up with.
    FifoPeakDepth,
    /// Instructions retired by the control processor (`Scope::Controller`).
    Instructions,
    /// Complete switch-programming sequences executed (`Scope::Controller`).
    SwitchPrograms,
    /// Individual switch words written over MMIO (`Scope::Controller`).
    SwitchWords,
    /// Stimulation pulses commanded (`Scope::Controller`).
    StimPulses,
    /// Bytes handed to the radio for off-implant transmission
    /// (`Scope::System`).
    RadioBytes,
    /// Sample frames ingested from the electrode array (`Scope::System`).
    Frames,
}

/// How bad a [`EventKind::Health`] alert is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational; no envelope at risk.
    Info,
    /// An envelope is under pressure (backpressure, throughput nearing a
    /// ceiling); the run is still safe.
    Warning,
    /// A hard safety envelope was violated (power budget, closed-loop
    /// deadline); the flight recorder dumps a post-mortem.
    Critical,
}

impl Severity {
    /// Lower-case label used by exporters.
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }
}

/// Discriminated payload of a timeline [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// Aggregated activity of one PE over a sampling window.
    PeWindow {
        slot: u8,
        name: &'static str,
        /// Window length in sample frames.
        frames: u32,
        busy_cycles: u64,
        stall_cycles: u64,
        bytes_in: u64,
        bytes_out: u64,
    },
    /// Aggregated NoC traffic over a sampling window.
    NocWindow {
        /// Window length in sample frames.
        frames: u32,
        bytes: u64,
        transfers: u64,
    },
    /// Modeled power of one clock domain at this instant, in milliwatts.
    PowerSample {
        slot: u8,
        name: &'static str,
        milliwatts: f64,
    },
    /// The controller reprogrammed the fabric switches. `generation` is the
    /// fabric's configuration generation after the program completed, so a
    /// post-mortem can say exactly which routing epoch was live.
    SwitchProgram { words: u32, generation: u64 },
    /// End-of-window occupancy of one PE's output FIFO: `depth` tokens were
    /// still queued when the sampling window closed, `peak` is the FIFO's
    /// all-time high-water mark in tokens.
    FifoWindow {
        slot: u8,
        name: &'static str,
        depth: u32,
        peak: u32,
    },
    /// Radio traffic over a sampling window: `bytes` handed to the radio
    /// across `frames` sample frames.
    RadioWindow { frames: u32, bytes: u64 },
    /// A closed-loop response completed: a detection at `detect_frame` was
    /// answered by stimulation `latency_frames` sample frames later
    /// (controller decision + command path, converted to frames).
    ClosedLoop {
        detect_frame: u64,
        latency_frames: u64,
    },
    /// A health-monitor alert: envelope `name` observed `value` against
    /// configured `limit`.
    Health {
        name: &'static str,
        severity: Severity,
        value: f64,
        limit: f64,
    },
    /// The controller commanded a stimulation pulse.
    Stim { channel: u8, amplitude_ua: u32 },
    /// A detector (movement intent / seizure) fired.
    Detection { positive: bool },
    /// Free-form annotation (pipeline reconfigured, run boundaries, ...).
    Marker { name: &'static str },
    /// A fault was injected by the chaos harness (see `halo-faults`).
    /// `detected` says whether a modeled integrity check (FIFO parity,
    /// residue code, fabric validation) surfaced a typed error at the
    /// point of damage; an undetected injection landed on empty state and
    /// was physically harmless. The flight recorder keeps the most recent
    /// of these so every post-mortem attributes its failure.
    Fault {
        /// Stable fault-class label (`fifo_bit_flip`, `rogue_mmio`, ...).
        kind: &'static str,
        /// Primary PE slot targeted, or `u8::MAX` for fabric-wide faults.
        slot: u8,
        /// Class-specific scalar (bit index / stall cycles / raw word).
        detail: u64,
        /// Whether an integrity check raised a typed error.
        detected: bool,
    },
    /// One span of a sampled causal trace (see [`crate::tracing`]). The
    /// tracer streams a completed trace's spans into the recorder ring with
    /// `frame` set to the trace's root frame.
    Span(crate::tracing::SpanRecord),
}

/// A timestamped entry in the telemetry timeline. `frame` is the index of
/// the sample frame at which the event was recorded — divide by the sample
/// rate to get seconds of biological time.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    pub frame: u64,
    pub kind: EventKind,
}

/// Passive receiver for simulator instrumentation.
///
/// All methods take `&self` so one sink can be shared across the runtime,
/// controller, and power model behind an `Arc<dyn TelemetrySink>`.
/// Implementations must be cheap when disabled: instrumentation sites are
/// allowed to call [`TelemetrySink::add`] unconditionally on hot paths, but
/// sites that need to *compute* something first should gate the computation
/// on [`TelemetrySink::enabled`].
pub trait TelemetrySink: Send + Sync {
    /// Whether this sink wants data at all. Hot paths use this to skip
    /// constructing events.
    fn enabled(&self) -> bool;

    /// Announce that PE slot `slot` holds a PE named `name`. Idempotent.
    fn declare_pe(&self, slot: u8, name: &'static str) {
        let _ = (slot, name);
    }

    /// Increment `counter` within `scope` by `delta`.
    fn add(&self, scope: Scope, counter: Counter, delta: u64) {
        let _ = (scope, counter, delta);
    }

    /// Raise `counter` within `scope` to at least `value` (monotonic max).
    fn hwm(&self, scope: Scope, counter: Counter, value: u64) {
        let _ = (scope, counter, value);
    }

    /// Append `event` to the timeline.
    fn event(&self, event: Event) {
        let _ = event;
    }

    /// Record one latency sample of `nanos` nanoseconds. `Scope::System`
    /// is end-to-end frame latency of the active pipeline; `Scope::Pe(slot)`
    /// is that PE's service time for one sampling window. Sinks that keep
    /// histograms override this; the default drops the sample.
    fn latency(&self, scope: Scope, nanos: u64) {
        let _ = (scope, nanos);
    }

    /// Record many latency samples under one `scope` in a single call.
    /// Producers that sample on a per-frame cadence buffer samples and
    /// flush them at window boundaries through this method, so a locking
    /// sink pays one synchronization per window instead of one per frame.
    /// The default forwards each sample to [`TelemetrySink::latency`].
    fn latency_batch(&self, scope: Scope, samples: &[u64]) {
        for &nanos in samples {
            self.latency(scope, nanos);
        }
    }
}

/// A sink that drops everything. This is the default wired into the
/// runtime; it reports `enabled() == false` so instrumentation sites skip
/// all bookkeeping that is not already part of the simulation.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn enabled(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled_and_inert() {
        let sink = NullSink;
        assert!(!sink.enabled());
        // Default methods must be callable without effect.
        sink.declare_pe(0, "LZ");
        sink.add(Scope::Pe(0), Counter::BusyCycles, 10);
        sink.hwm(Scope::Pe(0), Counter::FifoHighWater, 4);
        sink.latency(Scope::System, 33_000);
        sink.event(Event {
            frame: 0,
            kind: EventKind::Marker { name: "noop" },
        });
    }

    #[test]
    fn null_sink_is_object_safe() {
        let sink: std::sync::Arc<dyn TelemetrySink> = std::sync::Arc::new(NullSink);
        assert!(!sink.enabled());
    }
}
