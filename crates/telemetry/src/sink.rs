//! The [`TelemetrySink`] trait and its zero-cost [`NullSink`] default.

/// Where a counter update happened in the modeled system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scope {
    /// A processing element, identified by its runtime slot index.
    Pe(u8),
    /// A circuit-switched NoC link between two node slots.
    Link { from: u8, to: u8 },
    /// The RV32 control processor.
    Controller,
    /// Whole-device counters (frames ingested, radio bytes, ...).
    System,
}

/// What is being counted. Not every counter is meaningful in every
/// [`Scope`]; the mapping is documented per variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Cycles a PE spent doing useful work (`Scope::Pe`), or cycles retired
    /// by the control processor (`Scope::Controller`).
    BusyCycles,
    /// Cycles a PE was ready but back-pressured by a non-empty output FIFO
    /// (`Scope::Pe`).
    StallCycles,
    /// Payload bytes entering a PE (`Scope::Pe`).
    BytesIn,
    /// Payload bytes leaving a PE (`Scope::Pe`) or crossing a link
    /// (`Scope::Link`).
    BytesOut,
    /// Tokens entering a PE (`Scope::Pe`).
    TokensIn,
    /// Tokens leaving a PE (`Scope::Pe`) or transfers on a link
    /// (`Scope::Link`).
    TokensOut,
    /// High-water mark of a PE's output FIFO in tokens (`Scope::Pe`,
    /// use [`TelemetrySink::hwm`]).
    FifoHighWater,
    /// Instructions retired by the control processor (`Scope::Controller`).
    Instructions,
    /// Complete switch-programming sequences executed (`Scope::Controller`).
    SwitchPrograms,
    /// Individual switch words written over MMIO (`Scope::Controller`).
    SwitchWords,
    /// Stimulation pulses commanded (`Scope::Controller`).
    StimPulses,
    /// Bytes handed to the radio for off-implant transmission
    /// (`Scope::System`).
    RadioBytes,
    /// Sample frames ingested from the electrode array (`Scope::System`).
    Frames,
}

/// Discriminated payload of a timeline [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// Aggregated activity of one PE over a sampling window.
    PeWindow {
        slot: u8,
        name: &'static str,
        /// Window length in sample frames.
        frames: u32,
        busy_cycles: u64,
        stall_cycles: u64,
        bytes_in: u64,
        bytes_out: u64,
    },
    /// Aggregated NoC traffic over a sampling window.
    NocWindow {
        /// Window length in sample frames.
        frames: u32,
        bytes: u64,
        transfers: u64,
    },
    /// Modeled power of one clock domain at this instant, in milliwatts.
    PowerSample {
        slot: u8,
        name: &'static str,
        milliwatts: f64,
    },
    /// The controller reprogrammed the fabric switches.
    SwitchProgram { words: u32 },
    /// The controller commanded a stimulation pulse.
    Stim { channel: u8, amplitude_ua: u32 },
    /// A detector (movement intent / seizure) fired.
    Detection { positive: bool },
    /// Free-form annotation (pipeline reconfigured, run boundaries, ...).
    Marker { name: &'static str },
}

/// A timestamped entry in the telemetry timeline. `frame` is the index of
/// the sample frame at which the event was recorded — divide by the sample
/// rate to get seconds of biological time.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    pub frame: u64,
    pub kind: EventKind,
}

/// Passive receiver for simulator instrumentation.
///
/// All methods take `&self` so one sink can be shared across the runtime,
/// controller, and power model behind an `Arc<dyn TelemetrySink>`.
/// Implementations must be cheap when disabled: instrumentation sites are
/// allowed to call [`TelemetrySink::add`] unconditionally on hot paths, but
/// sites that need to *compute* something first should gate the computation
/// on [`TelemetrySink::enabled`].
pub trait TelemetrySink: Send + Sync {
    /// Whether this sink wants data at all. Hot paths use this to skip
    /// constructing events.
    fn enabled(&self) -> bool;

    /// Announce that PE slot `slot` holds a PE named `name`. Idempotent.
    fn declare_pe(&self, slot: u8, name: &'static str) {
        let _ = (slot, name);
    }

    /// Increment `counter` within `scope` by `delta`.
    fn add(&self, scope: Scope, counter: Counter, delta: u64) {
        let _ = (scope, counter, delta);
    }

    /// Raise `counter` within `scope` to at least `value` (monotonic max).
    fn hwm(&self, scope: Scope, counter: Counter, value: u64) {
        let _ = (scope, counter, value);
    }

    /// Append `event` to the timeline.
    fn event(&self, event: Event) {
        let _ = event;
    }
}

/// A sink that drops everything. This is the default wired into the
/// runtime; it reports `enabled() == false` so instrumentation sites skip
/// all bookkeeping that is not already part of the simulation.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn enabled(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled_and_inert() {
        let sink = NullSink;
        assert!(!sink.enabled());
        // Default methods must be callable without effect.
        sink.declare_pe(0, "LZ");
        sink.add(Scope::Pe(0), Counter::BusyCycles, 10);
        sink.hwm(Scope::Pe(0), Counter::FifoHighWater, 4);
        sink.event(Event {
            frame: 0,
            kind: EventKind::Marker { name: "noop" },
        });
    }

    #[test]
    fn null_sink_is_object_safe() {
        let sink: std::sync::Arc<dyn TelemetrySink> = std::sync::Arc::new(NullSink);
        assert!(!sink.enabled());
    }
}
