//! Deterministic cycle/energy profiler with hierarchical attribution.
//!
//! The monitoring stack answers "is the device healthy?"; this module
//! answers "*where do the cycles go?*". A [`CycleProfile`] attributes the
//! modeled cost (from `PeKind::cycles_per_token` and the `DomainPowerModel`
//! anchors — the same tables every other subsystem prices against) over
//! the tree *device → pipeline → PE → kernel phase*:
//!
//! * **ingest** — cycles charged pushing source tokens into the fabric's
//!   entry PEs, per frame.
//! * **compute** — cycles the PE graph burned propagating and transforming
//!   tokens downstream of the sources (derived: busy − ingest − quiet −
//!   drain, so the four phases always tile a slot's busy cycles exactly).
//! * **drain** — cycles spent flushing residual state at end of stream.
//! * **quiet-skip** — cycles accounted on the batched `push_block` fast
//!   path for provably-quiet frame chunks that never individually
//!   propagated.
//!
//! Everything here is *derived from deterministic counters*, not wall
//! clocks: two runs over the same recording produce byte-identical
//! profiles regardless of host, thread count, or scheduler interleaving.
//! That makes profiles mergeable (fleet rollups sum frame-for-frame) and
//! diffable ([`ProfileDiff`] normalizes per frame, so a 10% longer run is
//! not a 10% regression).
//!
//! Export formats:
//!
//! * [`CycleProfile::folded`] — collapsed-stack ("folded") lines,
//!   `device;pipeline;PE@slot;phase cycles`, directly consumable by
//!   inferno / speedscope / `flamegraph.pl`.
//! * [`CycleProfile::render_exposition`] — `halo_profile_*` Prometheus
//!   families.
//! * [`CycleProfile::render_summary`] — a top-k table for terminals.
//! * [`ProfileDiff::to_json`] — per-frame-normalized A/B deltas, used by
//!   the bench regression sentinel to name the regressed frame.

use crate::expose::{escape_label, Exposition};
use crate::json;

/// Kernel phase a slice of cycles is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Source tokens entering the fabric, per scalar frame.
    Ingest,
    /// Everything the PE graph did downstream of ingest.
    Compute,
    /// End-of-stream flush of residual kernel state.
    Drain,
    /// Batched accounting for provably-quiet frame chunks.
    QuietSkip,
}

impl Phase {
    /// All phases in canonical (sort/render) order.
    pub const ALL: [Phase; 4] = [
        Phase::Ingest,
        Phase::Compute,
        Phase::Drain,
        Phase::QuietSkip,
    ];

    /// Stable label used in folded stacks, expositions, and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            Phase::Ingest => "ingest",
            Phase::Compute => "compute",
            Phase::Drain => "drain",
            Phase::QuietSkip => "quiet-skip",
        }
    }
}

/// One leaf of the attribution tree: a (pipeline, PE slot, phase) cell
/// with its cycle count and apportioned energy.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileRow {
    /// Pipeline label the cycles ran under (stable task label).
    pub pipeline: String,
    /// Fabric slot index of the PE.
    pub slot: u8,
    /// PE kind name (Table III mnemonic, e.g. `LZ`, `SVM`).
    pub pe: String,
    /// Kernel phase.
    pub phase: Phase,
    /// Modeled cycles attributed to this cell.
    pub cycles: u64,
    /// Modeled energy in microjoules, apportioned by cycle share of the
    /// slot's window power draw.
    pub energy_uj: f64,
}

impl ProfileRow {
    /// The row's frame path below the device root:
    /// `pipeline;PE@slot;phase`.
    pub fn frame(&self) -> String {
        format!(
            "{};{}@{};{}",
            self.pipeline,
            self.pe,
            self.slot,
            self.phase.label()
        )
    }
}

/// A hierarchical cycle/energy profile for one device (or a merged fleet).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CycleProfile {
    /// Root frame: the device (session) identity, `"fleet"` after a merge.
    pub device: String,
    /// Scalar frames the profiled stream covered.
    pub frames: u64,
    /// Attribution leaves in canonical order (pipeline, slot, phase).
    pub rows: Vec<ProfileRow>,
}

impl CycleProfile {
    /// An empty profile rooted at `device`.
    pub fn new(device: impl Into<String>) -> Self {
        Self {
            device: device.into(),
            frames: 0,
            rows: Vec::new(),
        }
    }

    /// Canonical row order: (pipeline, slot, phase). Sorting is what makes
    /// folded output and expositions byte-stable however rows were added.
    fn sort(&mut self) {
        self.rows
            .sort_by(|a, b| (&a.pipeline, a.slot, a.phase).cmp(&(&b.pipeline, b.slot, b.phase)));
    }

    /// Add one attribution cell (no-op for zero cycles). Rows with the
    /// same (pipeline, slot, phase) key accumulate.
    pub fn add(&mut self, row: ProfileRow) {
        if row.cycles == 0 && row.energy_uj == 0.0 {
            return;
        }
        if let Some(existing) = self
            .rows
            .iter_mut()
            .find(|r| r.pipeline == row.pipeline && r.slot == row.slot && r.phase == row.phase)
        {
            existing.cycles += row.cycles;
            existing.energy_uj += row.energy_uj;
        } else {
            self.rows.push(row);
        }
        self.sort();
    }

    /// Fold `other` into `self`: frames add, matching (pipeline, slot,
    /// phase) cells sum. The device root is unchanged — set it to the
    /// merged identity (e.g. `"fleet"`) on the accumulator.
    pub fn merge(&mut self, other: &CycleProfile) {
        self.frames += other.frames;
        for row in &other.rows {
            if let Some(existing) = self
                .rows
                .iter_mut()
                .find(|r| r.pipeline == row.pipeline && r.slot == row.slot && r.phase == row.phase)
            {
                existing.cycles += row.cycles;
                existing.energy_uj += row.energy_uj;
            } else {
                self.rows.push(row.clone());
            }
        }
        self.sort();
    }

    /// Total cycles across every leaf.
    pub fn total_cycles(&self) -> u64 {
        self.rows.iter().map(|r| r.cycles).sum()
    }

    /// Total modeled energy in microjoules.
    pub fn total_energy_uj(&self) -> f64 {
        self.rows.iter().map(|r| r.energy_uj).sum()
    }

    /// The frame (below the device root) with the most self cycles, with
    /// its share of the total — the profile's one-line verdict.
    pub fn dominant_frame(&self) -> Option<(String, f64)> {
        let total = self.total_cycles();
        if total == 0 {
            return None;
        }
        self.rows
            .iter()
            .max_by(|a, b| (a.cycles, b.frame()).cmp(&(b.cycles, a.frame())))
            .map(|r| (r.frame(), r.cycles as f64 / total as f64))
    }

    /// Per-frame cycle share of each frame path: `frame -> cycles`.
    /// Used by diffing and divergence scoring; rows are already unique by
    /// frame path so this is a plain projection.
    pub fn frame_cycles(&self) -> Vec<(String, u64)> {
        self.rows.iter().map(|r| (r.frame(), r.cycles)).collect()
    }

    /// Collapsed-stack ("folded") flamegraph lines:
    /// `device;pipeline;PE@slot;phase cycles\n`, in canonical order,
    /// zero-cycle rows skipped. inferno / speedscope / `flamegraph.pl`
    /// consume this directly.
    pub fn folded(&self) -> String {
        let mut out = String::with_capacity(64 * self.rows.len());
        for row in &self.rows {
            if row.cycles == 0 {
                continue;
            }
            out.push_str(&self.device);
            out.push(';');
            out.push_str(&row.frame());
            out.push(' ');
            out.push_str(&row.cycles.to_string());
            out.push('\n');
        }
        out
    }

    /// Render the `halo_profile_*` Prometheus families into `e`.
    pub fn render_exposition_into(&self, e: &mut Exposition) {
        e.family(
            "halo_profile_cycles_total",
            "counter",
            "Modeled cycles attributed per device, pipeline, PE, and kernel phase.",
        );
        for row in &self.rows {
            e.value("halo_profile_cycles_total", &self.labels(row), row.cycles);
        }
        e.family(
            "halo_profile_energy_microjoules",
            "gauge",
            "Modeled energy apportioned by cycle share, microjoules.",
        );
        for row in &self.rows {
            e.value(
                "halo_profile_energy_microjoules",
                &self.labels(row),
                crate::expose::sample(row.energy_uj),
            );
        }
        e.family(
            "halo_profile_frames_total",
            "counter",
            "Scalar frames covered by the profile.",
        );
        e.value(
            "halo_profile_frames_total",
            &format!("device=\"{}\"", escape_label(&self.device)),
            self.frames,
        );
    }

    /// Standalone `halo_profile_*` exposition.
    pub fn render_exposition(&self) -> String {
        let mut e = Exposition::new();
        self.render_exposition_into(&mut e);
        e.finish()
    }

    fn labels(&self, row: &ProfileRow) -> String {
        format!(
            "device=\"{}\",pipeline=\"{}\",pe=\"{}\",slot=\"{}\",phase=\"{}\"",
            escape_label(&self.device),
            escape_label(&row.pipeline),
            escape_label(&row.pe),
            row.slot,
            row.phase.label()
        )
    }

    /// Top-`k` self-cycle frames as a plain-text table.
    pub fn render_summary(&self, k: usize) -> String {
        let total = self.total_cycles().max(1);
        let mut rows: Vec<&ProfileRow> = self.rows.iter().filter(|r| r.cycles > 0).collect();
        rows.sort_by(|a, b| (b.cycles, a.frame()).cmp(&(a.cycles, b.frame())));
        let mut out = format!(
            "profile: device={} frames={} total_cycles={} energy={:.3} uJ\n",
            self.device,
            self.frames,
            self.total_cycles(),
            self.total_energy_uj()
        );
        for row in rows.iter().take(k) {
            out.push_str(&format!(
                "  {:6.2}%  {:>14} cycles  {:8.3} uJ  {}\n",
                100.0 * row.cycles as f64 / total as f64,
                row.cycles,
                row.energy_uj,
                row.frame()
            ));
        }
        out
    }

    /// Serialize to a flat JSON object (used by the bench baseline and
    /// verdict files). Inverse of [`CycleProfile::from_json`].
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + 96 * self.rows.len());
        out.push_str("{\"device\":");
        out.push_str(&json::string(&self.device));
        out.push_str(&format!(",\"frames\":{},\"rows\":[", self.frames));
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"pipeline\":{},\"slot\":{},\"pe\":{},\"phase\":{},\"cycles\":{},\"energy_uj\":{}}}",
                json::string(&row.pipeline),
                row.slot,
                json::string(&row.pe),
                json::string(row.phase.label()),
                row.cycles,
                json::number(row.energy_uj),
            ));
        }
        out.push_str("]}");
        out
    }

    /// Parse a profile serialized by [`CycleProfile::to_json`].
    pub fn from_json(value: &json::Value) -> Option<CycleProfile> {
        let device = value.get("device")?.as_str()?.to_string();
        let frames = value.get("frames")?.as_u64()?;
        let mut rows = Vec::new();
        for row in value.get("rows")?.as_array()? {
            let phase = match row.get("phase")?.as_str()? {
                "ingest" => Phase::Ingest,
                "compute" => Phase::Compute,
                "drain" => Phase::Drain,
                "quiet-skip" => Phase::QuietSkip,
                _ => return None,
            };
            rows.push(ProfileRow {
                pipeline: row.get("pipeline")?.as_str()?.to_string(),
                slot: row.get("slot")?.as_u64()? as u8,
                pe: row.get("pe")?.as_str()?.to_string(),
                phase,
                cycles: row.get("cycles")?.as_u64()?,
                energy_uj: row.get("energy_uj")?.as_f64()?,
            });
        }
        let mut profile = CycleProfile {
            device,
            frames,
            rows,
        };
        profile.sort();
        Some(profile)
    }
}

/// One per-frame-normalized attribution delta between two profiles.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Frame path below the device root (`pipeline;PE@slot;phase`).
    pub frame: String,
    /// Baseline cycles per scalar frame.
    pub base_cpf: f64,
    /// Fresh cycles per scalar frame.
    pub fresh_cpf: f64,
    /// Relative change: `fresh_cpf / base_cpf - 1` (clamped when the
    /// baseline had no cycles on this frame).
    pub delta_ratio: f64,
    /// Absolute per-frame cycle change (`fresh_cpf - base_cpf`).
    pub delta_cpf: f64,
}

/// An A/B profile comparison with per-frame normalization: run lengths
/// cancel out, so only genuine per-frame cost changes surface.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileDiff {
    /// Frames whose per-frame cycles moved by at least `min_ratio`,
    /// largest absolute per-frame delta first.
    pub rows: Vec<DiffRow>,
}

impl ProfileDiff {
    /// Ratio reported when a frame appears on only one side (a baseline
    /// of zero cycles makes the true ratio infinite; the clamp keeps the
    /// JSON finite and the sort sane).
    pub const NEW_FRAME_RATIO: f64 = 99.99;

    /// Diff `fresh` against `base`, keeping frames whose per-frame cycle
    /// cost moved by at least `min_ratio` (e.g. `0.02` = 2%). Both sides
    /// are normalized by their own frame count before comparing.
    pub fn between(base: &CycleProfile, fresh: &CycleProfile, min_ratio: f64) -> ProfileDiff {
        let base_frames = base.frames.max(1) as f64;
        let fresh_frames = fresh.frames.max(1) as f64;
        let base_cycles = base.frame_cycles();
        let fresh_cycles = fresh.frame_cycles();
        let mut frames: Vec<&String> = base_cycles
            .iter()
            .chain(fresh_cycles.iter())
            .map(|(f, _)| f)
            .collect();
        frames.sort();
        frames.dedup();
        let lookup = |set: &[(String, u64)], frame: &str| -> u64 {
            set.iter()
                .find(|(f, _)| f == frame)
                .map(|(_, c)| *c)
                .unwrap_or(0)
        };
        let mut rows = Vec::new();
        for frame in frames {
            let base_cpf = lookup(&base_cycles, frame) as f64 / base_frames;
            let fresh_cpf = lookup(&fresh_cycles, frame) as f64 / fresh_frames;
            let delta_cpf = fresh_cpf - base_cpf;
            let delta_ratio = if base_cpf > 0.0 {
                fresh_cpf / base_cpf - 1.0
            } else if fresh_cpf > 0.0 {
                Self::NEW_FRAME_RATIO
            } else {
                0.0
            };
            if delta_ratio.abs() >= min_ratio {
                rows.push(DiffRow {
                    frame: frame.clone(),
                    base_cpf,
                    fresh_cpf,
                    delta_ratio,
                    delta_cpf,
                });
            }
        }
        rows.sort_by(|a, b| {
            b.delta_cpf
                .abs()
                .partial_cmp(&a.delta_cpf.abs())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.frame.cmp(&b.frame))
        });
        ProfileDiff { rows }
    }

    /// True when no frame moved past the threshold.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The top-`k` rows as human-readable annotation lines, e.g.
    /// `"Compress(Lzma);RC@3;drain +38.0% self cycles (12.4 -> 17.1 c/f)"`.
    pub fn annotate(&self, k: usize) -> Vec<String> {
        self.rows
            .iter()
            .take(k)
            .map(|r| {
                format!(
                    "{} {}{:.1}% self cycles ({:.1} -> {:.1} c/f)",
                    r.frame,
                    if r.delta_ratio >= 0.0 { "+" } else { "" },
                    100.0 * r.delta_ratio,
                    r.base_cpf,
                    r.fresh_cpf
                )
            })
            .collect()
    }

    /// The diff as a JSON array, largest per-frame delta first.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"frame\":{},\"base_cycles_per_frame\":{},\"fresh_cycles_per_frame\":{},\"delta_ratio\":{},\"delta_cycles_per_frame\":{}}}",
                json::string(&row.frame),
                json::number(row.base_cpf),
                json::number(row.fresh_cpf),
                json::number(row.delta_ratio),
                json::number(row.delta_cpf),
            ));
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(pipeline: &str, slot: u8, pe: &str, phase: Phase, cycles: u64) -> ProfileRow {
        ProfileRow {
            pipeline: pipeline.to_string(),
            slot,
            pe: pe.to_string(),
            phase,
            cycles,
            energy_uj: cycles as f64 * 0.001,
        }
    }

    fn sample() -> CycleProfile {
        let mut p = CycleProfile::new("dev0");
        p.frames = 100;
        p.add(row("Compress(Lzma)", 0, "LZ", Phase::Ingest, 200));
        p.add(row("Compress(Lzma)", 0, "LZ", Phase::Compute, 2_000));
        p.add(row("Compress(Lzma)", 3, "RC", Phase::Compute, 1_200));
        p.add(row("Compress(Lzma)", 3, "RC", Phase::Drain, 300));
        p
    }

    #[test]
    fn folded_lines_are_sorted_and_skip_zero_rows() {
        let mut p = sample();
        p.add(row("Compress(Lzma)", 5, "AES", Phase::QuietSkip, 0));
        let folded = p.folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "dev0;Compress(Lzma);LZ@0;ingest 200");
        assert_eq!(lines[1], "dev0;Compress(Lzma);LZ@0;compute 2000");
        assert!(!folded.contains("AES"));
        let mut sorted = lines.clone();
        sorted.sort();
        // Canonical order groups by (pipeline, slot, phase), which for a
        // single pipeline is also stable across renders.
        assert_eq!(p.folded(), folded, "render must be deterministic");
    }

    #[test]
    fn merge_sums_matching_cells_and_frames() {
        let mut fleet = CycleProfile::new("fleet");
        fleet.merge(&sample());
        fleet.merge(&sample());
        assert_eq!(fleet.frames, 200);
        assert_eq!(fleet.total_cycles(), 2 * sample().total_cycles());
        assert_eq!(fleet.rows.len(), sample().rows.len());
        let (frame, share) = fleet.dominant_frame().unwrap();
        assert_eq!(frame, "Compress(Lzma);LZ@0;compute");
        assert!((share - 2000.0 / 3700.0).abs() < 1e-12);
    }

    #[test]
    fn json_round_trips() {
        let p = sample();
        let text = p.to_json();
        let value = json::parse(&text).expect("profile json parses");
        let back = CycleProfile::from_json(&value).expect("profile json loads");
        assert_eq!(p, back);
    }

    #[test]
    fn diff_normalizes_per_frame_and_names_the_regressed_frame() {
        let base = sample();
        let mut fresh = sample();
        // Twice the frames at the same per-frame cost, except RC drain
        // got 40% slower per frame.
        fresh.frames = 200;
        for row in &mut fresh.rows {
            row.cycles *= 2;
            if row.pe == "RC" && row.phase == Phase::Drain {
                row.cycles = (row.cycles as f64 * 1.4) as u64;
            }
        }
        let diff = ProfileDiff::between(&base, &fresh, 0.02);
        assert_eq!(diff.rows.len(), 1, "only the slowed frame moves: {diff:?}");
        assert_eq!(diff.rows[0].frame, "Compress(Lzma);RC@3;drain");
        assert!((diff.rows[0].delta_ratio - 0.4).abs() < 1e-9);
        let note = &diff.annotate(1)[0];
        assert!(note.contains("RC@3;drain"), "{note}");
        assert!(note.contains("+40.0%"), "{note}");
        json::parse(&diff.to_json()).expect("diff json parses");
    }

    #[test]
    fn identical_profiles_diff_empty_even_across_run_lengths() {
        let base = sample();
        let mut fresh = sample();
        fresh.frames = 300;
        for row in &mut fresh.rows {
            row.cycles *= 3;
        }
        assert!(ProfileDiff::between(&base, &fresh, 0.02).is_empty());
    }

    #[test]
    fn frame_only_on_one_side_gets_the_clamped_ratio() {
        let base = sample();
        let mut fresh = sample();
        fresh.add(row("Compress(Lzma)", 7, "AES", Phase::Compute, 5_000));
        let diff = ProfileDiff::between(&base, &fresh, 0.02);
        let added = diff
            .rows
            .iter()
            .find(|r| r.frame.contains("AES"))
            .expect("new frame surfaces");
        assert_eq!(added.delta_ratio, ProfileDiff::NEW_FRAME_RATIO);
        assert_eq!(added.base_cpf, 0.0);
    }

    #[test]
    fn exposition_is_conformant_and_carries_all_families() {
        let text = sample().render_exposition();
        for family in [
            "halo_profile_cycles_total",
            "halo_profile_energy_microjoules",
            "halo_profile_frames_total",
        ] {
            assert!(text.contains(&format!("# HELP {family}")), "{family}");
            assert!(text.contains(&format!("# TYPE {family}")), "{family}");
        }
        assert!(text.contains("device=\"dev0\""));
        assert!(text.contains("phase=\"drain\""));
    }
}
