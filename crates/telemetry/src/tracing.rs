//! Sampled causal tracing through the PE fabric.
//!
//! Aggregate counters say *that* p99 frame latency regressed; tracing says
//! *which hop* ate the budget. A [`TraceSampler`] deterministically tags a
//! configurable fraction of input frames with a [`TraceId`]. The runtime
//! propagates that id as a compact context — one sticky `u64` per PE output
//! FIFO, zero per-token state — and reports every delivery burst the tagged
//! tokens take part in. The [`Tracer`] turns those reports into
//! [`SpanRecord`]s on a per-trace virtual clock:
//!
//! * a root [`SpanKind::Frame`] span covering the trace end to end,
//! * one [`SpanKind::PeService`] span per delivery burst, with
//!   [`SpanKind::NocHop`], [`SpanKind::FifoWait`] and
//!   [`SpanKind::DomainCross`] children for the transfer, backpressure and
//!   clock-domain-crossing portions of the burst,
//! * [`SpanKind::RadioFrame`] / [`SpanKind::StimPulse`] spans for the
//!   uplink and closed-loop endpoints.
//!
//! The virtual clock only advances inside spans, so the leaf self-times of a
//! well-formed trace tile the root interval exactly — critical-path
//! attribution (see [`crate::span_tree`]) always sums to 100% of the traced
//! end-to-end latency. Completed traces land in a bounded ring and, when a
//! [`TelemetrySink`] is attached, are streamed into the recorder ring as
//! [`EventKind::Span`] events for Chrome-trace rendering.
//!
//! Sampling policy: with `every = N`, exactly one frame per window of `N`
//! is traced, at a SplitMix64-derived offset that varies per window — so the
//! rate holds within ±1 over any horizon while avoiding beat patterns with
//! windowed pipelines. [`TraceSampler::force_next`] lets the health monitor
//! escalate to always-on sampling for the frames following a critical alert.

use crate::sink::{Event, EventKind, TelemetrySink};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Identifier of one traced frame's causal tree. Non-zero; doubles as the
/// compact context stamped on PE output FIFOs (`0` means untraced).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Identifier of a span within one trace. The root frame span is always id 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u32);

/// `node` value for spans not pinned to a PE slot (the root frame span and
/// stimulation pulses, which belong to the system rather than one PE).
pub const NO_NODE: u8 = 0xFF;

/// What a span measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Root span: the whole traced frame, begin 0 to end-to-end latency.
    Frame,
    /// A PE consuming one delivery burst (service cycles on the consumer).
    PeService,
    /// Backpressure: cycles the consumer stalled because its output FIFO
    /// still held the previous burst.
    FifoWait,
    /// Circuit-switched NoC transfer from producer to consumer.
    NocHop,
    /// Clock-domain boundary crossing between producer and consumer domains.
    DomainCross,
    /// Radio MAC framing/transmission of uplink bytes.
    RadioFrame,
    /// Closed-loop stimulation command issued in response to a detection.
    StimPulse,
}

impl SpanKind {
    /// Stable lowercase label (metric label values, JSON).
    pub fn label(&self) -> &'static str {
        match self {
            SpanKind::Frame => "frame",
            SpanKind::PeService => "pe_service",
            SpanKind::FifoWait => "fifo_wait",
            SpanKind::NocHop => "noc_hop",
            SpanKind::DomainCross => "domain_cross",
            SpanKind::RadioFrame => "radio_frame",
            SpanKind::StimPulse => "stim_pulse",
        }
    }

    /// Every kind, in a stable order (metric families, tests).
    pub fn all() -> [SpanKind; 7] {
        [
            SpanKind::Frame,
            SpanKind::PeService,
            SpanKind::FifoWait,
            SpanKind::NocHop,
            SpanKind::DomainCross,
            SpanKind::RadioFrame,
            SpanKind::StimPulse,
        ]
    }
}

/// One interval on a trace's virtual clock.
///
/// Times are nanoseconds since the traced frame entered the fabric, derived
/// from modeled hardware rates (PE service cycles at the domain anchor
/// frequency, NoC bytes at link capacity, radio bytes at the 46 Mbps
/// ceiling) — the same models the power/latency envelopes use, so span
/// durations line up with the aggregate histograms.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace: TraceId,
    /// Span id, unique within the trace. Root is 0.
    pub id: SpanId,
    /// Parent span, `None` only for the root.
    pub parent: Option<SpanId>,
    /// What the interval measures.
    pub kind: SpanKind,
    /// PE slot the span is pinned to ([`NO_NODE`] for system spans). For
    /// [`SpanKind::NocHop`] this is the *producer* slot.
    pub node: u8,
    /// Consumer slot for [`SpanKind::NocHop`]; [`NO_NODE`] otherwise.
    pub to_node: u8,
    /// Static name: the PE kind name for service spans, the producer kind
    /// for hops, `"frame"`/`"radio"`/`"stim"` for system spans.
    pub name: &'static str,
    /// Start, nanoseconds on the trace clock.
    pub begin_ns: u64,
    /// End, nanoseconds on the trace clock (`end_ns >= begin_ns`).
    pub end_ns: u64,
    /// Tokens moved in the burst the span describes (0 for the root).
    pub tokens: u32,
    /// Wire bytes moved in the burst the span describes (0 for the root).
    pub bytes: u64,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.begin_ns)
    }
}

/// A completed trace: the root frame index it was sampled at plus every
/// span recorded before it closed (root span first).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Trace id (equals the FIFO tag that propagated it).
    pub id: TraceId,
    /// Sample-frame index of the traced input frame.
    pub root_frame: u64,
    /// All spans, root (`id` 0) first, then in recording order.
    pub spans: Vec<SpanRecord>,
    /// Spans discarded because the per-trace cap was hit.
    pub dropped_spans: u64,
}

impl TraceRecord {
    /// End-to-end latency of the traced frame in nanoseconds.
    pub fn end_to_end_ns(&self) -> u64 {
        self.spans.first().map_or(0, SpanRecord::duration_ns)
    }
}

/// SplitMix64 — the same mixer `halo_signal::SimRng` seeds with, reimplemented
/// locally so `halo-telemetry` stays dependency-free.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic frame sampler with forced-escalation support.
///
/// Stratified: frame `f` is sampled iff
/// `f % every == splitmix64(seed ^ (f / every)) % every` — exactly one hit
/// per `every`-frame window at a pseudo-random per-window offset. The same
/// `(seed, every)` pair always samples the same frames, which is what makes
/// captured traces replayable.
#[derive(Debug)]
pub struct TraceSampler {
    seed: u64,
    every: u64,
    forced: AtomicU64,
}

impl TraceSampler {
    /// Sampler tracing one frame in `every` (`every == 0` disables
    /// steady-state sampling; only forced frames are traced).
    pub fn new(seed: u64, every: u64) -> Self {
        Self {
            seed,
            every,
            forced: AtomicU64::new(0),
        }
    }

    /// Sampler with steady-state sampling off (escalation-only).
    pub fn disabled(seed: u64) -> Self {
        Self::new(seed, 0)
    }

    /// Configured rate divisor (0 = disabled).
    pub fn every(&self) -> u64 {
        self.every
    }

    /// `true` when neither steady-state sampling nor a forced burst is
    /// active — the hot path's one-branch early exit.
    pub fn idle(&self) -> bool {
        self.every == 0 && self.forced.load(Ordering::Relaxed) == 0
    }

    /// The deterministic sampling rule alone (ignores forced escalation).
    pub fn would_sample(&self, frame: u64) -> bool {
        if self.every == 0 {
            return false;
        }
        let window = frame / self.every;
        frame % self.every == splitmix64(self.seed ^ window) % self.every
    }

    /// Decides the given frame, consuming one forced credit if any are
    /// pending. Forced frames are sampled unconditionally.
    pub fn sample(&self, frame: u64) -> bool {
        if self.forced.load(Ordering::Relaxed) > 0 {
            // fetch_update so concurrent consumers cannot underflow.
            let took = self
                .forced
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_ok();
            if took {
                return true;
            }
        }
        self.would_sample(frame)
    }

    /// Number of consecutive frames starting at `frame` that are
    /// guaranteed *not* sampled (0 when `frame` itself would be, or when
    /// forced credits are pending; `u64::MAX` when sampling is disabled
    /// and nothing is forced).
    ///
    /// This is the sampler half of the runtime's quiet-chunk bound: a
    /// block dispatcher may skip `begin_frame` for exactly this many
    /// frames without changing which frames get traced.
    pub fn quiet_run(&self, frame: u64) -> u64 {
        if self.forced.load(Ordering::Relaxed) > 0 {
            return 0;
        }
        if self.every == 0 {
            return u64::MAX;
        }
        // Each `every`-frame window has exactly one hit at a deterministic
        // offset; the next hit is this window's (if still ahead) or the
        // following window's.
        let window = frame / self.every;
        let offset = splitmix64(self.seed ^ window) % self.every;
        let pos = frame % self.every;
        let next_hit = if pos <= offset {
            window * self.every + offset
        } else {
            let w = window + 1;
            w * self.every + splitmix64(self.seed ^ w) % self.every
        };
        next_hit - frame
    }

    /// Escalation hook: unconditionally sample the next `n` frames (used by
    /// the health monitor on critical alerts).
    pub fn force_next(&self, n: u64) {
        self.forced.fetch_add(n, Ordering::Relaxed);
    }

    /// Forced credits not yet consumed.
    pub fn forced_pending(&self) -> u64 {
        self.forced.load(Ordering::Relaxed)
    }
}

/// Per-delivery costs the runtime computes from its hardware models, in
/// nanoseconds on the consumer's clock.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeliveryCosts {
    /// NoC transfer time for the burst's wire bytes at link capacity.
    pub noc_ns: u64,
    /// Backpressure stall time observed on the consumer.
    pub wait_ns: u64,
    /// Clock-domain-crossing synchronizer penalty (0 when same domain).
    pub cross_ns: u64,
    /// Consumer service time for the burst's tokens.
    pub service_ns: u64,
}

/// One buffered trace event — the argument tuple of [`Tracer::delivery`]
/// or [`Tracer::radio_frame`], captured by value.
///
/// The runtime records events into a plain `Vec` while it streams a frame
/// and commits them with one [`Tracer::record_batch`] call (one mutex
/// acquisition per frame instead of one per burst). Event order in the
/// buffer is the order spans land in the trace, so a batch commit is
/// indistinguishable from eager calls.
#[derive(Debug, Clone, Copy)]
pub enum TraceEvent {
    /// A delivery burst (see [`Tracer::delivery`]).
    Delivery {
        /// Trace tag the burst is attributed to.
        tag: u64,
        /// Producer `(slot, kind-name)`; `None` for ADC source ingest.
        from: Option<(u8, &'static str)>,
        /// Consumer slot.
        to: u8,
        /// Consumer kind name.
        to_name: &'static str,
        /// Tokens in the burst.
        tokens: u32,
        /// Wire bytes in the burst.
        bytes: u64,
        /// Modeled delivery costs.
        costs: DeliveryCosts,
    },
    /// Radio MAC framing (see [`Tracer::radio_frame`]).
    Radio {
        /// Trace tag the framing is attributed to.
        tag: u64,
        /// Radio-feeding slot.
        node: u8,
        /// Tokens framed.
        tokens: u32,
        /// Uplink bytes framed.
        bytes: u64,
        /// Modeled framing time.
        ns: u64,
    },
}

/// Counters snapshot for exposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// Frames tagged for tracing (deterministic + forced).
    pub sampled: u64,
    /// Spans discarded (per-trace cap or completed-ring eviction).
    pub dropped_spans: u64,
    /// Traces closed and retained (or streamed to the sink).
    pub completed: u64,
    /// Traces currently accumulating spans.
    pub open: u64,
}

/// Hard cap on spans per trace; beyond it spans are counted as dropped so a
/// pathological fan-out cannot grow memory without bound.
const MAX_SPANS_PER_TRACE: usize = 4096;
/// Default number of completed traces retained for analysis.
const DEFAULT_DONE_CAPACITY: usize = 1024;
/// Open traces beyond this are force-closed oldest-first.
const MAX_OPEN_TRACES: usize = 8;

struct TraceBuild {
    id: u64,
    root_frame: u64,
    clock_ns: u64,
    spans: Vec<SpanRecord>,
    next_span: u32,
    dropped: u64,
}

impl TraceBuild {
    fn alloc_span(&mut self) -> SpanId {
        let id = SpanId(self.next_span);
        self.next_span += 1;
        id
    }
}

struct TracerInner {
    open: Vec<TraceBuild>,
    done: Vec<TraceRecord>,
    done_capacity: usize,
    next_trace: u64,
    completed: u64,
}

/// Collects spans for sampled frames and assembles them into
/// [`TraceRecord`]s.
///
/// All methods take `&self`; the mutable state sits behind a mutex that is
/// only touched for traced frames (the untraced hot path sees one relaxed
/// atomic load per frame and one `u64` read per burst).
pub struct Tracer {
    sampler: TraceSampler,
    linger_frames: u64,
    inner: Mutex<TracerInner>,
    sampled_total: AtomicU64,
    dropped_spans_total: AtomicU64,
    sink: Mutex<Option<Arc<dyn TelemetrySink>>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("Tracer")
            .field("sampler", &self.sampler)
            .field("linger_frames", &self.linger_frames)
            .field("stats", &stats)
            .finish()
    }
}

impl Tracer {
    /// Tracer sampling one frame in `every` with the given seed.
    ///
    /// A trace stays open for `every` frames (64 when `every == 0`), long
    /// enough for block-buffering PEs to flush work attributable to the
    /// traced frame, then closes at the next frame boundary.
    pub fn new(seed: u64, every: u64) -> Self {
        Self {
            sampler: TraceSampler::new(seed, every),
            linger_frames: if every == 0 { 64 } else { every },
            inner: Mutex::new(TracerInner {
                open: Vec::new(),
                done: Vec::new(),
                done_capacity: DEFAULT_DONE_CAPACITY,
                next_trace: 1,
                completed: 0,
            }),
            sampled_total: AtomicU64::new(0),
            dropped_spans_total: AtomicU64::new(0),
            sink: Mutex::new(None),
        }
    }

    /// Overrides how many completed traces are retained (oldest evicted,
    /// their spans counted as dropped).
    pub fn with_done_capacity(self, capacity: usize) -> Self {
        self.inner.lock().unwrap().done_capacity = capacity.max(1);
        self
    }

    /// Overrides how many frames a trace lingers before closing.
    pub fn with_linger_frames(self, frames: u64) -> Self {
        let mut me = self;
        me.linger_frames = frames.max(1);
        me
    }

    /// The sampler (health escalation calls `sampler().force_next(n)`).
    pub fn sampler(&self) -> &TraceSampler {
        &self.sampler
    }

    /// Streams completed traces' spans into `sink` as [`EventKind::Span`]
    /// events (timestamped at the trace's root frame).
    pub fn set_sink(&self, sink: Arc<dyn TelemetrySink>) {
        *self.sink.lock().unwrap() = Some(sink);
    }

    /// Called by the runtime at the top of every frame. Returns the trace
    /// tag for this frame's source deliveries (0 = untraced). Also expires
    /// traces past their linger window.
    pub fn begin_frame(&self, frame: u64) -> u64 {
        self.begin_frame_impl(frame, None)
    }

    fn begin_frame_impl(&self, frame: u64, open_out: Option<&mut Vec<u64>>) -> u64 {
        if self.sampler.idle() {
            // Idle frames cannot change the open set; a caller-cached
            // snapshot stays valid, so `open_out` is left untouched.
            return 0;
        }
        let mut inner = self.inner.lock().unwrap();
        self.expire(&mut inner, frame);
        let tag = if self.sampler.sample(frame) {
            self.sampled_total.fetch_add(1, Ordering::Relaxed);
            if inner.open.len() >= MAX_OPEN_TRACES {
                let stale = inner.open.remove(0);
                self.close(&mut inner, stale);
            }
            let id = inner.next_trace;
            inner.next_trace += 1;
            inner.open.push(TraceBuild {
                id,
                root_frame: frame,
                clock_ns: 0,
                spans: Vec::new(),
                next_span: 1,
                dropped: 0,
            });
            id
        } else {
            0
        };
        if let Some(open) = open_out {
            open.clear();
            open.extend(inner.open.iter().map(|t| t.id));
        }
        tag
    }

    fn expire(&self, inner: &mut TracerInner, frame: u64) {
        let linger = self.linger_frames;
        let mut k = 0;
        while k < inner.open.len() {
            if frame >= inner.open[k].root_frame.saturating_add(linger) {
                let stale = inner.open.remove(k);
                self.close(inner, stale);
            } else {
                k += 1;
            }
        }
    }

    fn close(&self, inner: &mut TracerInner, mut build: TraceBuild) {
        let trace = TraceId(build.id);
        let root = SpanRecord {
            trace,
            id: SpanId(0),
            parent: None,
            kind: SpanKind::Frame,
            node: NO_NODE,
            to_node: NO_NODE,
            name: "frame",
            begin_ns: 0,
            end_ns: build.clock_ns,
            tokens: 0,
            bytes: 0,
        };
        build.spans.insert(0, root);
        let record = TraceRecord {
            id: trace,
            root_frame: build.root_frame,
            spans: build.spans,
            dropped_spans: build.dropped,
        };
        if let Some(sink) = self.sink.lock().unwrap().clone() {
            if sink.enabled() {
                for span in &record.spans {
                    sink.event(Event {
                        frame: record.root_frame,
                        kind: EventKind::Span(span.clone()),
                    });
                }
            }
        }
        inner.completed += 1;
        if inner.done.len() >= inner.done_capacity {
            let evicted = inner.done.remove(0);
            self.dropped_spans_total
                .fetch_add(evicted.spans.len() as u64, Ordering::Relaxed);
        }
        inner.done.push(record);
    }

    fn push_span(&self, build: &mut TraceBuild, span: SpanRecord) -> bool {
        if build.spans.len() >= MAX_SPANS_PER_TRACE {
            build.dropped += 1;
            self.dropped_spans_total.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        build.spans.push(span);
        true
    }

    /// Records one delivery burst attributed to trace `tag`: a
    /// [`SpanKind::PeService`] span on the consumer with hop/wait/cross
    /// children, advancing the trace clock by the total cost.
    ///
    /// `from` is the producer `(slot, kind-name)` (`None` for ADC source
    /// deliveries, which have no NoC hop). Returns `false` when the trace
    /// has already closed — the caller should clear the propagating FIFO
    /// tag.
    #[allow(clippy::too_many_arguments)] // one flat hot-path call, not an API surface
    pub fn delivery(
        &self,
        tag: u64,
        from: Option<(u8, &'static str)>,
        to: u8,
        to_name: &'static str,
        tokens: u32,
        bytes: u64,
        costs: DeliveryCosts,
    ) -> bool {
        let mut inner = self.inner.lock().unwrap();
        self.delivery_locked(&mut inner, tag, from, to, to_name, tokens, bytes, costs)
    }

    #[allow(clippy::too_many_arguments)]
    fn delivery_locked(
        &self,
        inner: &mut TracerInner,
        tag: u64,
        from: Option<(u8, &'static str)>,
        to: u8,
        to_name: &'static str,
        tokens: u32,
        bytes: u64,
        costs: DeliveryCosts,
    ) -> bool {
        let Some(build) = inner.open.iter_mut().find(|t| t.id == tag) else {
            return false;
        };
        let trace = TraceId(build.id);
        let t0 = build.clock_ns;
        let total = costs
            .noc_ns
            .saturating_add(costs.wait_ns)
            .saturating_add(costs.cross_ns)
            .saturating_add(costs.service_ns);
        let parent = build.alloc_span();
        if !self.push_span(
            build,
            SpanRecord {
                trace,
                id: parent,
                parent: Some(SpanId(0)),
                kind: SpanKind::PeService,
                node: to,
                to_node: NO_NODE,
                name: to_name,
                begin_ns: t0,
                end_ns: t0 + total,
                tokens,
                bytes,
            },
        ) {
            // Span capacity exhausted: stop growing the tree but keep the
            // clock honest so the root still covers the activity.
            build.clock_ns = t0 + total;
            return true;
        }
        let mut cursor = t0;
        if let Some((from_slot, from_name)) = from {
            let id = build.alloc_span();
            self.push_span(
                build,
                SpanRecord {
                    trace,
                    id,
                    parent: Some(parent),
                    kind: SpanKind::NocHop,
                    node: from_slot,
                    to_node: to,
                    name: from_name,
                    begin_ns: cursor,
                    end_ns: cursor + costs.noc_ns,
                    tokens,
                    bytes,
                },
            );
            cursor += costs.noc_ns;
        }
        if costs.wait_ns > 0 {
            let id = build.alloc_span();
            self.push_span(
                build,
                SpanRecord {
                    trace,
                    id,
                    parent: Some(parent),
                    kind: SpanKind::FifoWait,
                    node: to,
                    to_node: NO_NODE,
                    name: to_name,
                    begin_ns: cursor,
                    end_ns: cursor + costs.wait_ns,
                    tokens,
                    bytes: 0,
                },
            );
            cursor += costs.wait_ns;
        }
        if costs.cross_ns > 0 {
            let id = build.alloc_span();
            self.push_span(
                build,
                SpanRecord {
                    trace,
                    id,
                    parent: Some(parent),
                    kind: SpanKind::DomainCross,
                    node: to,
                    to_node: NO_NODE,
                    name: to_name,
                    begin_ns: cursor,
                    end_ns: cursor + costs.cross_ns,
                    tokens,
                    bytes: 0,
                },
            );
        }
        build.clock_ns = t0 + total;
        true
    }

    /// Records radio MAC framing of `bytes` uplink bytes attributed to
    /// trace `tag`. Returns `false` when the trace has closed.
    pub fn radio_frame(&self, tag: u64, node: u8, tokens: u32, bytes: u64, ns: u64) -> bool {
        let mut inner = self.inner.lock().unwrap();
        self.radio_locked(&mut inner, tag, node, tokens, bytes, ns)
    }

    fn radio_locked(
        &self,
        inner: &mut TracerInner,
        tag: u64,
        node: u8,
        tokens: u32,
        bytes: u64,
        ns: u64,
    ) -> bool {
        let Some(build) = inner.open.iter_mut().find(|t| t.id == tag) else {
            return false;
        };
        let trace = TraceId(build.id);
        let t0 = build.clock_ns;
        let id = build.alloc_span();
        self.push_span(
            build,
            SpanRecord {
                trace,
                id,
                parent: Some(SpanId(0)),
                kind: SpanKind::RadioFrame,
                node,
                to_node: NO_NODE,
                name: "radio",
                begin_ns: t0,
                end_ns: t0 + ns,
                tokens,
                bytes,
            },
        );
        build.clock_ns = t0 + ns;
        true
    }

    /// Commits a frame's buffered trace events under one lock.
    ///
    /// Equivalent to calling [`Tracer::delivery`] / [`Tracer::radio_frame`]
    /// eagerly in buffer order — the span streams are identical — but the
    /// mutex is taken once per frame instead of once per burst, which is
    /// what keeps sampled tracing cheap on burst-heavy pipelines. Events
    /// whose trace has closed are silently dropped (the eager calls would
    /// have returned `false`).
    pub fn record_batch(&self, events: &[TraceEvent]) {
        if events.is_empty() {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        for ev in events {
            match *ev {
                TraceEvent::Delivery {
                    tag,
                    from,
                    to,
                    to_name,
                    tokens,
                    bytes,
                    costs,
                } => {
                    self.delivery_locked(&mut inner, tag, from, to, to_name, tokens, bytes, costs);
                }
                TraceEvent::Radio {
                    tag,
                    node,
                    tokens,
                    bytes,
                    ns,
                } => {
                    self.radio_locked(&mut inner, tag, node, tokens, bytes, ns);
                }
            }
        }
    }

    /// Fills `open` with the ids of currently open traces (cleared first).
    ///
    /// The open set only changes inside [`Tracer::begin_frame`] /
    /// [`Tracer::begin_frame_into`] (deliveries never close a trace), so a
    /// runtime that refreshes this at each frame start can answer "is this
    /// tag still live?" with a local membership test instead of a lock per
    /// burst — the exact semantics of the `bool` the eager calls return.
    pub fn open_tags_into(&self, open: &mut Vec<u64>) {
        open.clear();
        let inner = self.inner.lock().unwrap();
        open.extend(inner.open.iter().map(|t| t.id));
    }

    /// [`Tracer::begin_frame`] fused with [`Tracer::open_tags_into`]: one
    /// lock decides the frame's tag *and* snapshots the post-expiry open
    /// set. When the sampler is idle the early exit leaves `open`
    /// untouched — idle frames cannot change the open set, so a cached
    /// copy stays valid.
    pub fn begin_frame_into(&self, frame: u64, open: &mut Vec<u64>) -> u64 {
        self.begin_frame_impl(frame, Some(open))
    }

    /// Upper bound on consecutive frames starting at `frame` for which
    /// skipping [`Tracer::begin_frame`] is unobservable: none of them
    /// would be sampled, and no open trace crosses its linger expiry (so
    /// closings still happen on the exact frame the per-frame path would
    /// close them).
    ///
    /// Returns 0 when `frame` itself needs the full path. `u64::MAX` when
    /// the sampler is idle — idle `begin_frame` is an early-exit no-op, so
    /// skipping it is always safe.
    pub fn quiet_frames(&self, frame: u64) -> u64 {
        if self.sampler.idle() {
            return u64::MAX;
        }
        let sampler_quiet = self.sampler.quiet_run(frame);
        if sampler_quiet == 0 {
            return 0;
        }
        let inner = self.inner.lock().unwrap();
        let linger = self.linger_frames;
        inner
            .open
            .iter()
            .map(|t| t.root_frame.saturating_add(linger).saturating_sub(frame))
            .fold(sampler_quiet, u64::min)
    }

    /// Attributes a closed-loop stimulation command to the most recent
    /// trace sampled at or before `detect_frame`. Open traces get a
    /// [`SpanKind::StimPulse`] span appended on their clock; already-closed
    /// traces still in the retention ring are patched in place (and the
    /// span streamed to the sink). Returns `true` if a trace claimed it.
    pub fn note_stim(&self, detect_frame: u64, channels: u32, latency_ns: u64) -> bool {
        let mut inner = self.inner.lock().unwrap();
        // Prefer the newest open trace that started at or before detection.
        if let Some(build) = inner
            .open
            .iter_mut()
            .filter(|t| t.root_frame <= detect_frame)
            .max_by_key(|t| t.root_frame)
        {
            let trace = TraceId(build.id);
            let t0 = build.clock_ns;
            let id = build.alloc_span();
            self.push_span(
                build,
                SpanRecord {
                    trace,
                    id,
                    parent: Some(SpanId(0)),
                    kind: SpanKind::StimPulse,
                    node: NO_NODE,
                    to_node: NO_NODE,
                    name: "stim",
                    begin_ns: t0,
                    end_ns: t0 + latency_ns,
                    tokens: channels,
                    bytes: 0,
                },
            );
            build.clock_ns = t0 + latency_ns;
            return true;
        }
        // Fall back to a completed trace in the retention ring.
        if let Some(record) = inner
            .done
            .iter_mut()
            .filter(|t| t.root_frame <= detect_frame)
            .max_by_key(|t| t.root_frame)
        {
            let t0 = record.spans.first().map_or(0, |r| r.end_ns);
            let id = SpanId(record.spans.iter().map(|s| s.id.0).max().unwrap_or(0) + 1);
            let span = SpanRecord {
                trace: record.id,
                id,
                parent: Some(SpanId(0)),
                kind: SpanKind::StimPulse,
                node: NO_NODE,
                to_node: NO_NODE,
                name: "stim",
                begin_ns: t0,
                end_ns: t0 + latency_ns,
                tokens: channels,
                bytes: 0,
            };
            record.spans.push(span.clone());
            if let Some(root) = record.spans.first_mut() {
                root.end_ns = t0 + latency_ns;
            }
            let frame = record.root_frame;
            drop(inner);
            if let Some(sink) = self.sink.lock().unwrap().clone() {
                if sink.enabled() {
                    sink.event(Event {
                        frame,
                        kind: EventKind::Span(span),
                    });
                }
            }
            return true;
        }
        false
    }

    /// Closes every open trace (end of stream).
    pub fn finalize_all(&self) {
        let mut inner = self.inner.lock().unwrap();
        while let Some(build) = inner.open.pop() {
            self.close(&mut inner, build);
        }
        // `close` pushes in pop order (newest first); restore root order.
        inner.done.sort_by_key(|t| t.id.0);
    }

    /// Completed traces, oldest first.
    pub fn trees(&self) -> Vec<TraceRecord> {
        self.inner.lock().unwrap().done.clone()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TraceStats {
        let inner = self.inner.lock().unwrap();
        TraceStats {
            sampled: self.sampled_total.load(Ordering::Relaxed),
            dropped_spans: self.dropped_spans_total.load(Ordering::Relaxed),
            completed: inner.completed,
            open: inner.open.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_is_deterministic() {
        let a = TraceSampler::new(7, 64);
        let b = TraceSampler::new(7, 64);
        for f in 0..4096 {
            assert_eq!(a.would_sample(f), b.would_sample(f));
        }
    }

    #[test]
    fn sampler_hits_once_per_window() {
        let s = TraceSampler::new(99, 32);
        for w in 0..64 {
            let hits = (w * 32..(w + 1) * 32)
                .filter(|&f| s.would_sample(f))
                .count();
            assert_eq!(hits, 1, "window {w}");
        }
    }

    #[test]
    fn disabled_sampler_is_idle_until_forced() {
        let s = TraceSampler::disabled(1);
        assert!(s.idle());
        assert!(!s.sample(5));
        s.force_next(2);
        assert!(!s.idle());
        assert!(s.sample(6));
        assert!(s.sample(7));
        assert!(!s.sample(8));
        assert!(s.idle());
    }

    #[test]
    fn delivery_builds_nested_spans_and_advances_clock() {
        let tracer = Tracer::new(3, 4).with_linger_frames(4);
        // Frame guaranteed sampled via forced credit.
        tracer.sampler().force_next(1);
        let tag = tracer.begin_frame(0);
        assert_ne!(tag, 0);
        assert!(tracer.delivery(
            tag,
            None,
            2,
            "FFT",
            8,
            16,
            DeliveryCosts {
                noc_ns: 0,
                wait_ns: 5,
                cross_ns: 0,
                service_ns: 40,
            },
        ));
        assert!(tracer.delivery(
            tag,
            Some((2, "FFT")),
            3,
            "SVM",
            1,
            4,
            DeliveryCosts {
                noc_ns: 87,
                wait_ns: 0,
                cross_ns: 3,
                service_ns: 20,
            },
        ));
        assert!(tracer.radio_frame(tag, 5, 1, 4, 694));
        tracer.finalize_all();
        let trees = tracer.trees();
        assert_eq!(trees.len(), 1);
        let t = &trees[0];
        assert_eq!(t.end_to_end_ns(), 45 + 110 + 694);
        let root = &t.spans[0];
        assert_eq!(root.kind, SpanKind::Frame);
        assert_eq!(root.id, SpanId(0));
        assert!(root.parent.is_none());
        // Every non-root span nests inside its parent.
        for s in &t.spans[1..] {
            let p = t
                .spans
                .iter()
                .find(|c| Some(c.id) == Some(s.parent.unwrap()))
                .unwrap();
            assert!(s.begin_ns >= p.begin_ns && s.end_ns <= p.end_ns, "{s:?}");
        }
        let hop = t.spans.iter().find(|s| s.kind == SpanKind::NocHop).unwrap();
        assert_eq!((hop.node, hop.to_node), (2, 3));
    }

    #[test]
    fn quiet_run_predicts_the_sampler() {
        let s = TraceSampler::new(42, 16);
        for f in 0..1024u64 {
            let q = s.quiet_run(f);
            // The promised run really is unsampled…
            for k in 0..q.min(64) {
                assert!(!s.would_sample(f + k), "frame {f} + {k}");
            }
            // …and ends exactly at a sampled frame.
            assert!(s.would_sample(f + q), "frame {f} quiet {q}");
        }
        // Forced credits kill quiet runs until consumed.
        s.force_next(1);
        assert_eq!(s.quiet_run(0), 0);
        assert!(s.sample(0));
        // Disabled sampler with no credits: unbounded quiet.
        let d = TraceSampler::disabled(9);
        assert_eq!(d.quiet_run(123), u64::MAX);
    }

    #[test]
    fn batched_events_equal_eager_calls() {
        let costs = DeliveryCosts {
            noc_ns: 7,
            wait_ns: 3,
            cross_ns: 1,
            service_ns: 20,
        };
        let run = |batch: bool| -> Vec<TraceRecord> {
            let tracer = Tracer::new(3, 0).with_linger_frames(100);
            tracer.sampler().force_next(1);
            let mut open = Vec::new();
            let tag = tracer.begin_frame_into(0, &mut open);
            assert_eq!(open, vec![tag]);
            if batch {
                tracer.record_batch(&[
                    TraceEvent::Delivery {
                        tag,
                        from: None,
                        to: 1,
                        to_name: "FFT",
                        tokens: 8,
                        bytes: 16,
                        costs,
                    },
                    TraceEvent::Delivery {
                        tag,
                        from: Some((1, "FFT")),
                        to: 2,
                        to_name: "SVM",
                        tokens: 1,
                        bytes: 4,
                        costs,
                    },
                    TraceEvent::Radio {
                        tag,
                        node: 2,
                        tokens: 1,
                        bytes: 4,
                        ns: 55,
                    },
                    // A closed/unknown tag is silently dropped, like the
                    // eager call returning false.
                    TraceEvent::Radio {
                        tag: 9999,
                        node: 2,
                        tokens: 1,
                        bytes: 4,
                        ns: 55,
                    },
                ]);
            } else {
                tracer.delivery(tag, None, 1, "FFT", 8, 16, costs);
                tracer.delivery(tag, Some((1, "FFT")), 2, "SVM", 1, 4, costs);
                tracer.radio_frame(tag, 2, 1, 4, 55);
                assert!(!tracer.radio_frame(9999, 2, 1, 4, 55));
            }
            tracer.finalize_all();
            tracer.trees()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn tracer_quiet_frames_respects_open_linger() {
        let tracer = Tracer::new(7, 64).with_linger_frames(8);
        // With no open traces the bound is the sampler's quiet run.
        let f = 0;
        assert_eq!(tracer.quiet_frames(f), tracer.sampler().quiet_run(f));
        // Open a trace; the expiry boundary now caps the quiet run.
        tracer.sampler().force_next(1);
        let mut open = Vec::new();
        let tag = tracer.begin_frame_into(3, &mut open);
        assert_ne!(tag, 0);
        // Trace opened at 3, linger 8: expiry at frame 11.
        assert!(tracer.quiet_frames(4) <= 7);
        assert_eq!(tracer.quiet_frames(11), 0);
        // Past expiry the next begin_frame closes it (whatever frame 11's
        // own sampling decision is, the old tag must be gone).
        let mut open2 = Vec::new();
        let _ = tracer.begin_frame_into(11, &mut open2);
        assert!(!open2.contains(&tag));
    }

    #[test]
    fn closed_trace_rejects_deliveries() {
        let tracer = Tracer::new(1, 2).with_linger_frames(1);
        tracer.sampler().force_next(1);
        let tag = tracer.begin_frame(0);
        assert_ne!(tag, 0);
        // Next frame expires the lingering trace before sampling.
        let _ = tracer.begin_frame(1);
        assert!(!tracer.delivery(tag, None, 0, "LZ", 1, 2, DeliveryCosts::default()));
    }

    #[test]
    fn stim_attributes_to_most_recent_trace() {
        let tracer = Tracer::new(11, 0).with_linger_frames(100);
        tracer.sampler().force_next(2);
        let t1 = tracer.begin_frame(10);
        let t2 = tracer.begin_frame(20);
        assert!(t1 != 0 && t2 != 0);
        assert!(tracer.note_stim(25, 4, 1_000));
        tracer.finalize_all();
        let trees = tracer.trees();
        let with_stim: Vec<_> = trees
            .iter()
            .filter(|t| t.spans.iter().any(|s| s.kind == SpanKind::StimPulse))
            .collect();
        assert_eq!(with_stim.len(), 1);
        assert_eq!(with_stim[0].root_frame, 20);
    }

    #[test]
    fn stats_track_sampling_and_completion() {
        let tracer = Tracer::new(5, 0);
        tracer.sampler().force_next(3);
        for f in 0..3 {
            assert_ne!(tracer.begin_frame(f), 0);
        }
        tracer.finalize_all();
        let stats = tracer.stats();
        assert_eq!(stats.sampled, 3);
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.open, 0);
    }
}
