//! Active health monitoring: safety-envelope watchdog + flight recorder.
//!
//! HALO's contract with the patient is a set of hard physical envelopes —
//! the 15 mW implant power budget, sub-millisecond closed-loop response for
//! seizure stimulation, bounded FIFO occupancy, and the 46 Mbps radio
//! ceiling. The passive [`Recorder`] observes those quantities; the
//! [`HealthMonitor`] here *judges* them while the pipeline runs.
//!
//! The monitor wraps a [`Recorder`] and implements [`TelemetrySink`] by
//! forwarding every call, inspecting the event stream on the way through:
//!
//! * `PowerSample` events are summed per sampling window and compared to
//!   the configured power budget.
//! * `ClosedLoop` events are compared to the stimulation deadline.
//! * `FifoWindow` events are compared to the backpressure watermark.
//! * `RadioWindow` events are converted to bits/s and compared to the
//!   radio ceiling.
//!
//! A violated envelope raises a [`HealthAlert`], appends a structured
//! [`EventKind::Health`] event to the recorder's timeline, and applies the
//! configured [`AlertPolicy`]. Any *critical* alert (or an explicit
//! [`HealthMonitor::note_runtime_error`]) latches a post-mortem: a JSON
//! black-box dump of the last N events, every counter, the fabric
//! configuration generation, and the active pipeline — everything needed
//! to reconstruct the device's final moments without a debugger attached.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json;
use crate::recorder::Recorder;
use crate::sink::{Counter, Event, EventKind, Scope, Severity, TelemetrySink};
use crate::span_tree::{span_json, SpanTree};
use crate::tracing::Tracer;

/// Implant-wide power budget in milliwatts (§V-A of the paper; mirrors
/// `DEVICE_BUDGET_MW` in `halo-power`, restated here so the telemetry
/// crate stays dependency-free).
pub const DEVICE_BUDGET_MW: f64 = 15.0;

/// Radio ceiling in bits per second: 46 Mbps as 46 × 1024 × 1000 bps,
/// enough for 96 channels × 16 bit × 30 kHz uncompressed.
pub const RADIO_CEILING_BPS: f64 = 46_080_000.0;

/// What the watchdog does when an envelope is violated.
#[derive(Clone)]
pub enum AlertPolicy {
    /// Record the alert (timeline event + alert log) and keep running.
    Record,
    /// Record, then invoke the callback. The callback must not call back
    /// into the monitor's accessors (it runs on the instrumented thread).
    Callback(Arc<dyn Fn(&HealthAlert) + Send + Sync>),
    /// Record, then trip the monitor on the first *critical* alert;
    /// [`HealthMonitor::tripped`] turns true so the host can abort the run.
    FailFast,
}

impl fmt::Debug for AlertPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlertPolicy::Record => write!(f, "Record"),
            AlertPolicy::Callback(_) => write!(f, "Callback(..)"),
            AlertPolicy::FailFast => write!(f, "FailFast"),
        }
    }
}

/// Safety-envelope limits and watchdog behaviour.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Whole-device power budget per sampling window, milliwatts.
    pub budget_mw: f64,
    /// Closed-loop detection→stimulation deadline, sample frames
    /// (30 frames at 30 kHz = the paper's 1 ms response requirement).
    pub deadline_frames: u64,
    /// End-of-window FIFO occupancy (tokens) considered sustained
    /// backpressure.
    pub fifo_watermark: u32,
    /// Radio throughput ceiling, bits per second.
    pub radio_ceiling_bps: f64,
    /// How many recent events the flight recorder retains for post-mortems.
    pub ring_capacity: usize,
    /// What to do when an envelope is violated.
    pub policy: AlertPolicy,
    /// When a [`Tracer`] is attached ([`HealthMonitor::set_tracer`]), any
    /// critical alert force-samples this many subsequent frames so the
    /// post-mortem carries causal span trees from the incident window.
    pub escalate_trace_frames: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            budget_mw: DEVICE_BUDGET_MW,
            deadline_frames: 30,
            fifo_watermark: 64,
            radio_ceiling_bps: RADIO_CEILING_BPS,
            ring_capacity: 256,
            policy: AlertPolicy::Record,
            escalate_trace_frames: 16,
        }
    }
}

/// Which envelope was violated, with the observed and configured values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlertKind {
    /// A sampling window's summed domain power exceeded the budget.
    PowerBudget { window_mw: f64, budget_mw: f64 },
    /// A closed-loop response missed the stimulation deadline.
    DeadlineMiss {
        latency_frames: u64,
        deadline_frames: u64,
    },
    /// A PE's output FIFO closed a window above the backpressure
    /// watermark.
    Backpressure {
        slot: u8,
        depth: u32,
        watermark: u32,
    },
    /// Radio throughput over a window exceeded the ceiling.
    RadioThroughput { bits_per_s: f64, ceiling_bps: f64 },
    /// An SLO error budget is burning too fast (see [`crate::slo`]): the
    /// burn rate over both of a policy's lookback windows exceeded the
    /// policy threshold. `fast` distinguishes the page-now fast-burn
    /// policy (critical) from the slow-burn policy (warning).
    SloBurnRate {
        objective: &'static str,
        fast: bool,
        burn_rate: f64,
        threshold: f64,
    },
}

impl AlertKind {
    /// Stable snake_case name used in events, expositions, and dumps.
    pub fn name(&self) -> &'static str {
        match self {
            AlertKind::PowerBudget { .. } => "power_budget",
            AlertKind::DeadlineMiss { .. } => "deadline_miss",
            AlertKind::Backpressure { .. } => "backpressure",
            AlertKind::RadioThroughput { .. } => "radio_throughput",
            AlertKind::SloBurnRate { .. } => "slo_burn_rate",
        }
    }

    /// Power and deadline violations break the safety contract outright;
    /// backpressure and radio saturation are survivable pressure signals.
    /// A fast-burn SLO firing is treated like a hard violation — it means
    /// the envelope is hours from being exhausted — while slow-burn is an
    /// early warning.
    pub fn severity(&self) -> Severity {
        match self {
            AlertKind::PowerBudget { .. } | AlertKind::DeadlineMiss { .. } => Severity::Critical,
            AlertKind::Backpressure { .. } | AlertKind::RadioThroughput { .. } => Severity::Warning,
            AlertKind::SloBurnRate { fast, .. } => {
                if *fast {
                    Severity::Critical
                } else {
                    Severity::Warning
                }
            }
        }
    }

    /// Observed value (same unit as [`AlertKind::limit`]).
    pub fn value(&self) -> f64 {
        match *self {
            AlertKind::PowerBudget { window_mw, .. } => window_mw,
            AlertKind::DeadlineMiss { latency_frames, .. } => latency_frames as f64,
            AlertKind::Backpressure { depth, .. } => depth as f64,
            AlertKind::RadioThroughput { bits_per_s, .. } => bits_per_s,
            AlertKind::SloBurnRate { burn_rate, .. } => burn_rate,
        }
    }

    /// Configured envelope limit the value was compared against.
    pub fn limit(&self) -> f64 {
        match *self {
            AlertKind::PowerBudget { budget_mw, .. } => budget_mw,
            AlertKind::DeadlineMiss {
                deadline_frames, ..
            } => deadline_frames as f64,
            AlertKind::Backpressure { watermark, .. } => watermark as f64,
            AlertKind::RadioThroughput { ceiling_bps, .. } => ceiling_bps,
            AlertKind::SloBurnRate { threshold, .. } => threshold,
        }
    }

    /// Whether two alerts are repeats of the *same* condition for
    /// coalescing: same kind, and same source where a kind has one (the
    /// FIFO slot for backpressure, the objective + policy for SLO burns).
    /// Observed values may differ between repeats — a persistently
    /// violated envelope rarely reports the same reading twice.
    fn same_condition(&self, other: &AlertKind) -> bool {
        match (self, other) {
            (AlertKind::PowerBudget { .. }, AlertKind::PowerBudget { .. })
            | (AlertKind::DeadlineMiss { .. }, AlertKind::DeadlineMiss { .. })
            | (AlertKind::RadioThroughput { .. }, AlertKind::RadioThroughput { .. }) => true,
            (AlertKind::Backpressure { slot: a, .. }, AlertKind::Backpressure { slot: b, .. }) => {
                a == b
            }
            (
                AlertKind::SloBurnRate {
                    objective: a,
                    fast: af,
                    ..
                },
                AlertKind::SloBurnRate {
                    objective: b,
                    fast: bf,
                    ..
                },
            ) => a == b && af == bf,
            _ => false,
        }
    }
}

/// One envelope violation, timestamped in sample frames.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthAlert {
    pub frame: u64,
    pub kind: AlertKind,
}

impl HealthAlert {
    pub fn severity(&self) -> Severity {
        self.kind.severity()
    }
}

/// A run of repeated identical-condition alerts, coalesced into one log
/// entry. A persistently violated envelope re-fires every sampling window;
/// without coalescing, a minutes-long brownout floods the flight recorder
/// with hundreds of copies of the same fact. Instead the log keeps one
/// entry per *run*: the latest occurrence, the window stamps of the first
/// and last repeat, and how many times it fired. Severity totals
/// ([`HealthStatus::severity_counts`]) still count every occurrence, and
/// the [`AlertPolicy::Callback`] still sees each one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoalescedAlert {
    /// The most recent occurrence in the run.
    pub alert: HealthAlert,
    /// Frame of the run's first occurrence.
    pub first_frame: u64,
    /// Frame of the run's latest occurrence.
    pub last_frame: u64,
    /// Occurrences coalesced into this entry (≥ 1).
    pub repeat_count: u64,
}

impl CoalescedAlert {
    pub fn kind(&self) -> AlertKind {
        self.alert.kind
    }

    pub fn severity(&self) -> Severity {
        self.alert.severity()
    }
}

/// Alert runs retained verbatim; beyond this, only counts are kept.
const MAX_ALERTS: usize = 256;

/// Mutable watchdog state, all behind one mutex. Everything here is
/// touched at window granularity (hundreds of frames), never per frame.
struct WatchdogState {
    /// Frame whose `PowerSample`s are currently being summed, if any.
    power_frame: Option<u64>,
    /// Sum of domain milliwatts at `power_frame`.
    power_accum_mw: f64,
    /// Worst completed window so far: (frame, milliwatts).
    worst_window: Option<(u64, f64)>,
    /// Completed power windows evaluated.
    power_windows: u64,
    /// Fabric configuration generation from the last `SwitchProgram`.
    fabric_generation: u64,
    /// Label of the last `Marker` event.
    active_pipeline: &'static str,
    /// Retained alert runs (bounded, repeats coalesced) and the overflow
    /// count of runs that could not be retained.
    alerts: Vec<CoalescedAlert>,
    alerts_dropped: u64,
    /// Whether the last retained alert run is still contiguous — a drop
    /// intervening after it closes the run for coalescing purposes.
    tail_open: bool,
    /// Alert totals by severity: [info, warning, critical].
    severity_counts: [u64; 3],
    /// Flight-recorder ring of recent events (bounded, oldest evicted).
    recent: Vec<Event>,
    recent_head: usize,
    /// Most recent injected faults (bounded, oldest evicted) — embedded in
    /// post-mortems so every failure is attributable to what the chaos
    /// harness did to the device.
    recent_faults: Vec<FaultNote>,
    /// Total faults injected / detected by an integrity check.
    faults_injected: u64,
    faults_detected: u64,
    /// First post-mortem dump, latched until cleared.
    postmortem: Option<String>,
}

/// One remembered fault injection.
#[derive(Debug, Clone, Copy)]
struct FaultNote {
    frame: u64,
    kind: &'static str,
    slot: u8,
    detail: u64,
    detected: bool,
}

/// Injected faults retained verbatim in the flight recorder.
const MAX_RECENT_FAULTS: usize = 16;

impl WatchdogState {
    fn new() -> Self {
        Self {
            power_frame: None,
            power_accum_mw: 0.0,
            worst_window: None,
            power_windows: 0,
            fabric_generation: 0,
            active_pipeline: "pipeline",
            alerts: Vec::new(),
            alerts_dropped: 0,
            tail_open: false,
            severity_counts: [0; 3],
            recent: Vec::new(),
            recent_head: 0,
            recent_faults: Vec::new(),
            faults_injected: 0,
            faults_detected: 0,
            postmortem: None,
        }
    }

    fn note_fault(&mut self, note: FaultNote) {
        self.faults_injected += 1;
        if note.detected {
            self.faults_detected += 1;
        }
        if self.recent_faults.len() >= MAX_RECENT_FAULTS {
            self.recent_faults.remove(0);
        }
        self.recent_faults.push(note);
    }

    fn remember(&mut self, event: &Event, capacity: usize) {
        if capacity == 0 {
            return;
        }
        if self.recent.len() < capacity {
            self.recent.push(event.clone());
        } else {
            self.recent[self.recent_head] = event.clone();
        }
        self.recent_head = (self.recent_head + 1) % capacity;
    }

    /// Recent events oldest-first.
    fn recent_ordered(&self, capacity: usize) -> Vec<Event> {
        if self.recent.len() < capacity {
            self.recent.clone()
        } else {
            let mut out = Vec::with_capacity(self.recent.len());
            out.extend_from_slice(&self.recent[self.recent_head..]);
            out.extend_from_slice(&self.recent[..self.recent_head]);
            out
        }
    }

    /// Close the power window being accumulated, returning an alert if it
    /// blew the budget.
    fn finalize_power(&mut self, budget_mw: f64) -> Option<HealthAlert> {
        let frame = self.power_frame.take()?;
        let window_mw = self.power_accum_mw;
        self.power_accum_mw = 0.0;
        self.power_windows += 1;
        if self.worst_window.is_none_or(|(_, w)| window_mw > w) {
            self.worst_window = Some((frame, window_mw));
        }
        (window_mw > budget_mw).then_some(HealthAlert {
            frame,
            kind: AlertKind::PowerBudget {
                window_mw,
                budget_mw,
            },
        })
    }

    /// Log `alert`, coalescing it into the most recent retained run when
    /// it repeats the same condition. Returns `true` when the alert starts
    /// a *new* run — the caller only emits a timeline event (and escalates
    /// tracing) for new runs, which is the flood fix.
    fn log_alert(&mut self, alert: HealthAlert) -> bool {
        self.severity_counts[alert.severity() as usize] += 1;
        // A dropped alert still intervened: it breaks the retained tail
        // run, so a later repeat of the tail's condition must not fold
        // into an entry it wasn't actually contiguous with.
        if self.tail_open {
            if let Some(last) = self.alerts.last_mut() {
                if last.alert.kind.same_condition(&alert.kind) {
                    last.repeat_count += 1;
                    last.last_frame = alert.frame;
                    last.alert = alert;
                    return false;
                }
            }
        }
        if self.alerts.len() < MAX_ALERTS {
            self.alerts.push(CoalescedAlert {
                alert,
                first_frame: alert.frame,
                last_frame: alert.frame,
                repeat_count: 1,
            });
            self.tail_open = true;
        } else {
            self.alerts_dropped += 1;
            self.tail_open = false;
        }
        true
    }
}

/// Point-in-time health digest — what [`HealthMonitor::status`] returns
/// and what `summary::render` consumes.
#[derive(Debug, Clone)]
pub struct HealthStatus {
    /// Worst completed power window: (frame, milliwatts).
    pub worst_window: Option<(u64, f64)>,
    /// Completed power windows evaluated.
    pub power_windows: u64,
    /// Live power budget, milliwatts (see [`HealthMonitor::set_budget_mw`]).
    pub budget_mw: f64,
    /// Retained alert runs, oldest first (bounded at an internal cap);
    /// repeats of one condition coalesce into a single entry.
    pub alerts: Vec<CoalescedAlert>,
    /// Alert runs beyond the retention cap (counted, not kept).
    pub alerts_dropped: u64,
    /// Alert totals indexed by [`Severity`] as usize.
    pub severity_counts: [u64; 3],
    /// Fabric configuration generation at the last reprogramming.
    pub fabric_generation: u64,
    /// Label of the most recent pipeline marker.
    pub active_pipeline: &'static str,
}

impl HealthStatus {
    /// Power headroom of the worst window as a fraction of the budget
    /// (negative when the budget was violated).
    pub fn headroom_fraction(&self) -> Option<f64> {
        let (_, worst) = self.worst_window?;
        Some((self.budget_mw - worst) / self.budget_mw)
    }

    /// Total alerts raised (including dropped ones).
    pub fn total_alerts(&self) -> u64 {
        self.severity_counts.iter().sum::<u64>()
    }
}

/// The watchdog sink: wraps a [`Recorder`], forwards everything, and
/// evaluates safety envelopes on the event stream. Shareable across
/// threads like any sink.
pub struct HealthMonitor {
    recorder: Arc<Recorder>,
    config: HealthConfig,
    state: Mutex<WatchdogState>,
    tripped: AtomicBool,
    /// Live power budget as f64 bits — adjustable at runtime (brownout
    /// supervision shrinks it; see [`HealthMonitor::set_budget_mw`])
    /// without taking the state lock on read.
    budget_mw_bits: AtomicU64,
    /// Optional causal tracer: critical alerts escalate its sampling and
    /// post-mortems embed its assembled span trees.
    tracer: Mutex<Option<Arc<Tracer>>>,
}

impl fmt::Debug for HealthMonitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HealthMonitor")
            .field("config", &self.config)
            .field("tripped", &self.tripped.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl HealthMonitor {
    /// A monitor recording through `recorder` with envelope `config`.
    pub fn new(recorder: Arc<Recorder>, config: HealthConfig) -> Self {
        let budget_mw_bits = AtomicU64::new(config.budget_mw.to_bits());
        Self {
            recorder,
            config,
            state: Mutex::new(WatchdogState::new()),
            tripped: AtomicBool::new(false),
            budget_mw_bits,
            tracer: Mutex::new(None),
        }
    }

    /// The live power budget in milliwatts. Starts at
    /// [`HealthConfig::budget_mw`]; windows are judged against whatever
    /// value is current when they close.
    pub fn budget_mw(&self) -> f64 {
        f64::from_bits(self.budget_mw_bits.load(Ordering::Relaxed))
    }

    /// Adjust the live power budget — how a brownout supervisor tells the
    /// watchdog (and the continuous-telemetry layer's utilization series)
    /// that less power is available right now.
    pub fn set_budget_mw(&self, budget_mw: f64) {
        self.budget_mw_bits
            .store(budget_mw.to_bits(), Ordering::Relaxed);
    }

    /// Raise an externally evaluated alert through the normal path:
    /// severity counting, run coalescing, timeline event + post-mortem
    /// latch + trace escalation on new runs, fail-fast tripping, and the
    /// callback policy. This is how the SLO burn-rate engine feeds
    /// firings into the flight recorder.
    pub fn raise(&self, alert: HealthAlert) {
        let mut state = self.state.lock().unwrap();
        self.raise_locked(&mut state, alert);
        drop(state);
        if let AlertPolicy::Callback(cb) = &self.config.policy {
            cb(&alert);
        }
    }

    /// Attaches a causal tracer: critical alerts force-sample the next
    /// [`HealthConfig::escalate_trace_frames`] frames and post-mortem dumps
    /// gain a `span_trees` section with the most recent assembled traces.
    pub fn set_tracer(&self, tracer: Arc<Tracer>) {
        *self.tracer.lock().unwrap() = Some(tracer);
    }

    /// The attached causal tracer, if any.
    pub fn tracer(&self) -> Option<Arc<Tracer>> {
        self.tracer.lock().unwrap().clone()
    }

    /// The wrapped recorder.
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    /// The envelope configuration.
    pub fn config(&self) -> &HealthConfig {
        &self.config
    }

    /// Whether a critical alert tripped a [`AlertPolicy::FailFast`]
    /// monitor.
    pub fn tripped(&self) -> bool {
        self.tripped.load(Ordering::Relaxed)
    }

    /// Current health digest. Closes any power window still being
    /// accumulated (all of a window's samples arrive together, so a
    /// partially summed window only exists between a run's last sample
    /// and this call).
    pub fn status(&self) -> HealthStatus {
        let mut state = self.state.lock().unwrap();
        if let Some(alert) = state.finalize_power(self.budget_mw()) {
            self.raise_locked(&mut state, alert);
        }
        HealthStatus {
            worst_window: state.worst_window,
            power_windows: state.power_windows,
            budget_mw: self.budget_mw(),
            alerts: state.alerts.clone(),
            alerts_dropped: state.alerts_dropped,
            severity_counts: state.severity_counts,
            fabric_generation: state.fabric_generation,
            active_pipeline: state.active_pipeline,
        }
    }

    /// The latched post-mortem JSON dump, if a critical alert or runtime
    /// error occurred. When a tracer is attached, the dump is returned with
    /// a `span_trees` section holding the most recently completed causal
    /// traces (the escalated post-alert frames, once they have closed).
    pub fn postmortem(&self) -> Option<String> {
        // Flush any pending power window first — the violating window may
        // be the run's last.
        let mut state = self.state.lock().unwrap();
        if let Some(alert) = state.finalize_power(self.budget_mw()) {
            self.raise_locked(&mut state, alert);
        }
        let base = state.postmortem.clone()?;
        drop(state);
        Some(self.append_span_trees(base))
    }

    /// Splices `"span_trees":[...]` into a latched dump. The base dump is
    /// latched at alert time; trees are appended at access time because the
    /// escalated frames complete *after* the alert that requested them.
    fn append_span_trees(&self, mut dump: String) -> String {
        debug_assert!(dump.ends_with('}'));
        dump.pop();
        dump.push_str(",\"span_trees\":[");
        if let Some(tracer) = self.tracer.lock().unwrap().clone() {
            // Most recent traces are the ones that describe the incident;
            // cap the dump at this many trees.
            const MAX_TREES: usize = 4;
            let trees = tracer.trees();
            let start = trees.len().saturating_sub(MAX_TREES);
            let parts: Vec<String> = trees[start..]
                .iter()
                .filter_map(|t| SpanTree::assemble(t).ok())
                .map(|t| t.to_json())
                .collect();
            dump.push_str(&parts.join(","));
        }
        dump.push_str("]}");
        dump
    }

    /// Report a runtime error: latches a post-mortem dump (if none is
    /// latched yet) with `reason` as the cause, timestamped at `frame`.
    pub fn note_runtime_error(&self, reason: &str, frame: u64) {
        let mut state = self.state.lock().unwrap();
        if let Some(alert) = state.finalize_power(self.budget_mw()) {
            self.raise_locked(&mut state, alert);
        }
        if state.postmortem.is_none() {
            state.postmortem = Some(self.render_postmortem(&state, reason, frame));
        }
    }

    /// Log `alert` (coalescing repeats), append a timeline event when it
    /// starts a new run, latch a post-mortem on the first critical, and
    /// trip under fail-fast. Callbacks are returned to the caller to
    /// invoke *outside* the state lock.
    fn raise_locked(&self, state: &mut WatchdogState, alert: HealthAlert) {
        let severity = alert.severity();
        let new_run = state.log_alert(alert);
        if new_run {
            // Repeats of the same condition stay out of the timeline and
            // flight-recorder ring — one event marks the run's start, the
            // coalesced log entry carries its extent.
            let event = Event {
                frame: alert.frame,
                kind: EventKind::Health {
                    name: alert.kind.name(),
                    severity,
                    value: alert.kind.value(),
                    limit: alert.kind.limit(),
                },
            };
            self.recorder.event(event.clone());
            state.remember(&event, self.config.ring_capacity);
        }
        if severity == Severity::Critical {
            if new_run {
                // Escalate tracing first: the frames right after the
                // incident are the ones the post-mortem wants span trees
                // for. Repeats within a run already escalated.
                if let Some(tracer) = self.tracer.lock().unwrap().clone() {
                    tracer
                        .sampler()
                        .force_next(self.config.escalate_trace_frames);
                }
                if state.postmortem.is_none() {
                    state.postmortem = Some(self.render_postmortem(
                        state,
                        &format!("critical alert: {}", alert.kind.name()),
                        alert.frame,
                    ));
                }
            }
            if matches!(self.config.policy, AlertPolicy::FailFast) {
                self.tripped.store(true, Ordering::Relaxed);
            }
        }
    }

    /// Evaluate one event against the envelopes, returning any alert so
    /// the callback policy can run without holding the state lock.
    fn inspect(&self, event: &Event) -> Option<HealthAlert> {
        let mut state = self.state.lock().unwrap();
        state.remember(event, self.config.ring_capacity);
        let alert = match event.kind {
            EventKind::PowerSample { milliwatts, .. } => {
                let mut closed = None;
                if state.power_frame != Some(event.frame) {
                    closed = state.finalize_power(self.budget_mw());
                    state.power_frame = Some(event.frame);
                }
                state.power_accum_mw += milliwatts;
                closed
            }
            EventKind::ClosedLoop { latency_frames, .. } => {
                (latency_frames > self.config.deadline_frames).then_some(HealthAlert {
                    frame: event.frame,
                    kind: AlertKind::DeadlineMiss {
                        latency_frames,
                        deadline_frames: self.config.deadline_frames,
                    },
                })
            }
            EventKind::FifoWindow { slot, depth, .. } => (depth >= self.config.fifo_watermark)
                .then_some(HealthAlert {
                    frame: event.frame,
                    kind: AlertKind::Backpressure {
                        slot,
                        depth,
                        watermark: self.config.fifo_watermark,
                    },
                }),
            EventKind::RadioWindow { frames, bytes } => {
                let window_s = frames as f64 / self.recorder.sample_rate_hz() as f64;
                let bits_per_s = if window_s > 0.0 {
                    bytes as f64 * 8.0 / window_s
                } else {
                    0.0
                };
                (bits_per_s > self.config.radio_ceiling_bps).then_some(HealthAlert {
                    frame: event.frame,
                    kind: AlertKind::RadioThroughput {
                        bits_per_s,
                        ceiling_bps: self.config.radio_ceiling_bps,
                    },
                })
            }
            EventKind::SwitchProgram { generation, .. } => {
                state.fabric_generation = generation;
                None
            }
            EventKind::Marker { name } => {
                state.active_pipeline = name;
                None
            }
            EventKind::Fault {
                kind,
                slot,
                detail,
                detected,
            } => {
                state.note_fault(FaultNote {
                    frame: event.frame,
                    kind,
                    slot,
                    detail,
                    detected,
                });
                None
            }
            _ => None,
        };
        if let Some(alert) = alert {
            self.raise_locked(&mut state, alert);
        }
        alert
    }

    /// Render the black-box dump: cause, envelope state, every counter,
    /// latency digests, and the recent-event ring.
    fn render_postmortem(&self, state: &WatchdogState, reason: &str, frame: u64) -> String {
        let snap = self.recorder.snapshot();
        let mut out = String::with_capacity(4096);
        out.push('{');
        out.push_str(&format!(
            "\"reason\":{},\"frame\":{frame},\"fabric_generation\":{},\
             \"active_pipeline\":{},",
            json::string(reason),
            state.fabric_generation,
            json::string(state.active_pipeline),
        ));
        out.push_str(&format!(
            "\"alerts\":{{\"info\":{},\"warning\":{},\"critical\":{},\"dropped\":{}}},",
            state.severity_counts[Severity::Info as usize],
            state.severity_counts[Severity::Warning as usize],
            state.severity_counts[Severity::Critical as usize],
            state.alerts_dropped,
        ));
        out.push_str(&format!(
            "\"worst_window_mw\":{},\"budget_mw\":{},",
            json::number(state.worst_window.map_or(0.0, |(_, mw)| mw)),
            json::number(self.budget_mw()),
        ));
        out.push_str(&format!(
            "\"counters\":{{\"frames\":{},\"radio_bytes\":{},\"noc_bytes\":{},\
             \"controller_cycles\":{},\"controller_instructions\":{},\
             \"switch_programs\":{},\"stim_pulses\":{},\"dropped_events\":{}}},",
            snap.frames,
            snap.radio_bytes,
            snap.noc_bytes(),
            snap.controller_cycles,
            snap.controller_instructions,
            snap.switch_programs,
            snap.stim_pulses,
            snap.dropped_events,
        ));
        out.push_str("\"pes\":[");
        let pes: Vec<String> = snap
            .pes
            .iter()
            .map(|pe| {
                format!(
                    "{{\"slot\":{},\"name\":{},\"busy_cycles\":{},\"stall_cycles\":{},\
                     \"bytes_in\":{},\"bytes_out\":{},\"fifo_high_water\":{},\
                     \"fifo_peak_depth\":{},\"service_p99_ns\":{}}}",
                    pe.slot,
                    json::string(pe.name),
                    pe.busy_cycles,
                    pe.stall_cycles,
                    pe.bytes_in,
                    pe.bytes_out,
                    pe.fifo_high_water,
                    pe.fifo_peak_depth,
                    pe.service.p99,
                )
            })
            .collect();
        out.push_str(&pes.join(","));
        out.push_str("],\"links\":[");
        let links: Vec<String> = snap
            .links
            .iter()
            .map(|l| {
                format!(
                    "{{\"from\":{},\"to\":{},\"bytes\":{},\"transfers\":{}}}",
                    l.from, l.to, l.bytes, l.transfers
                )
            })
            .collect();
        out.push_str(&links.join(","));
        out.push_str("],\"pipelines\":[");
        let pipes: Vec<String> = snap
            .pipelines
            .iter()
            .map(|p| {
                format!(
                    "{{\"label\":{},\"count\":{},\"p50_ns\":{},\"p90_ns\":{},\
                     \"p99_ns\":{},\"max_ns\":{}}}",
                    json::string(p.label),
                    p.latency.count,
                    p.latency.p50,
                    p.latency.p90,
                    p.latency.p99,
                    p.latency.max,
                )
            })
            .collect();
        out.push_str(&pipes.join(","));
        out.push_str("],");
        out.push_str(&format!(
            "\"faults\":{{\"injected\":{},\"detected\":{}}},",
            state.faults_injected, state.faults_detected,
        ));
        out.push_str("\"recent_faults\":[");
        let faults: Vec<String> = state
            .recent_faults
            .iter()
            .map(|f| {
                format!(
                    "{{\"frame\":{},\"kind\":{},\"slot\":{},\"detail\":{},\"detected\":{}}}",
                    f.frame,
                    json::string(f.kind),
                    f.slot,
                    f.detail,
                    f.detected,
                )
            })
            .collect();
        out.push_str(&faults.join(","));
        out.push_str("],\"recent_events\":[");
        let events: Vec<String> = state
            .recent_ordered(self.config.ring_capacity)
            .iter()
            .map(event_json)
            .collect();
        out.push_str(&events.join(","));
        out.push_str("]}");
        out
    }
}

/// Serialize one timeline event as a JSON object for the flight recorder.
fn event_json(event: &Event) -> String {
    let body = match &event.kind {
        EventKind::PeWindow {
            slot,
            name,
            frames,
            busy_cycles,
            stall_cycles,
            bytes_in,
            bytes_out,
        } => format!(
            "\"pe_window\",\"slot\":{slot},\"name\":{},\"frames\":{frames},\
             \"busy_cycles\":{busy_cycles},\"stall_cycles\":{stall_cycles},\
             \"bytes_in\":{bytes_in},\"bytes_out\":{bytes_out}",
            json::string(name)
        ),
        EventKind::NocWindow {
            frames,
            bytes,
            transfers,
        } => format!(
            "\"noc_window\",\"frames\":{frames},\"bytes\":{bytes},\"transfers\":{transfers}"
        ),
        EventKind::PowerSample {
            slot,
            name,
            milliwatts,
        } => format!(
            "\"power_sample\",\"slot\":{slot},\"name\":{},\"milliwatts\":{}",
            json::string(name),
            json::number(*milliwatts)
        ),
        EventKind::SwitchProgram { words, generation } => {
            format!("\"switch_program\",\"words\":{words},\"generation\":{generation}")
        }
        EventKind::FifoWindow {
            slot,
            name,
            depth,
            peak,
        } => format!(
            "\"fifo_window\",\"slot\":{slot},\"name\":{},\"depth\":{depth},\"peak\":{peak}",
            json::string(name)
        ),
        EventKind::RadioWindow { frames, bytes } => {
            format!("\"radio_window\",\"frames\":{frames},\"bytes\":{bytes}")
        }
        EventKind::ClosedLoop {
            detect_frame,
            latency_frames,
        } => format!(
            "\"closed_loop\",\"detect_frame\":{detect_frame},\"latency_frames\":{latency_frames}"
        ),
        EventKind::Health {
            name,
            severity,
            value,
            limit,
        } => format!(
            "\"health\",\"name\":{},\"severity\":{},\"value\":{},\"limit\":{}",
            json::string(name),
            json::string(severity.label()),
            json::number(*value),
            json::number(*limit)
        ),
        EventKind::Stim {
            channel,
            amplitude_ua,
        } => format!("\"stim\",\"channel\":{channel},\"amplitude_ua\":{amplitude_ua}"),
        EventKind::Detection { positive } => format!("\"detection\",\"positive\":{positive}"),
        EventKind::Marker { name } => format!("\"marker\",\"name\":{}", json::string(name)),
        EventKind::Fault {
            kind,
            slot,
            detail,
            detected,
        } => format!(
            "\"fault\",\"fault_kind\":{},\"slot\":{slot},\"detail\":{detail},\
             \"detected\":{detected}",
            json::string(kind)
        ),
        EventKind::Span(span) => format!(
            "\"span\",\"trace\":{},\"span\":{}",
            span.trace.0,
            span_json(span)
        ),
    };
    format!("{{\"frame\":{},\"kind\":{body}}}", event.frame)
}

impl TelemetrySink for HealthMonitor {
    fn enabled(&self) -> bool {
        true
    }

    fn declare_pe(&self, slot: u8, name: &'static str) {
        self.recorder.declare_pe(slot, name);
    }

    fn add(&self, scope: Scope, counter: Counter, delta: u64) {
        self.recorder.add(scope, counter, delta);
    }

    fn hwm(&self, scope: Scope, counter: Counter, value: u64) {
        self.recorder.hwm(scope, counter, value);
    }

    fn event(&self, event: Event) {
        self.recorder.event(event.clone());
        if let Some(alert) = self.inspect(&event) {
            if let AlertPolicy::Callback(cb) = &self.config.policy {
                cb(&alert);
            }
        }
    }

    fn latency(&self, scope: Scope, nanos: u64) {
        self.recorder.latency(scope, nanos);
    }

    fn latency_batch(&self, scope: Scope, samples: &[u64]) {
        self.recorder.latency_batch(scope, samples);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor(config: HealthConfig) -> HealthMonitor {
        HealthMonitor::new(Arc::new(Recorder::new(1024)), config)
    }

    fn power_window(mon: &HealthMonitor, frame: u64, mws: &[f64]) {
        for (slot, &mw) in mws.iter().enumerate() {
            mon.event(Event {
                frame,
                kind: EventKind::PowerSample {
                    slot: slot as u8,
                    name: "PE",
                    milliwatts: mw,
                },
            });
        }
    }

    #[test]
    fn within_budget_raises_nothing() {
        let mon = monitor(HealthConfig::default());
        power_window(&mon, 0, &[4.0, 5.0]);
        power_window(&mon, 300, &[3.0, 2.0]);
        let status = mon.status();
        assert_eq!(status.total_alerts(), 0);
        assert_eq!(status.power_windows, 2);
        assert_eq!(status.worst_window, Some((0, 9.0)));
        assert!((status.headroom_fraction().unwrap() - 0.4).abs() < 1e-9);
        assert!(mon.postmortem().is_none());
        assert!(!mon.tripped());
    }

    #[test]
    fn budget_violation_raises_critical_and_latches_postmortem() {
        let mon = monitor(HealthConfig {
            budget_mw: 1.0,
            ..HealthConfig::default()
        });
        power_window(&mon, 0, &[0.7, 0.9]);
        power_window(&mon, 300, &[0.1]); // closes the violating window
        let status = mon.status();
        assert_eq!(status.severity_counts[Severity::Critical as usize], 1);
        let entry = status.alerts[0];
        assert_eq!(entry.alert.frame, 0);
        assert_eq!(entry.repeat_count, 1);
        assert!(
            matches!(entry.kind(), AlertKind::PowerBudget { window_mw, .. }
            if (window_mw - 1.6).abs() < 1e-9)
        );

        let dump = mon.postmortem().expect("critical alert must latch a dump");
        json::validate(&dump).unwrap();
        assert!(dump.contains("\"reason\":\"critical alert: power_budget\""));
        assert!(dump.contains("\"recent_events\""));
        // The alert's timeline event reached the recorder.
        assert!(mon.recorder().events().iter().any(|e| matches!(
            e.kind,
            EventKind::Health {
                name: "power_budget",
                ..
            }
        )));
    }

    #[test]
    fn pending_power_window_is_flushed_by_accessors() {
        let mon = monitor(HealthConfig {
            budget_mw: 1.0,
            ..HealthConfig::default()
        });
        power_window(&mon, 0, &[2.0]); // never followed by another window
        assert!(mon.postmortem().is_some());
    }

    #[test]
    fn deadline_miss_is_critical_but_on_time_loops_are_not() {
        let mon = monitor(HealthConfig::default());
        mon.event(Event {
            frame: 100,
            kind: EventKind::ClosedLoop {
                detect_frame: 90,
                latency_frames: 10,
            },
        });
        assert_eq!(mon.status().total_alerts(), 0);
        mon.event(Event {
            frame: 200,
            kind: EventKind::ClosedLoop {
                detect_frame: 150,
                latency_frames: 50,
            },
        });
        let status = mon.status();
        assert_eq!(status.severity_counts[Severity::Critical as usize], 1);
        assert!(matches!(
            status.alerts[0].kind(),
            AlertKind::DeadlineMiss {
                latency_frames: 50,
                deadline_frames: 30
            }
        ));
    }

    #[test]
    fn backpressure_and_radio_are_warnings() {
        let mon = monitor(HealthConfig {
            fifo_watermark: 8,
            ..HealthConfig::default()
        });
        mon.event(Event {
            frame: 30,
            kind: EventKind::FifoWindow {
                slot: 2,
                name: "LZ",
                depth: 9,
                peak: 12,
            },
        });
        // 30 frames at 30 kHz = 1 ms; 10 KB in 1 ms = 80 Mbps > ceiling.
        mon.event(Event {
            frame: 60,
            kind: EventKind::RadioWindow {
                frames: 30,
                bytes: 10_000,
            },
        });
        let status = mon.status();
        assert_eq!(status.severity_counts[Severity::Warning as usize], 2);
        assert_eq!(status.severity_counts[Severity::Critical as usize], 0);
        assert!(mon.postmortem().is_none(), "warnings must not latch dumps");
        assert!(!mon.tripped());
    }

    #[test]
    fn fail_fast_trips_on_critical_only() {
        let mon = monitor(HealthConfig {
            budget_mw: 1.0,
            fifo_watermark: 1,
            policy: AlertPolicy::FailFast,
            ..HealthConfig::default()
        });
        mon.event(Event {
            frame: 0,
            kind: EventKind::FifoWindow {
                slot: 0,
                name: "LZ",
                depth: 5,
                peak: 5,
            },
        });
        assert!(!mon.tripped(), "a warning must not trip fail-fast");
        power_window(&mon, 0, &[2.0]);
        power_window(&mon, 300, &[0.1]);
        assert!(mon.tripped());
    }

    #[test]
    fn callback_policy_sees_each_alert() {
        use std::sync::atomic::AtomicU64;
        let hits = Arc::new(AtomicU64::new(0));
        let seen = hits.clone();
        let mon = monitor(HealthConfig {
            fifo_watermark: 4,
            policy: AlertPolicy::Callback(Arc::new(move |alert| {
                assert!(matches!(alert.kind, AlertKind::Backpressure { .. }));
                seen.fetch_add(1, Ordering::Relaxed);
            })),
            ..HealthConfig::default()
        });
        for frame in [30, 60, 90] {
            mon.event(Event {
                frame,
                kind: EventKind::FifoWindow {
                    slot: 1,
                    name: "LZ",
                    depth: 6,
                    peak: 6,
                },
            });
        }
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn runtime_error_latches_postmortem_with_context() {
        let mon = monitor(HealthConfig::default());
        mon.event(Event {
            frame: 5,
            kind: EventKind::Marker { name: "seizure" },
        });
        mon.event(Event {
            frame: 10,
            kind: EventKind::SwitchProgram {
                words: 12,
                generation: 3,
            },
        });
        mon.note_runtime_error("fifo overflow in LZ", 42);
        let dump = mon.postmortem().unwrap();
        json::validate(&dump).unwrap();
        assert!(dump.contains("\"reason\":\"fifo overflow in LZ\""));
        assert!(dump.contains("\"frame\":42"));
        assert!(dump.contains("\"fabric_generation\":3"));
        assert!(dump.contains("\"active_pipeline\":\"seizure\""));
        // First dump wins; later errors don't overwrite it.
        mon.note_runtime_error("second failure", 99);
        assert_eq!(mon.postmortem().unwrap(), dump);
    }

    #[test]
    fn flight_recorder_ring_is_bounded() {
        let mon = monitor(HealthConfig {
            ring_capacity: 4,
            ..HealthConfig::default()
        });
        for frame in 0..20 {
            mon.event(Event {
                frame,
                kind: EventKind::Marker { name: "tick" },
            });
        }
        mon.note_runtime_error("boom", 20);
        let dump = mon.postmortem().unwrap();
        json::validate(&dump).unwrap();
        // Only the newest four events survive.
        assert!(dump.contains("\"frame\":19,\"kind\":\"marker\""));
        assert!(!dump.contains("\"frame\":0,\"kind\":\"marker\""));
    }

    #[test]
    fn alert_log_is_bounded_but_counts_everything() {
        let mon = monitor(HealthConfig {
            fifo_watermark: 1,
            ..HealthConfig::default()
        });
        // Alternating slots so consecutive alerts never share a condition
        // — every alert starts a new run and the retention cap is what
        // bounds the log.
        for frame in 0..(MAX_ALERTS as u64 + 50) {
            mon.event(Event {
                frame,
                kind: EventKind::FifoWindow {
                    slot: (frame % 2) as u8,
                    name: "LZ",
                    depth: 2,
                    peak: 2,
                },
            });
        }
        let status = mon.status();
        assert_eq!(status.alerts.len(), MAX_ALERTS);
        assert_eq!(status.alerts_dropped, 50);
        assert_eq!(status.total_alerts(), MAX_ALERTS as u64 + 50);
        assert!(status.alerts.iter().all(|a| a.repeat_count == 1));
    }

    #[test]
    fn repeated_identical_alerts_coalesce_into_one_run() {
        let mon = monitor(HealthConfig {
            fifo_watermark: 1,
            ..HealthConfig::default()
        });
        for frame in [30u64, 60, 90, 120] {
            mon.event(Event {
                frame,
                kind: EventKind::FifoWindow {
                    slot: 3,
                    name: "LZ",
                    depth: 2,
                    peak: 2,
                },
            });
        }
        let status = mon.status();
        assert_eq!(status.alerts.len(), 1, "one run, not four entries");
        let run = status.alerts[0];
        assert_eq!(run.repeat_count, 4);
        assert_eq!(run.first_frame, 30);
        assert_eq!(run.last_frame, 120);
        assert_eq!(run.alert.frame, 120, "entry carries latest occurrence");
        // Every occurrence still counts toward severity totals...
        assert_eq!(status.severity_counts[Severity::Warning as usize], 4);
        assert_eq!(status.alerts_dropped, 0);
        // ...but the timeline carries one Health event, not four.
        let health_events = mon
            .recorder()
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Health { .. }))
            .count();
        assert_eq!(health_events, 1, "repeats must not flood the timeline");
    }

    #[test]
    fn a_different_condition_breaks_the_run() {
        let mon = monitor(HealthConfig {
            fifo_watermark: 1,
            ..HealthConfig::default()
        });
        for (frame, slot) in [(30u64, 0u8), (60, 0), (90, 5), (120, 0)] {
            mon.event(Event {
                frame,
                kind: EventKind::FifoWindow {
                    slot,
                    name: "LZ",
                    depth: 2,
                    peak: 2,
                },
            });
        }
        let status = mon.status();
        // slot 0 ×2, slot 5, slot 0 again: three runs.
        assert_eq!(status.alerts.len(), 3);
        assert_eq!(status.alerts[0].repeat_count, 2);
        assert_eq!(status.alerts[1].repeat_count, 1);
        assert_eq!(status.alerts[2].repeat_count, 1);
    }

    #[test]
    fn raise_feeds_external_alerts_through_the_normal_path() {
        let mon = monitor(HealthConfig::default());
        let alert = HealthAlert {
            frame: 900,
            kind: AlertKind::SloBurnRate {
                objective: "power",
                fast: false,
                burn_rate: 7.5,
                threshold: 6.0,
            },
        };
        mon.raise(alert);
        mon.raise(HealthAlert {
            frame: 1200,
            ..alert
        });
        let status = mon.status();
        assert_eq!(status.severity_counts[Severity::Warning as usize], 2);
        assert_eq!(status.alerts.len(), 1, "same objective+policy coalesces");
        assert_eq!(status.alerts[0].repeat_count, 2);
        assert!(mon.postmortem().is_none(), "slow burn is a warning");
        // A fast-burn firing is critical: it latches the flight recorder.
        mon.raise(HealthAlert {
            frame: 1500,
            kind: AlertKind::SloBurnRate {
                objective: "power",
                fast: true,
                burn_rate: 15.0,
                threshold: 14.4,
            },
        });
        let dump = mon.postmortem().expect("fast burn must latch a dump");
        json::validate(&dump).unwrap();
        assert!(dump.contains("critical alert: slo_burn_rate"));
    }

    #[test]
    fn budget_is_adjustable_at_runtime() {
        let mon = monitor(HealthConfig {
            budget_mw: 10.0,
            ..HealthConfig::default()
        });
        power_window(&mon, 0, &[6.0]);
        power_window(&mon, 300, &[6.0]); // closes frame-0 window: within 10 mW
                                         // A brownout shrinks the live budget; the still-open frame-300
                                         // window closes later and is judged against it. (No status() call
                                         // here — accessors flush the pending window at the current budget.)
        mon.set_budget_mw(5.0);
        assert_eq!(mon.budget_mw(), 5.0);
        power_window(&mon, 600, &[0.1]); // closes frame-300 window: 6 > 5
        let status = mon.status();
        assert_eq!(status.severity_counts[Severity::Critical as usize], 1);
        assert!(matches!(
            status.alerts[0].kind(),
            AlertKind::PowerBudget { budget_mw, .. } if budget_mw == 5.0
        ));
        assert_eq!(status.budget_mw, 5.0);
    }

    #[test]
    fn critical_alert_escalates_tracing_and_dump_carries_trees() {
        let mon = monitor(HealthConfig {
            budget_mw: 1.0,
            escalate_trace_frames: 3,
            ..HealthConfig::default()
        });
        let tracer = Arc::new(Tracer::new(7, 0));
        mon.set_tracer(tracer.clone());
        assert_eq!(tracer.sampler().forced_pending(), 0);
        power_window(&mon, 0, &[2.0]);
        power_window(&mon, 300, &[0.1]); // closes the violating window
        assert_eq!(
            tracer.sampler().forced_pending(),
            3,
            "critical alert must arm forced sampling"
        );
        // Simulate the escalated frames flowing through the fabric.
        let tag = tracer.begin_frame(301);
        assert_ne!(tag, 0);
        tracer.delivery(
            tag,
            None,
            0,
            "FFT",
            1,
            2,
            crate::tracing::DeliveryCosts {
                noc_ns: 0,
                wait_ns: 0,
                cross_ns: 0,
                service_ns: 10,
            },
        );
        tracer.finalize_all();
        let dump = mon.postmortem().unwrap();
        json::validate(&dump).unwrap();
        assert!(
            dump.contains("\"span_trees\":[{"),
            "dump must embed assembled trees: {dump}"
        );
    }

    #[test]
    fn forwards_counters_to_the_recorder() {
        let mon = monitor(HealthConfig::default());
        mon.declare_pe(0, "FFT");
        mon.add(Scope::Pe(0), Counter::BusyCycles, 123);
        mon.hwm(Scope::Pe(0), Counter::FifoPeakDepth, 7);
        mon.latency(Scope::System, 1_000);
        let snap = mon.recorder().snapshot();
        assert_eq!(snap.pes[0].busy_cycles, 123);
        assert_eq!(snap.pes[0].fifo_peak_depth, 7);
        assert_eq!(snap.pipelines.len(), 1);
    }
}
