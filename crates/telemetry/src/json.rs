//! Minimal hand-rolled JSON support.
//!
//! The simulator builds in offline environments with no registry access, so
//! trace export cannot depend on serde. This module provides the pieces the
//! exporters need: correct string escaping / number formatting for
//! *emission*, a small recursive-descent *validator* used by tests to
//! guarantee emitted traces are well-formed JSON, and a matching [`parse`]
//! returning a [`Value`] tree so captured trace logs can be read back for
//! deterministic replay.

/// Escape `s` into a JSON string literal (including the surrounding quotes).
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format a float as a JSON number. JSON has no NaN/Infinity, so
/// non-finite values are clamped to 0.
pub fn number(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    // `{}` on f64 prints the shortest string that round-trips, which is
    // always a valid JSON number for finite values.
    format!("{v}")
}

/// Validate that `input` is a single well-formed JSON value.
pub fn validate(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => jstring(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => jnumber(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}", pos = *pos)),
        None => Err("unexpected end of input".to_string()),
    }
}

fn literal(b: &[u8], pos: &mut usize, word: &str) -> Result<(), String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        jstring(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn jstring(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match b.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => {
                                    return Err(format!("bad \\u escape at byte {pos}", pos = *pos))
                                }
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
            }
            c if c < 0x20 => {
                return Err(format!(
                    "raw control char in string at byte {pos}",
                    pos = *pos
                ))
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn jnumber(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_digits = eat_digits(b, pos);
    if int_digits == 0 {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if eat_digits(b, pos) == 0 {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if eat_digits(b, pos) == 0 {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    Ok(())
}

fn eat_digits(b: &[u8], pos: &mut usize) -> usize {
    let start = *pos;
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
    }
    *pos - start
}

/// A parsed JSON value. Object member order is preserved (binary-stable
/// round-trips matter for trace logs); numbers are kept as `f64`, which is
/// exact for the integer magnitudes the trace log uses (< 2^53).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, members in source order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64` (must be a non-negative integer).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse `input` into a [`Value`] tree. Accepts exactly the documents
/// [`validate`] accepts.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos).map(Value::String),
        Some(b't') => literal(b, pos, "true").map(|_| Value::Bool(true)),
        Some(b'f') => literal(b, pos, "false").map(|_| Value::Bool(false)),
        Some(b'n') => literal(b, pos, "null").map(|_| Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}", pos = *pos)),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // consume '{'
    skip_ws(b, pos);
    let mut members = Vec::new();
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(members));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        members.push((key, parse_value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // consume '['
    skip_ws(b, pos);
    let mut items = Vec::new();
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        skip_ws(b, pos);
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    let start = *pos;
    jstring(b, pos)?; // validate + find the closing quote
    let raw = &b[start + 1..*pos - 1];
    let mut out = String::with_capacity(raw.len());
    let mut i = 0usize;
    while i < raw.len() {
        if raw[i] == b'\\' {
            i += 1;
            match raw[i] {
                b'"' => out.push('"'),
                b'\\' => out.push('\\'),
                b'/' => out.push('/'),
                b'b' => out.push('\u{8}'),
                b'f' => out.push('\u{c}'),
                b'n' => out.push('\n'),
                b'r' => out.push('\r'),
                b't' => out.push('\t'),
                b'u' => {
                    let hex = std::str::from_utf8(&raw[i + 1..i + 5])
                        .map_err(|_| "bad \\u escape".to_string())?;
                    let code =
                        u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_string())?;
                    // Surrogates cannot appear in our own output; map them
                    // to the replacement character rather than erroring.
                    out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    i += 4;
                }
                _ => return Err("bad escape".to_string()),
            }
            i += 1;
        } else {
            // Copy the longest run of plain bytes (valid UTF-8 by input).
            let run_start = i;
            while i < raw.len() && raw[i] != b'\\' {
                i += 1;
            }
            out.push_str(
                std::str::from_utf8(&raw[run_start..i])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
        }
    }
    Ok(out)
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    jnumber(b, pos)?;
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad number".to_string())?;
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|e| format!("bad number {text:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_special_characters() {
        assert_eq!(string("a\"b"), "\"a\\\"b\"");
        assert_eq!(string("a\\b"), "\"a\\\\b\"");
        assert_eq!(string("a\nb"), "\"a\\nb\"");
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
        assert_eq!(string("plain"), "\"plain\"");
    }

    #[test]
    fn numbers_are_finite_json() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(-0.25), "-0.25");
        assert_eq!(number(f64::NAN), "0");
        assert_eq!(number(f64::INFINITY), "0");
        // Emitted numbers must satisfy our own validator.
        for v in [0.0, 1e-12, 3.25e9, -17.0, 0.1 + 0.2] {
            validate(&number(v)).unwrap();
        }
    }

    #[test]
    fn validator_accepts_well_formed_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e-3",
            r#"{"a": [1, 2, {"b": "c\n"}], "d": null}"#,
            r#"  [ "\u00e9" , false ]  "#,
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1,}",
            "\"unterminated",
            "01a",
            "1 2",
            "NaN",
            "{a: 1}",
        ] {
            assert!(validate(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn strings_round_trip_through_validator() {
        let s = string("weird \" \\ \n \t \u{7} payload");
        validate(&s).unwrap();
    }

    #[test]
    fn parse_builds_value_trees() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny"}, "d": null, "e": true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(2.5)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d"), Some(&Value::Null));
        assert_eq!(v.get("e").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_rejects_what_validate_rejects() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "1 2", "NaN"] {
            assert!(parse(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn strings_round_trip_through_parse() {
        let original = "weird \" \\ \n \t \u{7} € payload";
        let v = parse(&string(original)).unwrap();
        assert_eq!(v.as_str(), Some(original));
    }
}
