//! Minimal hand-rolled JSON support.
//!
//! The simulator builds in offline environments with no registry access, so
//! trace export cannot depend on serde. This module provides the two pieces
//! the exporters need: correct string escaping / number formatting for
//! *emission*, and a small recursive-descent *validator* used by tests to
//! guarantee emitted traces are well-formed JSON.

/// Escape `s` into a JSON string literal (including the surrounding quotes).
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format a float as a JSON number. JSON has no NaN/Infinity, so
/// non-finite values are clamped to 0.
pub fn number(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    // `{}` on f64 prints the shortest string that round-trips, which is
    // always a valid JSON number for finite values.
    format!("{v}")
}

/// Validate that `input` is a single well-formed JSON value.
pub fn validate(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => jstring(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => jnumber(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}", pos = *pos)),
        None => Err("unexpected end of input".to_string()),
    }
}

fn literal(b: &[u8], pos: &mut usize, word: &str) -> Result<(), String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        jstring(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn jstring(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match b.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => {
                                    return Err(format!("bad \\u escape at byte {pos}", pos = *pos))
                                }
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
            }
            c if c < 0x20 => {
                return Err(format!(
                    "raw control char in string at byte {pos}",
                    pos = *pos
                ))
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn jnumber(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_digits = eat_digits(b, pos);
    if int_digits == 0 {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if eat_digits(b, pos) == 0 {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if eat_digits(b, pos) == 0 {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    Ok(())
}

fn eat_digits(b: &[u8], pos: &mut usize) -> usize {
    let start = *pos;
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
    }
    *pos - start
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_special_characters() {
        assert_eq!(string("a\"b"), "\"a\\\"b\"");
        assert_eq!(string("a\\b"), "\"a\\\\b\"");
        assert_eq!(string("a\nb"), "\"a\\nb\"");
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
        assert_eq!(string("plain"), "\"plain\"");
    }

    #[test]
    fn numbers_are_finite_json() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(-0.25), "-0.25");
        assert_eq!(number(f64::NAN), "0");
        assert_eq!(number(f64::INFINITY), "0");
        // Emitted numbers must satisfy our own validator.
        for v in [0.0, 1e-12, 3.25e9, -17.0, 0.1 + 0.2] {
            validate(&number(v)).unwrap();
        }
    }

    #[test]
    fn validator_accepts_well_formed_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e-3",
            r#"{"a": [1, 2, {"b": "c\n"}], "d": null}"#,
            r#"  [ "\u00e9" , false ]  "#,
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1,}",
            "\"unterminated",
            "01a",
            "1 2",
            "NaN",
            "{a: 1}",
        ] {
            assert!(validate(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn strings_round_trip_through_validator() {
        let s = string("weird \" \\ \n \t \u{7} payload");
        validate(&s).unwrap();
    }
}
