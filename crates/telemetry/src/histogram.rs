//! Log-bucketed latency histograms.
//!
//! HdrHistogram-style fixed-size histograms for the health monitor: a
//! value's bucket is its power-of-two magnitude split into
//! [`SUB_BUCKETS`] linear sub-buckets, so relative quantization error is
//! bounded by `1/SUB_BUCKETS` (25%) at any scale from 1 ns to `u64::MAX`.
//! Recording is O(1), memory is a fixed flat array (no allocation after
//! construction), and percentile queries walk the array once — the shape
//! an implant-side recorder could actually afford.

/// Linear sub-buckets per power-of-two magnitude. Four gives ≤25%
/// relative error, which is plenty to separate "window service took 2 µs"
/// from "window service took 2 ms".
pub const SUB_BUCKETS: u64 = 4;

/// Number of counters in a [`LogHistogram`]: 64 magnitudes × sub-buckets.
const BUCKETS: usize = 64 * SUB_BUCKETS as usize;

/// A fixed-size log-bucketed histogram of `u64` samples (nanoseconds, by
/// convention, though the math is unit-agnostic).
///
/// # Example
///
/// ```
/// use halo_telemetry::histogram::LogHistogram;
/// let mut h = LogHistogram::new();
/// for v in [100u64, 200, 300, 400, 50_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.max(), 50_000);
/// // The p50 upper bound covers the true median (300)...
/// assert!(h.percentile(50.0) >= 300);
/// // ...within one sub-bucket of resolution.
/// assert!(h.percentile(50.0) <= 300 + 300 / 4 + 1);
/// ```
#[derive(Debug, Clone)]
pub struct LogHistogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    min: u64,
    max: u64,
    sum: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Immutable percentile digest of a histogram — what snapshots and
/// exporters carry around. All fields are integer sample-value bounds, so
/// the digest is `Eq` and deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Upper bound of the bucket holding the 50th percentile.
    pub p50: u64,
    /// Upper bound of the bucket holding the 90th percentile.
    pub p90: u64,
    /// Upper bound of the bucket holding the 99th percentile.
    pub p99: u64,
    /// Exact largest sample.
    pub max: u64,
}

/// Maps a value to its bucket index: 2 bits of linear mantissa under a
/// log2 exponent.
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        // Values below the first full magnitude are exact.
        return v as usize;
    }
    let magnitude = 63 - v.leading_zeros() as u64; // >= 2
                                                   // Drop the implicit leading bit, keep the next log2(SUB_BUCKETS) bits
                                                   // as a linear mantissa.
    let shift = magnitude - SUB_BUCKETS.trailing_zeros() as u64;
    let sub = (v >> shift) & (SUB_BUCKETS - 1);
    ((magnitude - 1) * SUB_BUCKETS + sub) as usize
}

/// Exclusive upper bound of the values mapping to `index` (saturating).
fn bucket_upper_bound(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB_BUCKETS {
        return index;
    }
    let magnitude = index / SUB_BUCKETS + 1;
    if magnitude >= 64 {
        // The top few indices are unreachable (bucket_index caps the
        // magnitude at 63); saturate instead of overflowing the shift.
        return u64::MAX;
    }
    let sub = index % SUB_BUCKETS;
    let shift = magnitude - SUB_BUCKETS.trailing_zeros() as u64;
    let base = 1u64 << magnitude;
    base.saturating_add((sub + 1).saturating_mul(1u64 << shift) - 1)
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum = self.sum.saturating_add(value);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Saturating sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `p`-th percentile (0 < p ≤ 100): the bucket
    /// boundary at or above the sample that `ceil(p/100 × count)` samples
    /// sit at or below. Guaranteed ≥ the true quantile and within one
    /// sub-bucket (≤25% relative error) of it; the top percentile is
    /// clamped to the exact observed maximum.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// The percentile digest carried by snapshots.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            p50: self.percentile(50.0),
            p90: self.percentile(90.0),
            p99: self.percentile(99.0),
            max: self.max,
        }
    }

    /// Merges `other` into `self`, bucket-wise — the rollup primitive for
    /// fleet-wide aggregation. Both histograms share the same fixed bucket
    /// layout, so the merged percentiles are exactly what one histogram
    /// fed both sample streams would report; `count`, `min`, `max`, and
    /// the (saturating) `sum` combine losslessly.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Non-empty buckets as `(exclusive_upper_bound, cumulative_count)`
    /// pairs in ascending order — the shape a Prometheus histogram
    /// exposition needs.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c != 0 {
                cumulative += c;
                out.push((bucket_upper_bound(i), cumulative));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.summary(), HistogramSummary::default());
        assert!(h.cumulative_buckets().is_empty());
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..SUB_BUCKETS {
            h.record(v);
        }
        assert_eq!(h.percentile(25.0), 0);
        assert_eq!(h.percentile(100.0), SUB_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_cover_their_values() {
        // Every probed value must satisfy lower < v <= upper of its bucket.
        for shift in 0..63 {
            for offset in [0u64, 1, 3] {
                let v = (1u64 << shift).saturating_add(offset);
                let i = bucket_index(v);
                assert!(
                    v <= bucket_upper_bound(i),
                    "value {v} above its bucket bound {}",
                    bucket_upper_bound(i)
                );
                if i > 0 {
                    assert!(
                        v > bucket_upper_bound(i - 1),
                        "value {v} below previous bucket bound"
                    );
                }
            }
        }
    }

    #[test]
    fn bucket_bounds_are_monotone() {
        let mut last = 0u64;
        for i in 1..BUCKETS {
            let b = bucket_upper_bound(i);
            assert!(b > last || b == u64::MAX, "bucket {i} bound regressed");
            last = b;
        }
    }

    #[test]
    fn percentiles_bound_known_quantiles() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // True p50 = 500, p90 = 900, p99 = 990.
        for (p, truth) in [(50.0, 500u64), (90.0, 900), (99.0, 990)] {
            let est = h.percentile(p);
            assert!(est >= truth, "p{p}: {est} < {truth}");
            assert!(
                est <= truth + truth / SUB_BUCKETS + 1,
                "p{p}: {est} too loose"
            );
        }
        assert_eq!(h.percentile(100.0), 1000);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.min(), 1);
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.percentile(99.0), u64::MAX);
        assert_eq!(h.sum(), u64::MAX); // saturated
    }

    #[test]
    fn merging_two_empty_histograms_stays_empty() {
        let mut a = LogHistogram::new();
        let b = LogHistogram::new();
        a.merge(&b);
        assert_eq!(a.count(), 0);
        assert_eq!(a.min(), 0);
        assert_eq!(a.max(), 0);
        assert_eq!(a.sum(), 0);
        assert_eq!(a.summary(), HistogramSummary::default());
        assert!(a.cumulative_buckets().is_empty());
    }

    #[test]
    fn merging_into_or_from_an_empty_histogram_is_identity() {
        let mut samples = LogHistogram::new();
        for v in [7u64, 320, 320, 64_000] {
            samples.record(v);
        }
        // empty ⊕ samples == samples.
        let mut forward = LogHistogram::new();
        forward.merge(&samples);
        assert_eq!(forward.summary(), samples.summary());
        assert_eq!(forward.min(), samples.min());
        assert_eq!(forward.sum(), samples.sum());
        // samples ⊕ empty == samples — and must not let the empty side's
        // sentinel min (u64::MAX) poison the merged min.
        let mut backward = samples.clone();
        backward.merge(&LogHistogram::new());
        assert_eq!(backward.summary(), samples.summary());
        assert_eq!(backward.min(), 7);
    }

    #[test]
    fn merging_saturated_top_buckets_keeps_saturating() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        // Both sides have already saturated their sums and sit in the
        // unreachable-magnitude top bucket.
        a.record(u64::MAX);
        a.record(u64::MAX);
        b.record(u64::MAX);
        b.record(u64::MAX - 1);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.max(), u64::MAX);
        assert_eq!(a.sum(), u64::MAX, "sum must saturate, not wrap");
        assert_eq!(a.percentile(50.0), u64::MAX);
        let buckets = a.cumulative_buckets();
        assert_eq!(buckets.last().unwrap(), &(u64::MAX, 4));
    }

    #[test]
    fn merging_disjoint_magnitudes_matches_one_stream() {
        // "Mismatched but compatible": one histogram saw only sub-µs
        // values, the other only multi-ms values. The fixed layout means
        // the merge equals a single histogram fed both streams.
        let fast = [120u64, 340, 980, 410];
        let slow = [2_000_000u64, 5_000_000, 9_999_999];
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut reference = LogHistogram::new();
        for &v in &fast {
            a.record(v);
            reference.record(v);
        }
        for &v in &slow {
            b.record(v);
            reference.record(v);
        }
        a.merge(&b);
        assert_eq!(a.summary(), reference.summary());
        assert_eq!(a.min(), reference.min());
        assert_eq!(a.sum(), reference.sum());
        assert_eq!(a.cumulative_buckets(), reference.cumulative_buckets());
    }

    #[test]
    fn cumulative_buckets_end_at_total_count() {
        let mut h = LogHistogram::new();
        for v in [3u64, 70, 70, 900, 12_345] {
            h.record(v);
        }
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.last().unwrap().1, 5);
        assert!(buckets
            .windows(2)
            .all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1));
    }
}
