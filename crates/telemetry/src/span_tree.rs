//! Span-tree assembly and critical-path attribution.
//!
//! The [`Tracer`](crate::tracing::Tracer) records spans flat; this module
//! reconstructs each traced frame's causal tree ([`SpanTree::assemble`]),
//! validates it (single root, no orphans, children nested inside their
//! parents), and attributes the traced end-to-end latency to hops
//! ([`SpanTree::attribution`]). A hop is a `(kind, label)` pair such as
//! `(NocHop, "FFT->XCOR")` or `(FifoWait, "FFT->XCOR fifo_wait")`; the cost
//! of each hop is its *self time* — span duration minus child durations —
//! so the hop costs of one trace tile the root interval and always sum to
//! 100% of end-to-end latency.
//!
//! [`CriticalPathSummary::from_traces`] aggregates attribution across many
//! traces so `summary`/`expose` can report lines like
//! `p99 dominated by FFT->XCOR fifo_wait, 61%`.

use crate::json;
use crate::tracing::{SpanId, SpanKind, SpanRecord, TraceRecord, NO_NODE};

/// Why a trace failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// No spans at all.
    Empty,
    /// Zero or multiple roots (spans with no parent).
    RootCount(usize),
    /// A span references a parent id that does not exist.
    Orphan(u32),
    /// Two spans share an id.
    DuplicateId(u32),
    /// A child interval is not contained in its parent's interval.
    NotNested { child: u32, parent: u32 },
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::Empty => write!(f, "trace has no spans"),
            TreeError::RootCount(n) => write!(f, "trace has {n} roots (want 1)"),
            TreeError::Orphan(id) => write!(f, "span {id} references a missing parent"),
            TreeError::DuplicateId(id) => write!(f, "span id {id} appears twice"),
            TreeError::NotNested { child, parent } => {
                write!(f, "span {child} is not nested inside parent {parent}")
            }
        }
    }
}

impl std::error::Error for TreeError {}

/// One hop's share of a trace's (or an aggregate's) end-to-end latency.
#[derive(Debug, Clone, PartialEq)]
pub struct HopCost {
    /// Span kind the time was spent in.
    pub kind: SpanKind,
    /// Human-readable hop label (`"FFT"`, `"FFT->XCOR"`, `"radio"`, ...).
    pub label: String,
    /// Self-time in nanoseconds.
    pub ns: u64,
}

impl HopCost {
    /// This hop's fraction of `total_ns` (0 when the total is 0).
    pub fn fraction(&self, total_ns: u64) -> f64 {
        if total_ns == 0 {
            0.0
        } else {
            self.ns as f64 / total_ns as f64
        }
    }
}

/// A validated causal tree for one traced frame.
#[derive(Debug, Clone)]
pub struct SpanTree {
    spans: Vec<SpanRecord>,
    children: Vec<Vec<usize>>,
    root_frame: u64,
}

impl SpanTree {
    /// Validates `record` and builds the tree.
    pub fn assemble(record: &TraceRecord) -> Result<SpanTree, TreeError> {
        let spans = record.spans.clone();
        if spans.is_empty() {
            return Err(TreeError::Empty);
        }
        let roots = spans.iter().filter(|s| s.parent.is_none()).count();
        if roots != 1 {
            return Err(TreeError::RootCount(roots));
        }
        // Index by span id, rejecting duplicates.
        let mut by_id: Vec<Option<usize>> = Vec::new();
        for (i, s) in spans.iter().enumerate() {
            let id = s.id.0 as usize;
            if by_id.len() <= id {
                by_id.resize(id + 1, None);
            }
            if by_id[id].is_some() {
                return Err(TreeError::DuplicateId(s.id.0));
            }
            by_id[id] = Some(i);
        }
        let mut children = vec![Vec::new(); spans.len()];
        for (i, s) in spans.iter().enumerate() {
            if let Some(SpanId(pid)) = s.parent {
                let Some(Some(pi)) = by_id.get(pid as usize) else {
                    return Err(TreeError::Orphan(s.id.0));
                };
                let p = &spans[*pi];
                if s.begin_ns < p.begin_ns || s.end_ns > p.end_ns {
                    return Err(TreeError::NotNested {
                        child: s.id.0,
                        parent: p.id.0,
                    });
                }
                children[*pi].push(i);
            }
        }
        Ok(SpanTree {
            spans,
            children,
            root_frame: record.root_frame,
        })
    }

    /// All spans (root first, as recorded).
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Sample-frame index the trace was rooted at.
    pub fn root_frame(&self) -> u64 {
        self.root_frame
    }

    /// Indices into [`SpanTree::spans`] of `span_index`'s children.
    pub fn children(&self, span_index: usize) -> &[usize] {
        &self.children[span_index]
    }

    /// End-to-end latency (root span duration).
    pub fn end_to_end_ns(&self) -> u64 {
        self.spans[0].duration_ns()
    }

    /// Self time of a span: its duration minus its children's durations.
    pub fn self_ns(&self, span_index: usize) -> u64 {
        let child_ns: u64 = self.children[span_index]
            .iter()
            .map(|&c| self.spans[c].duration_ns())
            .sum();
        self.spans[span_index]
            .duration_ns()
            .saturating_sub(child_ns)
    }

    /// Resolves the display label for a span, using sibling/parent context
    /// (`"FFT->XCOR"` for hops, `"FFT->XCOR fifo_wait"` for the matching
    /// backpressure wait).
    fn label_of(&self, span_index: usize, names: &[&'static str; 256]) -> String {
        let s = &self.spans[span_index];
        match s.kind {
            SpanKind::Frame => "frame".to_string(),
            SpanKind::PeService => s.name.to_string(),
            SpanKind::NocHop => {
                format!("{}->{}", s.name, names[s.to_node as usize])
            }
            SpanKind::FifoWait | SpanKind::DomainCross => {
                // Use the sibling NoC hop's edge when there is one so waits
                // read as "FFT->XCOR fifo_wait"; fall back to the PE name.
                let edge = s
                    .parent
                    .and_then(|p| {
                        let pi = self.spans.iter().position(|c| c.id == p)?;
                        self.children[pi]
                            .iter()
                            .map(|&c| &self.spans[c])
                            .find(|c| c.kind == SpanKind::NocHop)
                            .map(|hop| format!("{}->{}", hop.name, names[hop.to_node as usize]))
                    })
                    .unwrap_or_else(|| s.name.to_string());
                format!("{edge} {}", s.kind.label())
            }
            SpanKind::RadioFrame => "radio".to_string(),
            SpanKind::StimPulse => "stim".to_string(),
        }
    }

    /// Per-hop attribution of this trace's end-to-end latency, sorted by
    /// descending cost. Hop self-times tile the root interval, so the sum
    /// of all `ns` equals [`SpanTree::end_to_end_ns`] exactly (any residual
    /// root self-time is reported as a `Frame`/`"frame"` entry).
    pub fn attribution(&self) -> Vec<HopCost> {
        // Slot -> PE name map from the service spans in this trace.
        let mut names: [&'static str; 256] = ["?"; 256];
        for s in &self.spans {
            if s.kind == SpanKind::PeService && s.node != NO_NODE {
                names[s.node as usize] = s.name;
            }
        }
        let mut hops: Vec<HopCost> = Vec::new();
        for i in 0..self.spans.len() {
            let self_ns = self.self_ns(i);
            if self_ns == 0 {
                continue;
            }
            let kind = self.spans[i].kind;
            let label = self.label_of(i, &names);
            match hops.iter_mut().find(|h| h.kind == kind && h.label == label) {
                Some(h) => h.ns += self_ns,
                None => hops.push(HopCost {
                    kind,
                    label,
                    ns: self_ns,
                }),
            }
        }
        hops.sort_by(|a, b| b.ns.cmp(&a.ns).then_with(|| a.label.cmp(&b.label)));
        hops
    }

    /// The single most expensive hop, with its latency fraction.
    pub fn dominant(&self) -> Option<(HopCost, f64)> {
        let total = self.end_to_end_ns();
        self.attribution()
            .into_iter()
            .next()
            .map(|h| (h.clone(), h.fraction(total)))
    }

    /// Hand-rolled JSON object for post-mortems and tooling.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.spans.len() * 96);
        out.push_str(&format!(
            "{{\"trace\":{},\"root_frame\":{},\"end_to_end_ns\":{},\"spans\":[",
            self.spans[0].trace.0,
            self.root_frame,
            self.end_to_end_ns()
        ));
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&span_json(s));
        }
        out.push_str("],\"attribution\":[");
        let total = self.end_to_end_ns();
        for (i, h) in self.attribution().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"kind\":{},\"hop\":{},\"ns\":{},\"fraction\":{}}}",
                json::string(h.kind.label()),
                json::string(&h.label),
                h.ns,
                json::number(h.fraction(total)),
            ));
        }
        out.push_str("]}");
        out
    }
}

/// JSON for one span (shared with the post-mortem dump).
pub fn span_json(s: &SpanRecord) -> String {
    format!(
        "{{\"id\":{},\"parent\":{},\"kind\":{},\"node\":{},\"to_node\":{},\"name\":{},\"begin_ns\":{},\"end_ns\":{},\"tokens\":{},\"bytes\":{}}}",
        s.id.0,
        s.parent.map_or("null".to_string(), |p| p.0.to_string()),
        json::string(s.kind.label()),
        s.node,
        s.to_node,
        json::string(s.name),
        s.begin_ns,
        s.end_ns,
        s.tokens,
        s.bytes,
    )
}

/// Attribution aggregated across many traces.
#[derive(Debug, Clone, Default)]
pub struct CriticalPathSummary {
    /// Traces that assembled cleanly and contributed.
    pub traces: u64,
    /// Traces rejected by validation.
    pub malformed: u64,
    /// Sum of contributing traces' end-to-end latencies.
    pub total_ns: u64,
    /// Aggregated hop costs, sorted by descending time.
    pub hops: Vec<HopCost>,
}

impl CriticalPathSummary {
    /// Assembles every record and merges the per-trace attributions.
    pub fn from_traces(records: &[TraceRecord]) -> CriticalPathSummary {
        let mut out = CriticalPathSummary::default();
        for record in records {
            let Ok(tree) = SpanTree::assemble(record) else {
                out.malformed += 1;
                continue;
            };
            out.traces += 1;
            out.total_ns += tree.end_to_end_ns();
            for h in tree.attribution() {
                match out
                    .hops
                    .iter_mut()
                    .find(|o| o.kind == h.kind && o.label == h.label)
                {
                    Some(o) => o.ns += h.ns,
                    None => out.hops.push(h),
                }
            }
        }
        out.hops
            .sort_by(|a, b| b.ns.cmp(&a.ns).then_with(|| a.label.cmp(&b.label)));
        out
    }

    /// The aggregate dominant hop and its share of total traced latency.
    pub fn dominant(&self) -> Option<(&HopCost, f64)> {
        self.hops.first().map(|h| (h, h.fraction(self.total_ns)))
    }

    /// Total nanoseconds attributed to a given span kind.
    pub fn kind_ns(&self, kind: SpanKind) -> u64 {
        self.hops
            .iter()
            .filter(|h| h.kind == kind)
            .map(|h| h.ns)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracing::{DeliveryCosts, TraceId, Tracer};

    fn sample_record() -> TraceRecord {
        let tracer = Tracer::new(2, 0).with_linger_frames(10);
        tracer.sampler().force_next(1);
        let tag = tracer.begin_frame(0);
        tracer.delivery(
            tag,
            None,
            1,
            "FFT",
            4,
            8,
            DeliveryCosts {
                noc_ns: 0,
                wait_ns: 10,
                cross_ns: 0,
                service_ns: 40,
            },
        );
        tracer.delivery(
            tag,
            Some((1, "FFT")),
            2,
            "XCOR",
            2,
            4,
            DeliveryCosts {
                noc_ns: 90,
                wait_ns: 60,
                cross_ns: 0,
                service_ns: 100,
            },
        );
        tracer.radio_frame(tag, 3, 1, 4, 700);
        tracer.finalize_all();
        tracer.trees().pop().unwrap()
    }

    #[test]
    fn assembles_and_validates() {
        let tree = SpanTree::assemble(&sample_record()).unwrap();
        assert_eq!(tree.end_to_end_ns(), 50 + 250 + 700);
        assert!(!tree.children(0).is_empty());
    }

    #[test]
    fn attribution_tiles_the_root() {
        let tree = SpanTree::assemble(&sample_record()).unwrap();
        let total: u64 = tree.attribution().iter().map(|h| h.ns).sum();
        assert_eq!(total, tree.end_to_end_ns());
        let hop = tree
            .attribution()
            .into_iter()
            .find(|h| h.kind == SpanKind::NocHop)
            .unwrap();
        assert_eq!(hop.label, "FFT->XCOR");
        let wait = tree
            .attribution()
            .into_iter()
            .find(|h| h.kind == SpanKind::FifoWait && h.label.contains("XCOR"))
            .unwrap();
        assert_eq!(wait.label, "FFT->XCOR fifo_wait");
    }

    #[test]
    fn dominant_hop_is_radio_here() {
        let tree = SpanTree::assemble(&sample_record()).unwrap();
        let (hop, frac) = tree.dominant().unwrap();
        assert_eq!(hop.kind, SpanKind::RadioFrame);
        assert!(frac > 0.5);
    }

    #[test]
    fn aggregate_sums_across_traces() {
        let r = sample_record();
        let agg = CriticalPathSummary::from_traces(&[r.clone(), r.clone()]);
        assert_eq!(agg.traces, 2);
        assert_eq!(agg.total_ns, 2 * 1000);
        let hop_total: u64 = agg.hops.iter().map(|h| h.ns).sum();
        assert_eq!(hop_total, agg.total_ns);
        let (dom, frac) = agg.dominant().unwrap();
        assert_eq!(dom.kind, SpanKind::RadioFrame);
        assert!((frac - 0.7).abs() < 1e-9);
    }

    #[test]
    fn validation_rejects_orphans_and_bad_nesting() {
        let mut r = sample_record();
        r.spans[2].parent = Some(SpanId(9999));
        assert!(matches!(SpanTree::assemble(&r), Err(TreeError::Orphan(_))));

        let mut r = sample_record();
        r.spans[1].end_ns = r.spans[0].end_ns + 1;
        assert!(matches!(
            SpanTree::assemble(&r),
            Err(TreeError::NotNested { .. })
        ));

        let r = TraceRecord {
            id: TraceId(1),
            root_frame: 0,
            spans: Vec::new(),
            dropped_spans: 0,
        };
        assert!(matches!(SpanTree::assemble(&r), Err(TreeError::Empty)));
    }

    #[test]
    fn tree_json_is_valid() {
        let tree = SpanTree::assemble(&sample_record()).unwrap();
        crate::json::validate(&tree.to_json()).unwrap();
    }
}
