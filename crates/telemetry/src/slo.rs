//! SLO error budgets and multi-window burn-rate alerts.
//!
//! HALO's safety envelopes (power ≤ 15 mW, closed-loop deadline, FIFO
//! watermark, radio ≤ 46 Mbps) are hard limits the [`crate::health`]
//! watchdog trips on instantly. This module treats the same envelopes as
//! *SLOs*: each objective's SLI is the corresponding utilization series in
//! the [`crate::tsdb`] store (observed value ÷ live limit), a point is
//! *good* while utilization stays under a soft margin (default 0.8), and
//! the objective carries an error budget — the fraction of points allowed
//! to be bad (default 5%).
//!
//! Alerting follows the multi-window, multi-burn-rate recipe from the SRE
//! workbook: the *burn rate* over a window is the observed bad fraction
//! divided by the error budget (burn 1 = exactly consuming budget), and an
//! alert fires only when **both** a short and a long window exceed the
//! policy's threshold — the short window makes alerts reset quickly once
//! the condition clears, the long window keeps one bad sample from paging.
//! Two policies run per objective:
//!
//! | policy | windows (default) | burn threshold | severity  |
//! |--------|-------------------|----------------|-----------|
//! | fast   | 5 m + 1 h         | 14.4           | critical  |
//! | slow   | 1 h + 6 h         | 6.0            | warning   |
//!
//! Default windows are expressed in sample frames at 30 kHz; tests and
//! short sessions shrink them via [`SloConfig`]'s public fields. A firing
//! transition raises through [`crate::health::HealthMonitor::raise`] as an
//! [`crate::health::AlertKind::SloBurnRate`] alert, so fast-burn firings
//! latch flight-recorder post-mortems and escalate causal tracing exactly
//! like a hard envelope violation — but minutes earlier.

use crate::sink::Severity;
use crate::tsdb::{SeriesKind, Tsdb};

/// Number of SLO objectives (one per safety envelope).
pub const OBJECTIVE_COUNT: usize = 4;

/// Burn-rate policies evaluated per objective.
pub const POLICY_COUNT: usize = 2;

/// One service-level objective: a name and the utilization series that is
/// its SLI.
#[derive(Debug, Clone, Copy)]
pub struct SloObjective {
    pub name: &'static str,
    pub series: SeriesKind,
}

/// The four envelope-backed objectives, in evaluation order.
pub const OBJECTIVES: [SloObjective; OBJECTIVE_COUNT] = [
    SloObjective {
        name: "power",
        series: SeriesKind::PowerUtilization,
    },
    SloObjective {
        name: "deadline",
        series: SeriesKind::DeadlineUtilization,
    },
    SloObjective {
        name: "fifo",
        series: SeriesKind::FifoUtilization,
    },
    SloObjective {
        name: "radio",
        series: SeriesKind::RadioUtilization,
    },
];

/// One multi-window burn-rate policy: fire when the burn rate over *both*
/// the short and the long lookback exceeds `threshold`.
#[derive(Debug, Clone, Copy)]
pub struct BurnRatePolicy {
    /// Short lookback, sample frames.
    pub short_frames: u64,
    /// Long lookback, sample frames.
    pub long_frames: u64,
    /// Minimum burn rate (bad fraction ÷ error budget) in both windows.
    pub threshold: f64,
    /// Severity of the raised alert.
    pub severity: Severity,
}

/// Burn-rate engine configuration.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Soft utilization margin: a point is *bad* above this. 0.8 leaves a
    /// 20% guard band under the hard envelope.
    pub margin: f64,
    /// Error budget: allowed bad fraction (0.05 = 95% of points good).
    pub error_budget: f64,
    /// Minimum points in a window before its burn rate is meaningful;
    /// windows with fewer points never fire.
    pub min_points: u64,
    /// Fast-burn policy (page-now): short windows, high threshold.
    pub fast: BurnRatePolicy,
    /// Slow-burn policy (degrading): long windows, lower threshold.
    pub slow: BurnRatePolicy,
}

impl Default for SloConfig {
    fn default() -> Self {
        // 5 m / 1 h / 6 h of biological time at 30 kHz.
        const MINUTE: u64 = 30_000 * 60;
        Self {
            margin: 0.8,
            error_budget: 0.05,
            min_points: 4,
            fast: BurnRatePolicy {
                short_frames: 5 * MINUTE,
                long_frames: 60 * MINUTE,
                threshold: 14.4,
                severity: Severity::Critical,
            },
            slow: BurnRatePolicy {
                short_frames: 60 * MINUTE,
                long_frames: 360 * MINUTE,
                threshold: 6.0,
                severity: Severity::Warning,
            },
        }
    }
}

impl SloConfig {
    /// The default policy table rescaled so the fast-burn long window is
    /// `horizon_frames` (everything else keeps its default ratio to it:
    /// fast short = 1/12, slow short = 1, slow long = 6×). Lets tests and
    /// short sessions exercise the same shape at any timescale.
    pub fn scaled_to(horizon_frames: u64) -> Self {
        let hour = horizon_frames.max(12);
        Self {
            fast: BurnRatePolicy {
                short_frames: hour / 12,
                long_frames: hour,
                ..SloConfig::default().fast
            },
            slow: BurnRatePolicy {
                short_frames: hour,
                long_frames: hour * 6,
                ..SloConfig::default().slow
            },
            ..SloConfig::default()
        }
    }
}

/// A firing transition returned by [`SloEngine::poll`]: objective `name`
/// entered the firing state under the fast or slow policy.
#[derive(Debug, Clone, Copy)]
pub struct BurnRateFiring {
    pub objective: &'static str,
    /// `true` for the fast-burn policy, `false` for slow-burn.
    pub fast: bool,
    /// The constraining burn rate (minimum of the two windows).
    pub burn_rate: f64,
    pub threshold: f64,
    pub severity: Severity,
}

/// Per-objective engine state, indexed `[fast, slow]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ObjectiveState {
    /// Whether each policy is currently firing.
    pub firing: [bool; POLICY_COUNT],
    /// Last constraining burn rate per policy (0 until enough points).
    pub burn_rate: [f64; POLICY_COUNT],
    /// Total firing transitions per policy.
    pub fired: [u64; POLICY_COUNT],
}

/// Point-in-time digest of the engine, for expositions and triage.
#[derive(Debug, Clone)]
pub struct SloStatus {
    pub margin: f64,
    pub error_budget: f64,
    /// `(objective name, state)` in [`OBJECTIVES`] order.
    pub objectives: Vec<(&'static str, ObjectiveState)>,
}

impl SloStatus {
    /// Worst current burn rate across all objectives and policies.
    pub fn max_burn_rate(&self) -> f64 {
        self.objectives
            .iter()
            .flat_map(|(_, s)| s.burn_rate)
            .fold(0.0, f64::max)
    }

    /// Total firing transitions across all objectives and policies.
    pub fn total_fired(&self) -> u64 {
        self.objectives
            .iter()
            .flat_map(|(_, s)| s.fired)
            .sum::<u64>()
    }
}

/// The burn-rate engine. Holds only per-objective firing state — the
/// series themselves live in the [`Tsdb`] passed to [`SloEngine::poll`].
#[derive(Debug)]
pub struct SloEngine {
    config: SloConfig,
    states: [ObjectiveState; OBJECTIVE_COUNT],
}

impl SloEngine {
    pub fn new(config: SloConfig) -> Self {
        Self {
            config,
            states: [ObjectiveState::default(); OBJECTIVE_COUNT],
        }
    }

    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// Burn rate of `series` over the `window_frames` ending at `now`, or
    /// `None` with fewer than `min_points` points in the window.
    fn burn_rate(
        &self,
        tsdb: &Tsdb,
        series: SeriesKind,
        now: u64,
        window_frames: u64,
    ) -> Option<f64> {
        let cutoff = now.saturating_sub(window_frames);
        let (total, bad) = tsdb
            .series(series)
            .window_counts(cutoff, self.config.margin);
        if total < self.config.min_points {
            return None;
        }
        Some(bad as f64 / total as f64 / self.config.error_budget)
    }

    /// Evaluate every objective against both policies at frame `now`,
    /// returning the firing *transitions* (not-firing → firing). Cleared
    /// conditions reset silently; re-entering fires again.
    pub fn poll(&mut self, tsdb: &Tsdb, now: u64) -> Vec<BurnRateFiring> {
        let mut out = Vec::new();
        for (i, objective) in OBJECTIVES.iter().enumerate() {
            let policies = [self.config.fast, self.config.slow];
            for (p, policy) in policies.iter().enumerate() {
                let short = self.burn_rate(tsdb, objective.series, now, policy.short_frames);
                let long = self.burn_rate(tsdb, objective.series, now, policy.long_frames);
                let (Some(short), Some(long)) = (short, long) else {
                    self.states[i].firing[p] = false;
                    continue;
                };
                let burn = short.min(long);
                self.states[i].burn_rate[p] = burn;
                let firing = burn >= policy.threshold;
                if firing && !self.states[i].firing[p] {
                    self.states[i].fired[p] += 1;
                    out.push(BurnRateFiring {
                        objective: objective.name,
                        fast: p == 0,
                        burn_rate: burn,
                        threshold: policy.threshold,
                        severity: policy.severity,
                    });
                }
                self.states[i].firing[p] = firing;
            }
        }
        out
    }

    pub fn status(&self) -> SloStatus {
        SloStatus {
            margin: self.config.margin,
            error_budget: self.config.error_budget,
            objectives: OBJECTIVES
                .iter()
                .zip(self.states.iter())
                .map(|(o, s)| (o.name, *s))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tsdb::TsdbConfig;

    fn config() -> SloConfig {
        SloConfig {
            min_points: 2,
            fast: BurnRatePolicy {
                short_frames: 20,
                long_frames: 100,
                threshold: 14.4,
                severity: Severity::Critical,
            },
            slow: BurnRatePolicy {
                short_frames: 100,
                long_frames: 600,
                threshold: 6.0,
                severity: Severity::Warning,
            },
            ..SloConfig::default()
        }
    }

    fn tsdb() -> Tsdb {
        Tsdb::new(&TsdbConfig {
            raw_capacity: 1024,
            ..TsdbConfig::default()
        })
    }

    #[test]
    fn healthy_utilization_never_fires() {
        let mut db = tsdb();
        let mut engine = SloEngine::new(config());
        for i in 0..200u64 {
            db.record(SeriesKind::PowerUtilization, i * 5, 0.5);
            assert!(engine.poll(&db, i * 5).is_empty());
        }
        let status = engine.status();
        assert_eq!(status.total_fired(), 0);
        assert!(status.max_burn_rate() < 1e-12);
    }

    #[test]
    fn sustained_violation_fires_slow_then_not_again_while_firing() {
        let mut db = tsdb();
        let mut engine = SloEngine::new(config());
        let mut firings = Vec::new();
        // 0.9 utilization on every point: bad fraction 1.0, burn 20 —
        // above both thresholds once the long windows have points.
        for i in 0..200u64 {
            db.record(SeriesKind::PowerUtilization, i * 5, 0.9);
            firings.extend(engine.poll(&db, i * 5));
        }
        let power: Vec<_> = firings.iter().filter(|f| f.objective == "power").collect();
        assert_eq!(power.len(), 2, "one fast + one slow transition: {power:?}");
        assert!(power.iter().any(|f| f.fast));
        assert!(power.iter().any(|f| !f.fast));
        for f in &power {
            assert!(f.burn_rate >= f.threshold);
        }
        // Other objectives have no points and must not fire.
        assert_eq!(firings.len(), 2);
    }

    #[test]
    fn short_window_resets_before_long() {
        let mut db = tsdb();
        let mut engine = SloEngine::new(config());
        for i in 0..100u64 {
            db.record(SeriesKind::PowerUtilization, i * 5, 0.9);
            engine.poll(&db, i * 5);
        }
        assert!(engine.status().objectives[0].1.firing[0]);
        // Recovery: good points fill the short window; the long window
        // still holds bad history, but both must exceed to keep firing.
        for i in 100..140u64 {
            db.record(SeriesKind::PowerUtilization, i * 5, 0.1);
            engine.poll(&db, i * 5);
        }
        let state = engine.status().objectives[0].1;
        assert!(!state.firing[0], "fast policy must clear after recovery");
        assert_eq!(state.fired[0], 1);
    }

    #[test]
    fn refires_after_clearing() {
        let mut db = tsdb();
        let mut engine = SloEngine::new(config());
        let mut transitions = 0;
        for phase in 0..2 {
            let base = phase * 300;
            for i in 0..60u64 {
                db.record(SeriesKind::PowerUtilization, (base + i) * 5, 0.9);
                transitions += engine
                    .poll(&db, (base + i) * 5)
                    .iter()
                    .filter(|f| f.fast)
                    .count();
            }
            for i in 60..130u64 {
                db.record(SeriesKind::PowerUtilization, (base + i) * 5, 0.1);
                engine.poll(&db, (base + i) * 5);
            }
        }
        assert_eq!(transitions, 2, "each burn episode fires once");
    }

    #[test]
    fn min_points_gates_sparse_series() {
        let mut db = tsdb();
        let mut engine = SloEngine::new(SloConfig {
            min_points: 50,
            ..config()
        });
        for i in 0..30u64 {
            db.record(SeriesKind::PowerUtilization, i, 0.99);
            assert!(engine.poll(&db, i).is_empty());
        }
    }

    #[test]
    fn scaled_config_keeps_policy_ratios() {
        let c = SloConfig::scaled_to(1200);
        assert_eq!(c.fast.short_frames, 100);
        assert_eq!(c.fast.long_frames, 1200);
        assert_eq!(c.slow.short_frames, 1200);
        assert_eq!(c.slow.long_frames, 7200);
        assert_eq!(c.fast.threshold, SloConfig::default().fast.threshold);
    }
}
