//! Plain-text summary table for terminals and logs.

use crate::health::DEVICE_BUDGET_MW;
use crate::recorder::{Recorder, RecorderSnapshot};
use crate::sink::EventKind;
use crate::span_tree::CriticalPathSummary;
use crate::tracing::Tracer;

/// Render a human-readable summary of `recorder`'s counters, including a
/// power-vs-budget line reconstructed from the retained `PowerSample`
/// events (each sampling window's domain samples share a frame stamp).
pub fn render(recorder: &Recorder) -> String {
    let mut worst: Option<(u64, f64)> = None;
    let mut window: Option<(u64, f64)> = None;
    for event in recorder.events() {
        if let EventKind::PowerSample { milliwatts, .. } = event.kind {
            match &mut window {
                Some((frame, mw)) if *frame == event.frame => *mw += milliwatts,
                _ => {
                    if let Some(done) = window.take() {
                        if worst.is_none_or(|(_, w)| done.1 > w) {
                            worst = Some(done);
                        }
                    }
                    window = Some((event.frame, milliwatts));
                }
            }
        }
    }
    if let Some(done) = window {
        if worst.is_none_or(|(_, w)| done.1 > w) {
            worst = Some(done);
        }
    }
    render_parts(&recorder.snapshot(), recorder.sample_rate_hz(), worst)
}

/// Render a snapshot directly (useful when the recorder is gone). The
/// power-vs-budget line needs the event timeline, so it only appears in
/// [`render`].
pub fn render_snapshot(snap: &RecorderSnapshot, sample_rate_hz: u32) -> String {
    render_parts(snap, sample_rate_hz, None)
}

fn render_parts(
    snap: &RecorderSnapshot,
    sample_rate_hz: u32,
    worst_power: Option<(u64, f64)>,
) -> String {
    let mut out = String::new();
    let duration_s = snap.frames as f64 / sample_rate_hz.max(1) as f64;
    out.push_str(&format!(
        "telemetry summary: {} frames ({:.3} s at {} Hz)\n",
        snap.frames, duration_s, sample_rate_hz
    ));

    let active: Vec<_> = snap.pes.iter().filter(|p| p.is_active()).collect();
    if !active.is_empty() {
        out.push_str(&format!(
            "{:<4} {:<12} {:>12} {:>12} {:>10} {:>10} {:>9} {:>9}\n",
            "slot", "pe", "busy_cyc", "stall_cyc", "bytes_in", "bytes_out", "fifo_hwm", "fifo_peak"
        ));
        for pe in &active {
            out.push_str(&format!(
                "{:<4} {:<12} {:>12} {:>12} {:>10} {:>10} {:>9} {:>9}\n",
                pe.slot,
                pe.name,
                pe.busy_cycles,
                pe.stall_cycles,
                pe.bytes_in,
                pe.bytes_out,
                pe.fifo_high_water,
                pe.fifo_peak_depth
            ));
        }
    }

    if !snap.pipelines.is_empty() {
        out.push_str("frame latency (us):\n");
        out.push_str(&format!(
            "  {:<16} {:>8} {:>9} {:>9} {:>9} {:>9}\n",
            "pipeline", "samples", "p50", "p90", "p99", "max"
        ));
        let us = |nanos: u64| nanos as f64 / 1000.0;
        for p in &snap.pipelines {
            out.push_str(&format!(
                "  {:<16} {:>8} {:>9.1} {:>9.1} {:>9.1} {:>9.1}\n",
                p.label,
                p.latency.count,
                us(p.latency.p50),
                us(p.latency.p90),
                us(p.latency.p99),
                us(p.latency.max)
            ));
        }
    }

    if !snap.links.is_empty() {
        out.push_str("noc links:\n");
        for link in &snap.links {
            out.push_str(&format!(
                "  {:>2} -> {:<2} {:>10} bytes {:>8} transfers\n",
                link.from, link.to, link.bytes, link.transfers
            ));
        }
        out.push_str(&format!(
            "  total {} bytes, {} transfers\n",
            snap.noc_bytes(),
            snap.noc_transfers()
        ));
    }

    out.push_str(&format!(
        "controller: {} cycles, {} instructions, {} switch programs ({} words), {} stim pulses\n",
        snap.controller_cycles,
        snap.controller_instructions,
        snap.switch_programs,
        snap.switch_words,
        snap.stim_pulses
    ));
    out.push_str(&format!("radio: {} bytes\n", snap.radio_bytes));
    if let Some((frame, mw)) = worst_power {
        let headroom = (DEVICE_BUDGET_MW - mw) / DEVICE_BUDGET_MW * 100.0;
        out.push_str(&format!(
            "power: worst window {mw:.3} mW at frame {frame} vs {DEVICE_BUDGET_MW} mW \
             budget ({headroom:.1}% headroom)\n",
        ));
    }
    if snap.dropped_events > 0 {
        out.push_str(&format!(
            "warning: {} events dropped (ring full)\n",
            snap.dropped_events
        ));
    }
    out
}

/// Render a continuous-telemetry section: per-series retention and latest
/// values, SLO burn-rate state, and anomaly-detection counts — the
/// terminal-friendly companion to [`crate::expose::render_continuous`].
pub fn render_continuous(status: &crate::tsdb::ContinuousStatus) -> String {
    let mut out = String::new();
    out.push_str("continuous telemetry:\n");
    out.push_str(&format!(
        "  {:<26} {:>10} {:>9} {:>14}\n",
        "series", "points", "retained", "latest"
    ));
    for (kind, total, retained, latest) in &status.series {
        if *total == 0 {
            continue;
        }
        let latest = latest
            .map(|p| format!("{:.4} {}", p.value, kind.unit()))
            .unwrap_or_else(|| "-".to_string());
        out.push_str(&format!(
            "  {:<26} {:>10} {:>9} {:>14}\n",
            kind.name(),
            total,
            retained,
            latest
        ));
    }
    out.push_str(&format!(
        "slo: error budget {:.1}% of points past {:.0}% utilization\n",
        status.slo.error_budget * 100.0,
        status.slo.margin * 100.0
    ));
    for (name, state) in &status.slo.objectives {
        for (p, policy) in ["fast", "slow"].iter().enumerate() {
            if state.burn_rate[p] == 0.0 && state.fired[p] == 0 {
                continue;
            }
            out.push_str(&format!(
                "  {:<10} {:<5} burn {:>7.2}x{}{}\n",
                name,
                policy,
                state.burn_rate[p],
                if state.firing[p] { "  FIRING" } else { "" },
                if state.fired[p] > 0 {
                    format!("  ({} firings)", state.fired[p])
                } else {
                    String::new()
                }
            ));
        }
    }
    if status.anomalies_total > 0 {
        out.push_str(&format!(
            "anomalies: {} flagged ({} dropped past retention)\n",
            status.anomalies_total, status.anomalies_dropped
        ));
        for d in status.detections.iter().rev().take(5) {
            out.push_str(&format!(
                "  frame {:>10} {:<26} {:<5} score {:.2} at {:.4}\n",
                d.frame,
                d.series.name(),
                d.signal.label(),
                d.score,
                d.value
            ));
        }
    } else {
        out.push_str("anomalies: none\n");
    }
    out
}

/// Render a critical-path attribution section for `tracer`'s completed
/// traces: where the sampled frames' end-to-end latency actually went,
/// aggregated across every assembled span tree.
pub fn render_tracing(tracer: &Tracer) -> String {
    let stats = tracer.stats();
    let trees = tracer.trees();
    let agg = CriticalPathSummary::from_traces(&trees);
    let mut out = String::new();
    out.push_str(&format!(
        "causal traces: {} sampled, {} completed, {} spans dropped\n",
        stats.sampled, stats.completed, stats.dropped_spans
    ));
    if agg.malformed > 0 {
        out.push_str(&format!(
            "warning: {} malformed trace trees skipped\n",
            agg.malformed
        ));
    }
    if agg.traces == 0 || agg.total_ns == 0 {
        return out;
    }
    out.push_str(&format!(
        "critical path over {} traces ({:.1} us total):\n",
        agg.traces,
        agg.total_ns as f64 / 1000.0
    ));
    for hop in agg.hops.iter().take(10) {
        out.push_str(&format!(
            "  {:>5.1}% {:<12} {} ({:.1} us)\n",
            hop.fraction(agg.total_ns) * 100.0,
            hop.kind.label(),
            hop.label,
            hop.ns as f64 / 1000.0
        ));
    }
    if let Some((hop, fraction)) = agg.dominant() {
        out.push_str(&format!(
            "dominant hop: {} ({}) at {:.0}% of traced latency\n",
            hop.label,
            hop.kind.label(),
            fraction * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{Counter, Scope, TelemetrySink};

    #[test]
    fn summary_lists_active_pes_and_links() {
        let rec = Recorder::new(16).with_sample_rate_hz(30_000);
        rec.declare_pe(0, "LZ");
        rec.add(Scope::Pe(0), Counter::BusyCycles, 42);
        rec.add(Scope::Link { from: 0, to: 1 }, Counter::BytesOut, 64);
        rec.add(Scope::Link { from: 0, to: 1 }, Counter::TokensOut, 1);
        rec.add(Scope::System, Counter::Frames, 30_000);
        let text = render(&rec);
        assert!(text.contains("LZ"));
        assert!(text.contains("42"));
        assert!(text.contains("0 -> 1"));
        assert!(text.contains("1.000 s"));
    }

    #[test]
    fn summary_reports_power_headroom_and_latency_table() {
        use crate::sink::{Event, EventKind};
        let rec = Recorder::new(64).with_sample_rate_hz(30_000);
        // Two power windows: 6 mW then 9 mW (worst) against the 15 mW budget.
        for (frame, mws) in [(0u64, [2.0, 4.0]), (300, [4.0, 5.0])] {
            for (slot, mw) in mws.iter().enumerate() {
                rec.event(Event {
                    frame,
                    kind: EventKind::PowerSample {
                        slot: slot as u8,
                        name: "PE",
                        milliwatts: *mw,
                    },
                });
            }
        }
        rec.event(Event {
            frame: 0,
            kind: EventKind::Marker { name: "seizure" },
        });
        for nanos in [10_000u64, 20_000, 30_000] {
            rec.latency(Scope::System, nanos);
        }
        let text = render(&rec);
        assert!(
            text.contains("worst window 9.000 mW at frame 300"),
            "{text}"
        );
        assert!(text.contains("40.0% headroom"), "{text}");
        assert!(text.contains("frame latency (us):"), "{text}");
        assert!(text.contains("seizure"), "{text}");
        // The snapshot-only renderer has the latency table but no power
        // line (it needs the event timeline).
        let snap_text = render_snapshot(&rec.snapshot(), 30_000);
        assert!(snap_text.contains("frame latency (us):"));
        assert!(!snap_text.contains("worst window"));
    }

    #[test]
    fn tracing_summary_reports_attribution() {
        use crate::tracing::DeliveryCosts;
        let tracer = Tracer::new(7, 0);
        tracer.sampler().force_next(1);
        let tag = tracer.begin_frame(0);
        assert_ne!(tag, 0);
        let costs = DeliveryCosts {
            noc_ns: 0,
            wait_ns: 600,
            cross_ns: 0,
            service_ns: 400,
        };
        assert!(tracer.delivery(tag, None, 2, "FFT", 4, 8, costs));
        tracer.finalize_all();
        let text = render_tracing(&tracer);
        assert!(
            text.contains("causal traces: 1 sampled, 1 completed"),
            "{text}"
        );
        assert!(
            text.contains("critical path over 1 traces (1.0 us total):"),
            "{text}"
        );
        assert!(text.contains("60.0% fifo_wait"), "{text}");
        assert!(text.contains("dominant hop:"), "{text}");
    }

    #[test]
    fn continuous_summary_lists_series_and_slo_state() {
        use crate::health::{HealthConfig, HealthMonitor};
        use crate::sink::{Event, EventKind};
        use crate::tsdb::{ContinuousConfig, ContinuousTelemetry};
        use std::sync::Arc;
        let mon = Arc::new(HealthMonitor::new(
            Arc::new(Recorder::new(64)),
            HealthConfig::default(),
        ));
        let ct = ContinuousTelemetry::new(mon, ContinuousConfig::default());
        ct.event(Event {
            frame: 0,
            kind: EventKind::PowerSample {
                slot: 0,
                name: "LZ",
                milliwatts: 7.5,
            },
        });
        ct.flush();
        let text = render_continuous(&ct.status());
        assert!(text.contains("continuous telemetry:"), "{text}");
        assert!(text.contains("power_mw"), "{text}");
        assert!(text.contains("7.5000 mW"), "{text}");
        assert!(text.contains("anomalies: none"), "{text}");
        // Untouched series stay out of the table.
        assert!(!text.contains("radio_bps"), "{text}");
    }

    #[test]
    fn summary_flags_dropped_events() {
        let rec = Recorder::new(0);
        rec.event(crate::sink::Event {
            frame: 0,
            kind: crate::sink::EventKind::Marker { name: "x" },
        });
        let text = render(&rec);
        assert!(text.contains("1 events dropped"));
    }
}
