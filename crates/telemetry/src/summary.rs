//! Plain-text summary table for terminals and logs.

use crate::recorder::{Recorder, RecorderSnapshot};

/// Render a human-readable summary of `recorder`'s counters.
pub fn render(recorder: &Recorder) -> String {
    render_snapshot(&recorder.snapshot(), recorder.sample_rate_hz())
}

/// Render a snapshot directly (useful when the recorder is gone).
pub fn render_snapshot(snap: &RecorderSnapshot, sample_rate_hz: u32) -> String {
    let mut out = String::new();
    let duration_s = snap.frames as f64 / sample_rate_hz.max(1) as f64;
    out.push_str(&format!(
        "telemetry summary: {} frames ({:.3} s at {} Hz)\n",
        snap.frames, duration_s, sample_rate_hz
    ));

    let active: Vec<_> = snap.pes.iter().filter(|p| p.is_active()).collect();
    if !active.is_empty() {
        out.push_str(&format!(
            "{:<4} {:<12} {:>12} {:>12} {:>10} {:>10} {:>9}\n",
            "slot", "pe", "busy_cyc", "stall_cyc", "bytes_in", "bytes_out", "fifo_hwm"
        ));
        for pe in &active {
            out.push_str(&format!(
                "{:<4} {:<12} {:>12} {:>12} {:>10} {:>10} {:>9}\n",
                pe.slot,
                pe.name,
                pe.busy_cycles,
                pe.stall_cycles,
                pe.bytes_in,
                pe.bytes_out,
                pe.fifo_high_water
            ));
        }
    }

    if !snap.links.is_empty() {
        out.push_str("noc links:\n");
        for link in &snap.links {
            out.push_str(&format!(
                "  {:>2} -> {:<2} {:>10} bytes {:>8} transfers\n",
                link.from, link.to, link.bytes, link.transfers
            ));
        }
        out.push_str(&format!(
            "  total {} bytes, {} transfers\n",
            snap.noc_bytes(),
            snap.noc_transfers()
        ));
    }

    out.push_str(&format!(
        "controller: {} cycles, {} instructions, {} switch programs ({} words), {} stim pulses\n",
        snap.controller_cycles,
        snap.controller_instructions,
        snap.switch_programs,
        snap.switch_words,
        snap.stim_pulses
    ));
    out.push_str(&format!("radio: {} bytes\n", snap.radio_bytes));
    if snap.dropped_events > 0 {
        out.push_str(&format!(
            "warning: {} events dropped (ring full)\n",
            snap.dropped_events
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{Counter, Scope, TelemetrySink};

    #[test]
    fn summary_lists_active_pes_and_links() {
        let rec = Recorder::new(16).with_sample_rate_hz(30_000);
        rec.declare_pe(0, "LZ");
        rec.add(Scope::Pe(0), Counter::BusyCycles, 42);
        rec.add(Scope::Link { from: 0, to: 1 }, Counter::BytesOut, 64);
        rec.add(Scope::Link { from: 0, to: 1 }, Counter::TokensOut, 1);
        rec.add(Scope::System, Counter::Frames, 30_000);
        let text = render(&rec);
        assert!(text.contains("LZ"));
        assert!(text.contains("42"));
        assert!(text.contains("0 -> 1"));
        assert!(text.contains("1.000 s"));
    }

    #[test]
    fn summary_flags_dropped_events() {
        let rec = Recorder::new(0);
        rec.event(crate::sink::Event {
            frame: 0,
            kind: crate::sink::EventKind::Marker { name: "x" },
        });
        let text = render(&rec);
        assert!(text.contains("1 events dropped"));
    }
}
