//! Embedded time-series store with multi-resolution downsampling.
//!
//! Every surface the crate had before this module is a point-in-time
//! snapshot: `expose` renders the counters *now*, the [`HealthMonitor`]
//! judges the window *now*. A fleet serving implants for years needs
//! history — error budgets burn over minutes, power creep develops over
//! hours — so this module retains it, under implant-grade constraints:
//!
//! * **Allocation-bounded.** Every series is a fixed-capacity ring of raw
//!   points plus two fixed-capacity rings of downsampled buckets
//!   (raw → ~10 s → ~1 m by default). Nothing grows after construction;
//!   old data is evicted, never reallocated.
//! * **Window-granular.** The [`ContinuousTelemetry`] sink only reacts to
//!   events that already arrive at sampling-window cadence (power windows,
//!   FIFO windows, radio windows, closed-loop completions), so the hot
//!   per-frame path is untouched and the attached overhead stays ≤2%
//!   (proven by the `continuous_telemetry` A/B section in
//!   `BENCH_runtime.json`).
//! * **Deterministic.** Identical event streams produce byte-identical
//!   [`Tsdb::snapshot_json`] dumps at any thread count — series are fixed
//!   at construction and iterated in declaration order, and the JSON is
//!   hand-rolled (see [`crate::json`]).
//!
//! Alongside each absolute series (`power_mw`, `fifo_depth`, ...) the sink
//! records a *utilization* series — observed value divided by the live
//! envelope limit — so the [`crate::slo`] engine can treat every envelope
//! as the same dimensionless SLI, and a budget change (brownout) moves the
//! utilization series even when the raw draw is constant.

use std::fmt;
use std::sync::{Arc, Mutex};

use crate::anomaly::{AnomalyDetector, Detection};
use crate::health::{AlertKind, HealthAlert, HealthMonitor};
use crate::json;
use crate::sink::{Counter, Event, EventKind, Scope, TelemetrySink};
use crate::slo::{SloEngine, SloStatus};

/// Number of distinct series a [`Tsdb`] holds (one per [`SeriesKind`]).
pub const SERIES_COUNT: usize = 9;

/// Which quantity a series tracks. The set is fixed at compile time so a
/// [`Tsdb`] allocates every ring up front and snapshots iterate in a
/// stable order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SeriesKind {
    /// Summed domain power per sampling window, milliwatts.
    PowerMw,
    /// Window power divided by the live power budget.
    PowerUtilization,
    /// Closed-loop detection→stimulation latency, sample frames.
    ClosedLoopLatencyFrames,
    /// Closed-loop latency divided by the deadline.
    DeadlineUtilization,
    /// End-of-window FIFO occupancy, tokens.
    FifoDepth,
    /// FIFO occupancy divided by the backpressure watermark.
    FifoUtilization,
    /// Radio throughput per window, bits per second.
    RadioBps,
    /// Radio throughput divided by the ceiling.
    RadioUtilization,
    /// End-to-end frame latency (window maximum), nanoseconds.
    FrameLatencyNs,
}

impl SeriesKind {
    /// Every series kind, in snapshot order.
    pub const ALL: [SeriesKind; SERIES_COUNT] = [
        SeriesKind::PowerMw,
        SeriesKind::PowerUtilization,
        SeriesKind::ClosedLoopLatencyFrames,
        SeriesKind::DeadlineUtilization,
        SeriesKind::FifoDepth,
        SeriesKind::FifoUtilization,
        SeriesKind::RadioBps,
        SeriesKind::RadioUtilization,
        SeriesKind::FrameLatencyNs,
    ];

    /// Stable snake_case name used in snapshots and expositions.
    pub fn name(&self) -> &'static str {
        match self {
            SeriesKind::PowerMw => "power_mw",
            SeriesKind::PowerUtilization => "power_utilization",
            SeriesKind::ClosedLoopLatencyFrames => "closed_loop_latency_frames",
            SeriesKind::DeadlineUtilization => "deadline_utilization",
            SeriesKind::FifoDepth => "fifo_depth",
            SeriesKind::FifoUtilization => "fifo_utilization",
            SeriesKind::RadioBps => "radio_bps",
            SeriesKind::RadioUtilization => "radio_utilization",
            SeriesKind::FrameLatencyNs => "frame_latency_ns",
        }
    }

    /// Unit label carried by snapshots.
    pub fn unit(&self) -> &'static str {
        match self {
            SeriesKind::PowerMw => "mW",
            SeriesKind::ClosedLoopLatencyFrames => "frames",
            SeriesKind::FifoDepth => "tokens",
            SeriesKind::RadioBps => "bits_per_s",
            SeriesKind::FrameLatencyNs => "ns",
            _ => "ratio",
        }
    }

    /// Dense index into per-series arrays.
    pub fn index(&self) -> usize {
        match self {
            SeriesKind::PowerMw => 0,
            SeriesKind::PowerUtilization => 1,
            SeriesKind::ClosedLoopLatencyFrames => 2,
            SeriesKind::DeadlineUtilization => 3,
            SeriesKind::FifoDepth => 4,
            SeriesKind::FifoUtilization => 5,
            SeriesKind::RadioBps => 6,
            SeriesKind::RadioUtilization => 7,
            SeriesKind::FrameLatencyNs => 8,
        }
    }
}

/// One raw sample: a value timestamped in sample frames.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    pub frame: u64,
    pub value: f64,
}

/// One downsampled bucket: min/max/sum/count of the raw points whose frame
/// falls in `[start_frame, start_frame + bucket_frames)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    pub start_frame: u64,
    pub min: f64,
    pub max: f64,
    pub sum: f64,
    pub count: u64,
}

impl Bucket {
    fn seed(start_frame: u64, value: f64) -> Self {
        Self {
            start_frame,
            min: value,
            max: value,
            sum: value,
            count: 1,
        }
    }

    fn fold(&mut self, value: f64) {
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += value;
        self.count += 1;
    }

    /// Mean of the bucket's points (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One downsampling resolution: a bounded ring of sealed buckets plus the
/// bucket currently being accumulated.
#[derive(Debug, Clone)]
struct TierState {
    bucket_frames: u64,
    buckets: Vec<Bucket>,
    next: usize,
    sealed: u64,
    evicted: u64,
    open: Option<Bucket>,
}

impl TierState {
    fn new(bucket_frames: u64) -> Self {
        Self {
            bucket_frames: bucket_frames.max(1),
            buckets: Vec::new(),
            next: 0,
            sealed: 0,
            evicted: 0,
            open: None,
        }
    }

    fn record(&mut self, frame: u64, value: f64, capacity: usize) {
        let start = frame - frame % self.bucket_frames;
        match &mut self.open {
            Some(open) if open.start_frame == start => open.fold(value),
            Some(_) => {
                let sealed = self.open.take().unwrap();
                self.seal(sealed, capacity);
                self.open = Some(Bucket::seed(start, value));
            }
            None => self.open = Some(Bucket::seed(start, value)),
        }
    }

    fn seal(&mut self, bucket: Bucket, capacity: usize) {
        if capacity == 0 {
            self.evicted += 1;
            self.sealed += 1;
            return;
        }
        if self.buckets.len() < capacity {
            self.buckets.push(bucket);
        } else {
            self.buckets[self.next] = bucket;
            self.evicted += 1;
        }
        self.next = (self.next + 1) % capacity;
        self.sealed += 1;
    }

    /// Sealed buckets oldest-first, then the open bucket if any.
    fn ordered(&self) -> Vec<Bucket> {
        let mut out = Vec::with_capacity(self.buckets.len() + 1);
        if self.evicted == 0 || self.buckets.is_empty() {
            out.extend_from_slice(&self.buckets);
        } else {
            out.extend_from_slice(&self.buckets[self.next..]);
            out.extend_from_slice(&self.buckets[..self.next]);
        }
        out.extend(self.open);
        out
    }
}

/// One bounded series: a raw-point ring plus its downsampling tiers.
#[derive(Debug, Clone)]
pub struct Series {
    raw: Vec<Point>,
    next: usize,
    total: u64,
    tiers: [TierState; 2],
    capacity: usize,
    bucket_capacity: usize,
}

impl Series {
    fn new(config: &TsdbConfig) -> Self {
        Self {
            raw: Vec::new(),
            next: 0,
            total: 0,
            tiers: [
                TierState::new(config.bucket_frames[0]),
                TierState::new(config.bucket_frames[1]),
            ],
            capacity: config.raw_capacity.max(1),
            bucket_capacity: config.bucket_capacity,
        }
    }

    fn record(&mut self, frame: u64, value: f64) {
        if self.raw.len() < self.capacity {
            self.raw.push(Point { frame, value });
        } else {
            self.raw[self.next] = Point { frame, value };
        }
        self.next = (self.next + 1) % self.capacity;
        self.total += 1;
        for tier in &mut self.tiers {
            tier.record(frame, value, self.bucket_capacity);
        }
    }

    /// Points ever recorded (retained or evicted).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Points currently retained in the raw ring.
    pub fn retained(&self) -> usize {
        self.raw.len()
    }

    /// Absolute index of the oldest retained point. Point indices are
    /// stable over the series' lifetime: index `i` is the `i`-th point ever
    /// recorded, valid while `first_index() <= i < total()`.
    pub fn first_index(&self) -> u64 {
        self.total - self.raw.len() as u64
    }

    /// The point at absolute index `index`, if still retained.
    pub fn point(&self, index: u64) -> Option<Point> {
        if index < self.first_index() || index >= self.total {
            return None;
        }
        let back = (self.total - 1 - index) as usize;
        let slot = (self.next + self.capacity - 1 - back % self.capacity) % self.capacity;
        Some(self.raw[slot])
    }

    /// The most recent point, if any.
    pub fn latest(&self) -> Option<Point> {
        self.point(self.total.checked_sub(1)?)
    }

    /// Retained raw points oldest-first.
    pub fn points(&self) -> Vec<Point> {
        (self.first_index()..self.total)
            .filter_map(|i| self.point(i))
            .collect()
    }

    /// Retained points with `frame > cutoff`, as `(total, bad)` where a
    /// point is *bad* when its value exceeds `margin` — the window query
    /// the burn-rate engine runs.
    pub fn window_counts(&self, cutoff: u64, margin: f64) -> (u64, u64) {
        let mut total = 0u64;
        let mut bad = 0u64;
        let mut index = self.total;
        while index > self.first_index() {
            index -= 1;
            let p = self.point(index).unwrap();
            if p.frame <= cutoff {
                break;
            }
            total += 1;
            if p.value > margin {
                bad += 1;
            }
        }
        (total, bad)
    }

    /// Downsampled buckets of tier `tier` (0 = fine, 1 = coarse),
    /// oldest-first, including the still-open bucket.
    pub fn buckets(&self, tier: usize) -> Vec<Bucket> {
        self.tiers[tier].ordered()
    }

    /// Bucket width of tier `tier`, in frames.
    pub fn bucket_frames(&self, tier: usize) -> u64 {
        self.tiers[tier].bucket_frames
    }
}

/// Ring capacities and downsampling widths for a [`Tsdb`].
#[derive(Debug, Clone)]
pub struct TsdbConfig {
    /// Raw points retained per series.
    pub raw_capacity: usize,
    /// Bucket widths in frames for the two downsampling tiers. The
    /// defaults are 10 s and 1 m of biological time at 30 kHz.
    pub bucket_frames: [u64; 2],
    /// Sealed buckets retained per tier per series.
    pub bucket_capacity: usize,
}

impl Default for TsdbConfig {
    fn default() -> Self {
        Self {
            raw_capacity: 512,
            bucket_frames: [300_000, 1_800_000],
            bucket_capacity: 128,
        }
    }
}

/// The store: one bounded [`Series`] per [`SeriesKind`], allocated at
/// construction.
#[derive(Debug, Clone)]
pub struct Tsdb {
    series: Vec<Series>,
}

impl Tsdb {
    pub fn new(config: &TsdbConfig) -> Self {
        Self {
            series: (0..SERIES_COUNT).map(|_| Series::new(config)).collect(),
        }
    }

    /// Record one point into the `kind` series.
    pub fn record(&mut self, kind: SeriesKind, frame: u64, value: f64) {
        self.series[kind.index()].record(frame, value);
    }

    /// The series tracking `kind`.
    pub fn series(&self, kind: SeriesKind) -> &Series {
        &self.series[kind.index()]
    }

    /// Serialize every series — raw ring plus both downsampled tiers — as
    /// a deterministic JSON document. Identical recorded histories render
    /// byte-identically: series appear in [`SeriesKind::ALL`] order and all
    /// numbers go through [`json::number`].
    pub fn snapshot_json(&self, sample_rate_hz: u32) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str(&format!(
            "{{\"halo_tsdb\":1,\"sample_rate_hz\":{sample_rate_hz},\"series\":["
        ));
        let series: Vec<String> = SeriesKind::ALL
            .iter()
            .map(|kind| {
                let s = self.series(*kind);
                let raw: Vec<String> = s
                    .points()
                    .iter()
                    .map(|p| format!("{{\"f\":{},\"v\":{}}}", p.frame, json::number(p.value)))
                    .collect();
                let tiers: Vec<String> = (0..s.tiers.len())
                    .map(|t| {
                        let buckets: Vec<String> = s
                            .buckets(t)
                            .iter()
                            .map(|b| {
                                format!(
                                    "{{\"s\":{},\"min\":{},\"max\":{},\"sum\":{},\"count\":{}}}",
                                    b.start_frame,
                                    json::number(b.min),
                                    json::number(b.max),
                                    json::number(b.sum),
                                    b.count,
                                )
                            })
                            .collect();
                        format!(
                            "{{\"bucket_frames\":{},\"evicted\":{},\"buckets\":[{}]}}",
                            s.bucket_frames(t),
                            s.tiers[t].evicted,
                            buckets.join(","),
                        )
                    })
                    .collect();
                format!(
                    "{{\"name\":{},\"unit\":{},\"total\":{},\"dropped\":{},\
                     \"raw\":[{}],\"tiers\":[{}]}}",
                    json::string(kind.name()),
                    json::string(kind.unit()),
                    s.total(),
                    s.total() - s.retained() as u64,
                    raw.join(","),
                    tiers.join(","),
                )
            })
            .collect();
        out.push_str(&series.join(","));
        out.push_str("]}");
        out
    }
}

/// Configuration for the whole continuous layer: store capacities, SLO
/// burn-rate policies, and anomaly detectors.
#[derive(Debug, Clone, Default)]
pub struct ContinuousConfig {
    pub tsdb: TsdbConfig,
    pub slo: crate::slo::SloConfig,
    pub anomaly: crate::anomaly::AnomalyConfig,
}

/// Everything the continuous layer knows at one instant — what
/// `expose::render_continuous_into` and fleet triage consume.
#[derive(Debug, Clone)]
pub struct ContinuousStatus {
    /// Per series: kind, points ever recorded, points retained, latest.
    pub series: Vec<(SeriesKind, u64, usize, Option<Point>)>,
    /// Burn-rate engine state per objective.
    pub slo: SloStatus,
    /// Anomaly detections retained (bounded), ever flagged, and dropped.
    pub detections: Vec<Detection>,
    pub anomalies_total: u64,
    pub anomalies_dropped: u64,
}

struct ContinuousState {
    tsdb: Tsdb,
    slo: SloEngine,
    anomaly: AnomalyDetector,
    /// Frame whose `PowerSample`s are being summed, mirroring the
    /// monitor's own window accumulation.
    power_frame: Option<u64>,
    power_accum_mw: f64,
    /// Most recent event frame — the timestamp given to latency batches,
    /// which arrive without one.
    last_frame: u64,
}

/// The continuous-telemetry sink: decorates a [`HealthMonitor`] (chain
/// `Runtime → ContinuousTelemetry → HealthMonitor → Recorder`), scraping
/// window-granular events into a [`Tsdb`], polling the SLO burn-rate
/// engine each closed power window (firings feed
/// [`HealthMonitor::raise`], so they reach the flight recorder and
/// post-mortems like any envelope violation), and running anomaly
/// detection over the stored series (fresh detections escalate the
/// attached tracer's sampling via `force_next`, same as critical alerts).
pub struct ContinuousTelemetry {
    monitor: Arc<HealthMonitor>,
    state: Mutex<ContinuousState>,
}

impl fmt::Debug for ContinuousTelemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ContinuousTelemetry")
            .finish_non_exhaustive()
    }
}

impl ContinuousTelemetry {
    /// A continuous layer observing through (and forwarding to) `monitor`.
    pub fn new(monitor: Arc<HealthMonitor>, config: ContinuousConfig) -> Self {
        Self {
            monitor,
            state: Mutex::new(ContinuousState {
                tsdb: Tsdb::new(&config.tsdb),
                slo: SloEngine::new(config.slo),
                anomaly: AnomalyDetector::new(config.anomaly),
                power_frame: None,
                power_accum_mw: 0.0,
                last_frame: 0,
            }),
        }
    }

    /// The wrapped health monitor.
    pub fn monitor(&self) -> &Arc<HealthMonitor> {
        &self.monitor
    }

    /// Close the pending power window, if any: record the power and
    /// power-utilization points and run one SLO + anomaly poll.
    fn close_power_window(&self, state: &mut ContinuousState) {
        let Some(frame) = state.power_frame.take() else {
            return;
        };
        let window_mw = state.power_accum_mw;
        state.power_accum_mw = 0.0;
        state.tsdb.record(SeriesKind::PowerMw, frame, window_mw);
        let budget = self.monitor.budget_mw();
        let utilization = if budget > 0.0 {
            window_mw / budget
        } else {
            0.0
        };
        state
            .tsdb
            .record(SeriesKind::PowerUtilization, frame, utilization);
        self.poll_engines(state, frame);
    }

    /// One evaluation pass: burn-rate alerts raise through the monitor,
    /// fresh anomaly detections escalate trace sampling.
    fn poll_engines(&self, state: &mut ContinuousState, now: u64) {
        for firing in state.slo.poll(&state.tsdb, now) {
            self.monitor.raise(HealthAlert {
                frame: now,
                kind: AlertKind::SloBurnRate {
                    objective: firing.objective,
                    fast: firing.fast,
                    burn_rate: firing.burn_rate,
                    threshold: firing.threshold,
                },
            });
        }
        if state.anomaly.poll(&state.tsdb) > 0 {
            if let Some(tracer) = self.monitor.tracer() {
                tracer
                    .sampler()
                    .force_next(self.monitor.config().escalate_trace_frames);
            }
        }
    }

    /// Whether [`Self::observe`] scrapes this event kind at all. Checked
    /// before taking the state lock: windows emit several event kinds the
    /// layer ignores (per-PE activity, NoC traffic, switch programs), and
    /// those must not pay for the mutex.
    fn scrapes(event: &Event) -> bool {
        matches!(
            event.kind,
            EventKind::PowerSample { .. }
                | EventKind::ClosedLoop { .. }
                | EventKind::FifoWindow { .. }
                | EventKind::RadioWindow { .. }
        )
    }

    fn observe(&self, event: &Event) {
        let mut state = self.state.lock().unwrap();
        state.last_frame = state.last_frame.max(event.frame);
        match event.kind {
            EventKind::PowerSample { milliwatts, .. } => {
                if state.power_frame != Some(event.frame) {
                    self.close_power_window(&mut state);
                    state.power_frame = Some(event.frame);
                }
                state.power_accum_mw += milliwatts;
            }
            EventKind::ClosedLoop { latency_frames, .. } => {
                let deadline = self.monitor.config().deadline_frames;
                state.tsdb.record(
                    SeriesKind::ClosedLoopLatencyFrames,
                    event.frame,
                    latency_frames as f64,
                );
                let utilization = if deadline > 0 {
                    latency_frames as f64 / deadline as f64
                } else {
                    0.0
                };
                state
                    .tsdb
                    .record(SeriesKind::DeadlineUtilization, event.frame, utilization);
            }
            EventKind::FifoWindow { depth, .. } => {
                let watermark = self.monitor.config().fifo_watermark;
                state
                    .tsdb
                    .record(SeriesKind::FifoDepth, event.frame, depth as f64);
                let utilization = if watermark > 0 {
                    depth as f64 / watermark as f64
                } else {
                    0.0
                };
                state
                    .tsdb
                    .record(SeriesKind::FifoUtilization, event.frame, utilization);
            }
            EventKind::RadioWindow { frames, bytes } => {
                let window_s = frames as f64 / self.monitor.recorder().sample_rate_hz() as f64;
                let bits_per_s = if window_s > 0.0 {
                    bytes as f64 * 8.0 / window_s
                } else {
                    0.0
                };
                let ceiling = self.monitor.config().radio_ceiling_bps;
                state
                    .tsdb
                    .record(SeriesKind::RadioBps, event.frame, bits_per_s);
                let utilization = if ceiling > 0.0 {
                    bits_per_s / ceiling
                } else {
                    0.0
                };
                state
                    .tsdb
                    .record(SeriesKind::RadioUtilization, event.frame, utilization);
            }
            _ => {}
        }
    }

    /// Flush the pending power window and run a final engine poll, so
    /// accessors reflect a run's last (possibly partial) window. Idempotent
    /// — a second flush with no new data changes nothing, which keeps
    /// repeated snapshots byte-identical.
    pub fn flush(&self) {
        let mut state = self.state.lock().unwrap();
        self.close_power_window(&mut state);
    }

    /// The deterministic JSON dump of every stored series (flushes first).
    pub fn snapshot_json(&self) -> String {
        let sample_rate = self.monitor.recorder().sample_rate_hz();
        let mut state = self.state.lock().unwrap();
        self.close_power_window(&mut state);
        state.tsdb.snapshot_json(sample_rate)
    }

    /// Run `f` against the store (flushes first). The tsdb cannot be
    /// handed out by reference — it lives behind the sink's mutex — so
    /// queries go through this scoped accessor.
    pub fn with_tsdb<R>(&self, f: impl FnOnce(&Tsdb) -> R) -> R {
        let mut state = self.state.lock().unwrap();
        self.close_power_window(&mut state);
        f(&state.tsdb)
    }

    /// Point-in-time digest of series totals, SLO state, and anomaly
    /// detections (flushes first).
    pub fn status(&self) -> ContinuousStatus {
        let mut state = self.state.lock().unwrap();
        self.close_power_window(&mut state);
        ContinuousStatus {
            series: SeriesKind::ALL
                .iter()
                .map(|kind| {
                    let s = state.tsdb.series(*kind);
                    (*kind, s.total(), s.retained(), s.latest())
                })
                .collect(),
            slo: state.slo.status(),
            detections: state.anomaly.detections().to_vec(),
            anomalies_total: state.anomaly.total(),
            anomalies_dropped: state.anomaly.dropped(),
        }
    }
}

impl TelemetrySink for ContinuousTelemetry {
    fn enabled(&self) -> bool {
        true
    }

    fn declare_pe(&self, slot: u8, name: &'static str) {
        self.monitor.declare_pe(slot, name);
    }

    fn add(&self, scope: Scope, counter: Counter, delta: u64) {
        self.monitor.add(scope, counter, delta);
    }

    fn hwm(&self, scope: Scope, counter: Counter, value: u64) {
        self.monitor.hwm(scope, counter, value);
    }

    fn event(&self, event: Event) {
        self.monitor.event(event.clone());
        if Self::scrapes(&event) {
            self.observe(&event);
        }
    }

    fn latency(&self, scope: Scope, nanos: u64) {
        self.monitor.latency(scope, nanos);
    }

    fn latency_batch(&self, scope: Scope, samples: &[u64]) {
        self.monitor.latency_batch(scope, samples);
        if scope == Scope::System {
            if let Some(&max) = samples.iter().max() {
                let mut state = self.state.lock().unwrap();
                let frame = state.last_frame;
                state
                    .tsdb
                    .record(SeriesKind::FrameLatencyNs, frame, max as f64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::HealthConfig;
    use crate::recorder::Recorder;

    fn small_config() -> TsdbConfig {
        TsdbConfig {
            raw_capacity: 8,
            bucket_frames: [10, 100],
            bucket_capacity: 4,
        }
    }

    #[test]
    fn raw_ring_evicts_oldest_but_keeps_totals() {
        let mut db = Tsdb::new(&small_config());
        for i in 0..20u64 {
            db.record(SeriesKind::PowerMw, i, i as f64);
        }
        let s = db.series(SeriesKind::PowerMw);
        assert_eq!(s.total(), 20);
        assert_eq!(s.retained(), 8);
        assert_eq!(s.first_index(), 12);
        assert_eq!(s.point(11), None, "evicted points are gone");
        assert_eq!(s.point(12).unwrap().value, 12.0);
        assert_eq!(s.latest().unwrap().value, 19.0);
        let points = s.points();
        assert_eq!(points.len(), 8);
        assert!(points.windows(2).all(|w| w[0].frame < w[1].frame));
    }

    #[test]
    fn downsampling_buckets_carry_min_max_sum_count() {
        let mut db = Tsdb::new(&small_config());
        // Frames 0..25 → tier-0 buckets [0,10), [10,20), [20,30)-open.
        for i in 0..25u64 {
            db.record(SeriesKind::PowerMw, i, i as f64);
        }
        let buckets = db.series(SeriesKind::PowerMw).buckets(0);
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0].start_frame, 0);
        assert_eq!(buckets[0].count, 10);
        assert_eq!(buckets[0].min, 0.0);
        assert_eq!(buckets[0].max, 9.0);
        assert_eq!(buckets[0].sum, 45.0);
        assert_eq!(buckets[2].count, 5, "open bucket included");
        // The coarse tier holds everything in one open bucket.
        let coarse = db.series(SeriesKind::PowerMw).buckets(1);
        assert_eq!(coarse.len(), 1);
        assert_eq!(coarse[0].count, 25);
        assert!((coarse[0].mean() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn bucket_ring_is_bounded() {
        let mut db = Tsdb::new(&small_config());
        // 100 tier-0 buckets' worth of points; only 4 sealed survive.
        for i in 0..1000u64 {
            db.record(SeriesKind::PowerMw, i, 1.0);
        }
        let s = db.series(SeriesKind::PowerMw);
        let buckets = s.buckets(0);
        assert_eq!(buckets.len(), 5); // 4 sealed + open
        assert!(buckets
            .windows(2)
            .all(|w| w[0].start_frame < w[1].start_frame));
        assert_eq!(buckets.last().unwrap().start_frame, 990);
    }

    #[test]
    fn window_counts_respect_cutoff_and_margin() {
        let mut db = Tsdb::new(&TsdbConfig {
            raw_capacity: 64,
            ..small_config()
        });
        for i in 0..10u64 {
            let v = if i >= 6 { 0.9 } else { 0.1 };
            db.record(SeriesKind::PowerUtilization, i * 10, v);
        }
        let s = db.series(SeriesKind::PowerUtilization);
        let (total, bad) = s.window_counts(40, 0.8);
        assert_eq!(total, 5); // frames 50..90
        assert_eq!(bad, 4); // frames 60..90
        let (all, _) = s.window_counts(0, 0.8);
        assert_eq!(all, 9, "cutoff is exclusive");
    }

    #[test]
    fn snapshot_is_valid_and_byte_stable() {
        let build = || {
            let mut db = Tsdb::new(&small_config());
            for i in 0..50u64 {
                db.record(SeriesKind::PowerMw, i, (i % 7) as f64 * 0.25);
                if i % 3 == 0 {
                    db.record(SeriesKind::RadioBps, i, i as f64 * 1000.0);
                }
            }
            db.snapshot_json(30_000)
        };
        let a = build();
        let b = build();
        json::validate(&a).unwrap();
        assert_eq!(a, b, "identical histories must render byte-identically");
        assert!(a.contains("\"name\":\"power_mw\""));
        assert!(a.contains("\"bucket_frames\":10"));
    }

    #[test]
    fn continuous_sink_scrapes_power_windows_and_utilization() {
        let recorder = Arc::new(Recorder::new(256).with_sample_rate_hz(30_000));
        let monitor = Arc::new(HealthMonitor::new(
            recorder,
            HealthConfig {
                budget_mw: 10.0,
                ..HealthConfig::default()
            },
        ));
        let ct = ContinuousTelemetry::new(monitor, ContinuousConfig::default());
        for frame in [0u64, 300] {
            for slot in 0..2u8 {
                ct.event(Event {
                    frame,
                    kind: EventKind::PowerSample {
                        slot,
                        name: "PE",
                        milliwatts: 2.5,
                    },
                });
            }
        }
        ct.flush();
        ct.with_tsdb(|db| {
            let power = db.series(SeriesKind::PowerMw);
            assert_eq!(power.total(), 2);
            assert_eq!(power.latest().unwrap().value, 5.0);
            let util = db.series(SeriesKind::PowerUtilization);
            assert!((util.latest().unwrap().value - 0.5).abs() < 1e-12);
        });
        // The monitor behind the sink saw the same windows.
        assert_eq!(ct.monitor().status().power_windows, 2);
    }

    #[test]
    fn repeated_snapshots_are_identical() {
        let recorder = Arc::new(Recorder::new(64));
        let monitor = Arc::new(HealthMonitor::new(recorder, HealthConfig::default()));
        let ct = ContinuousTelemetry::new(monitor, ContinuousConfig::default());
        ct.event(Event {
            frame: 0,
            kind: EventKind::PowerSample {
                slot: 0,
                name: "PE",
                milliwatts: 1.0,
            },
        });
        let a = ct.snapshot_json();
        let b = ct.snapshot_json();
        assert_eq!(a, b, "snapshot flush must be idempotent");
    }
}
