//! The [`Recorder`] sink: atomic counters plus a bounded event ring.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::histogram::{HistogramSummary, LogHistogram};
use crate::sink::{Counter, Event, EventKind, Scope, TelemetrySink};
use crate::MAX_PES;

/// Per-PE atomic counter block.
#[derive(Debug, Default)]
struct PeCounters {
    busy_cycles: AtomicU64,
    stall_cycles: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    tokens_in: AtomicU64,
    tokens_out: AtomicU64,
    fifo_high_water: AtomicU64,
    fifo_peak_depth: AtomicU64,
}

/// Latency histograms, all behind one mutex — latency samples arrive once
/// per sampling window (hundreds of frames), never on the per-frame hot
/// path, so contention is negligible.
#[derive(Debug)]
struct LatencyStore {
    /// End-to-end frame latency per pipeline, keyed by the label of the
    /// most recent `Marker` event (pipelines announce themselves with a
    /// marker when telemetry is attached or the fabric is reconfigured).
    pipelines: Vec<(&'static str, LogHistogram)>,
    /// Label samples are currently attributed to.
    current: &'static str,
    /// Per-PE window service time, allocated lazily per slot.
    pe_service: Vec<Option<LogHistogram>>,
}

impl LatencyStore {
    fn new() -> Self {
        Self {
            pipelines: Vec::new(),
            current: "pipeline",
            pe_service: (0..MAX_PES).map(|_| None).collect(),
        }
    }

    fn record(&mut self, scope: Scope, nanos: u64) {
        self.record_batch(scope, std::slice::from_ref(&nanos));
    }

    fn record_batch(&mut self, scope: Scope, samples: &[u64]) {
        let hist = match scope {
            Scope::System => {
                let label = self.current;
                match self.pipelines.iter_mut().position(|(l, _)| *l == label) {
                    Some(i) => &mut self.pipelines[i].1,
                    None => {
                        self.pipelines.push((label, LogHistogram::new()));
                        &mut self.pipelines.last_mut().unwrap().1
                    }
                }
            }
            Scope::Pe(slot) => match self.pe_service.get_mut(slot as usize) {
                Some(entry) => entry.get_or_insert_with(LogHistogram::new),
                None => return,
            },
            _ => return,
        };
        for &nanos in samples {
            hist.record(nanos);
        }
    }
}

/// Per-link atomic counter block (flat `MAX_PES x MAX_PES` matrix).
#[derive(Debug, Default)]
struct LinkCounters {
    bytes: AtomicU64,
    transfers: AtomicU64,
}

#[derive(Debug, Default)]
struct GlobalCounters {
    controller_cycles: AtomicU64,
    controller_instructions: AtomicU64,
    switch_programs: AtomicU64,
    switch_words: AtomicU64,
    stim_pulses: AtomicU64,
    radio_bytes: AtomicU64,
    frames: AtomicU64,
}

/// Bounded ring of [`Event`]s. When full, the oldest event is overwritten
/// and `dropped` is incremented, so bursts never grow memory unboundedly
/// while the tail of the timeline is always retained.
#[derive(Debug)]
struct EventRing {
    buf: Vec<Event>,
    capacity: usize,
    /// Index of the next write position.
    head: usize,
    dropped: u64,
}

impl EventRing {
    fn new(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity.min(4096)),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, event: Event) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.dropped += 1;
        }
        self.head = (self.head + 1) % self.capacity;
    }

    /// Events in arrival order (oldest first).
    fn ordered(&self) -> Vec<Event> {
        if self.buf.len() < self.capacity {
            self.buf.clone()
        } else {
            let mut out = Vec::with_capacity(self.buf.len());
            out.extend_from_slice(&self.buf[self.head..]);
            out.extend_from_slice(&self.buf[..self.head]);
            out
        }
    }
}

/// Immutable copy of one PE's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeSnapshot {
    pub slot: u8,
    pub name: &'static str,
    pub busy_cycles: u64,
    pub stall_cycles: u64,
    pub bytes_in: u64,
    pub bytes_out: u64,
    pub tokens_in: u64,
    pub tokens_out: u64,
    pub fifo_high_water: u64,
    /// Peak end-of-window FIFO occupancy (sustained backpressure), tokens.
    pub fifo_peak_depth: u64,
    /// Window service-time digest (nanoseconds), empty if never sampled.
    pub service: HistogramSummary,
}

impl PeSnapshot {
    /// Whether any counter is non-zero (the PE saw traffic).
    pub fn is_active(&self) -> bool {
        self.busy_cycles != 0
            || self.stall_cycles != 0
            || self.bytes_in != 0
            || self.bytes_out != 0
            || self.tokens_in != 0
            || self.tokens_out != 0
            || self.fifo_high_water != 0
            || self.fifo_peak_depth != 0
    }
}

/// End-to-end frame-latency digest for one pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineLatency {
    /// Marker label the samples were recorded under.
    pub label: &'static str,
    /// Frame-latency digest in nanoseconds.
    pub latency: HistogramSummary,
}

/// Immutable copy of one NoC link's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSnapshot {
    pub from: u8,
    pub to: u8,
    pub bytes: u64,
    pub transfers: u64,
}

/// Point-in-time copy of every counter a [`Recorder`] holds.
#[derive(Debug, Clone, Default)]
pub struct RecorderSnapshot {
    /// One entry per declared or active PE slot, ordered by slot.
    pub pes: Vec<PeSnapshot>,
    /// One entry per link that carried at least one transfer.
    pub links: Vec<LinkSnapshot>,
    pub controller_cycles: u64,
    pub controller_instructions: u64,
    pub switch_programs: u64,
    pub switch_words: u64,
    pub stim_pulses: u64,
    pub radio_bytes: u64,
    pub frames: u64,
    /// Events overwritten because the ring was full.
    pub dropped_events: u64,
    /// End-to-end frame-latency digests, one per pipeline that recorded
    /// at least one sample, in first-seen order.
    pub pipelines: Vec<PipelineLatency>,
}

impl RecorderSnapshot {
    /// Total bytes crossing the NoC, summed over links.
    pub fn noc_bytes(&self) -> u64 {
        self.links.iter().map(|l| l.bytes).sum()
    }

    /// Total transfers crossing the NoC, summed over links.
    pub fn noc_transfers(&self) -> u64 {
        self.links.iter().map(|l| l.transfers).sum()
    }
}

/// A [`TelemetrySink`] that actually records: lock-free counters for the
/// hot path, a mutex-guarded bounded ring for the (much rarer) events.
///
/// Counter updates use relaxed atomics — the recorder offers per-counter
/// totals, not cross-counter consistency, which is all the exporters need.
#[derive(Debug)]
pub struct Recorder {
    pes: [PeCounters; MAX_PES],
    links: Vec<LinkCounters>,
    globals: GlobalCounters,
    names: Mutex<[Option<&'static str>; MAX_PES]>,
    ring: Mutex<EventRing>,
    latency: Mutex<LatencyStore>,
    sample_rate_hz: u32,
}

impl Recorder {
    /// A recorder whose event ring holds at most `event_capacity` entries.
    pub fn new(event_capacity: usize) -> Self {
        Self {
            pes: std::array::from_fn(|_| PeCounters::default()),
            links: (0..MAX_PES * MAX_PES)
                .map(|_| LinkCounters::default())
                .collect(),
            globals: GlobalCounters::default(),
            names: Mutex::new([None; MAX_PES]),
            ring: Mutex::new(EventRing::new(event_capacity)),
            latency: Mutex::new(LatencyStore::new()),
            sample_rate_hz: 30_000,
        }
    }

    /// Set the sample rate used to convert frame indices to wall time in
    /// exporters (defaults to the paper's 30 kHz).
    pub fn with_sample_rate_hz(mut self, hz: u32) -> Self {
        self.sample_rate_hz = hz.max(1);
        self
    }

    pub fn sample_rate_hz(&self) -> u32 {
        self.sample_rate_hz
    }

    /// Event-ring capacity this recorder was built with.
    pub fn event_capacity(&self) -> usize {
        self.ring.lock().unwrap().capacity
    }

    /// All retained events, sorted by frame (ties keep insertion order —
    /// producers may emit events out of order, e.g. a closed-loop scan
    /// that timestamps detections after the streaming run finishes).
    pub fn events(&self) -> Vec<Event> {
        let mut events = self.ring.lock().unwrap().ordered();
        events.sort_by_key(|e| e.frame);
        events
    }

    /// Events dropped because the ring was full.
    pub fn dropped_events(&self) -> u64 {
        self.ring.lock().unwrap().dropped
    }

    /// Per-pipeline end-to-end frame-latency histograms (cloned), in
    /// first-seen order. Exporters use the full histograms; snapshots carry
    /// only the digests.
    pub fn pipeline_histograms(&self) -> Vec<(&'static str, LogHistogram)> {
        self.latency.lock().unwrap().pipelines.clone()
    }

    /// Window service-time histogram of one PE slot (cloned), if any
    /// sample was ever recorded for it.
    pub fn pe_service_histogram(&self, slot: u8) -> Option<LogHistogram> {
        self.latency
            .lock()
            .unwrap()
            .pe_service
            .get(slot as usize)?
            .clone()
    }

    /// Copy every counter out. Cheap enough to call per window.
    pub fn snapshot(&self) -> RecorderSnapshot {
        let names = *self.names.lock().unwrap();
        let lat = self.latency.lock().unwrap();
        let mut pes = Vec::new();
        for (slot, c) in self.pes.iter().enumerate() {
            let snap = PeSnapshot {
                slot: slot as u8,
                name: names[slot].unwrap_or("?"),
                busy_cycles: c.busy_cycles.load(Ordering::Relaxed),
                stall_cycles: c.stall_cycles.load(Ordering::Relaxed),
                bytes_in: c.bytes_in.load(Ordering::Relaxed),
                bytes_out: c.bytes_out.load(Ordering::Relaxed),
                tokens_in: c.tokens_in.load(Ordering::Relaxed),
                tokens_out: c.tokens_out.load(Ordering::Relaxed),
                fifo_high_water: c.fifo_high_water.load(Ordering::Relaxed),
                fifo_peak_depth: c.fifo_peak_depth.load(Ordering::Relaxed),
                service: lat.pe_service[slot]
                    .as_ref()
                    .map(|h| h.summary())
                    .unwrap_or_default(),
            };
            if snap.is_active() || names[slot].is_some() {
                pes.push(snap);
            }
        }
        let pipelines = lat
            .pipelines
            .iter()
            .filter(|(_, h)| h.count() > 0)
            .map(|(label, h)| PipelineLatency {
                label,
                latency: h.summary(),
            })
            .collect();
        drop(lat);
        let mut links = Vec::new();
        for from in 0..MAX_PES {
            for to in 0..MAX_PES {
                let c = &self.links[from * MAX_PES + to];
                let transfers = c.transfers.load(Ordering::Relaxed);
                if transfers != 0 {
                    links.push(LinkSnapshot {
                        from: from as u8,
                        to: to as u8,
                        bytes: c.bytes.load(Ordering::Relaxed),
                        transfers,
                    });
                }
            }
        }
        let ring = self.ring.lock().unwrap();
        RecorderSnapshot {
            pes,
            links,
            controller_cycles: self.globals.controller_cycles.load(Ordering::Relaxed),
            controller_instructions: self.globals.controller_instructions.load(Ordering::Relaxed),
            switch_programs: self.globals.switch_programs.load(Ordering::Relaxed),
            switch_words: self.globals.switch_words.load(Ordering::Relaxed),
            stim_pulses: self.globals.stim_pulses.load(Ordering::Relaxed),
            radio_bytes: self.globals.radio_bytes.load(Ordering::Relaxed),
            frames: self.globals.frames.load(Ordering::Relaxed),
            dropped_events: ring.dropped,
            pipelines,
        }
    }

    fn pe_counter(&self, slot: u8, counter: Counter) -> Option<&AtomicU64> {
        let c = self.pes.get(slot as usize)?;
        Some(match counter {
            Counter::BusyCycles => &c.busy_cycles,
            Counter::StallCycles => &c.stall_cycles,
            Counter::BytesIn => &c.bytes_in,
            Counter::BytesOut => &c.bytes_out,
            Counter::TokensIn => &c.tokens_in,
            Counter::TokensOut => &c.tokens_out,
            Counter::FifoHighWater => &c.fifo_high_water,
            Counter::FifoPeakDepth => &c.fifo_peak_depth,
            _ => return None,
        })
    }

    fn target(&self, scope: Scope, counter: Counter) -> Option<&AtomicU64> {
        match scope {
            Scope::Pe(slot) => self.pe_counter(slot, counter),
            Scope::Link { from, to } => {
                let (from, to) = (from as usize, to as usize);
                if from >= MAX_PES || to >= MAX_PES {
                    return None;
                }
                let c = &self.links[from * MAX_PES + to];
                Some(match counter {
                    Counter::BytesOut => &c.bytes,
                    Counter::TokensOut => &c.transfers,
                    _ => return None,
                })
            }
            Scope::Controller => Some(match counter {
                Counter::BusyCycles => &self.globals.controller_cycles,
                Counter::Instructions => &self.globals.controller_instructions,
                Counter::SwitchPrograms => &self.globals.switch_programs,
                Counter::SwitchWords => &self.globals.switch_words,
                Counter::StimPulses => &self.globals.stim_pulses,
                _ => return None,
            }),
            Scope::System => Some(match counter {
                Counter::RadioBytes => &self.globals.radio_bytes,
                Counter::Frames => &self.globals.frames,
                _ => return None,
            }),
        }
    }
}

impl TelemetrySink for Recorder {
    fn enabled(&self) -> bool {
        true
    }

    fn declare_pe(&self, slot: u8, name: &'static str) {
        if let Some(entry) = self.names.lock().unwrap().get_mut(slot as usize) {
            *entry = Some(name);
        }
    }

    fn add(&self, scope: Scope, counter: Counter, delta: u64) {
        if let Some(cell) = self.target(scope, counter) {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    fn hwm(&self, scope: Scope, counter: Counter, value: u64) {
        if let Some(cell) = self.target(scope, counter) {
            cell.fetch_max(value, Ordering::Relaxed);
        }
    }

    fn event(&self, event: Event) {
        if let EventKind::Marker { name } = event.kind {
            // Markers announce pipeline (re)configuration; subsequent
            // frame-latency samples are attributed to this label.
            self.latency.lock().unwrap().current = name;
        }
        self.ring.lock().unwrap().push(event);
    }

    fn latency(&self, scope: Scope, nanos: u64) {
        self.latency.lock().unwrap().record(scope, nanos);
    }

    fn latency_batch(&self, scope: Scope, samples: &[u64]) {
        if samples.is_empty() {
            return;
        }
        self.latency.lock().unwrap().record_batch(scope, samples);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::EventKind;

    fn marker(frame: u64) -> Event {
        Event {
            frame,
            kind: EventKind::Marker { name: "m" },
        }
    }

    #[test]
    fn counters_accumulate_per_scope() {
        let rec = Recorder::new(16);
        rec.declare_pe(3, "LZ");
        rec.add(Scope::Pe(3), Counter::BusyCycles, 100);
        rec.add(Scope::Pe(3), Counter::BusyCycles, 50);
        rec.add(Scope::Link { from: 0, to: 3 }, Counter::BytesOut, 64);
        rec.add(Scope::Link { from: 0, to: 3 }, Counter::TokensOut, 1);
        rec.add(Scope::Controller, Counter::SwitchWords, 7);
        rec.add(Scope::System, Counter::RadioBytes, 1234);

        let snap = rec.snapshot();
        let pe = snap.pes.iter().find(|p| p.slot == 3).unwrap();
        assert_eq!(pe.name, "LZ");
        assert_eq!(pe.busy_cycles, 150);
        assert_eq!(snap.links.len(), 1);
        assert_eq!(snap.links[0].bytes, 64);
        assert_eq!(snap.links[0].transfers, 1);
        assert_eq!(snap.switch_words, 7);
        assert_eq!(snap.radio_bytes, 1234);
        assert_eq!(snap.noc_bytes(), 64);
    }

    #[test]
    fn hwm_takes_maximum_not_sum() {
        let rec = Recorder::new(16);
        rec.hwm(Scope::Pe(0), Counter::FifoHighWater, 4);
        rec.hwm(Scope::Pe(0), Counter::FifoHighWater, 9);
        rec.hwm(Scope::Pe(0), Counter::FifoHighWater, 2);
        let snap = rec.snapshot();
        assert_eq!(snap.pes[0].fifo_high_water, 9);
    }

    #[test]
    fn out_of_range_slots_are_dropped_silently() {
        let rec = Recorder::new(16);
        rec.add(Scope::Pe(200), Counter::BusyCycles, 1);
        rec.add(Scope::Link { from: 200, to: 0 }, Counter::BytesOut, 1);
        rec.declare_pe(200, "X");
        let snap = rec.snapshot();
        assert!(snap.pes.iter().all(|p| p.busy_cycles == 0));
        assert!(snap.links.is_empty());
    }

    #[test]
    fn mismatched_counter_scope_pairs_are_ignored() {
        let rec = Recorder::new(16);
        rec.add(Scope::Pe(0), Counter::RadioBytes, 5);
        rec.add(Scope::System, Counter::BusyCycles, 5);
        let snap = rec.snapshot();
        assert_eq!(snap.radio_bytes, 0);
        assert!(snap.pes.iter().all(|p| p.busy_cycles == 0));
    }

    #[test]
    fn ring_respects_capacity_and_keeps_newest() {
        let rec = Recorder::new(4);
        for i in 0..10 {
            rec.event(marker(i));
        }
        let events = rec.events();
        assert_eq!(events.len(), 4);
        let frames: Vec<u64> = events.iter().map(|e| e.frame).collect();
        assert_eq!(frames, vec![6, 7, 8, 9]);
        assert_eq!(rec.dropped_events(), 6);
        assert_eq!(rec.snapshot().dropped_events, 6);
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let rec = Recorder::new(0);
        rec.event(marker(1));
        assert!(rec.events().is_empty());
        assert_eq!(rec.dropped_events(), 1);
    }

    #[test]
    fn events_come_back_in_arrival_order_before_wrap() {
        let rec = Recorder::new(8);
        for i in 0..5 {
            rec.event(marker(i));
        }
        let frames: Vec<u64> = rec.events().iter().map(|e| e.frame).collect();
        assert_eq!(frames, vec![0, 1, 2, 3, 4]);
        assert_eq!(rec.dropped_events(), 0);
    }

    #[test]
    fn latency_samples_build_per_pipeline_digests() {
        let rec = Recorder::new(16);
        rec.declare_pe(0, "FFT");
        // Samples before any marker land under the default label.
        rec.latency(Scope::System, 1_000);
        rec.event(Event {
            frame: 10,
            kind: EventKind::Marker { name: "seizure" },
        });
        for nanos in [10_000u64, 20_000, 30_000] {
            rec.latency(Scope::System, nanos);
        }
        rec.latency(Scope::Pe(0), 500);
        rec.latency(Scope::Pe(0), 700);

        let snap = rec.snapshot();
        assert_eq!(snap.pipelines.len(), 2);
        assert_eq!(snap.pipelines[0].label, "pipeline");
        assert_eq!(snap.pipelines[0].latency.count, 1);
        assert_eq!(snap.pipelines[1].label, "seizure");
        assert_eq!(snap.pipelines[1].latency.count, 3);
        assert!(snap.pipelines[1].latency.p50 >= 20_000);
        assert_eq!(snap.pipelines[1].latency.max, 30_000);
        let pe = snap.pes.iter().find(|p| p.slot == 0).unwrap();
        assert_eq!(pe.service.count, 2);
        assert_eq!(pe.service.max, 700);
        assert!(rec.pe_service_histogram(0).is_some());
        assert!(rec.pe_service_histogram(1).is_none());
        assert_eq!(rec.pipeline_histograms().len(), 2);
    }

    #[test]
    fn fifo_peak_depth_is_a_high_water_mark() {
        let rec = Recorder::new(16);
        rec.hwm(Scope::Pe(2), Counter::FifoPeakDepth, 3);
        rec.hwm(Scope::Pe(2), Counter::FifoPeakDepth, 11);
        rec.hwm(Scope::Pe(2), Counter::FifoPeakDepth, 5);
        let snap = rec.snapshot();
        let pe = snap.pes.iter().find(|p| p.slot == 2).unwrap();
        assert_eq!(pe.fifo_peak_depth, 11);
        assert!(pe.is_active());
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let rec = std::sync::Arc::new(Recorder::new(64));
        let mut handles = Vec::new();
        for t in 0..4 {
            let rec = rec.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    rec.add(Scope::Pe(t), Counter::BusyCycles, 1);
                    rec.add(Scope::System, Counter::Frames, 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = rec.snapshot();
        assert_eq!(snap.frames, 4000);
        for t in 0..4u8 {
            let pe = snap.pes.iter().find(|p| p.slot == t).unwrap();
            assert_eq!(pe.busy_cycles, 1000);
        }
    }
}
