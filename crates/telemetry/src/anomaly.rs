//! Drift and spike detection over stored time series.
//!
//! The SLO engine ([`crate::slo`]) notices error budgets burning; this
//! module notices the *shape* of a series changing before any budget is
//! touched — gradual power creep, latency degradation, signal-regime
//! change (the drift modes multi-site scaling and adaptive-operation work
//! both hinge on). Two detectors run per series, both incremental, O(1)
//! per point, and allocation-free after construction:
//!
//! * **Spike (z-score):** an EWMA mean and variance track the series; a
//!   point more than `z_threshold` standard deviations from the mean is
//!   flagged. The deviation floor is relative to the mean, so near-constant
//!   series flag genuine level shifts without paging on float dust.
//! * **Drift (rate-of-change):** a fast EWMA is compared to a slow EWMA of
//!   the same series; sustained relative divergence above
//!   `drift_threshold` means the level is *moving* — the classic
//!   slow-creep signature a z-score adapts to and misses.
//!
//! The detector consumes points by absolute index ([`Series::point`]),
//! so each [`AnomalyDetector::poll`] touches only points recorded since
//! the last poll. Detections are retained in a bounded list (overflow is
//! counted, never allocated) and surface three ways: fleet triage JSON,
//! the Prometheus exposition, and — when the owning
//! [`crate::tsdb::ContinuousTelemetry`] has a tracer attached — escalated
//! causal-trace sampling via the same `force_next` hook critical alerts
//! use.
//!
//! [`Series::point`]: crate::tsdb::Series::point

use crate::tsdb::{SeriesKind, Tsdb, SERIES_COUNT};

/// Detector tuning. Defaults favor few, meaningful detections.
#[derive(Debug, Clone)]
pub struct AnomalyConfig {
    /// EWMA weight for the fast mean/variance (per point).
    pub alpha: f64,
    /// EWMA weight for the slow baseline the drift detector compares
    /// against. Must be well below `alpha`.
    pub slow_alpha: f64,
    /// Spike threshold in standard deviations.
    pub z_threshold: f64,
    /// Drift threshold: relative divergence of fast vs slow EWMA.
    pub drift_threshold: f64,
    /// Points observed before a series can flag anything.
    pub warmup: u64,
    /// Points suppressed after a detection on the same series, so one
    /// regime change yields one detection, not a burst.
    pub cooldown: u64,
    /// Detections retained verbatim; beyond this, only counted.
    pub max_detections: usize,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        Self {
            alpha: 0.2,
            slow_alpha: 0.02,
            z_threshold: 4.0,
            drift_threshold: 0.25,
            warmup: 8,
            cooldown: 8,
            max_detections: 128,
        }
    }
}

/// Which detector flagged the point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalySignal {
    /// Single-point outlier by z-score.
    Spike,
    /// Sustained fast/slow EWMA divergence.
    Drift,
}

impl AnomalySignal {
    /// Stable label used in triage JSON and expositions.
    pub fn label(&self) -> &'static str {
        match self {
            AnomalySignal::Spike => "spike",
            AnomalySignal::Drift => "drift",
        }
    }
}

/// One flagged point.
#[derive(Debug, Clone, Copy)]
pub struct Detection {
    pub series: SeriesKind,
    pub frame: u64,
    pub value: f64,
    pub signal: AnomalySignal,
    /// z-score for spikes, relative divergence for drift.
    pub score: f64,
}

/// Per-series incremental state.
#[derive(Debug, Clone, Copy, Default)]
struct SeriesState {
    /// Next absolute point index to consume.
    cursor: u64,
    /// Points observed.
    n: u64,
    /// Fast EWMA mean and variance.
    mean: f64,
    var: f64,
    /// Slow EWMA baseline.
    slow: f64,
    /// Remaining suppressed points after a detection.
    cooldown: u64,
}

/// The detector bank: one [`SeriesState`] per series, a bounded detection
/// list, and totals.
#[derive(Debug)]
pub struct AnomalyDetector {
    config: AnomalyConfig,
    states: [SeriesState; SERIES_COUNT],
    detections: Vec<Detection>,
    total: u64,
    dropped: u64,
}

impl AnomalyDetector {
    pub fn new(config: AnomalyConfig) -> Self {
        Self {
            config,
            states: [SeriesState::default(); SERIES_COUNT],
            detections: Vec::new(),
            total: 0,
            dropped: 0,
        }
    }

    /// Consume every point recorded since the last poll, across all
    /// series. Returns how many new detections were flagged.
    pub fn poll(&mut self, tsdb: &Tsdb) -> u64 {
        let mut fresh = 0;
        for kind in SeriesKind::ALL {
            let series = tsdb.series(kind);
            let index = kind.index();
            // Points evicted before we saw them are gone; skip forward.
            if self.states[index].cursor < series.first_index() {
                self.states[index].cursor = series.first_index();
            }
            while self.states[index].cursor < series.total() {
                let cursor = self.states[index].cursor;
                match series.point(cursor) {
                    Some(point) => {
                        self.states[index].cursor = cursor + 1;
                        fresh += self.ingest(kind, point.frame, point.value);
                    }
                    None => {
                        // The ring wrapped mid-catch-up and evicted the
                        // point from under the cursor. Saturate forward to
                        // the oldest retained point instead of panicking
                        // (always strictly forward, so the loop terminates
                        // even if first_index were stale).
                        let first = series.first_index();
                        self.states[index].cursor = first.max(cursor + 1);
                    }
                }
            }
        }
        fresh
    }

    /// Feed one point through both detectors, then fold it into the
    /// running statistics (detections never poison the baselines' view of
    /// the new regime — the EWMAs adapt, which is what ends a cooldown
    /// episode cleanly).
    fn ingest(&mut self, kind: SeriesKind, frame: u64, value: f64) -> u64 {
        let c = self.config.clone();
        let before = self.states[kind.index()];
        let mut detection = None;
        if before.n > 0 && before.cooldown == 0 && before.n >= c.warmup {
            let floor = (before.mean.abs() * 1e-3).max(1e-9);
            let sd = before.var.max(0.0).sqrt().max(floor);
            let z = (value - before.mean).abs() / sd;
            let divergence = (before.mean - before.slow).abs() / before.slow.abs().max(1e-9);
            if z > c.z_threshold {
                detection = Some(Detection {
                    series: kind,
                    frame,
                    value,
                    signal: AnomalySignal::Spike,
                    score: z,
                });
            } else if divergence > c.drift_threshold {
                detection = Some(Detection {
                    series: kind,
                    frame,
                    value,
                    signal: AnomalySignal::Drift,
                    score: divergence,
                });
            }
        }
        let hits = u64::from(detection.is_some());
        if let Some(d) = detection {
            self.push(d);
        }
        let state = &mut self.states[kind.index()];
        if state.n == 0 {
            // Seed both baselines at the first value so a nonzero start
            // isn't itself a giant excursion from zero.
            state.mean = value;
            state.slow = value;
        } else if state.cooldown > 0 {
            state.cooldown -= 1;
        }
        if hits > 0 {
            state.cooldown = c.cooldown;
        }
        let delta = value - state.mean;
        state.mean += c.alpha * delta;
        state.var = (1.0 - c.alpha) * (state.var + c.alpha * delta * delta);
        state.slow += c.slow_alpha * (value - state.slow);
        state.n += 1;
        hits
    }

    fn push(&mut self, detection: Detection) {
        self.total += 1;
        if self.detections.len() < self.config.max_detections {
            self.detections.push(detection);
        } else {
            self.dropped += 1;
        }
    }

    /// Retained detections, oldest first.
    pub fn detections(&self) -> &[Detection] {
        &self.detections
    }

    /// Detections ever flagged (retained + dropped).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Detections beyond the retention cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tsdb::TsdbConfig;

    fn tsdb() -> Tsdb {
        Tsdb::new(&TsdbConfig {
            raw_capacity: 2048,
            ..TsdbConfig::default()
        })
    }

    #[test]
    fn steady_series_flags_nothing() {
        let mut db = tsdb();
        let mut det = AnomalyDetector::new(AnomalyConfig::default());
        for i in 0..500u64 {
            // Mild deterministic ripple around 10.
            db.record(SeriesKind::PowerMw, i, 10.0 + 0.05 * ((i % 7) as f64 - 3.0));
        }
        assert_eq!(det.poll(&db), 0);
        assert_eq!(det.total(), 0);
    }

    #[test]
    fn step_change_is_a_spike_and_cooldown_bounds_the_burst() {
        let mut db = tsdb();
        let mut det = AnomalyDetector::new(AnomalyConfig::default());
        for i in 0..100u64 {
            db.record(SeriesKind::PowerMw, i, 10.0 + 0.05 * ((i % 5) as f64));
        }
        det.poll(&db);
        assert_eq!(det.total(), 0);
        for i in 100..120u64 {
            db.record(SeriesKind::PowerMw, i, 14.0);
        }
        det.poll(&db);
        assert!(det.total() >= 1, "level shift must flag");
        assert!(
            det.total() <= 3,
            "cooldown must bound the burst: {}",
            det.total()
        );
        assert_eq!(det.detections()[0].signal, AnomalySignal::Spike);
        assert_eq!(det.detections()[0].frame, 100);
        assert!(det.detections()[0].score > 4.0);
    }

    #[test]
    fn slow_ramp_is_drift_not_spike() {
        let mut db = tsdb();
        let mut det = AnomalyDetector::new(AnomalyConfig {
            // Per-point creep sits inside the spike band, but the fast
            // EWMA walks away from the slow baseline.
            z_threshold: 1000.0,
            ..AnomalyConfig::default()
        });
        for i in 0..60u64 {
            db.record(SeriesKind::PowerMw, i, 10.0);
        }
        for i in 60..400u64 {
            db.record(SeriesKind::PowerMw, i, 10.0 + (i - 60) as f64 * 0.1);
        }
        det.poll(&db);
        assert!(det.total() >= 1, "sustained creep must flag");
        assert!(det
            .detections()
            .iter()
            .all(|d| d.signal == AnomalySignal::Drift));
    }

    #[test]
    fn incremental_polls_match_one_shot() {
        let run = |chunks: &[std::ops::Range<u64>]| {
            let mut db = tsdb();
            let mut det = AnomalyDetector::new(AnomalyConfig::default());
            let mut total = 0;
            for chunk in chunks {
                for i in chunk.clone() {
                    let v = if i >= 150 {
                        25.0
                    } else {
                        10.0 + 0.1 * ((i % 3) as f64)
                    };
                    db.record(SeriesKind::RadioBps, i, v);
                }
                total += det.poll(&db);
            }
            (total, det.total())
        };
        let one_shot = run(std::slice::from_ref(&(0..300)));
        let incremental = run(&[0..50, 50..151, 151..220, 220..300]);
        assert_eq!(one_shot, incremental, "poll cadence must not matter");
        assert!(one_shot.0 >= 1);
    }

    #[test]
    fn detection_list_is_bounded() {
        let mut db = tsdb();
        let mut det = AnomalyDetector::new(AnomalyConfig {
            max_detections: 4,
            cooldown: 0,
            warmup: 2,
            ..AnomalyConfig::default()
        });
        // Alternate wildly so nearly every point is an outlier.
        for i in 0..200u64 {
            let v = if i % 2 == 0 { 1.0 } else { 1000.0 };
            db.record(SeriesKind::FifoDepth, i, v);
        }
        det.poll(&db);
        assert_eq!(det.detections().len(), 4);
        assert!(det.dropped() > 0);
        assert_eq!(det.total(), det.detections().len() as u64 + det.dropped());
    }

    #[test]
    fn eviction_skips_unseen_points_without_panicking() {
        let mut db = Tsdb::new(&TsdbConfig {
            raw_capacity: 16,
            ..TsdbConfig::default()
        });
        let mut det = AnomalyDetector::new(AnomalyConfig::default());
        for i in 0..1000u64 {
            db.record(SeriesKind::PowerMw, i, 10.0);
        }
        // 984 points were evicted before this first poll.
        det.poll(&db);
        for i in 1000..1010u64 {
            db.record(SeriesKind::PowerMw, i, 10.0);
        }
        det.poll(&db);
        assert_eq!(det.total(), 0);
    }

    #[test]
    fn ring_wraparound_bursts_between_polls_never_panic() {
        // Tiny ring, burst sizes chosen to land the cursor at every
        // alignment relative to the ring (multiples, off-by-one, huge
        // multi-wrap bursts), polling after each so the detector is
        // forever catching up to a ring that wrapped out from under it.
        let mut db = Tsdb::new(&TsdbConfig {
            raw_capacity: 8,
            ..TsdbConfig::default()
        });
        let mut det = AnomalyDetector::new(AnomalyConfig::default());
        let mut frame = 0u64;
        for burst in [1u64, 7, 8, 9, 16, 17, 100, 3, 1000, 8, 5] {
            for _ in 0..burst {
                db.record(SeriesKind::PowerMw, frame, 10.0 + 0.01 * (frame % 4) as f64);
                frame += 1;
            }
            det.poll(&db);
            // After every poll the cursor must sit at the live edge.
            let series = db.series(SeriesKind::PowerMw);
            assert_eq!(det.poll(&db), 0, "re-poll with no new data ingests nothing");
            assert!(series.total() == frame);
        }
        assert_eq!(det.total(), 0, "steady ripple flags nothing across wraps");
    }
}
