//! Observability layer for the HALO simulator.
//!
//! The simulator crates (`halo-pe`, `halo-noc`, `halo-power`, `halo-core`)
//! report what the modeled hardware is doing through the [`TelemetrySink`]
//! trait. Two implementations ship here:
//!
//! * [`NullSink`] — the default. Every method is an empty body behind an
//!   `enabled() == false` gate, so an uninstrumented run pays nothing and
//!   produces bit-identical results to a run without any sink wired in.
//! * [`Recorder`] — lock-free atomic counters per PE and per NoC link, plus
//!   a bounded ring buffer of timestamped [`Event`]s (timestamps are sample
//!   frame indices, convertible to wall time via the sample rate).
//!
//! A [`Recorder`] can be rendered two ways:
//!
//! * [`chrome_trace::render`] — Chrome Trace Format JSON, loadable in
//!   Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`, with one
//!   track per active PE, a NoC bandwidth track, and per-clock-domain power
//!   timeline tracks.
//! * [`summary::render`] — a plain-text table for terminals and logs.
//! * [`expose::render`] — Prometheus text-format exposition for scraping
//!   or CI diffing.
//!
//! Layered on top of the [`Recorder`] sits the *active* side of the
//! observability stack: [`HealthMonitor`] wraps a recorder, watches the
//! event stream for safety-envelope violations (power budget, closed-loop
//! deadline, FIFO backpressure, radio ceiling), raises structured
//! [`HealthAlert`]s under a configurable [`AlertPolicy`], and latches a
//! black-box post-mortem JSON dump on any critical alert or runtime
//! error. Latency distributions (end-to-end frame latency per pipeline,
//! window service time per PE) are kept in fixed-size log-bucketed
//! [`LogHistogram`]s with p50/p90/p99/max digests in every snapshot.
//!
//! Orthogonal to the aggregate counters sits *causal tracing*
//! ([`tracing`]): a deterministic [`TraceSampler`] tags selected input
//! frames, the runtime propagates the tag through PEs/FIFOs/NoC as a
//! compact context, and the [`Tracer`] assembles per-frame span trees
//! ([`span_tree`]) whose critical-path attribution explains *which hop*
//! dominated the traced frame's latency. Captured runs serialize to
//! binary-stable [`replay::TraceLog`]s that replay bit-identically.
//!
//! The crate is std-only by design: traces are hand-rolled JSON (see
//! [`json`]) so the simulator keeps building in offline environments.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use halo_telemetry::{Event, EventKind, Recorder, Scope, Counter, TelemetrySink};
//!
//! let rec = Arc::new(Recorder::new(1024).with_sample_rate_hz(30_000));
//! rec.declare_pe(0, "LZ");
//! rec.add(Scope::Pe(0), Counter::BusyCycles, 2240);
//! rec.add(Scope::Pe(0), Counter::BytesIn, 100);
//! rec.event(Event {
//!     frame: 0,
//!     kind: EventKind::PeWindow {
//!         slot: 0,
//!         name: "LZ",
//!         frames: 30,
//!         busy_cycles: 2240,
//!         stall_cycles: 0,
//!         bytes_in: 100,
//!         bytes_out: 60,
//!     },
//! });
//! let snap = rec.snapshot();
//! assert_eq!(snap.pes[0].busy_cycles, 2240);
//! let trace = halo_telemetry::chrome_trace::render(&rec);
//! halo_telemetry::json::validate(&trace).unwrap();
//! ```

pub mod anomaly;
pub mod chrome_trace;
pub mod expose;
pub mod health;
pub mod histogram;
pub mod json;
pub mod profile;
pub mod recorder;
pub mod replay;
pub mod sink;
pub mod slo;
pub mod span_tree;
pub mod summary;
pub mod tracing;
pub mod tsdb;

pub use anomaly::{AnomalyConfig, AnomalyDetector, AnomalySignal, Detection};
pub use health::{
    AlertKind, AlertPolicy, CoalescedAlert, HealthAlert, HealthConfig, HealthMonitor, HealthStatus,
};
pub use histogram::{HistogramSummary, LogHistogram};
pub use profile::{CycleProfile, DiffRow, Phase, ProfileDiff, ProfileRow};
pub use recorder::{LinkSnapshot, PeSnapshot, PipelineLatency, Recorder, RecorderSnapshot};
pub use replay::{ReplayReport, Replayer, StimRecord, TraceLog};
pub use sink::{Counter, Event, EventKind, NullSink, Scope, Severity, TelemetrySink};
pub use slo::{BurnRateFiring, BurnRatePolicy, SloConfig, SloEngine, SloStatus};
pub use span_tree::{CriticalPathSummary, HopCost, SpanTree, TreeError};
pub use tracing::{
    DeliveryCosts, SpanId, SpanKind, SpanRecord, TraceEvent, TraceId, TraceRecord, TraceSampler,
    TraceStats, Tracer,
};
pub use tsdb::{
    ContinuousConfig, ContinuousStatus, ContinuousTelemetry, Point, SeriesKind, Tsdb, TsdbConfig,
};

/// Maximum number of PE slots a [`Recorder`] tracks. The HALO fabric in the
/// paper has 14 PE kinds and the simulator instantiates well under this many
/// slots per pipeline; counters for slots `>= MAX_PES` are silently dropped.
pub const MAX_PES: usize = 64;
