//! Prometheus-style text exposition.
//!
//! Renders a [`Recorder`] (and optionally its [`HealthMonitor`]) in the
//! Prometheus text format — `# HELP`/`# TYPE` headers followed by one
//! sample per line — so long-running simulations can be scraped by a real
//! Prometheus, or the output diffed textually in CI. Only the exposition
//! *format* is implemented; there is no HTTP server, callers write the
//! string wherever they need it.
//!
//! Counter families carry a `_total` suffix per convention; latency
//! histograms use cumulative `le` buckets in nanoseconds; per-PE service
//! times are exposed as summary-style `quantile` gauges.

use crate::health::HealthMonitor;
use crate::recorder::Recorder;
use crate::sink::Severity;
use crate::span_tree::CriticalPathSummary;
use crate::tracing::{SpanKind, Tracer};

/// Escape a label value per the exposition format: `\`, `"`, and newline
/// become `\\`, `\"`, and `\n`.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape a HELP docstring per the exposition format: `\` and newline
/// become `\\` and `\n` (quotes are legal in HELP text).
fn escape_help(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Whether `name` is a legal Prometheus metric name:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
pub fn is_valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Format a float sample value (Prometheus accepts scientific notation;
/// non-finite values become literal `NaN`/`+Inf`/`-Inf`, but we clamp to 0
/// to keep downstream diffing deterministic).
pub fn sample(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Incremental builder for a Prometheus text exposition.
///
/// Enforces the conformance rules exporters are most often caught
/// violating: every family's `# HELP`/`# TYPE` header appears exactly once
/// (a duplicate declaration panics), family names are validated against
/// the metric-name grammar, and HELP text is escaped. Sample ordering is
/// exactly insertion order, so renders over the same data are
/// byte-identical. Label *values* must be escaped by the caller with
/// [`escape_label`]; sample lines for a histogram's `_bucket`/`_sum`/
/// `_count` series belong to the histogram family declared once.
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
    declared: Vec<String>,
}

impl Exposition {
    /// An empty exposition.
    pub fn new() -> Self {
        Self {
            out: String::with_capacity(4096),
            declared: Vec::new(),
        }
    }

    /// Declares a metric family: one `# HELP` plus one `# TYPE` line.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a legal metric name or the family was
    /// already declared on this exposition.
    pub fn family(&mut self, name: &str, kind: &str, help: &str) {
        assert!(
            is_valid_metric_name(name),
            "invalid metric family name {name:?}"
        );
        assert!(
            !self.declared.iter().any(|d| d == name),
            "family {name} declared twice"
        );
        self.declared.push(name.to_string());
        self.out
            .push_str(&format!("# HELP {name} {}\n", escape_help(help)));
        self.out.push_str(&format!("# TYPE {name} {kind}\n"));
    }

    /// Appends one sample line. `labels` is the pre-escaped label set
    /// without braces (empty for none).
    pub fn value(&mut self, name: &str, labels: &str, v: impl std::fmt::Display) {
        debug_assert!(is_valid_metric_name(name), "invalid metric name {name:?}");
        if labels.is_empty() {
            self.out.push_str(&format!("{name} {v}\n"));
        } else {
            self.out.push_str(&format!("{name}{{{labels}}} {v}\n"));
        }
    }

    /// The finished exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Render `recorder` as a Prometheus text-format exposition.
pub fn render(recorder: &Recorder) -> String {
    let mut e = Exposition::new();
    render_recorder_into(&mut e, recorder);
    e.finish()
}

/// Append the recorder families to an exposition under construction.
pub fn render_recorder_into(e: &mut Exposition, recorder: &Recorder) {
    let snap = recorder.snapshot();

    e.family(
        "halo_frames_total",
        "counter",
        "Sample frames ingested from the electrode array.",
    );
    e.value("halo_frames_total", "", snap.frames);

    e.family(
        "halo_radio_bytes_total",
        "counter",
        "Bytes handed to the radio for off-implant transmission.",
    );
    e.value("halo_radio_bytes_total", "", snap.radio_bytes);

    e.family(
        "halo_dropped_events_total",
        "counter",
        "Telemetry events overwritten because the ring was full.",
    );
    e.value("halo_dropped_events_total", "", snap.dropped_events);

    e.family(
        "halo_controller_cycles_total",
        "counter",
        "Cycles retired by the RV32 control processor.",
    );
    e.value("halo_controller_cycles_total", "", snap.controller_cycles);
    e.family(
        "halo_controller_instructions_total",
        "counter",
        "Instructions retired by the RV32 control processor.",
    );
    e.value(
        "halo_controller_instructions_total",
        "",
        snap.controller_instructions,
    );
    e.family(
        "halo_switch_programs_total",
        "counter",
        "Complete switch-programming sequences executed.",
    );
    e.value("halo_switch_programs_total", "", snap.switch_programs);
    e.family(
        "halo_switch_words_total",
        "counter",
        "Switch words written over MMIO.",
    );
    e.value("halo_switch_words_total", "", snap.switch_words);
    e.family(
        "halo_stim_pulses_total",
        "counter",
        "Stimulation pulses commanded.",
    );
    e.value("halo_stim_pulses_total", "", snap.stim_pulses);

    for (name, kind, help, get) in [
        (
            "halo_pe_busy_cycles_total",
            "counter",
            "Cycles each PE spent doing useful work.",
            0usize,
        ),
        (
            "halo_pe_stall_cycles_total",
            "counter",
            "Cycles each PE was back-pressured by its output FIFO.",
            1,
        ),
        (
            "halo_pe_bytes_in_total",
            "counter",
            "Payload bytes entering each PE.",
            2,
        ),
        (
            "halo_pe_bytes_out_total",
            "counter",
            "Payload bytes leaving each PE.",
            3,
        ),
        (
            "halo_pe_fifo_high_water",
            "gauge",
            "Within-burst peak output-FIFO occupancy per PE, tokens.",
            4,
        ),
        (
            "halo_pe_fifo_peak_depth",
            "gauge",
            "Peak end-of-window output-FIFO occupancy per PE, tokens.",
            5,
        ),
    ] {
        e.family(name, kind, help);
        for pe in &snap.pes {
            let v = match get {
                0 => pe.busy_cycles,
                1 => pe.stall_cycles,
                2 => pe.bytes_in,
                3 => pe.bytes_out,
                4 => pe.fifo_high_water,
                _ => pe.fifo_peak_depth,
            };
            e.value(
                name,
                &format!("slot=\"{}\",pe=\"{}\"", pe.slot, escape_label(pe.name)),
                v,
            );
        }
    }

    e.family(
        "halo_pe_service_ns",
        "gauge",
        "Per-PE window service-time quantiles, nanoseconds.",
    );
    for pe in &snap.pes {
        if pe.service.count == 0 {
            continue;
        }
        for (q, v) in [
            ("0.5", pe.service.p50),
            ("0.9", pe.service.p90),
            ("0.99", pe.service.p99),
            ("1", pe.service.max),
        ] {
            e.value(
                "halo_pe_service_ns",
                &format!(
                    "slot=\"{}\",pe=\"{}\",quantile=\"{q}\"",
                    pe.slot,
                    escape_label(pe.name)
                ),
                v,
            );
        }
    }

    e.family(
        "halo_noc_link_bytes_total",
        "counter",
        "Bytes crossing each circuit-switched NoC link.",
    );
    for l in &snap.links {
        e.value(
            "halo_noc_link_bytes_total",
            &format!("from=\"{}\",to=\"{}\"", l.from, l.to),
            l.bytes,
        );
    }
    e.family(
        "halo_noc_link_transfers_total",
        "counter",
        "Transfers on each circuit-switched NoC link.",
    );
    for l in &snap.links {
        e.value(
            "halo_noc_link_transfers_total",
            &format!("from=\"{}\",to=\"{}\"", l.from, l.to),
            l.transfers,
        );
    }

    e.family(
        "halo_frame_latency_ns",
        "histogram",
        "End-to-end frame latency per pipeline, nanoseconds.",
    );
    for (pipeline, hist) in recorder.pipeline_histograms() {
        if hist.count() == 0 {
            continue;
        }
        let pl = escape_label(pipeline);
        for (bound, cumulative) in hist.cumulative_buckets() {
            e.value(
                "halo_frame_latency_ns_bucket",
                &format!("pipeline=\"{pl}\",le=\"{bound}\""),
                cumulative,
            );
        }
        e.value(
            "halo_frame_latency_ns_bucket",
            &format!("pipeline=\"{pl}\",le=\"+Inf\""),
            hist.count(),
        );
        e.value(
            "halo_frame_latency_ns_sum",
            &format!("pipeline=\"{pl}\""),
            hist.sum(),
        );
        e.value(
            "halo_frame_latency_ns_count",
            &format!("pipeline=\"{pl}\""),
            hist.count(),
        );
    }
}

/// Render `monitor`'s recorder plus the health families: alert totals by
/// kind and severity, the power envelope, and the watchdog trip state.
/// When a tracer is attached the tracing families are appended too.
pub fn render_health(monitor: &HealthMonitor) -> String {
    let mut e = Exposition::new();
    render_recorder_into(&mut e, monitor.recorder());
    render_health_into(&mut e, monitor);
    if let Some(tracer) = monitor.tracer() {
        render_tracing_into(&mut e, &tracer);
    }
    e.finish()
}

/// Append the health families to an exposition under construction.
pub fn render_health_into(e: &mut Exposition, monitor: &HealthMonitor) {
    let status = monitor.status();

    e.family(
        "halo_health_alerts_total",
        "counter",
        "Safety-envelope alerts raised, by kind and severity.",
    );
    let mut by_kind: Vec<(&'static str, &'static str, u64)> = Vec::new();
    for alert in &status.alerts {
        // Each retained entry is a coalesced run; its repeat_count is how
        // many times the condition actually fired.
        let key = (alert.kind().name(), alert.severity().label());
        match by_kind.iter_mut().find(|(k, s, _)| (*k, *s) == key) {
            Some((_, _, n)) => *n += alert.repeat_count,
            None => by_kind.push((key.0, key.1, alert.repeat_count)),
        }
    }
    for (kind, severity, n) in &by_kind {
        e.value(
            "halo_health_alerts_total",
            &format!("kind=\"{kind}\",severity=\"{severity}\""),
            n,
        );
    }

    e.family(
        "halo_health_alerts_by_severity_total",
        "counter",
        "Safety-envelope alerts raised, by severity (includes alerts \
         beyond the retention cap).",
    );
    for severity in [Severity::Info, Severity::Warning, Severity::Critical] {
        e.value(
            "halo_health_alerts_by_severity_total",
            &format!("severity=\"{}\"", severity.label()),
            status.severity_counts[severity as usize],
        );
    }

    e.family(
        "halo_power_budget_mw",
        "gauge",
        "Configured whole-device power budget, milliwatts.",
    );
    e.value("halo_power_budget_mw", "", sample(status.budget_mw));
    e.family(
        "halo_power_worst_window_mw",
        "gauge",
        "Worst completed power window, milliwatts.",
    );
    e.value(
        "halo_power_worst_window_mw",
        "",
        sample(status.worst_window.map_or(0.0, |(_, mw)| mw)),
    );
    e.family(
        "halo_power_windows_total",
        "counter",
        "Completed power windows evaluated by the watchdog.",
    );
    e.value("halo_power_windows_total", "", status.power_windows);

    e.family(
        "halo_fabric_generation",
        "gauge",
        "Fabric configuration generation at the last switch programming.",
    );
    e.value("halo_fabric_generation", "", status.fabric_generation);

    e.family(
        "halo_health_tripped",
        "gauge",
        "1 when a fail-fast monitor tripped on a critical alert.",
    );
    e.value("halo_health_tripped", "", u64::from(monitor.tripped()));
}

/// Render a continuous-telemetry status as a standalone exposition
/// fragment (only continuous families; append-safe after [`render`] or
/// [`render_health`] output).
pub fn render_continuous(status: &crate::tsdb::ContinuousStatus) -> String {
    let mut e = Exposition::new();
    render_continuous_into(&mut e, status);
    e.finish()
}

/// Append the continuous-telemetry families — time-series store totals,
/// SLO burn rates and firing state, anomaly-detection counters — to an
/// exposition under construction. `status` comes from
/// [`ContinuousTelemetry::status`](crate::tsdb::ContinuousTelemetry::status).
pub fn render_continuous_into(e: &mut Exposition, status: &crate::tsdb::ContinuousStatus) {
    e.family(
        "halo_tsdb_points_total",
        "counter",
        "Points ever recorded into each stored time series.",
    );
    for (kind, total, _, _) in &status.series {
        e.value(
            "halo_tsdb_points_total",
            &format!("series=\"{}\"", kind.name()),
            total,
        );
    }
    e.family(
        "halo_tsdb_points_retained",
        "gauge",
        "Points currently retained in each series' raw ring.",
    );
    for (kind, _, retained, _) in &status.series {
        e.value(
            "halo_tsdb_points_retained",
            &format!("series=\"{}\"", kind.name()),
            retained,
        );
    }
    e.family(
        "halo_tsdb_last_value",
        "gauge",
        "Most recent value of each stored time series.",
    );
    for (kind, _, _, latest) in &status.series {
        if let Some(p) = latest {
            e.value(
                "halo_tsdb_last_value",
                &format!("series=\"{}\"", kind.name()),
                sample(p.value),
            );
        }
    }

    e.family(
        "halo_slo_burn_rate",
        "gauge",
        "Constraining error-budget burn rate per objective and policy \
         (1 = exactly consuming budget).",
    );
    e.family(
        "halo_slo_firing",
        "gauge",
        "1 while an objective's burn-rate policy is firing.",
    );
    e.family(
        "halo_slo_alerts_total",
        "counter",
        "Burn-rate firing transitions per objective and policy.",
    );
    for (name, state) in &status.slo.objectives {
        for (p, policy) in ["fast", "slow"].iter().enumerate() {
            let labels = format!("objective=\"{name}\",policy=\"{policy}\"");
            e.value("halo_slo_burn_rate", &labels, sample(state.burn_rate[p]));
            e.value("halo_slo_firing", &labels, u64::from(state.firing[p]));
            e.value("halo_slo_alerts_total", &labels, state.fired[p]);
        }
    }

    e.family(
        "halo_anomaly_detections_total",
        "counter",
        "Points flagged by the drift/spike detectors (retained + dropped).",
    );
    e.value("halo_anomaly_detections_total", "", status.anomalies_total);
    e.family(
        "halo_anomaly_dropped_total",
        "counter",
        "Anomaly detections beyond the retention cap.",
    );
    e.value("halo_anomaly_dropped_total", "", status.anomalies_dropped);
}

/// Render the causal-tracing families for `tracer`: sampling counters plus
/// critical-path attribution aggregated over every completed trace. The
/// returned string contains only tracing families, so it can be appended to
/// [`render`]/[`render_health`] output without duplicating TYPE headers
/// ([`render_health`] already appends it when a tracer is attached).
pub fn render_tracing(tracer: &Tracer) -> String {
    let mut e = Exposition::new();
    render_tracing_into(&mut e, tracer);
    e.finish()
}

/// Append the tracing families to an exposition under construction.
pub fn render_tracing_into(e: &mut Exposition, tracer: &Tracer) {
    let stats = tracer.stats();
    let trees = tracer.trees();
    let agg = CriticalPathSummary::from_traces(&trees);

    e.family(
        "halo_trace_sampled_total",
        "counter",
        "Input frames tagged for causal tracing (deterministic + forced).",
    );
    e.value("halo_trace_sampled_total", "", stats.sampled);

    e.family(
        "halo_trace_dropped_spans_total",
        "counter",
        "Trace spans discarded (per-trace cap or retention-ring eviction).",
    );
    e.value("halo_trace_dropped_spans_total", "", stats.dropped_spans);

    e.family(
        "halo_trace_completed_total",
        "counter",
        "Causal traces closed and assembled.",
    );
    e.value("halo_trace_completed_total", "", stats.completed);

    e.family(
        "halo_trace_latency_ns_total",
        "counter",
        "Summed end-to-end latency of completed traces, nanoseconds.",
    );
    e.value("halo_trace_latency_ns_total", "", agg.total_ns);

    e.family(
        "halo_trace_critical_path_ns",
        "gauge",
        "Traced latency attributed to each hop kind, nanoseconds.",
    );
    for kind in SpanKind::all() {
        e.value(
            "halo_trace_critical_path_ns",
            &format!("kind=\"{}\"", kind.label()),
            agg.kind_ns(kind),
        );
    }

    e.family(
        "halo_trace_critical_path_fraction",
        "gauge",
        "Share of traced end-to-end latency attributed to each hop kind.",
    );
    for kind in SpanKind::all() {
        let fraction = if agg.total_ns == 0 {
            0.0
        } else {
            agg.kind_ns(kind) as f64 / agg.total_ns as f64
        };
        e.value(
            "halo_trace_critical_path_fraction",
            &format!("kind=\"{}\"", kind.label()),
            sample(fraction),
        );
    }

    e.family(
        "halo_trace_hop_ns",
        "gauge",
        "Traced latency attributed to the costliest individual hops, \
         nanoseconds.",
    );
    for hop in agg.hops.iter().take(8) {
        e.value(
            "halo_trace_hop_ns",
            &format!(
                "kind=\"{}\",hop=\"{}\"",
                hop.kind.label(),
                escape_label(&hop.label)
            ),
            hop.ns,
        );
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::health::HealthConfig;
    use crate::sink::{Counter, Event, EventKind, Scope, TelemetrySink};

    fn populated() -> Arc<Recorder> {
        let rec = Arc::new(Recorder::new(256));
        rec.declare_pe(0, "LZ");
        rec.add(Scope::Pe(0), Counter::BusyCycles, 500);
        rec.add(Scope::Pe(0), Counter::BytesOut, 64);
        rec.hwm(Scope::Pe(0), Counter::FifoPeakDepth, 5);
        rec.add(Scope::Link { from: 0, to: 1 }, Counter::BytesOut, 64);
        rec.add(Scope::Link { from: 0, to: 1 }, Counter::TokensOut, 1);
        rec.add(Scope::System, Counter::Frames, 900);
        rec.event(Event {
            frame: 0,
            kind: EventKind::Marker { name: "seizure" },
        });
        for nanos in [10_000u64, 20_000, 40_000] {
            rec.latency(Scope::System, nanos);
        }
        rec.latency(Scope::Pe(0), 2_000);
        rec
    }

    /// Minimal exposition-format lint: every sample line's metric has a
    /// preceding TYPE header, and no family is declared twice.
    fn lint(exposition: &str) {
        let mut declared: Vec<&str> = Vec::new();
        for line in exposition.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let name = rest.split_whitespace().next().unwrap();
                assert!(!declared.contains(&name), "duplicate TYPE for {name}");
                declared.push(name);
            } else if !line.starts_with('#') && !line.is_empty() {
                let metric = line.split(['{', ' ']).next().unwrap();
                let family = metric
                    .trim_end_matches("_bucket")
                    .trim_end_matches("_sum")
                    .trim_end_matches("_count");
                assert!(
                    declared.contains(&family),
                    "sample {metric} has no TYPE header"
                );
                // Exactly one value token after the (optional) label set.
                let value = line.rsplit(' ').next().unwrap();
                assert!(
                    value.parse::<f64>().is_ok() || value == "+Inf",
                    "bad sample value {value:?} in {line:?}"
                );
            }
        }
    }

    #[test]
    fn exposition_is_well_formed_and_complete() {
        let rec = populated();
        let text = render(&rec);
        lint(&text);
        assert!(text.contains("halo_frames_total 900\n"));
        assert!(text.contains("halo_pe_busy_cycles_total{slot=\"0\",pe=\"LZ\"} 500\n"));
        assert!(text.contains("halo_pe_fifo_peak_depth{slot=\"0\",pe=\"LZ\"} 5\n"));
        assert!(text.contains("halo_noc_link_bytes_total{from=\"0\",to=\"1\"} 64\n"));
        assert!(text.contains("halo_frame_latency_ns_bucket{pipeline=\"seizure\",le=\"+Inf\"} 3"));
        assert!(text.contains("halo_frame_latency_ns_count{pipeline=\"seizure\"} 3\n"));
        assert!(text.contains("quantile=\"0.99\""));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_monotone() {
        let rec = populated();
        let text = render(&rec);
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("halo_frame_latency_ns_bucket") && !l.contains("+Inf"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(!counts.is_empty());
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*counts.last().unwrap(), 3);
    }

    #[test]
    fn health_exposition_adds_alert_families() {
        let mon = HealthMonitor::new(
            populated(),
            HealthConfig {
                budget_mw: 0.5,
                ..HealthConfig::default()
            },
        );
        mon.event(Event {
            frame: 0,
            kind: EventKind::PowerSample {
                slot: 0,
                name: "LZ",
                milliwatts: 2.0,
            },
        });
        let text = render_health(&mon);
        lint(&text);
        assert!(text
            .contains("halo_health_alerts_total{kind=\"power_budget\",severity=\"critical\"} 1\n"));
        assert!(text.contains("halo_power_budget_mw 0.5\n"));
        assert!(text.contains("halo_power_worst_window_mw 2\n"));
        assert!(text.contains("halo_health_tripped 0\n"));
    }

    #[test]
    fn families_with_zero_samples_keep_their_headers() {
        // A freshly built recorder has declared no PEs, routed nothing,
        // and recorded no latencies: several families legitimately carry
        // zero samples. Their HELP/TYPE headers must still render exactly
        // once (scrapers key on TYPE presence) with no sample lines.
        let rec = Arc::new(Recorder::new(16));
        let text = render(&rec);
        lint(&text);
        for family in [
            "halo_pe_busy_cycles_total",
            "halo_pe_service_ns",
            "halo_noc_link_bytes_total",
            "halo_frame_latency_ns",
        ] {
            assert!(
                text.contains(&format!("# TYPE {family} ")),
                "{family} header missing from empty exposition"
            );
            assert!(
                !text
                    .lines()
                    .any(|l| l.starts_with(family) && !l.starts_with('#')),
                "{family} must have no samples on an empty recorder"
            );
        }
        // Scalar families still report their zero.
        assert!(text.contains("halo_frames_total 0\n"));
    }

    #[test]
    fn continuous_exposition_reports_tsdb_slo_and_anomaly_families() {
        use crate::tsdb::{ContinuousConfig, ContinuousTelemetry};
        let mon = Arc::new(HealthMonitor::new(populated(), HealthConfig::default()));
        let ct = ContinuousTelemetry::new(mon, ContinuousConfig::default());
        ct.event(Event {
            frame: 0,
            kind: EventKind::PowerSample {
                slot: 0,
                name: "LZ",
                milliwatts: 3.0,
            },
        });
        ct.flush();
        let text = render_continuous(&ct.status());
        lint(&text);
        assert!(text.contains("halo_tsdb_points_total{series=\"power_mw\"} 1\n"));
        assert!(text.contains("halo_tsdb_last_value{series=\"power_mw\"} 3\n"));
        // Series never touched keep their totals at zero but emit no
        // last-value sample.
        assert!(text.contains("halo_tsdb_points_total{series=\"radio_bps\"} 0\n"));
        assert!(!text.contains("halo_tsdb_last_value{series=\"radio_bps\"}"));
        assert!(text.contains("halo_slo_burn_rate{objective=\"power\",policy=\"fast\"} 0\n"));
        assert!(text.contains("halo_slo_firing{objective=\"power\",policy=\"fast\"} 0\n"));
        assert!(text.contains("halo_anomaly_detections_total 0\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    fn traced() -> Arc<crate::tracing::Tracer> {
        let tracer = Arc::new(crate::tracing::Tracer::new(7, 0));
        tracer.sampler().force_next(1);
        let tag = tracer.begin_frame(5);
        assert_ne!(tag, 0);
        let costs = crate::tracing::DeliveryCosts {
            noc_ns: 0,
            wait_ns: 50,
            cross_ns: 0,
            service_ns: 200,
        };
        assert!(tracer.delivery(tag, None, 0, "LZ", 4, 8, costs));
        let hop = crate::tracing::DeliveryCosts {
            noc_ns: 100,
            wait_ns: 0,
            cross_ns: 0,
            service_ns: 300,
        };
        assert!(tracer.delivery(tag, Some((0, "LZ")), 1, "AES", 4, 8, hop));
        tracer.finalize_all();
        tracer
    }

    #[test]
    fn tracing_exposition_reports_counters_and_attribution() {
        let tracer = traced();
        let text = render_tracing(&tracer);
        lint(&text);
        assert!(text.contains("halo_trace_sampled_total 1\n"));
        assert!(text.contains("halo_trace_dropped_spans_total 0\n"));
        assert!(text.contains("halo_trace_completed_total 1\n"));
        assert!(text.contains("halo_trace_latency_ns_total 650\n"));
        assert!(text.contains("halo_trace_critical_path_ns{kind=\"pe_service\"} 500\n"));
        assert!(text.contains("halo_trace_critical_path_ns{kind=\"fifo_wait\"} 50\n"));
        assert!(text.contains("halo_trace_critical_path_ns{kind=\"noc_hop\"} 100\n"));
        assert!(text.contains("halo_trace_hop_ns{kind=\"noc_hop\",hop=\"LZ->AES\"} 100\n"));
        // Attribution fractions over all kinds must cover the whole latency.
        let total: f64 = text
            .lines()
            .filter(|l| l.starts_with("halo_trace_critical_path_fraction"))
            .map(|l| l.rsplit(' ').next().unwrap().parse::<f64>().unwrap())
            .sum();
        assert!((total - 1.0).abs() < 0.01, "fractions sum to {total}");
    }

    #[test]
    fn health_exposition_appends_tracing_when_attached() {
        let mon = HealthMonitor::new(populated(), HealthConfig::default());
        mon.set_tracer(traced());
        let text = render_health(&mon);
        lint(&text);
        assert!(text.contains("halo_health_tripped 0\n"));
        assert!(text.contains("halo_trace_sampled_total 1\n"));
        assert!(text.contains("halo_trace_critical_path_fraction{kind=\"pe_service\"}"));
    }
}
