//! PE-contract conformance: every wrapper must validate its ports, accept
//! control markers everywhere, tolerate flush-on-empty, and report sane
//! memory footprints. Table-driven across the whole registry so a new PE
//! cannot silently skip the contract.

use halo_kernels::{BbfDesign, Dwt, Fft, LinearSvm, LzMatcher, Threshold, XcorConfig};
use halo_pe::pes::{
    AesPe, BbfMode, BbfPe, DwtMode, DwtPe, FftPe, GatePe, HjorthPe, InterleaverPe, LicPe, LzPe,
    MaMode, MaPe, NeoPe, RcPe, SvmPe, ThrPe, XcorPe, XcorVariant,
};
use halo_pe::{InterfaceKind, ProcessingElement, Token};

fn registry() -> Vec<Box<dyn ProcessingElement>> {
    let bbf = BbfDesign::new(10.0, 100.0, 1000).expect("band");
    vec![
        Box::new(NeoPe::with_channels(2)),
        Box::new(ThrPe::new(Threshold::above(0))),
        Box::new(GatePe::with_channels(1, 2, 1)),
        Box::new(BbfPe::with_channels(&bbf, BbfMode::Stream, 2, &[0])),
        Box::new(FftPe::with_channels(
            Fft::new(16).expect("size"),
            1000,
            vec![(0.0, 500.0)],
            2,
            &[0],
            1,
        )),
        Box::new(XcorPe::new(
            XcorConfig::new(2, 8, 0, vec![(0, 1)]).expect("config"),
            XcorVariant::Streaming,
        )),
        Box::new(SvmPe::new(LinearSvm::new(vec![1, 1], 0).expect("weights"))),
        Box::new(DwtPe::new(
            Dwt::new(2).expect("levels"),
            DwtMode::Compress,
            8,
        )),
        Box::new(LzPe::new(LzMatcher::new(256).expect("history"), 64)),
        Box::new(LicPe::new()),
        Box::new(MaPe::new(MaMode::Lzma, 16)),
        Box::new(RcPe::new()),
        Box::new(AesPe::new([0u8; 16])),
        Box::new(InterleaverPe::new(2, 4)),
        Box::new(HjorthPe::new(2, &[0], 8)),
    ]
}

/// A token of every interface kind (to probe mismatches).
fn sample_tokens() -> Vec<Token> {
    vec![
        Token::Sample(1),
        Token::Byte(1),
        Token::Flag(true),
        Token::Value(1),
        Token::Coeff(1),
        Token::Op(halo_kernels::LzOp::Literal(1)),
        Token::Prob {
            cum: 0,
            freq: 1,
            total: 2,
        },
        Token::Vector(vec![1]),
    ]
}

#[test]
fn every_pe_rejects_mismatched_tokens_and_bad_ports() {
    for mut pe in registry() {
        let ports: Vec<InterfaceKind> = pe.input_ports().to_vec();
        assert!(!ports.is_empty(), "{}: no input ports", pe.kind());
        for (port, &expected) in ports.iter().enumerate() {
            for token in sample_tokens() {
                let kind = token.kind().expect("sample tokens are typed");
                let result = pe.push(port, token);
                if kind == expected {
                    assert!(result.is_ok(), "{} port {port} rejected {kind}", pe.kind());
                } else {
                    assert!(
                        result.is_err(),
                        "{} port {port} accepted {kind}, expects {expected}",
                        pe.kind()
                    );
                }
            }
        }
        // A port beyond the last must error.
        let bad_port = ports.len();
        assert!(
            pe.push(bad_port, Token::Sample(0)).is_err(),
            "{}: phantom port {bad_port}",
            pe.kind()
        );
    }
}

#[test]
fn every_pe_accepts_control_markers_on_every_port() {
    for mut pe in registry() {
        let n_ports = pe.input_ports().len();
        for port in 0..n_ports {
            assert!(
                pe.push(port, Token::BlockEnd { raw_len: 0 }).is_ok(),
                "{} port {port} rejected a control marker",
                pe.kind()
            );
        }
    }
}

#[test]
fn flush_on_empty_is_harmless_and_memory_is_sane() {
    for mut pe in registry() {
        pe.flush();
        pe.flush(); // idempotent
        let mem = pe.memory_bytes();
        assert!(mem < 1 << 20, "{}: implausible memory {mem}", pe.kind());
        // Output kind must be a stable answer.
        let _ = pe.output_kind();
    }
}

#[test]
fn drained_pes_return_none() {
    for mut pe in registry() {
        pe.flush();
        let mut drained = 0;
        while pe.pull().is_some() {
            drained += 1;
            assert!(drained < 1_000_000, "{}: pull never drains", pe.kind());
        }
        assert_eq!(pe.pull(), None, "{}", pe.kind());
    }
}
