//! Processing-element (PE) framework for HALO.
//!
//! HALO's defining architectural move (§IV) is decomposing BCI tasks into
//! *kernels* and packaging each kernel as a hardware processing element:
//! "each PE operates in its own clock domain at the minimum frequency to
//! sustain target performance" and carries "processing logic, private
//! memory, and an adapter to communicate over the interconnect."
//!
//! This crate models that world:
//!
//! * [`Token`] / [`InterfaceKind`] — the typed streams PEs exchange ("the
//!   interconnect sends messages in streams of bytes, bits, and tokens";
//!   §IV-D). Pipeline construction validates that a producer's output
//!   interface matches its consumer's input interface.
//! * [`ProcessingElement`] — the PE contract: typed input ports, an output
//!   stream drained through a FIFO adapter, private-memory accounting, and
//!   an end-of-stream flush.
//! * [`ClockDomain`] — per-PE pausable-clock model; frequency is computed as
//!   the minimum that sustains the offered token rate.
//! * [`pes`] — one wrapper per Table III kernel (LZ, LIC, MA, RC, DWT, NEO,
//!   FFT, XCOR, BBF, SVM, THR, GATE, AES) plus the standalone interleaver
//!   that time-multiplexes channel-scaled PEs (§IV).
//!
//! The wrappers delegate the math to [`halo_kernels`] so the *same* kernel
//! implementation backs both the monolithic codecs and the decomposed PE
//! pipelines — letting tests assert that decomposition "does not change
//! algorithmic functionality" (§IV-A), bit for bit.

pub mod clock;
pub mod error;
pub mod fifo;
pub mod pes;
pub mod token;
pub mod traits;

pub use clock::ClockDomain;
pub use error::PeError;
pub use fifo::Fifo;
pub use token::{InterfaceKind, Token};
pub use traits::{PeKind, ProcessingElement};
