//! SVM processing element.

use crate::error::PeError;
use crate::fifo::Fifo;
use crate::token::{InterfaceKind, Token};
use crate::traits::{PeKind, ProcessingElement};
use halo_kernels::LinearSvm;

/// The SVM PE: collects a feature vector of values and emits one
/// classification flag per completed vector.
///
/// Figure 2 shows FFT, XCOR, and BBF feeding the SVM *in parallel*, so the
/// PE exposes one input port per upstream producer. Each port owns a fixed
/// slice of the feature vector (`port_dims`); features are assembled in
/// port order regardless of token arrival interleaving, which keeps
/// training and inference feature layouts identical.
///
/// Feature values are clamped into `i32` before the multiply-accumulate,
/// matching the PE's 32-bit datapath.
#[derive(Debug)]
pub struct SvmPe {
    svm: LinearSvm,
    ports: Vec<InterfaceKind>,
    port_dims: Vec<usize>,
    buffers: Vec<Vec<i32>>,
    out: Fifo,
}

impl SvmPe {
    /// Creates a single-port SVM PE whose vector length equals the weight
    /// count.
    pub fn new(svm: LinearSvm) -> Self {
        let dim = svm.weights().len();
        Self::with_ports(svm, vec![dim])
    }

    /// Creates an SVM PE with one input port per entry of `port_dims`;
    /// port `i` contributes `port_dims[i]` features per classification.
    ///
    /// # Panics
    ///
    /// Panics if `port_dims` is empty, any dimension is zero, or the
    /// dimensions do not sum to the weight count.
    pub fn with_ports(svm: LinearSvm, port_dims: Vec<usize>) -> Self {
        assert!(!port_dims.is_empty(), "need at least one port");
        assert!(
            port_dims.iter().all(|&d| d > 0),
            "every port must contribute features"
        );
        assert_eq!(
            port_dims.iter().sum::<usize>(),
            svm.weights().len(),
            "port dimensions must sum to the weight count"
        );
        let ports = vec![InterfaceKind::Values; port_dims.len()];
        let buffers = port_dims.iter().map(|_| Vec::new()).collect();
        Self {
            svm,
            ports,
            port_dims,
            buffers,
            out: Fifo::new(),
        }
    }

    /// Total features per classification.
    pub fn dim(&self) -> usize {
        self.svm.weights().len()
    }

    /// Features each port contributes.
    pub fn port_dims(&self) -> &[usize] {
        &self.port_dims
    }

    /// Replaces the weights (micro-controller personalization write,
    /// Table III: "up to 5000 user-defined integer weights").
    ///
    /// # Panics
    ///
    /// Panics if the new weight count differs from the configured port
    /// layout.
    pub fn set_weights(&mut self, svm: LinearSvm) {
        assert_eq!(
            svm.weights().len(),
            self.dim(),
            "weight count must match the port layout"
        );
        self.svm = svm;
        for b in &mut self.buffers {
            b.clear();
        }
    }

    fn try_classify(&mut self) {
        let ready = self
            .buffers
            .iter()
            .zip(&self.port_dims)
            .all(|(b, &d)| b.len() >= d);
        if !ready {
            return;
        }
        let mut features = Vec::with_capacity(self.dim());
        for (b, &d) in self.buffers.iter_mut().zip(&self.port_dims) {
            features.extend(b.drain(..d));
        }
        self.out.push(Token::Flag(self.svm.classify(&features)));
    }
}

impl ProcessingElement for SvmPe {
    fn kind(&self) -> PeKind {
        PeKind::Svm
    }

    fn input_ports(&self) -> &[InterfaceKind] {
        &self.ports
    }

    fn output_kind(&self) -> InterfaceKind {
        InterfaceKind::Flags
    }

    fn push(&mut self, port: usize, token: Token) -> Result<(), PeError> {
        self.check_port(port, &token)?;
        match token {
            Token::Value(v) => {
                self.buffers[port].push(v.clamp(i32::MIN as i64, i32::MAX as i64) as i32);
                self.try_classify();
            }
            Token::BlockEnd { .. } => {
                if port == 0 {
                    self.out.push(token);
                }
            }
            _ => unreachable!("validated by check_port"),
        }
        Ok(())
    }

    fn pull(&mut self) -> Option<Token> {
        self.out.pop()
    }

    fn flush(&mut self) {
        for b in &mut self.buffers {
            b.clear();
        }
    }

    fn output_fifo(&self) -> Option<&Fifo> {
        Some(&self.out)
    }

    fn output_fifo_mut(&mut self) -> Option<&mut Fifo> {
        Some(&mut self.out)
    }

    fn memory_bytes(&self) -> usize {
        // Weight memory dominates (Table IV: SVM carries a memory macro).
        self.dim() * 4 + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_on_full_feature_vector() {
        let svm = LinearSvm::new(vec![1, -1], 0).unwrap();
        let mut pe = SvmPe::new(svm);
        pe.push(0, Token::Value(10)).unwrap();
        assert_eq!(pe.pull(), None); // not enough features yet
        pe.push(0, Token::Value(3)).unwrap();
        assert_eq!(pe.pull(), Some(Token::Flag(true))); // 10 - 3 > 0
        pe.push(0, Token::Value(1)).unwrap();
        pe.push(0, Token::Value(5)).unwrap();
        assert_eq!(pe.pull(), Some(Token::Flag(false)));
    }

    #[test]
    fn port_order_defines_feature_order() {
        // Weights pick out port contributions: w = [1, 100].
        let svm = LinearSvm::new(vec![1, 100], -199).unwrap();
        let mut a = SvmPe::with_ports(svm.clone(), vec![1, 1]);
        // Port 1 arrives first; feature order must still be [p0, p1].
        a.push(1, Token::Value(2)).unwrap();
        a.push(0, Token::Value(1)).unwrap();
        // 1*1 + 100*2 - 199 = 2 > 0.
        assert_eq!(a.pull(), Some(Token::Flag(true)));

        let mut b = SvmPe::with_ports(svm, vec![1, 1]);
        b.push(0, Token::Value(2)).unwrap();
        b.push(1, Token::Value(1)).unwrap();
        // 1*2 + 100*1 - 199 = -97 <= 0.
        assert_eq!(b.pull(), Some(Token::Flag(false)));
    }

    #[test]
    fn clamps_oversized_features() {
        let svm = LinearSvm::new(vec![1], 0).unwrap();
        let mut pe = SvmPe::new(svm);
        pe.push(0, Token::Value(i64::MAX)).unwrap();
        assert_eq!(pe.pull(), Some(Token::Flag(true)));
    }

    #[test]
    #[should_panic(expected = "sum to the weight count")]
    fn mismatched_port_dims_rejected() {
        let svm = LinearSvm::new(vec![1, 2, 3], 0).unwrap();
        let _ = SvmPe::with_ports(svm, vec![1, 1]);
    }

    #[test]
    fn reweighting_clears_partial_vectors() {
        let svm = LinearSvm::new(vec![1, 1], 0).unwrap();
        let mut pe = SvmPe::new(svm);
        pe.push(0, Token::Value(1)).unwrap();
        pe.set_weights(LinearSvm::new(vec![-1, -1], 1).unwrap());
        pe.push(0, Token::Value(1)).unwrap();
        pe.push(0, Token::Value(1)).unwrap();
        assert_eq!(pe.pull(), Some(Token::Flag(false)));
    }
}
