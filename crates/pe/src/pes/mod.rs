//! One PE wrapper per Table III kernel, plus the interleaver.
//!
//! Each wrapper packages a [`halo_kernels`] kernel behind the
//! [`crate::ProcessingElement`] stream contract. The same kernel code backs
//! the monolithic codecs, so tests can assert the decomposed pipelines are
//! bit-identical to their monolithic counterparts (§IV-A's "no change in
//! algorithmic functionality" requirement).

mod aes;
mod bbf;
mod dwt;
mod fft;
mod gate;
mod hjorth;
mod interleaver;
mod lic;
mod lz;
mod ma;
mod neo;
mod rc;
mod svm;
mod thr;
mod xcor;

pub use aes::AesPe;
pub use bbf::{BbfMode, BbfPe};
pub use dwt::{DwtMode, DwtPe};
pub use fft::FftPe;
pub use gate::GatePe;
pub use hjorth::HjorthPe;
pub use interleaver::InterleaverPe;
pub use lic::LicPe;
pub use lz::LzPe;
pub use ma::{MaMode, MaPe};
pub use neo::NeoPe;
pub use rc::RcPe;
pub use svm::SvmPe;
pub use thr::ThrPe;
pub use xcor::{XcorPe, XcorVariant};
