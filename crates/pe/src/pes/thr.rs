//! THR processing element.

use crate::error::PeError;
use crate::fifo::Fifo;
use crate::token::{InterfaceKind, Token};
use crate::traits::{PeKind, ProcessingElement};
use halo_kernels::Threshold;

/// The threshold PE: values in, flags out.
///
/// The shared terminator of the movement-intent and spike-detection
/// pipelines (PE reuse generalization, §IV-A).
#[derive(Debug)]
pub struct ThrPe {
    thr: Threshold,
    out: Fifo,
}

impl ThrPe {
    /// Creates a THR PE with the given comparator.
    pub fn new(thr: Threshold) -> Self {
        Self {
            thr,
            out: Fifo::new(),
        }
    }

    /// The configured comparator.
    pub fn threshold(&self) -> Threshold {
        self.thr
    }

    /// Reconfigures the comparator (micro-controller parameter write).
    pub fn set_threshold(&mut self, thr: Threshold) {
        self.thr = thr;
    }
}

impl ProcessingElement for ThrPe {
    fn kind(&self) -> PeKind {
        PeKind::Thr
    }

    fn input_ports(&self) -> &[InterfaceKind] {
        &[InterfaceKind::Values]
    }

    fn output_kind(&self) -> InterfaceKind {
        InterfaceKind::Flags
    }

    fn push(&mut self, port: usize, token: Token) -> Result<(), PeError> {
        self.check_port(port, &token)?;
        match token {
            Token::Value(v) => self.out.push(Token::Flag(self.thr.check(v))),
            Token::BlockEnd { .. } => self.out.push(token),
            _ => unreachable!("validated by check_port"),
        }
        Ok(())
    }

    fn pull(&mut self) -> Option<Token> {
        self.out.pop()
    }

    fn flush(&mut self) {}

    fn output_fifo(&self) -> Option<&Fifo> {
        Some(&self.out)
    }

    fn output_fifo_mut(&mut self) -> Option<&mut Fifo> {
        Some(&mut self.out)
    }

    fn memory_bytes(&self) -> usize {
        8 // the 32-bit user threshold plus comparator state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_match_comparator() {
        let mut pe = ThrPe::new(Threshold::above(10));
        for v in [5i64, 15, 10, 11] {
            pe.push(0, Token::Value(v)).unwrap();
        }
        let flags: Vec<_> = std::iter::from_fn(|| pe.pull()).collect();
        assert_eq!(
            flags,
            vec![
                Token::Flag(false),
                Token::Flag(true),
                Token::Flag(false),
                Token::Flag(true)
            ]
        );
    }

    #[test]
    fn reconfigurable_at_runtime() {
        let mut pe = ThrPe::new(Threshold::above(0));
        pe.set_threshold(Threshold::below(0));
        pe.push(0, Token::Value(-5)).unwrap();
        assert_eq!(pe.pull(), Some(Token::Flag(true)));
    }

    #[test]
    fn rejects_samples() {
        let mut pe = ThrPe::new(Threshold::above(0));
        assert!(pe.push(0, Token::Sample(1)).is_err());
    }
}
