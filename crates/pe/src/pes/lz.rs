//! LZ processing element.

use crate::error::PeError;
use crate::fifo::Fifo;
use crate::token::{InterfaceKind, Token};
use crate::traits::{PeKind, ProcessingElement};
use halo_kernels::LzMatcher;

/// The Lempel-Ziv PE: bytes in, parse ops out, block markers at block
/// boundaries.
///
/// Shared front-end of the LZ4 and LZMA pipelines (§IV-A). The history
/// length is the doctor-tunable knob ("the doctor/technician can reduce
/// history size via the micro-controller … we power-gate unused memory
/// banks").
#[derive(Debug)]
pub struct LzPe {
    matcher: LzMatcher,
    block_size: usize,
    buffer: Vec<u8>,
    from_samples: bool,
    out: Fifo,
}

impl LzPe {
    /// Creates an LZ PE with the given matcher and block size.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn new(matcher: LzMatcher, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        Self {
            matcher,
            block_size,
            buffer: Vec::new(),
            from_samples: false,
            out: Fifo::new(),
        }
    }

    /// Configures the input adapter to accept 16-bit samples, serializing
    /// them little-endian (§IV-D: the FIFO adapter "transfers data from the
    /// network into the form expected by the PE").
    pub fn from_samples(mut self) -> Self {
        self.from_samples = true;
        self
    }

    /// Configured history window.
    pub fn history(&self) -> usize {
        self.matcher.history()
    }

    /// Configured block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    fn run_block(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        for op in self.matcher.parse(&self.buffer) {
            self.out.push(Token::Op(op));
        }
        self.out.push(Token::BlockEnd {
            raw_len: self.buffer.len() as u32,
        });
        self.buffer.clear();
    }
}

impl ProcessingElement for LzPe {
    fn kind(&self) -> PeKind {
        PeKind::Lz
    }

    fn input_ports(&self) -> &[InterfaceKind] {
        if self.from_samples {
            &[InterfaceKind::Samples]
        } else {
            &[InterfaceKind::Bytes]
        }
    }

    fn output_kind(&self) -> InterfaceKind {
        InterfaceKind::Ops
    }

    fn push(&mut self, port: usize, token: Token) -> Result<(), PeError> {
        self.check_port(port, &token)?;
        match token {
            Token::Byte(b) => {
                self.buffer.push(b);
                if self.buffer.len() >= self.block_size {
                    self.run_block();
                }
            }
            Token::Sample(s) => {
                self.buffer.extend_from_slice(&s.to_le_bytes());
                if self.buffer.len() >= self.block_size {
                    self.run_block();
                }
            }
            Token::BlockEnd { .. } => self.run_block(),
            _ => unreachable!("validated by check_port"),
        }
        Ok(())
    }

    fn pull(&mut self) -> Option<Token> {
        self.out.pop()
    }

    fn flush(&mut self) {
        self.run_block();
    }

    fn output_fifo(&self) -> Option<&Fifo> {
        Some(&self.out)
    }

    fn output_fifo_mut(&mut self) -> Option<&mut Fifo> {
        Some(&mut self.out)
    }

    fn memory_bytes(&self) -> usize {
        // Hardware requirement: head/chain arrays plus the history window
        // (Table III). The software block staging buffer is a simulation
        // convenience — the hardware streams through its window and resets
        // tables at block boundaries.
        self.matcher.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_kernels::LzOp;

    #[test]
    fn parse_matches_kernel() {
        let data = b"alpha beta alpha beta alpha".to_vec();
        let want = LzMatcher::new(256).unwrap().parse(&data);
        let mut pe = LzPe::new(LzMatcher::new(256).unwrap(), 1024);
        for &b in &data {
            pe.push(0, Token::Byte(b)).unwrap();
        }
        pe.flush();
        let mut got = Vec::new();
        let mut marker = None;
        while let Some(t) = pe.pull() {
            match t {
                Token::Op(op) => got.push(op),
                Token::BlockEnd { raw_len } => marker = Some(raw_len),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(got, want);
        assert_eq!(marker, Some(data.len() as u32));
    }

    #[test]
    fn blocks_split_at_block_size() {
        let mut pe = LzPe::new(LzMatcher::new(256).unwrap(), 4);
        for b in 0..8u8 {
            pe.push(0, Token::Byte(b)).unwrap();
        }
        let markers = std::iter::from_fn(|| pe.pull())
            .filter(|t| matches!(t, Token::BlockEnd { .. }))
            .count();
        assert_eq!(markers, 2);
    }

    #[test]
    fn literals_for_unique_bytes() {
        let mut pe = LzPe::new(LzMatcher::new(256).unwrap(), 16);
        for b in [1u8, 2, 3] {
            pe.push(0, Token::Byte(b)).unwrap();
        }
        pe.flush();
        let ops: Vec<_> = std::iter::from_fn(|| pe.pull()).collect();
        assert_eq!(
            &ops[..3],
            &[
                Token::Op(LzOp::Literal(1)),
                Token::Op(LzOp::Literal(2)),
                Token::Op(LzOp::Literal(3))
            ]
        );
    }
}
