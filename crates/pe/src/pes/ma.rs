//! MA processing element.
//!
//! The MA/RC split is the paper's marquee *locality refactoring* (§IV-A,
//! Figure 3): after refactoring, MA owns the frequency table (green) and RC
//! owns the encoder state (blue); MA emits `(cumulative, frequency, total)`
//! triples and raw bits, which is exactly the token traffic modeled here.

use crate::error::PeError;
use crate::fifo::Fifo;
use crate::token::{InterfaceKind, Token};
use crate::traits::{PeKind, ProcessingElement};
use halo_kernels::dwtma::COEFF_CLASSES;
use halo_kernels::lz::MIN_MATCH;
use halo_kernels::lzma::{LiteralHistory, LITERAL_CONTEXTS};
use halo_kernels::{AdaptiveModel, LzOp};

/// Which pipeline the MA PE is serving — Table III: "counters for each
/// input type (literal, length, offset in LZ and predict, updates in DWT)".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaMode {
    /// LZMA: model LZ ops (flag, parity-context literals, length and
    /// distance classes).
    Lzma,
    /// DWTMA: model DWT coefficients (approximation/detail class split);
    /// the depth must match the upstream DWT PE.
    Dwt {
        /// DWT recursion depth of the upstream PE.
        levels: usize,
    },
}

struct LzmaModels {
    flag: AdaptiveModel,
    literal: Vec<AdaptiveModel>,
    len_class: AdaptiveModel,
    dist_class: AdaptiveModel,
    history: LiteralHistory,
}

impl LzmaModels {
    fn new(counter_bits: u32) -> Self {
        Self {
            flag: AdaptiveModel::with_counter_bits(2, counter_bits),
            literal: (0..LITERAL_CONTEXTS)
                .map(|_| AdaptiveModel::with_counter_bits(256, counter_bits))
                .collect(),
            len_class: AdaptiveModel::with_counter_bits(17, counter_bits),
            dist_class: AdaptiveModel::with_counter_bits(14, counter_bits),
            history: LiteralHistory::new(),
        }
    }

    /// Block-boundary re-initialization in place (§IV-B's initialization
    /// circuit): identical state to a fresh model set, no reallocation.
    fn reset(&mut self) {
        self.flag.reset();
        for m in &mut self.literal {
            m.reset();
        }
        self.len_class.reset();
        self.dist_class.reset();
        self.history = LiteralHistory::new();
    }
}

struct DwtModels {
    approx: AdaptiveModel,
    detail: AdaptiveModel,
    coeffs: Vec<i32>,
}

impl DwtModels {
    fn new(counter_bits: u32) -> Self {
        Self {
            approx: AdaptiveModel::with_counter_bits(COEFF_CLASSES, counter_bits),
            detail: AdaptiveModel::with_counter_bits(COEFF_CLASSES, counter_bits),
            coeffs: Vec::new(),
        }
    }
}

enum State {
    Lzma(LzmaModels),
    Dwt(DwtModels),
}

/// The Markov-model PE: parse ops or DWT coefficients in, probability
/// triples and direct bits out.
pub struct MaPe {
    mode: MaMode,
    counter_bits: u32,
    state: State,
    out: Fifo,
}

impl std::fmt::Debug for MaPe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaPe")
            .field("mode", &self.mode)
            .field("counter_bits", &self.counter_bits)
            .finish_non_exhaustive()
    }
}

impl MaPe {
    /// Creates an MA PE for a pipeline mode with the given counter width.
    ///
    /// # Panics
    ///
    /// Panics if a DWT mode's `levels` is outside 1–5.
    pub fn new(mode: MaMode, counter_bits: u32) -> Self {
        let state = match mode {
            MaMode::Lzma => State::Lzma(LzmaModels::new(counter_bits)),
            MaMode::Dwt { levels } => {
                assert!((1..=5).contains(&levels), "dwt levels {levels} invalid");
                State::Dwt(DwtModels::new(counter_bits))
            }
        };
        Self {
            mode,
            counter_bits,
            state,
            out: Fifo::new(),
        }
    }

    /// The configured mode.
    pub fn mode(&self) -> MaMode {
        self.mode
    }

    fn emit_probe(out: &mut Fifo, model: &mut AdaptiveModel, symbol: usize) {
        let (cum, freq, total) = model.probe(symbol);
        out.push(Token::Prob { cum, freq, total });
    }

    fn emit_classed(out: &mut Fifo, model: &mut AdaptiveModel, v: u32) {
        let class = 32 - v.leading_zeros();
        Self::emit_probe(out, model, class as usize);
        if class > 1 {
            out.push(Token::Bits {
                value: v & ((1 << (class - 1)) - 1),
                bits: class - 1,
            });
        }
    }

    fn handle_op(&mut self, op: LzOp) {
        let State::Lzma(m) = &mut self.state else {
            panic!("op token arrived at MA PE in DWT mode");
        };
        match op {
            LzOp::Literal(b) => {
                Self::emit_probe(&mut self.out, &mut m.flag, 0);
                let ctx = m.history.context();
                Self::emit_probe(&mut self.out, &mut m.literal[ctx], b as usize);
                m.history.push_literal(b);
            }
            LzOp::Match { len, dist } => {
                Self::emit_probe(&mut self.out, &mut m.flag, 1);
                Self::emit_classed(&mut self.out, &mut m.len_class, len - MIN_MATCH as u32);
                Self::emit_classed(&mut self.out, &mut m.dist_class, dist - 1);
                m.history.push_match(len as usize);
            }
        }
    }

    fn handle_block_end(&mut self, raw_len: u32) {
        match &mut self.state {
            State::Lzma(m) => {
                m.reset();
            }
            State::Dwt(m) => {
                // The upstream DWT PE emits padded coefficient blocks; the
                // approximation band is the first `padded >> levels`.
                let MaMode::Dwt { levels } = self.mode else {
                    unreachable!("state/mode agree by construction");
                };
                let DwtModels {
                    approx,
                    detail,
                    coeffs,
                } = m;
                let approx_len = coeffs.len() >> levels;
                for (i, &c) in coeffs.iter().enumerate() {
                    let z = ((c << 1) ^ (c >> 31)) as u32;
                    let model = if i < approx_len {
                        &mut *approx
                    } else {
                        &mut *detail
                    };
                    Self::emit_classed(&mut self.out, model, z);
                }
                // In-place block-boundary reset; the coefficient staging
                // buffer keeps its capacity for the next block.
                coeffs.clear();
                approx.reset();
                detail.reset();
            }
        }
        self.out.push(Token::BlockEnd { raw_len });
    }
}

impl ProcessingElement for MaPe {
    fn kind(&self) -> PeKind {
        PeKind::Ma
    }

    fn input_ports(&self) -> &[InterfaceKind] {
        match self.mode {
            MaMode::Lzma => &[InterfaceKind::Ops],
            MaMode::Dwt { .. } => &[InterfaceKind::Coeffs],
        }
    }

    fn output_kind(&self) -> InterfaceKind {
        InterfaceKind::Probs
    }

    fn push(&mut self, port: usize, token: Token) -> Result<(), PeError> {
        self.check_port(port, &token)?;
        match token {
            Token::Op(op) => self.handle_op(op),
            Token::Coeff(c) => {
                let State::Dwt(m) = &mut self.state else {
                    unreachable!("coeff tokens only validate in DWT mode");
                };
                m.coeffs.push(c);
            }
            Token::BlockEnd { raw_len } => self.handle_block_end(raw_len),
            _ => unreachable!("validated by check_port"),
        }
        Ok(())
    }

    fn pull(&mut self) -> Option<Token> {
        self.out.pop()
    }

    fn flush(&mut self) {}

    fn output_fifo(&self) -> Option<&Fifo> {
        Some(&self.out)
    }

    fn output_fifo_mut(&mut self) -> Option<&mut Fifo> {
        Some(&mut self.out)
    }

    fn memory_bytes(&self) -> usize {
        // Table III: literal counters 256 bytes at 2 bytes each, plus
        // length/offset tables and the Fenwick structure; max 16.25 KB.
        match &self.state {
            State::Lzma(_) => 2 * (2 + LITERAL_CONTEXTS * 256 + 17 + 14) + 512,
            // Coefficient staging is a simulation convenience; the
            // hardware streams class probes as coefficients arrive.
            State::Dwt(_) => 2 * 2 * COEFF_CLASSES + 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_probes_carry_valid_triples() {
        let mut pe = MaPe::new(MaMode::Lzma, 16);
        pe.push(0, Token::Op(LzOp::Literal(65))).unwrap();
        let flag = pe.pull().expect("flag probe");
        let lit = pe.pull().expect("literal probe");
        for t in [flag, lit] {
            match t {
                Token::Prob { cum, freq, total } => {
                    assert!(freq > 0 && cum + freq <= total);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn match_emits_flag_class_and_bits() {
        let mut pe = MaPe::new(MaMode::Lzma, 16);
        pe.push(0, Token::Op(LzOp::Match { len: 12, dist: 100 }))
            .unwrap();
        let tokens: Vec<_> = std::iter::from_fn(|| pe.pull()).collect();
        // flag + len class + len bits + dist class + dist bits
        assert_eq!(tokens.len(), 5);
        assert!(matches!(tokens[2], Token::Bits { .. }));
        assert!(matches!(tokens[4], Token::Bits { .. }));
    }

    #[test]
    fn block_end_resets_models() {
        let mut a = MaPe::new(MaMode::Lzma, 16);
        // Warm up with some symbols, then reset.
        for _ in 0..10 {
            a.push(0, Token::Op(LzOp::Literal(1))).unwrap();
        }
        a.push(0, Token::BlockEnd { raw_len: 10 }).unwrap();
        while a.pull().is_some() {}
        // After reset, the first literal's probe equals a fresh PE's.
        let mut b = MaPe::new(MaMode::Lzma, 16);
        a.push(0, Token::Op(LzOp::Literal(1))).unwrap();
        b.push(0, Token::Op(LzOp::Literal(1))).unwrap();
        assert_eq!(a.pull(), b.pull());
        assert_eq!(a.pull(), b.pull());
    }

    #[test]
    fn dwt_mode_rejects_ops() {
        let mut pe = MaPe::new(MaMode::Dwt { levels: 1 }, 16);
        assert!(pe.push(0, Token::Op(LzOp::Literal(0))).is_err());
    }
}
