//! LIC processing element.

use crate::error::PeError;
use crate::fifo::Fifo;
use crate::token::{InterfaceKind, Token};
use crate::traits::{PeKind, ProcessingElement};
use halo_kernels::{lic_encode, LzOp};

/// The linear-integer-coding PE: LZ ops in, LZ4-format bytes out.
///
/// Emits each block's payload bytes followed by the block marker so the
/// task layer can frame them for the radio.
#[derive(Debug, Default)]
pub struct LicPe {
    ops: Vec<LzOp>,
    out: Fifo,
}

impl LicPe {
    /// Creates an empty LIC PE.
    pub fn new() -> Self {
        Self::default()
    }

    fn run_block(&mut self, raw_len: u32) {
        let payload = lic_encode(&self.ops);
        self.ops.clear();
        for b in payload {
            self.out.push(Token::Byte(b));
        }
        self.out.push(Token::BlockEnd { raw_len });
    }
}

impl ProcessingElement for LicPe {
    fn kind(&self) -> PeKind {
        PeKind::Lic
    }

    fn input_ports(&self) -> &[InterfaceKind] {
        &[InterfaceKind::Ops]
    }

    fn output_kind(&self) -> InterfaceKind {
        InterfaceKind::Bytes
    }

    fn push(&mut self, port: usize, token: Token) -> Result<(), PeError> {
        self.check_port(port, &token)?;
        match token {
            Token::Op(op) => self.ops.push(op),
            Token::BlockEnd { raw_len } => self.run_block(raw_len),
            _ => unreachable!("validated by check_port"),
        }
        Ok(())
    }

    fn pull(&mut self) -> Option<Token> {
        self.out.pop()
    }

    fn flush(&mut self) {
        if !self.ops.is_empty() {
            let raw_len: u32 = self
                .ops
                .iter()
                .map(|op| match op {
                    LzOp::Literal(_) => 1,
                    LzOp::Match { len, .. } => *len,
                })
                .sum();
            self.run_block(raw_len);
        }
    }

    fn output_fifo(&self) -> Option<&Fifo> {
        Some(&self.out)
    }

    fn output_fifo_mut(&mut self) -> Option<&mut Fifo> {
        Some(&mut self.out)
    }

    fn memory_bytes(&self) -> usize {
        // Table III: a 256-byte literal array plus a small staging FIFO.
        // (The hardware encodes ops as they arrive; whole-block op staging
        // here is a simulation convenience.)
        256 + 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_kernels::{lic_decode, LzMatcher};

    #[test]
    fn pipeline_output_equals_monolithic_encoder() {
        let data = b"gamma oscillations gamma oscillations".to_vec();
        let ops = LzMatcher::new(256).unwrap().parse(&data);
        let want = lic_encode(&ops);
        let mut pe = LicPe::new();
        for &op in &ops {
            pe.push(0, Token::Op(op)).unwrap();
        }
        pe.push(
            0,
            Token::BlockEnd {
                raw_len: data.len() as u32,
            },
        )
        .unwrap();
        let mut got = Vec::new();
        while let Some(t) = pe.pull() {
            if let Token::Byte(b) = t {
                got.push(b);
            }
        }
        assert_eq!(got, want);
        assert_eq!(lic_decode(&got).unwrap(), data);
    }

    #[test]
    fn flush_computes_raw_length() {
        let mut pe = LicPe::new();
        pe.push(0, Token::Op(LzOp::Literal(7))).unwrap();
        pe.push(0, Token::Op(LzOp::Literal(7))).unwrap();
        pe.flush();
        let marker = std::iter::from_fn(|| pe.pull()).find(|t| matches!(t, Token::BlockEnd { .. }));
        assert_eq!(marker, Some(Token::BlockEnd { raw_len: 2 }));
    }
}
