//! NEO processing element.

use crate::error::PeError;
use crate::fifo::Fifo;
use crate::token::{InterfaceKind, Token};
use crate::traits::{PeKind, ProcessingElement};
use halo_kernels::Neo;

/// The nonlinear-energy-operator PE: samples in, energies out.
///
/// The hardware PE runs directly on the frame-interleaved ADC stream at
/// ~3 MHz (Table IV) with per-channel delay registers, so the operator
/// never mixes neighbouring channels. Until a channel is primed (two
/// samples seen) the PE emits zero energy, keeping the output stream in
/// lock-step with the input — the GATE PE downstream pairs data and
/// control one-to-one.
#[derive(Debug)]
pub struct NeoPe {
    lanes: Vec<Neo>,
    next: usize,
    out: Fifo,
}

impl Default for NeoPe {
    fn default() -> Self {
        Self::new()
    }
}

impl NeoPe {
    /// Creates a single-channel NEO PE.
    pub fn new() -> Self {
        Self::with_channels(1)
    }

    /// Creates a NEO PE for a `channels`-way interleaved stream.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn with_channels(channels: usize) -> Self {
        assert!(channels > 0, "need at least one channel");
        Self {
            lanes: vec![Neo::new(); channels],
            next: 0,
            out: Fifo::new(),
        }
    }

    /// Number of interleaved channels.
    pub fn channels(&self) -> usize {
        self.lanes.len()
    }
}

impl ProcessingElement for NeoPe {
    fn kind(&self) -> PeKind {
        PeKind::Neo
    }

    fn input_ports(&self) -> &[InterfaceKind] {
        &[InterfaceKind::Samples]
    }

    fn output_kind(&self) -> InterfaceKind {
        InterfaceKind::Values
    }

    fn push(&mut self, port: usize, token: Token) -> Result<(), PeError> {
        self.check_port(port, &token)?;
        match token {
            Token::Sample(s) => {
                let psi = self.lanes[self.next].process(s).unwrap_or(0);
                self.next = (self.next + 1) % self.lanes.len();
                self.out.push(Token::Value(psi));
            }
            Token::BlockEnd { .. } => {
                for lane in &mut self.lanes {
                    lane.reset();
                }
                self.next = 0;
                self.out.push(token);
            }
            _ => unreachable!("validated by check_port"),
        }
        Ok(())
    }

    fn pull(&mut self) -> Option<Token> {
        self.out.pop()
    }

    fn flush(&mut self) {
        for lane in &mut self.lanes {
            lane.reset();
        }
        self.next = 0;
    }

    fn output_fifo(&self) -> Option<&Fifo> {
        Some(&self.out)
    }

    fn output_fifo_mut(&mut self) -> Option<&mut Fifo> {
        Some(&mut self.out)
    }

    fn memory_bytes(&self) -> usize {
        // Two sample registers per channel (register file, not a macro —
        // Table IV charges NEO no memory power).
        4 * self.lanes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_values(pe: &mut NeoPe) -> Vec<i64> {
        std::iter::from_fn(|| pe.pull())
            .filter_map(|t| match t {
                Token::Value(v) => Some(v),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn single_channel_matches_kernel_after_priming() {
        let xs = [5i16, -3, 17, 200, -40, 8];
        let want = Neo::process_block(&xs);
        let mut pe = NeoPe::new();
        for &x in &xs {
            pe.push(0, Token::Sample(x)).unwrap();
        }
        let got = drain_values(&mut pe);
        assert_eq!(got.len(), xs.len(), "one output per input");
        assert_eq!(&got[..2], &[0, 0], "priming zeros");
        assert_eq!(&got[2..], &want[..got.len() - 2]);
    }

    #[test]
    fn channels_do_not_mix() {
        // Channel 0: a big spike; channel 1: all zeros. Interleave them.
        let mut pe = NeoPe::with_channels(2);
        let ch0 = [0i16, 0, 1000, 0, 0];
        for &a in &ch0 {
            pe.push(0, Token::Sample(a)).unwrap();
            pe.push(0, Token::Sample(0)).unwrap();
        }
        let got = drain_values(&mut pe);
        // Outputs alternate ch0, ch1; every ch1 output must be zero.
        let ch1_energy: i64 = got.iter().skip(1).step_by(2).map(|v| v.abs()).sum();
        assert_eq!(ch1_energy, 0, "channel 1 polluted: {got:?}");
        let ch0_peak = got.iter().step_by(2).cloned().max().unwrap();
        assert_eq!(ch0_peak, 1000 * 1000);
    }

    #[test]
    fn output_rate_equals_input_rate() {
        let mut pe = NeoPe::with_channels(3);
        for i in 0..30i16 {
            pe.push(0, Token::Sample(i)).unwrap();
        }
        assert_eq!(drain_values(&mut pe).len(), 30);
    }

    #[test]
    fn rejects_wrong_interface() {
        let mut pe = NeoPe::new();
        assert!(pe.push(0, Token::Byte(1)).is_err());
        assert!(pe.push(1, Token::Sample(1)).is_err());
    }
}
