//! XCOR processing element.

use crate::error::PeError;
use crate::fifo::Fifo;
use crate::token::{InterfaceKind, Token};
use crate::traits::{PeKind, ProcessingElement};
use halo_kernels::{BlockXcor, ChannelBlock, StreamingXcor, XcorConfig};

/// Which XCOR algorithm the PE runs — the Figure 6 (left) ablation knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XcorVariant {
    /// Algorithm 2: buffer the window, compute in a burst.
    Naive,
    /// Algorithm 3: spatially-reprogrammed streaming computation.
    Streaming,
}

enum Engine {
    Naive(BlockXcor),
    Streaming(StreamingXcor),
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Engine::Naive(_) => f.write_str("Engine::Naive"),
            Engine::Streaming(_) => f.write_str("Engine::Streaming"),
        }
    }
}

/// The cross-correlation PE: interleaved frames in, fixed-point
/// correlations (Q14, one [`Token::Value`] per pair) out at each window
/// boundary.
#[derive(Debug)]
pub struct XcorPe {
    engine: Engine,
    channels: usize,
    frame: Vec<i16>,
    out: Fifo,
    // Reusable SoA pivot for the batched push path.
    scratch: ChannelBlock,
}

impl XcorPe {
    /// Fixed-point scale of emitted correlations (Q14).
    pub const SCALE: f64 = 16_384.0;

    /// Creates an XCOR PE.
    pub fn new(config: XcorConfig, variant: XcorVariant) -> Self {
        let channels = config.channels();
        let engine = match variant {
            XcorVariant::Naive => Engine::Naive(BlockXcor::new(config)),
            XcorVariant::Streaming => Engine::Streaming(StreamingXcor::new(config)),
        };
        Self {
            engine,
            channels,
            frame: Vec::new(),
            out: Fifo::new(),
            scratch: ChannelBlock::new(),
        }
    }

    /// Which algorithm this instance runs.
    pub fn variant(&self) -> XcorVariant {
        match self.engine {
            Engine::Naive(_) => XcorVariant::Naive,
            Engine::Streaming(_) => XcorVariant::Streaming,
        }
    }

    fn push_frame(&mut self) {
        let result = match &mut self.engine {
            Engine::Naive(x) => x.push_frame(&self.frame),
            Engine::Streaming(x) => x.push_frame(&self.frame),
        };
        self.frame.clear();
        if let Some(correlations) = result {
            for r in correlations {
                self.out.push(Token::Value((r * Self::SCALE) as i64));
            }
        }
    }
}

impl ProcessingElement for XcorPe {
    fn kind(&self) -> PeKind {
        PeKind::Xcor
    }

    fn input_ports(&self) -> &[InterfaceKind] {
        &[InterfaceKind::Samples]
    }

    fn output_kind(&self) -> InterfaceKind {
        InterfaceKind::Values
    }

    fn push(&mut self, port: usize, token: Token) -> Result<(), PeError> {
        self.check_port(port, &token)?;
        match token {
            Token::Sample(s) => {
                self.frame.push(s);
                if self.frame.len() == self.channels {
                    self.push_frame();
                }
            }
            Token::BlockEnd { .. } => self.out.push(token),
            _ => unreachable!("validated by check_port"),
        }
        Ok(())
    }

    fn pull(&mut self) -> Option<Token> {
        self.out.pop()
    }

    fn quiet_frames(&self, frame_samples: usize) -> u64 {
        if frame_samples != self.channels || !self.frame.is_empty() {
            return 0;
        }
        let until = match &self.engine {
            Engine::Naive(x) => x.frames_until_emit(),
            Engine::Streaming(x) => x.frames_until_emit(),
        };
        // The emitting frame itself is not quiet.
        (until as u64).saturating_sub(1)
    }

    fn push_samples(&mut self, port: usize, samples: &[i16]) -> Result<(), PeError> {
        self.check_port(port, &Token::Sample(0))?;
        // Mid-frame state or ragged input: keep the per-sample adapter.
        if !self.frame.is_empty() || !samples.len().is_multiple_of(self.channels) {
            for &s in samples {
                self.push(port, Token::Sample(s))?;
            }
            return Ok(());
        }
        let mut results = Vec::new();
        match &mut self.engine {
            Engine::Naive(x) => x.push_interleaved(samples, &mut results),
            Engine::Streaming(x) => {
                self.scratch.fill_from_interleaved(samples, self.channels);
                x.push_block(&self.scratch, &mut results);
            }
        }
        for correlations in results {
            for r in correlations {
                self.out.push(Token::Value((r * Self::SCALE) as i64));
            }
        }
        Ok(())
    }

    fn flush(&mut self) {
        self.frame.clear();
    }

    fn output_fifo(&self) -> Option<&Fifo> {
        Some(&self.out)
    }

    fn output_fifo_mut(&mut self) -> Option<&mut Fifo> {
        Some(&mut self.out)
    }

    fn memory_bytes(&self) -> usize {
        2 * match &self.engine {
            Engine::Naive(x) => x.buffer_samples(),
            Engine::Streaming(x) => x.buffer_samples(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> XcorConfig {
        XcorConfig::new(2, 16, 0, vec![(0, 1)]).unwrap()
    }

    #[test]
    fn variants_agree() {
        let mut a = XcorPe::new(config(), XcorVariant::Naive);
        let mut b = XcorPe::new(config(), XcorVariant::Streaming);
        for t in 0..64i16 {
            for ch in [t * 3 % 50, t * 7 % 50 - 25] {
                a.push(0, Token::Sample(ch)).unwrap();
                b.push(0, Token::Sample(ch)).unwrap();
            }
        }
        let va: Vec<_> = std::iter::from_fn(|| a.pull()).collect();
        let vb: Vec<_> = std::iter::from_fn(|| b.pull()).collect();
        assert_eq!(va.len(), 4); // 64 frames / 16-frame windows
        assert_eq!(va, vb);
    }

    #[test]
    fn identical_channels_score_full_scale() {
        let mut pe = XcorPe::new(config(), XcorVariant::Streaming);
        for t in 0..16i16 {
            let v = t * 11 % 40 - 20;
            pe.push(0, Token::Sample(v)).unwrap();
            pe.push(0, Token::Sample(v)).unwrap();
        }
        match pe.pull() {
            Some(Token::Value(v)) => assert_eq!(v, XcorPe::SCALE as i64),
            other => panic!("expected value, got {other:?}"),
        }
    }

    #[test]
    fn streaming_buffer_is_smaller() {
        let cfg = XcorConfig::new(8, 512, 16, vec![(0, 1)]).unwrap();
        let naive = XcorPe::new(cfg.clone(), XcorVariant::Naive);
        let streaming = XcorPe::new(cfg, XcorVariant::Streaming);
        assert!(streaming.memory_bytes() < naive.memory_bytes() / 4);
    }
}
