//! AES processing element.

use crate::error::PeError;
use crate::fifo::Fifo;
use crate::token::{InterfaceKind, Token};
use crate::traits::{PeKind, ProcessingElement};
use halo_kernels::Aes128;

/// The AES-128 PE: plaintext bytes in, ECB ciphertext bytes out.
///
/// Buffers 16-byte blocks; `flush` zero-pads a trailing partial block, as
/// the exfiltration framing records true lengths out of band.
#[derive(Debug)]
pub struct AesPe {
    aes: Aes128,
    block: Vec<u8>,
    from_samples: bool,
    out: Fifo,
}

impl AesPe {
    /// Creates an AES PE with the given 128-bit key.
    pub fn new(key: [u8; 16]) -> Self {
        Self {
            aes: Aes128::new(key),
            block: Vec::with_capacity(16),
            from_samples: false,
            out: Fifo::new(),
        }
    }

    /// Configures the input adapter to accept 16-bit samples, serializing
    /// them little-endian.
    pub fn from_samples(mut self) -> Self {
        self.from_samples = true;
        self
    }

    fn emit_block(&mut self) {
        let mut buf = [0u8; 16];
        buf[..self.block.len()].copy_from_slice(&self.block);
        self.block.clear();
        self.aes.encrypt_block(&mut buf);
        for b in buf {
            self.out.push(Token::Byte(b));
        }
    }
}

impl ProcessingElement for AesPe {
    fn kind(&self) -> PeKind {
        PeKind::Aes
    }

    fn input_ports(&self) -> &[InterfaceKind] {
        if self.from_samples {
            &[InterfaceKind::Samples]
        } else {
            &[InterfaceKind::Bytes]
        }
    }

    fn output_kind(&self) -> InterfaceKind {
        InterfaceKind::Bytes
    }

    fn push(&mut self, port: usize, token: Token) -> Result<(), PeError> {
        self.check_port(port, &token)?;
        match token {
            Token::Byte(b) => {
                self.block.push(b);
                if self.block.len() == 16 {
                    self.emit_block();
                }
            }
            Token::Sample(s) => {
                self.block.extend_from_slice(&s.to_le_bytes());
                if self.block.len() >= 16 {
                    self.emit_block();
                }
            }
            Token::BlockEnd { .. } => {
                if !self.block.is_empty() {
                    self.emit_block();
                }
                self.out.push(token);
            }
            _ => unreachable!("validated by check_port"),
        }
        Ok(())
    }

    fn pull(&mut self) -> Option<Token> {
        self.out.pop()
    }

    fn flush(&mut self) {
        if !self.block.is_empty() {
            self.emit_block();
        }
    }

    fn output_fifo(&self) -> Option<&Fifo> {
        Some(&self.out)
    }

    fn output_fifo_mut(&mut self) -> Option<&mut Fifo> {
        Some(&mut self.out)
    }

    fn memory_bytes(&self) -> usize {
        // Round keys (11 × 16) + state + staging block.
        11 * 16 + 16 + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_kernel_ecb() {
        let key = [3u8; 16];
        let data: Vec<u8> = (0..40).collect(); // 2.5 blocks
        let want = Aes128::new(key).encrypt_ecb(&data);
        let mut pe = AesPe::new(key);
        for &b in &data {
            pe.push(0, Token::Byte(b)).unwrap();
        }
        pe.flush();
        let got: Vec<u8> = std::iter::from_fn(|| pe.pull())
            .filter_map(|t| match t {
                Token::Byte(b) => Some(b),
                _ => None,
            })
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn ciphertext_decrypts_back() {
        let key = [9u8; 16];
        let data = b"neural telemetry".to_vec(); // exactly one block
        let mut pe = AesPe::new(key);
        for &b in &data {
            pe.push(0, Token::Byte(b)).unwrap();
        }
        let ct: Vec<u8> = std::iter::from_fn(|| pe.pull())
            .filter_map(|t| match t {
                Token::Byte(b) => Some(b),
                _ => None,
            })
            .collect();
        assert_eq!(Aes128::new(key).decrypt_ecb(&ct), data);
    }

    #[test]
    fn no_output_until_block_fills() {
        let mut pe = AesPe::new([0u8; 16]);
        for b in 0..15u8 {
            pe.push(0, Token::Byte(b)).unwrap();
        }
        assert_eq!(pe.pull(), None);
        pe.push(0, Token::Byte(15)).unwrap();
        assert!(pe.pull().is_some());
    }
}
