//! Hjorth-parameter processing element (§VII extension).
//!
//! Packages the [`halo_kernels::hjorth`] kernel as an additional feature
//! PE for the seizure-prediction pipeline: per feature window it emits
//! three values (activity, mobility, complexity) per selected channel,
//! demonstrating the extensibility claim of §IV ("our architecture will
//! naturally permit insertion of additional PEs for emerging
//! neuroscientific algorithms").
//!
//! It reuses the DWT PE's Table IV power class (small logic, window
//! memory) via [`PeKind::Dwt`]-adjacent accounting in experiments; for
//! the framework it reports under its own kind-less wrapper is not
//! possible, so it reuses [`PeKind::Svm`]'s conservative anchor when
//! reported. The power delta is negligible either way (<0.2 mW).

use crate::error::PeError;
use crate::fifo::Fifo;
use crate::token::{InterfaceKind, Token};
use crate::traits::{PeKind, ProcessingElement};
use halo_kernels::hjorth::hjorth;
use halo_kernels::ChannelBlock;

/// The Hjorth feature PE.
#[derive(Debug)]
pub struct HjorthPe {
    channels: usize,
    window_frames: usize,
    lanes: Vec<Option<Vec<i16>>>,
    frame_pos: usize,
    frames_seen: usize,
    out: Fifo,
    // Reusable SoA pivot for the batched push path.
    scratch: ChannelBlock,
}

impl HjorthPe {
    /// Creates a Hjorth PE over `channels` interleaved channels computing
    /// features for the selected subset per window of `window_frames`.
    ///
    /// # Panics
    ///
    /// Panics if `channels` or `window_frames` is zero, `select` is empty,
    /// or a selected channel is out of range.
    pub fn new(channels: usize, select: &[u8], window_frames: usize) -> Self {
        assert!(channels > 0, "need at least one channel");
        assert!(window_frames > 0, "window must be positive");
        assert!(!select.is_empty(), "select at least one channel");
        let mut lanes: Vec<Option<Vec<i16>>> = vec![None; channels];
        for &c in select {
            assert!((c as usize) < channels, "selected channel {c} out of range");
            lanes[c as usize] = Some(Vec::with_capacity(window_frames));
        }
        Self {
            channels,
            window_frames,
            lanes,
            frame_pos: 0,
            frames_seen: 0,
            out: Fifo::new(),
            scratch: ChannelBlock::new(),
        }
    }

    /// Values emitted per window (3 per selected channel).
    pub fn values_per_window(&self) -> usize {
        3 * self.lanes.iter().flatten().count()
    }

    fn emit_window(&mut self) {
        for lane in self.lanes.iter_mut().flatten() {
            let params = hjorth(lane);
            for v in params.to_features() {
                self.out.push(Token::Value(v));
            }
            lane.clear();
        }
        self.frames_seen = 0;
    }
}

impl ProcessingElement for HjorthPe {
    fn kind(&self) -> PeKind {
        // No Table IV row exists for this extension PE; account it under
        // the SVM anchor (same order of logic+window memory).
        PeKind::Svm
    }

    fn input_ports(&self) -> &[InterfaceKind] {
        &[InterfaceKind::Samples]
    }

    fn output_kind(&self) -> InterfaceKind {
        InterfaceKind::Values
    }

    fn push(&mut self, port: usize, token: Token) -> Result<(), PeError> {
        self.check_port(port, &token)?;
        match token {
            Token::Sample(s) => {
                let c = self.frame_pos;
                if let Some(lane) = &mut self.lanes[c] {
                    lane.push(s);
                }
                self.frame_pos = (self.frame_pos + 1) % self.channels;
                if self.frame_pos == 0 {
                    self.frames_seen += 1;
                    if self.frames_seen == self.window_frames {
                        self.emit_window();
                    }
                }
            }
            Token::BlockEnd { .. } => self.out.push(token),
            _ => unreachable!("validated by check_port"),
        }
        Ok(())
    }

    fn pull(&mut self) -> Option<Token> {
        self.out.pop()
    }

    fn quiet_frames(&self, frame_samples: usize) -> u64 {
        if frame_samples != self.channels || self.frame_pos != 0 {
            return 0;
        }
        // The window-completing frame itself is not quiet.
        ((self.window_frames - self.frames_seen) as u64).saturating_sub(1)
    }

    fn push_samples(&mut self, port: usize, samples: &[i16]) -> Result<(), PeError> {
        self.check_port(port, &Token::Sample(0))?;
        if self.frame_pos != 0 || !samples.len().is_multiple_of(self.channels) {
            for &s in samples {
                self.push(port, Token::Sample(s))?;
            }
            return Ok(());
        }
        let frames = samples.len() / self.channels;
        self.scratch.fill_from_interleaved(samples, self.channels);
        let mut f = 0;
        while f < frames {
            let run = (self.window_frames - self.frames_seen).min(frames - f);
            // Bulk-extend each selected lane from its contiguous row —
            // one memcpy per lane instead of a strided push per sample.
            for (c, lane) in self.lanes.iter_mut().enumerate() {
                if let Some(lane) = lane {
                    lane.extend_from_slice(&self.scratch.channel(c)[f..f + run]);
                }
            }
            self.frames_seen += run;
            f += run;
            if self.frames_seen == self.window_frames {
                self.emit_window();
            }
        }
        Ok(())
    }

    fn flush(&mut self) {
        if self.frames_seen > 0 {
            self.emit_window();
        }
        self.frame_pos = 0;
    }

    fn output_fifo(&self) -> Option<&Fifo> {
        Some(&self.out)
    }

    fn output_fifo_mut(&mut self) -> Option<&mut Fifo> {
        Some(&mut self.out)
    }

    fn memory_bytes(&self) -> usize {
        self.lanes.iter().flatten().count() * self.window_frames * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(pe: &mut HjorthPe) -> Vec<i64> {
        std::iter::from_fn(|| pe.pull())
            .filter_map(|t| match t {
                Token::Value(v) => Some(v),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn emits_three_features_per_selected_channel() {
        let mut pe = HjorthPe::new(3, &[0, 2], 16);
        assert_eq!(pe.values_per_window(), 6);
        for t in 0..16 {
            for c in 0..3i16 {
                pe.push(0, Token::Sample(t as i16 * (c + 1) * 50)).unwrap();
            }
        }
        let v = drain(&mut pe);
        assert_eq!(v.len(), 6);
    }

    #[test]
    fn matches_the_kernel() {
        let samples: Vec<i16> = (0..64)
            .map(|t| (3000.0 * (std::f64::consts::TAU * t as f64 / 16.0).sin()) as i16)
            .collect();
        let mut pe = HjorthPe::new(1, &[0], 64);
        for &s in &samples {
            pe.push(0, Token::Sample(s)).unwrap();
        }
        let got = drain(&mut pe);
        let want = hjorth(&samples).to_features();
        assert_eq!(got, want.to_vec());
    }

    #[test]
    fn flush_emits_partial_window() {
        let mut pe = HjorthPe::new(1, &[0], 100);
        for s in 0..30i16 {
            pe.push(0, Token::Sample(s * 100)).unwrap();
        }
        assert!(drain(&mut pe).is_empty());
        pe.flush();
        assert_eq!(drain(&mut pe).len(), 3);
    }
}
