//! RC processing element.

use crate::error::PeError;
use crate::fifo::Fifo;
use crate::token::{InterfaceKind, Token};
use crate::traits::{PeKind, ProcessingElement};
use halo_kernels::RangeEncoder;

/// The range-coder PE: probability triples and direct bits in, encoded
/// bytes out. The encoder state (blue in Figure 3) lives here; the
/// frequency tables live upstream in MA.
///
/// Bytes stream out as the coder renormalizes; at each block marker the
/// coder flushes, emits its tail bytes, forwards the marker, and restarts.
#[derive(Debug)]
pub struct RcPe {
    enc: Option<RangeEncoder>,
    emitted: usize,
    out: Fifo,
}

impl Default for RcPe {
    fn default() -> Self {
        Self::new()
    }
}

impl RcPe {
    /// Creates an RC PE with a fresh encoder.
    pub fn new() -> Self {
        Self {
            enc: Some(RangeEncoder::new()),
            emitted: 0,
            out: Fifo::new(),
        }
    }

    /// Streams any newly renormalized bytes out of the encoder.
    fn drain_encoder(&mut self) {
        // Disjoint field borrows: read the encoder's append-only buffer
        // while pushing into the output FIFO, no intermediate copy.
        let Self { enc, emitted, out } = self;
        let enc = enc.as_ref().expect("encoder present between blocks");
        let n = enc.bytes_written();
        if n > *emitted {
            for &b in &enc.as_bytes()[*emitted..n] {
                out.push(Token::Byte(b));
            }
            *emitted = n;
        }
    }
}

impl ProcessingElement for RcPe {
    fn kind(&self) -> PeKind {
        PeKind::Rc
    }

    fn input_ports(&self) -> &[InterfaceKind] {
        &[InterfaceKind::Probs]
    }

    fn output_kind(&self) -> InterfaceKind {
        InterfaceKind::Bytes
    }

    fn push(&mut self, port: usize, token: Token) -> Result<(), PeError> {
        self.check_port(port, &token)?;
        match token {
            Token::Prob { cum, freq, total } => {
                self.enc
                    .as_mut()
                    .expect("encoder present between blocks")
                    .encode(cum, freq, total);
                self.drain_encoder();
            }
            Token::Bits { value, bits } => {
                self.enc
                    .as_mut()
                    .expect("encoder present between blocks")
                    .encode_bits(value, bits);
                self.drain_encoder();
            }
            Token::BlockEnd { raw_len } => {
                let enc = self.enc.take().expect("encoder present between blocks");
                let bytes = enc.finish();
                for &b in &bytes[self.emitted..] {
                    self.out.push(Token::Byte(b));
                }
                self.out.push(Token::BlockEnd { raw_len });
                self.enc = Some(RangeEncoder::new());
                self.emitted = 0;
            }
            _ => unreachable!("validated by check_port"),
        }
        Ok(())
    }

    fn pull(&mut self) -> Option<Token> {
        self.out.pop()
    }

    fn flush(&mut self) {}

    fn output_fifo(&self) -> Option<&Fifo> {
        Some(&self.out)
    }

    fn output_fifo_mut(&mut self) -> Option<&mut Fifo> {
        Some(&mut self.out)
    }

    fn memory_bytes(&self) -> usize {
        // Coder registers only — Table IV charges RC no memory macro.
        16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_kernels::RangeDecoder;

    #[test]
    fn pipeline_bytes_decode_correctly() {
        // Encode a fixed symbol sequence through the PE and decode with the
        // kernel decoder.
        let freqs = [(0u32, 5u32), (5, 3), (8, 2)]; // (cum, freq), total 10
        let symbols = [0usize, 1, 0, 2, 0, 0, 1];
        let mut pe = RcPe::new();
        for &s in &symbols {
            let (cum, freq) = freqs[s];
            pe.push(
                0,
                Token::Prob {
                    cum,
                    freq,
                    total: 10,
                },
            )
            .unwrap();
        }
        pe.push(
            0,
            Token::BlockEnd {
                raw_len: symbols.len() as u32,
            },
        )
        .unwrap();
        let mut bytes = Vec::new();
        while let Some(t) = pe.pull() {
            if let Token::Byte(b) = t {
                bytes.push(b);
            }
        }
        let mut dec = RangeDecoder::new(&bytes);
        for &s in &symbols {
            let target = dec.decode_freq(10);
            let sym = freqs.iter().rposition(|&(c, _)| c <= target).unwrap();
            assert_eq!(sym, s);
            let (cum, freq) = freqs[sym];
            dec.decode_update(cum, freq, 10);
        }
    }

    #[test]
    fn block_end_restarts_encoder() {
        let mut pe = RcPe::new();
        pe.push(
            0,
            Token::Prob {
                cum: 0,
                freq: 1,
                total: 2,
            },
        )
        .unwrap();
        pe.push(0, Token::BlockEnd { raw_len: 1 }).unwrap();
        let first: Vec<_> = std::iter::from_fn(|| pe.pull()).collect();
        pe.push(
            0,
            Token::Prob {
                cum: 0,
                freq: 1,
                total: 2,
            },
        )
        .unwrap();
        pe.push(0, Token::BlockEnd { raw_len: 1 }).unwrap();
        let second: Vec<_> = std::iter::from_fn(|| pe.pull()).collect();
        assert_eq!(first, second, "fresh encoder per block");
    }
}
