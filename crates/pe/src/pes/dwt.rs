//! DWT processing element.

use crate::error::PeError;
use crate::fifo::Fifo;
use crate::token::{InterfaceKind, Token};
use crate::traits::{PeKind, ProcessingElement};
use halo_kernels::Dwt;

/// Operating mode of the DWT PE — the configurability that lets spike
/// detection and compression share it (§IV-A: "spike detection requires
/// recursive applications of DWT … while compression requires only one").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DwtMode {
    /// Spike detection: emit deepest-level detail magnitudes as values.
    SpikeDetect,
    /// Compression: emit all coefficients followed by a block marker, for
    /// the MA/RC pair downstream.
    Compress,
}

/// The discrete-wavelet-transform PE.
#[derive(Debug)]
pub struct DwtPe {
    dwt: Dwt,
    mode: DwtMode,
    block_samples: usize,
    buffer: Vec<i16>,
    out: Fifo,
}

impl DwtPe {
    /// Creates a DWT PE operating on blocks of `block_samples` (rounded up
    /// to the transform granularity).
    ///
    /// # Panics
    ///
    /// Panics if `block_samples` is zero.
    pub fn new(dwt: Dwt, mode: DwtMode, block_samples: usize) -> Self {
        assert!(block_samples > 0, "block size must be positive");
        let m = dwt.block_multiple();
        Self {
            dwt,
            mode,
            block_samples: block_samples.div_ceil(m) * m,
            buffer: Vec::new(),
            out: Fifo::new(),
        }
    }

    /// Configured recursion depth.
    pub fn levels(&self) -> usize {
        self.dwt.levels()
    }

    /// Configured block size in samples.
    pub fn block_samples(&self) -> usize {
        self.block_samples
    }

    fn run_block(&mut self, raw_len: usize) {
        if raw_len == 0 {
            return;
        }
        let m = self.dwt.block_multiple();
        let padded = raw_len.div_ceil(m) * m;
        let mut coeffs: Vec<i32> = self.buffer.iter().map(|&s| s as i32).collect();
        coeffs.resize(padded, 0);
        self.dwt.forward(&mut coeffs);
        match self.mode {
            DwtMode::SpikeDetect => {
                for &d in self.dwt.deepest_detail(&coeffs) {
                    self.out.push(Token::Value(d.abs() as i64));
                }
            }
            DwtMode::Compress => {
                for &c in &coeffs {
                    self.out.push(Token::Coeff(c));
                }
                self.out.push(Token::BlockEnd {
                    raw_len: raw_len as u32,
                });
            }
        }
        self.buffer.clear();
    }
}

impl ProcessingElement for DwtPe {
    fn kind(&self) -> PeKind {
        PeKind::Dwt
    }

    fn input_ports(&self) -> &[InterfaceKind] {
        &[InterfaceKind::Samples]
    }

    fn output_kind(&self) -> InterfaceKind {
        match self.mode {
            DwtMode::SpikeDetect => InterfaceKind::Values,
            DwtMode::Compress => InterfaceKind::Coeffs,
        }
    }

    fn push(&mut self, port: usize, token: Token) -> Result<(), PeError> {
        self.check_port(port, &token)?;
        match token {
            Token::Sample(s) => {
                self.buffer.push(s);
                if self.buffer.len() == self.block_samples {
                    self.run_block(self.block_samples);
                }
            }
            Token::BlockEnd { .. } => {
                let len = self.buffer.len();
                self.run_block(len);
            }
            _ => unreachable!("validated by check_port"),
        }
        Ok(())
    }

    fn pull(&mut self) -> Option<Token> {
        self.out.pop()
    }

    fn flush(&mut self) {
        let len = self.buffer.len();
        self.run_block(len);
    }

    fn output_fifo(&self) -> Option<&Fifo> {
        Some(&self.out)
    }

    fn output_fifo_mut(&mut self) -> Option<&mut Fifo> {
        Some(&mut self.out)
    }

    fn memory_bytes(&self) -> usize {
        // Hardware requirement: lifting line buffers per level plus a
        // small reorder FIFO (Table IV charges DWT no memory macro). The
        // software block buffer is a simulation convenience.
        self.dwt.levels() * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compress_mode_emits_coeffs_and_marker() {
        let dwt = Dwt::new(1).unwrap();
        let mut pe = DwtPe::new(dwt, DwtMode::Compress, 8);
        for s in 0..8i16 {
            pe.push(0, Token::Sample(s * 100)).unwrap();
        }
        let tokens: Vec<_> = std::iter::from_fn(|| pe.pull()).collect();
        assert_eq!(tokens.len(), 9);
        assert!(matches!(tokens[8], Token::BlockEnd { raw_len: 8 }));
        // Coefficients match the kernel directly.
        let want = Dwt::new(1)
            .unwrap()
            .forward_i16(&(0..8).map(|s| s * 100).collect::<Vec<i16>>());
        for (t, w) in tokens[..8].iter().zip(want) {
            assert_eq!(*t, Token::Coeff(w));
        }
    }

    #[test]
    fn spike_mode_lights_up_on_transient() {
        let dwt = Dwt::new(3).unwrap();
        let mut pe = DwtPe::new(dwt, DwtMode::SpikeDetect, 64);
        for i in 0..64 {
            let s = if i == 32 { 12_000 } else { 0 };
            pe.push(0, Token::Sample(s)).unwrap();
        }
        let values: Vec<i64> = std::iter::from_fn(|| pe.pull())
            .map(|t| match t {
                Token::Value(v) => v,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(values.len(), 8); // 64 / 2^3
        assert!(values.iter().any(|&v| v > 1000), "{values:?}");
    }

    #[test]
    fn flush_pads_partial_block() {
        let dwt = Dwt::new(2).unwrap();
        let mut pe = DwtPe::new(dwt, DwtMode::Compress, 16);
        for s in 0..5i16 {
            pe.push(0, Token::Sample(s)).unwrap();
        }
        pe.flush();
        let tokens: Vec<_> = std::iter::from_fn(|| pe.pull()).collect();
        // Padded to 8 coefficients + marker with the true length.
        assert_eq!(tokens.len(), 9);
        assert!(matches!(tokens[8], Token::BlockEnd { raw_len: 5 }));
    }
}
