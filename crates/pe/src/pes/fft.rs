//! FFT processing element.

use crate::error::PeError;
use crate::fifo::Fifo;
use crate::token::{InterfaceKind, Token};
use crate::traits::{PeKind, ProcessingElement};
use halo_kernels::{ChannelBlock, Fft};

/// The FFT PE: per-channel transform windows over a frame-interleaved
/// stream, emitting one band-power value per (selected channel × band) per
/// window.
///
/// Configurability is what lets movement intent and seizure prediction
/// share the PE (§IV-A): the point count (up to 1024), the band list, the
/// channel subset, and an input decimation factor (the input adapter
/// averages `decimate` consecutive samples, conditioning slow rhythms like
/// the 14–25 Hz beta band into the transform's resolvable range — a 30 kHz
/// window of 1024 raw samples spans only 34 ms, far too short to resolve
/// beta).
#[derive(Debug)]
pub struct FftPe {
    fft: Fft,
    effective_rate_hz: f64,
    bands: Vec<(f64, f64)>,
    channels: usize,
    decimate: usize,
    // Per-channel decimation accumulators and window buffers; `None` for
    // unselected channels.
    lanes: Vec<Option<Lane>>,
    frame_pos: usize,
    out: Fifo,
    // Reusable SoA pivot for the batched push path.
    scratch: ChannelBlock,
}

#[derive(Debug, Clone, Default)]
struct Lane {
    acc: i64,
    acc_n: usize,
    window: Vec<i16>,
}

impl FftPe {
    /// Creates a single-channel FFT PE without decimation.
    pub fn new(fft: Fft, sample_rate_hz: u32, bands: Vec<(f64, f64)>) -> Self {
        Self::with_channels(fft, sample_rate_hz, bands, 1, &[0], 1)
    }

    /// Creates an FFT PE over `channels` interleaved channels, transforming
    /// the selected subset with `decimate`-fold input averaging.
    ///
    /// # Panics
    ///
    /// Panics if `bands` or `select` is empty, the sample rate or
    /// `decimate` is zero, `channels` is zero, or a selected channel is out
    /// of range.
    pub fn with_channels(
        fft: Fft,
        sample_rate_hz: u32,
        bands: Vec<(f64, f64)>,
        channels: usize,
        select: &[u8],
        decimate: usize,
    ) -> Self {
        assert!(!bands.is_empty(), "need at least one band");
        assert!(sample_rate_hz > 0, "sample rate must be positive");
        assert!(channels > 0, "need at least one channel");
        assert!(!select.is_empty(), "select at least one channel");
        assert!(decimate > 0, "decimation factor must be positive");
        let mut lanes: Vec<Option<Lane>> = vec![None; channels];
        for &c in select {
            assert!((c as usize) < channels, "selected channel {c} out of range");
            lanes[c as usize] = Some(Lane::default());
        }
        Self {
            fft,
            effective_rate_hz: sample_rate_hz as f64 / decimate as f64,
            bands,
            channels,
            decimate,
            lanes,
            frame_pos: 0,
            out: Fifo::new(),
            scratch: ChannelBlock::new(),
        }
    }

    /// Configured transform size.
    pub fn points(&self) -> usize {
        self.fft.points()
    }

    /// Configured bands.
    pub fn bands(&self) -> &[(f64, f64)] {
        &self.bands
    }

    /// Window duration covered by one transform, in input frames.
    pub fn window_frames(&self) -> usize {
        self.fft.points() * self.decimate
    }

    /// Number of values emitted per completed window (selected channels ×
    /// bands).
    pub fn values_per_window(&self) -> usize {
        self.lanes.iter().flatten().count() * self.bands.len()
    }

    fn push_sample(&mut self, s: i16) {
        let c = self.frame_pos;
        self.frame_pos = (self.frame_pos + 1) % self.channels;
        let decimate = self.decimate;
        let points = self.fft.points();
        let Some(lane) = &mut self.lanes[c] else {
            return;
        };
        lane.acc += s as i64;
        lane.acc_n += 1;
        if lane.acc_n == decimate {
            let avg = (lane.acc / decimate as i64) as i16;
            lane.acc = 0;
            lane.acc_n = 0;
            lane.window.push(avg);
            if lane.window.len() == points {
                let window = std::mem::take(&mut lane.window);
                let spectrum = self.fft.power_spectrum(&window);
                let rate = self.effective_rate_hz as u32;
                for &(lo, hi) in &self.bands {
                    let p = self.fft.band_power(&spectrum, rate, lo, hi);
                    self.out.push(Token::Value(p as i64));
                }
            }
        }
    }

    /// Samples per lane until the next transform fires. Every selected
    /// lane advances in lockstep (one sample per frame, same decimation,
    /// same window length), so the first lane speaks for all of them.
    fn samples_until_emit(&self) -> Option<usize> {
        let lane = self.lanes.iter().flatten().next()?;
        Some((self.fft.points() - lane.window.len()) * self.decimate - lane.acc_n)
    }

    /// Transforms every selected lane's (full) window and emits band
    /// powers in channel order — exactly the order the scalar path
    /// produces, because lockstepped lanes complete within one frame and
    /// the frame visits channels in index order.
    fn emit_all_lanes(&mut self) {
        let windows: Vec<Vec<i16>> = self
            .lanes
            .iter_mut()
            .flatten()
            .map(|lane| std::mem::take(&mut lane.window))
            .collect();
        let refs: Vec<&[i16]> = windows.iter().map(|w| w.as_slice()).collect();
        let spectra = self.fft.power_spectrum_lanes(&refs);
        let rate = self.effective_rate_hz as u32;
        for spectrum in &spectra {
            for &(lo, hi) in &self.bands {
                let p = self.fft.band_power(spectrum, rate, lo, hi);
                self.out.push(Token::Value(p as i64));
            }
        }
    }
}

impl ProcessingElement for FftPe {
    fn kind(&self) -> PeKind {
        PeKind::Fft
    }

    fn input_ports(&self) -> &[InterfaceKind] {
        &[InterfaceKind::Samples]
    }

    fn output_kind(&self) -> InterfaceKind {
        InterfaceKind::Values
    }

    fn push(&mut self, port: usize, token: Token) -> Result<(), PeError> {
        self.check_port(port, &token)?;
        match token {
            Token::Sample(s) => self.push_sample(s),
            Token::BlockEnd { .. } => self.out.push(token),
            _ => unreachable!("validated by check_port"),
        }
        Ok(())
    }

    fn pull(&mut self) -> Option<Token> {
        self.out.pop()
    }

    fn quiet_frames(&self, frame_samples: usize) -> u64 {
        if frame_samples != self.channels || self.frame_pos != 0 {
            return 0;
        }
        match self.samples_until_emit() {
            // The emission frame itself is not quiet.
            Some(remaining) => (remaining as u64).saturating_sub(1),
            // No selected lanes: nothing ever emits.
            None => u64::MAX,
        }
    }

    fn push_samples(&mut self, port: usize, samples: &[i16]) -> Result<(), PeError> {
        self.check_port(port, &Token::Sample(0))?;
        // The SoA path needs whole frames starting at channel 0; anything
        // else goes through the scalar adapter.
        if self.frame_pos != 0 || !samples.len().is_multiple_of(self.channels) {
            for &s in samples {
                self.push_sample(s);
            }
            return Ok(());
        }
        let frames = samples.len() / self.channels;
        self.scratch.fill_from_interleaved(samples, self.channels);
        let mut f = 0;
        while f < frames {
            let Some(remaining) = self.samples_until_emit() else {
                // Nothing selected: the stream is swallowed whole.
                break;
            };
            let run = remaining.min(frames - f);
            let decimate = self.decimate;
            for (c, lane) in self.lanes.iter_mut().enumerate() {
                let Some(lane) = lane else { continue };
                let row = &self.scratch.channel(c)[f..f + run];
                // Finish the partial decimation accumulator first, then
                // stream whole groups; identical i64 summation order to
                // the per-sample path.
                let mut taken = 0;
                if lane.acc_n > 0 {
                    let need = decimate - lane.acc_n;
                    taken = need.min(row.len());
                    for &s in &row[..taken] {
                        lane.acc += s as i64;
                    }
                    lane.acc_n += taken;
                    if lane.acc_n == decimate {
                        lane.window.push((lane.acc / decimate as i64) as i16);
                        lane.acc = 0;
                        lane.acc_n = 0;
                    }
                }
                let mut groups = row[taken..].chunks_exact(decimate);
                for g in &mut groups {
                    let sum: i64 = g.iter().map(|&s| s as i64).sum();
                    lane.window.push((sum / decimate as i64) as i16);
                }
                for &s in groups.remainder() {
                    lane.acc += s as i64;
                    lane.acc_n += 1;
                }
            }
            f += run;
            if run == remaining {
                self.emit_all_lanes();
            }
        }
        Ok(())
    }

    fn flush(&mut self) {
        // Partial windows cannot be transformed; drop them.
        for lane in self.lanes.iter_mut().flatten() {
            lane.window.clear();
            lane.acc = 0;
            lane.acc_n = 0;
        }
        self.frame_pos = 0;
    }

    fn output_fifo(&self) -> Option<&Fifo> {
        Some(&self.out)
    }

    fn output_fifo_mut(&mut self) -> Option<&mut Fifo> {
        Some(&mut self.out)
    }

    fn memory_bytes(&self) -> usize {
        let selected = self.lanes.iter().flatten().count();
        // Per-channel windows + twiddle ROM + working re/im arrays.
        selected * self.fft.points() * 2 + self.fft.points() / 2 * 4 + self.fft.points() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_values(pe: &mut FftPe) -> Vec<i64> {
        std::iter::from_fn(|| pe.pull())
            .filter_map(|t| match t {
                Token::Value(v) => Some(v),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn emits_band_powers_per_window() {
        let fft = Fft::new(64).unwrap();
        let mut pe = FftPe::new(fft, 1000, vec![(0.0, 100.0), (100.0, 500.0)]);
        for t in 0..64 {
            let x = (8000.0 * (std::f64::consts::TAU * 50.0 * t as f64 / 1000.0).sin()) as i16;
            pe.push(0, Token::Sample(x)).unwrap();
        }
        let v = drain_values(&mut pe);
        assert_eq!(v.len(), 2);
        assert!(v[0] > 5 * v[1], "50 Hz tone: low {} high {}", v[0], v[1]);
    }

    #[test]
    fn decimation_brings_slow_rhythms_into_range() {
        // A 20 Hz "beta" tone at 30 kHz: with 32x decimation and 256
        // points, the window spans 273 ms and the band is resolvable.
        let fft = Fft::new(256).unwrap();
        let mut pe =
            FftPe::with_channels(fft, 30_000, vec![(14.0, 25.0), (40.0, 120.0)], 1, &[0], 32);
        for t in 0..256 * 32 {
            let x = (6000.0 * (std::f64::consts::TAU * 20.0 * t as f64 / 30_000.0).sin()) as i16;
            pe.push(0, Token::Sample(x)).unwrap();
        }
        let v = drain_values(&mut pe);
        assert_eq!(v.len(), 2);
        assert!(
            v[0] > 10 * v[1].max(1),
            "beta {} vs high band {}",
            v[0],
            v[1]
        );
    }

    #[test]
    fn channel_selection_and_window_counting() {
        // 4-channel stream, channels 1 and 3 selected, 8-point FFT.
        let fft = Fft::new(8).unwrap();
        let mut pe = FftPe::with_channels(fft, 1000, vec![(0.0, 500.0)], 4, &[1, 3], 1);
        assert_eq!(pe.values_per_window(), 2);
        assert_eq!(pe.window_frames(), 8);
        for t in 0..8 {
            for c in 0..4i16 {
                pe.push(0, Token::Sample((t as i16) * 10 + c)).unwrap();
            }
        }
        assert_eq!(drain_values(&mut pe).len(), 2);
    }

    #[test]
    fn partial_window_produces_nothing() {
        let fft = Fft::new(64).unwrap();
        let mut pe = FftPe::new(fft, 1000, vec![(0.0, 500.0)]);
        for _ in 0..63 {
            pe.push(0, Token::Sample(100)).unwrap();
        }
        assert_eq!(pe.pull(), None);
        pe.flush();
        assert_eq!(pe.pull(), None);
    }

    #[test]
    #[should_panic(expected = "at least one band")]
    fn rejects_empty_bands() {
        let _ = FftPe::new(Fft::new(64).unwrap(), 1000, vec![]);
    }
}
