//! BBF processing element.

use crate::error::PeError;
use crate::fifo::Fifo;
use crate::token::{InterfaceKind, Token};
use crate::traits::{PeKind, ProcessingElement};
use halo_kernels::{Bbf, BbfDesign, ChannelBlock};

/// Output mode of the BBF PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BbfMode {
    /// Emit the filtered sample stream (same interleaving as the input).
    Stream,
    /// Emit one band-energy value per selected channel per window of
    /// `window_frames` input frames — the feature form the SVM consumes in
    /// the seizure-prediction pipeline.
    Energy {
        /// Window length in frames (one frame = one sample per channel).
        window_frames: usize,
    },
}

/// The Butterworth-bandpass PE.
///
/// Operates on a `channels`-way frame-interleaved stream with per-channel
/// biquad state, filtering only the selected channels (a §IV-E PE
/// parameter); unselected channels pass through unfiltered in stream mode
/// and are ignored in energy mode.
#[derive(Debug)]
pub struct BbfPe {
    lanes: Vec<Option<Bbf>>,
    mode: BbfMode,
    acc: Vec<i64>,
    frame_pos: usize,
    frames_seen: usize,
    out: Fifo,
    // Reusable SoA pivot for the batched push path.
    scratch: ChannelBlock,
}

impl BbfPe {
    /// Creates a single-channel streaming BBF PE.
    pub fn new(design: &BbfDesign, mode: BbfMode) -> Self {
        Self::with_channels(design, mode, 1, &[0])
    }

    /// Creates a BBF PE over `channels` interleaved channels, filtering
    /// the channels listed in `select`.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero, `select` is empty or references a
    /// channel out of range, or an energy window is zero.
    pub fn with_channels(
        design: &BbfDesign,
        mode: BbfMode,
        channels: usize,
        select: &[u8],
    ) -> Self {
        assert!(channels > 0, "need at least one channel");
        assert!(!select.is_empty(), "select at least one channel");
        if let BbfMode::Energy { window_frames } = mode {
            assert!(window_frames > 0, "energy window must be positive");
        }
        let mut lanes: Vec<Option<Bbf>> = vec![None; channels];
        for &c in select {
            assert!((c as usize) < channels, "selected channel {c} out of range");
            lanes[c as usize] = Some(Bbf::new(design));
        }
        Self {
            lanes,
            mode,
            acc: vec![0; channels],
            frame_pos: 0,
            frames_seen: 0,
            out: Fifo::new(),
            scratch: ChannelBlock::new(),
        }
    }

    /// Channels with a filter lane, in index order.
    pub fn selected(&self) -> Vec<usize> {
        self.lanes
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.as_ref().map(|_| i))
            .collect()
    }

    fn emit_energies(&mut self) {
        for (c, lane) in self.lanes.iter().enumerate() {
            if lane.is_some() {
                self.out.push(Token::Value(self.acc[c]));
            }
        }
        for a in &mut self.acc {
            *a = 0;
        }
        self.frames_seen = 0;
    }
}

impl ProcessingElement for BbfPe {
    fn kind(&self) -> PeKind {
        PeKind::Bbf
    }

    fn input_ports(&self) -> &[InterfaceKind] {
        &[InterfaceKind::Samples]
    }

    fn output_kind(&self) -> InterfaceKind {
        match self.mode {
            BbfMode::Stream => InterfaceKind::Samples,
            BbfMode::Energy { .. } => InterfaceKind::Values,
        }
    }

    fn push(&mut self, port: usize, token: Token) -> Result<(), PeError> {
        self.check_port(port, &token)?;
        match token {
            Token::Sample(s) => {
                let c = self.frame_pos;
                let y = match &mut self.lanes[c] {
                    Some(bbf) => bbf.process(s),
                    None => s,
                };
                match self.mode {
                    BbfMode::Stream => self.out.push(Token::Sample(y)),
                    BbfMode::Energy { window_frames } => {
                        if self.lanes[c].is_some() {
                            self.acc[c] += y as i64 * y as i64;
                        }
                        if self.frame_pos + 1 == self.lanes.len() {
                            self.frames_seen += 1;
                            if self.frames_seen == window_frames {
                                self.emit_energies();
                            }
                        }
                    }
                }
                self.frame_pos = (self.frame_pos + 1) % self.lanes.len();
            }
            Token::BlockEnd { .. } => self.out.push(token),
            _ => unreachable!("validated by check_port"),
        }
        Ok(())
    }

    fn pull(&mut self) -> Option<Token> {
        self.out.pop()
    }

    fn quiet_frames(&self, frame_samples: usize) -> u64 {
        if frame_samples != self.lanes.len() || self.frame_pos != 0 {
            return 0;
        }
        match self.mode {
            // Stream mode emits every sample; never quiet.
            BbfMode::Stream => 0,
            // The window-completing frame itself is not quiet.
            BbfMode::Energy { window_frames } => {
                ((window_frames - self.frames_seen) as u64).saturating_sub(1)
            }
        }
    }

    fn push_samples(&mut self, port: usize, samples: &[i16]) -> Result<(), PeError> {
        self.check_port(port, &Token::Sample(0))?;
        let channels = self.lanes.len();
        let batchable = matches!(self.mode, BbfMode::Energy { .. })
            && self.frame_pos == 0
            && samples.len().is_multiple_of(channels);
        if !batchable {
            for &s in samples {
                self.push(port, Token::Sample(s))?;
            }
            return Ok(());
        }
        let BbfMode::Energy { window_frames } = self.mode else {
            unreachable!("checked above");
        };
        let frames = samples.len() / channels;
        self.scratch.fill_from_interleaved(samples, channels);
        let mut f = 0;
        while f < frames {
            let run = (window_frames - self.frames_seen).min(frames - f);
            // Each selected lane filters its contiguous row segment and
            // accumulates y² — the same per-sample arithmetic, minus the
            // per-token dispatch and de-interleaving.
            for (c, lane) in self.lanes.iter_mut().enumerate() {
                if let Some(bbf) = lane {
                    self.acc[c] += bbf.energy_of(&self.scratch.channel(c)[f..f + run]);
                }
            }
            self.frames_seen += run;
            f += run;
            if self.frames_seen == window_frames {
                self.emit_energies();
            }
        }
        Ok(())
    }

    fn flush(&mut self) {
        if matches!(self.mode, BbfMode::Energy { .. }) && self.frames_seen > 0 {
            self.emit_energies();
        }
        for lane in self.lanes.iter_mut().flatten() {
            lane.reset();
        }
        self.frame_pos = 0;
    }

    fn output_fifo(&self) -> Option<&Fifo> {
        Some(&self.out)
    }

    fn output_fifo_mut(&mut self) -> Option<&mut Fifo> {
        Some(&mut self.out)
    }

    fn memory_bytes(&self) -> usize {
        // Coefficients plus per-selected-channel section state.
        64 + self.selected().len() * 40
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design() -> BbfDesign {
        BbfDesign::new(50.0, 150.0, 1000).unwrap()
    }

    #[test]
    fn stream_mode_matches_kernel() {
        let mut kernel = Bbf::new(&design());
        let mut pe = BbfPe::new(&design(), BbfMode::Stream);
        for t in 0..100i16 {
            let x = (t % 17) * 100;
            pe.push(0, Token::Sample(x)).unwrap();
            assert_eq!(pe.pull(), Some(Token::Sample(kernel.process(x))));
        }
    }

    #[test]
    fn energy_mode_accumulates_per_channel() {
        // Two channels, both selected; ch1 sees double amplitude.
        let mut pe =
            BbfPe::with_channels(&design(), BbfMode::Energy { window_frames: 50 }, 2, &[0, 1]);
        for t in 0..50 {
            let x = (8000.0 * (std::f64::consts::TAU * 100.0 * t as f64 / 1000.0).sin()) as i16;
            pe.push(0, Token::Sample(x / 2)).unwrap();
            pe.push(0, Token::Sample(x)).unwrap();
        }
        let e0 = match pe.pull() {
            Some(Token::Value(v)) => v,
            other => panic!("expected energy, got {other:?}"),
        };
        let e1 = match pe.pull() {
            Some(Token::Value(v)) => v,
            other => panic!("expected energy, got {other:?}"),
        };
        assert!(e1 > 3 * e0, "ch1 {e1} should carry ~4x ch0 {e0}");
        assert_eq!(pe.pull(), None);
    }

    #[test]
    fn unselected_channels_pass_through_in_stream_mode() {
        let mut pe = BbfPe::with_channels(&design(), BbfMode::Stream, 2, &[0]);
        pe.push(0, Token::Sample(500)).unwrap(); // ch0: filtered
        pe.push(0, Token::Sample(500)).unwrap(); // ch1: pass-through
        let _ch0 = pe.pull().unwrap();
        assert_eq!(pe.pull(), Some(Token::Sample(500)));
    }

    #[test]
    fn flush_emits_partial_energy_window() {
        let mut pe =
            BbfPe::with_channels(&design(), BbfMode::Energy { window_frames: 100 }, 1, &[0]);
        pe.push(0, Token::Sample(1000)).unwrap();
        assert_eq!(pe.pull(), None);
        pe.flush();
        assert!(matches!(pe.pull(), Some(Token::Value(_))));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_selection_rejected() {
        let _ = BbfPe::with_channels(&design(), BbfMode::Stream, 2, &[2]);
    }
}
