//! GATE processing element.

use crate::error::PeError;
use crate::fifo::Fifo;
use crate::token::{InterfaceKind, Token};
use crate::traits::{PeKind, ProcessingElement};
use halo_kernels::Gate;
use std::collections::VecDeque;

/// The stream-gate PE: data on port 0, THR control bits on port 1.
///
/// Data and control tokens are paired in arrival order, matching the
/// lock-step SEND-ACK streams of the hardware. Per-channel hold state keeps
/// a spike on one channel from opening the gate for its neighbours, and a
/// hold window keeps the gate open long enough to pass whole waveforms —
/// this is what turns spike *detection* into radio-bandwidth *reduction*
/// (§III).
#[derive(Debug)]
pub struct GatePe {
    lanes: Vec<Gate>,
    data_per_control: usize,
    data: VecDeque<Token>,
    control: VecDeque<bool>,
    next_lane: usize,
    budget: usize,
    budget_open: bool,
    out: Fifo,
    passed: u64,
    dropped: u64,
}

impl GatePe {
    /// Creates a single-channel gate holding `hold` extra samples per
    /// trigger.
    pub fn new(hold: usize) -> Self {
        Self::with_channels(hold, 1, 1)
    }

    /// Creates a gate for a `channels`-way interleaved data stream where
    /// each control bit covers `data_per_control` data tokens (e.g. a
    /// DWT-based detector emits one flag per `2^levels` samples).
    ///
    /// # Panics
    ///
    /// Panics if `channels` or `data_per_control` is zero.
    pub fn with_channels(hold: usize, channels: usize, data_per_control: usize) -> Self {
        assert!(channels > 0, "need at least one channel");
        assert!(
            data_per_control > 0,
            "control must cover at least one token"
        );
        Self {
            lanes: vec![Gate::new(hold); channels],
            data_per_control,
            data: VecDeque::new(),
            control: VecDeque::new(),
            next_lane: 0,
            budget: 0,
            budget_open: false,
            out: Fifo::new(),
            passed: 0,
            dropped: 0,
        }
    }

    /// Tokens passed through so far.
    pub fn passed(&self) -> u64 {
        self.passed
    }

    /// Tokens suppressed so far — the bandwidth reduction spike detection
    /// achieves.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn drain_pairs(&mut self) {
        loop {
            if self.budget == 0 {
                let Some(c) = self.control.pop_front() else {
                    return;
                };
                let lane_idx = self.next_lane;
                self.next_lane = (self.next_lane + 1) % self.lanes.len();
                self.budget_open = self.lanes[lane_idx].process((), c).is_some();
                self.budget = self.data_per_control;
            }
            while self.budget > 0 {
                let Some(d) = self.data.pop_front() else {
                    return;
                };
                self.budget -= 1;
                if self.budget_open {
                    self.passed += 1;
                    self.out.push(d);
                } else {
                    self.dropped += 1;
                }
            }
        }
    }
}

impl ProcessingElement for GatePe {
    fn kind(&self) -> PeKind {
        PeKind::Gate
    }

    fn input_ports(&self) -> &[InterfaceKind] {
        &[InterfaceKind::Samples, InterfaceKind::Flags]
    }

    fn output_kind(&self) -> InterfaceKind {
        InterfaceKind::Samples
    }

    fn push(&mut self, port: usize, token: Token) -> Result<(), PeError> {
        self.check_port(port, &token)?;
        match (port, token) {
            (0, t @ Token::BlockEnd { .. }) => self.out.push(t),
            (1, Token::BlockEnd { .. }) => {}
            (0, t) => {
                self.data.push_back(t);
                self.drain_pairs();
            }
            (1, Token::Flag(c)) => {
                self.control.push_back(c);
                self.drain_pairs();
            }
            _ => unreachable!("validated by check_port"),
        }
        Ok(())
    }

    fn pull(&mut self) -> Option<Token> {
        self.out.pop()
    }

    fn flush(&mut self) {
        self.data.clear();
        self.control.clear();
        self.budget = 0;
        self.budget_open = false;
        self.next_lane = 0;
        for lane in &mut self.lanes {
            lane.reset();
        }
    }

    fn output_fifo(&self) -> Option<&Fifo> {
        Some(&self.out)
    }

    fn output_fifo_mut(&mut self) -> Option<&mut Fifo> {
        Some(&mut self.out)
    }

    fn memory_bytes(&self) -> usize {
        // Pairing FIFOs plus per-channel hold counters (Table IV charges
        // GATE a small memory macro).
        64 + self.lanes.len() * 4 + self.data_per_control * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(pe: &mut GatePe) -> Vec<Token> {
        std::iter::from_fn(|| pe.pull()).collect()
    }

    #[test]
    fn passes_only_triggered_data() {
        let mut pe = GatePe::new(0);
        for (s, c) in [(1i16, false), (2, true), (3, false), (4, true)] {
            pe.push(0, Token::Sample(s)).unwrap();
            pe.push(1, Token::Flag(c)).unwrap();
        }
        assert_eq!(drain(&mut pe), vec![Token::Sample(2), Token::Sample(4)]);
        assert_eq!(pe.passed(), 2);
        assert_eq!(pe.dropped(), 2);
    }

    #[test]
    fn tolerates_out_of_order_stream_arrival() {
        // All control bits first, then all data — pairing must still align.
        let mut pe = GatePe::new(0);
        for c in [true, false, true] {
            pe.push(1, Token::Flag(c)).unwrap();
        }
        for s in [10i16, 20, 30] {
            pe.push(0, Token::Sample(s)).unwrap();
        }
        assert_eq!(drain(&mut pe), vec![Token::Sample(10), Token::Sample(30)]);
    }

    #[test]
    fn hold_window_extends_pass() {
        let mut pe = GatePe::new(2);
        let controls = [true, false, false, false];
        for (i, &c) in controls.iter().enumerate() {
            pe.push(0, Token::Sample(i as i16)).unwrap();
            pe.push(1, Token::Flag(c)).unwrap();
        }
        assert_eq!(
            drain(&mut pe),
            vec![Token::Sample(0), Token::Sample(1), Token::Sample(2)]
        );
    }

    #[test]
    fn per_channel_hold_is_independent() {
        // Two channels; trigger only channel 0. With hold 1, channel 0
        // passes two frames' worth, channel 1 passes nothing.
        let mut pe = GatePe::with_channels(1, 2, 1);
        let frames = [(true, false), (false, false), (false, false)];
        for (i, (c0, c1)) in frames.into_iter().enumerate() {
            let i = i as i16;
            pe.push(0, Token::Sample(i)).unwrap();
            pe.push(1, Token::Flag(c0)).unwrap();
            pe.push(0, Token::Sample(100 + i)).unwrap();
            pe.push(1, Token::Flag(c1)).unwrap();
        }
        assert_eq!(drain(&mut pe), vec![Token::Sample(0), Token::Sample(1)]);
    }

    #[test]
    fn control_covers_multiple_data_tokens() {
        // One flag per 4 data tokens (DWT level-2 detector shape).
        let mut pe = GatePe::with_channels(0, 1, 4);
        for s in 0..8i16 {
            pe.push(0, Token::Sample(s)).unwrap();
        }
        pe.push(1, Token::Flag(false)).unwrap();
        pe.push(1, Token::Flag(true)).unwrap();
        assert_eq!(
            drain(&mut pe),
            vec![
                Token::Sample(4),
                Token::Sample(5),
                Token::Sample(6),
                Token::Sample(7)
            ]
        );
    }

    #[test]
    fn control_port_rejects_samples() {
        let mut pe = GatePe::new(0);
        assert!(pe.push(1, Token::Sample(1)).is_err());
    }
}
