//! The standalone interleaver.
//!
//! §IV: "Many of our PEs, like LZ and FFT, require computational resources
//! that scale with the number of sensor channels … we implement a
//! standalone interleaver that buffers and rearranges data so that these
//! PEs can be time-multiplexed to operate on a single channel at a time."
//! The interleave depth is the Figure 7 (right) design-space knob.

use crate::error::PeError;
use crate::fifo::Fifo;
use crate::token::{InterfaceKind, Token};
use crate::traits::{PeKind, ProcessingElement};

/// The interleaver PE: converts a frame-interleaved sample stream
/// (`c0 c1 … cN-1, c0 c1 …`) into per-channel runs of `depth` samples
/// (`c0×depth, c1×depth, …`).
#[derive(Debug)]
pub struct InterleaverPe {
    channels: usize,
    depth: usize,
    buffers: Vec<Vec<i16>>,
    next_channel: usize,
    out: Fifo,
}

impl InterleaverPe {
    /// Creates an interleaver for `channels` channels with runs of `depth`
    /// samples.
    ///
    /// # Panics
    ///
    /// Panics if `channels` or `depth` is zero.
    pub fn new(channels: usize, depth: usize) -> Self {
        assert!(channels > 0, "need at least one channel");
        assert!(depth > 0, "depth must be positive");
        Self {
            channels,
            depth,
            buffers: vec![Vec::new(); channels],
            next_channel: 0,
            out: Fifo::new(),
        }
    }

    /// Configured channel count.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Configured interleave depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    fn emit_runs(&mut self) {
        for buf in &mut self.buffers {
            for s in buf.drain(..) {
                self.out.push(Token::Sample(s));
            }
        }
    }
}

impl ProcessingElement for InterleaverPe {
    fn kind(&self) -> PeKind {
        PeKind::Interleaver
    }

    fn input_ports(&self) -> &[InterfaceKind] {
        &[InterfaceKind::Samples]
    }

    fn output_kind(&self) -> InterfaceKind {
        InterfaceKind::Samples
    }

    fn push(&mut self, port: usize, token: Token) -> Result<(), PeError> {
        self.check_port(port, &token)?;
        match token {
            Token::Sample(s) => {
                self.buffers[self.next_channel].push(s);
                self.next_channel = (self.next_channel + 1) % self.channels;
                if self.next_channel == 0 && self.buffers[self.channels - 1].len() == self.depth {
                    self.emit_runs();
                }
            }
            Token::BlockEnd { .. } => {
                self.emit_runs();
                self.next_channel = 0;
                self.out.push(token);
            }
            _ => unreachable!("validated by check_port"),
        }
        Ok(())
    }

    fn pull(&mut self) -> Option<Token> {
        self.out.pop()
    }

    fn flush(&mut self) {
        self.emit_runs();
        self.next_channel = 0;
    }

    fn output_fifo(&self) -> Option<&Fifo> {
        Some(&self.out)
    }

    fn output_fifo_mut(&mut self) -> Option<&mut Fifo> {
        Some(&mut self.out)
    }

    fn memory_bytes(&self) -> usize {
        self.channels * self.depth * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(pe: &mut InterleaverPe) -> Vec<i16> {
        std::iter::from_fn(|| pe.pull())
            .map(|t| match t {
                Token::Sample(s) => s,
                other => panic!("unexpected {other:?}"),
            })
            .collect()
    }

    #[test]
    fn reorders_into_channel_runs() {
        let mut pe = InterleaverPe::new(3, 2);
        // Frames: (1,2,3), (4,5,6)
        for s in [1i16, 2, 3, 4, 5, 6] {
            pe.push(0, Token::Sample(s)).unwrap();
        }
        assert_eq!(drain(&mut pe), vec![1, 4, 2, 5, 3, 6]);
    }

    #[test]
    fn depth_one_is_identity() {
        let mut pe = InterleaverPe::new(4, 1);
        for s in 0..8i16 {
            pe.push(0, Token::Sample(s)).unwrap();
        }
        assert_eq!(drain(&mut pe), (0..8).collect::<Vec<i16>>());
    }

    #[test]
    fn flush_emits_partial_runs() {
        let mut pe = InterleaverPe::new(2, 4);
        for s in [1i16, 10, 2, 20, 3] {
            pe.push(0, Token::Sample(s)).unwrap();
        }
        assert_eq!(drain(&mut pe), Vec::<i16>::new());
        pe.flush();
        assert_eq!(drain(&mut pe), vec![1, 2, 3, 10, 20]);
    }

    #[test]
    fn memory_scales_with_depth() {
        assert_eq!(InterleaverPe::new(96, 128).memory_bytes(), 96 * 128 * 2);
    }
}
