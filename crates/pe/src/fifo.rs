//! FIFO adapters between PEs and the interconnect.
//!
//! §IV-D: "We use per-PE FIFO buffers as logical adapters to transfer data
//! from the network into the form expected by the PE." The FIFO tracks its
//! high-water mark so experiments can size the hardware buffers a pipeline
//! would need.

use crate::token::Token;
use std::collections::VecDeque;

/// A token FIFO with occupancy statistics.
///
/// # Example
///
/// ```
/// use halo_pe::{Fifo, Token};
/// let mut f = Fifo::new();
/// f.push(Token::Byte(1));
/// f.push(Token::Byte(2));
/// assert_eq!(f.high_water(), 2);
/// assert_eq!(f.pop(), Some(Token::Byte(1)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Fifo {
    queue: VecDeque<Token>,
    high_water: usize,
    /// Sticky causal-trace context: the id of the sampled frame trace whose
    /// tokens most recently flowed through this FIFO, or `0` when untraced.
    /// The runtime stamps it when a traced delivery lands on the owning PE
    /// and clears it once the trace closes, so downstream bursts drained
    /// from this FIFO inherit the trace attribution without any per-token
    /// bookkeeping (one `u64` per FIFO, zero allocation).
    trace_tag: u64,
}

impl Fifo {
    /// Creates an empty FIFO.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a token.
    pub fn push(&mut self, token: Token) {
        self.queue.push_back(token);
        self.high_water = self.high_water.max(self.queue.len());
    }

    /// Dequeues the oldest token.
    pub fn pop(&mut self) -> Option<Token> {
        self.queue.pop_front()
    }

    /// Mutable access to the oldest queued token — the fault-injection
    /// point for modeled FIFO bit flips. `None` when empty.
    pub fn front_mut(&mut self) -> Option<&mut Token> {
        self.queue.front_mut()
    }

    /// Moves every queued token into `out`, preserving order. When `out`
    /// is empty this is an O(1) buffer swap (`VecDeque::append`), so the
    /// runtime drains a whole burst wholesale instead of popping token by
    /// token. The high-water statistic is unaffected.
    pub fn drain_into(&mut self, out: &mut VecDeque<Token>) {
        out.append(&mut self.queue);
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the FIFO is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Maximum occupancy ever observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Maximum occupancy ever observed — the name telemetry uses for the
    /// same statistic ([`Fifo::high_water`] sizes the hardware buffer;
    /// observability layers report it as peak occupancy).
    pub fn max_occupancy(&self) -> usize {
        self.high_water
    }

    /// Current trace context (`0` = untraced).
    pub fn trace_tag(&self) -> u64 {
        self.trace_tag
    }

    /// Stamps the trace context carried by tokens flowing through this FIFO.
    pub fn set_trace_tag(&mut self, tag: u64) {
        self.trace_tag = tag;
    }

    /// Clears the trace context (the owning trace closed).
    pub fn clear_trace_tag(&mut self) {
        self.trace_tag = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut f = Fifo::new();
        for i in 0..5i16 {
            f.push(Token::Sample(i));
        }
        for i in 0..5i16 {
            assert_eq!(f.pop(), Some(Token::Sample(i)));
        }
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn statistics_accumulate() {
        let mut f = Fifo::new();
        f.push(Token::Sample(1));
        f.push(Token::Sample(2));
        f.pop();
        f.push(Token::Sample(3));
        assert_eq!(f.high_water(), 2);
        assert_eq!(f.max_occupancy(), 2);
        assert_eq!(f.len(), 2);
        assert!(!f.is_empty());
    }
}
