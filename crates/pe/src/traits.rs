//! The processing-element contract.

use crate::error::PeError;
use crate::fifo::Fifo;
use crate::token::{InterfaceKind, Token};

/// Identity of a PE type — the key into the power model's Table IV anchors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PeKind {
    /// Lempel-Ziv match search.
    Lz,
    /// Linear integer coding.
    Lic,
    /// Markov adaptive frequency model.
    Ma,
    /// Range coder.
    Rc,
    /// Discrete wavelet transform.
    Dwt,
    /// Nonlinear energy operator.
    Neo,
    /// Fast Fourier transform.
    Fft,
    /// Pairwise cross-correlation.
    Xcor,
    /// Butterworth bandpass filter.
    Bbf,
    /// Support vector machine.
    Svm,
    /// Threshold comparator.
    Thr,
    /// Stream gate.
    Gate,
    /// AES-128 encryption.
    Aes,
    /// The standalone interleaver (§IV).
    Interleaver,
}

impl PeKind {
    /// All kinds with Table IV power anchors (everything except the
    /// interleaver, which the paper folds into the NoC overhead line).
    pub fn all() -> [PeKind; 14] {
        [
            PeKind::Lz,
            PeKind::Lic,
            PeKind::Ma,
            PeKind::Rc,
            PeKind::Dwt,
            PeKind::Neo,
            PeKind::Fft,
            PeKind::Xcor,
            PeKind::Bbf,
            PeKind::Svm,
            PeKind::Thr,
            PeKind::Gate,
            PeKind::Aes,
            PeKind::Interleaver,
        ]
    }

    /// Table III name.
    pub fn name(&self) -> &'static str {
        match self {
            PeKind::Lz => "LZ",
            PeKind::Lic => "LIC",
            PeKind::Ma => "MA",
            PeKind::Rc => "RC",
            PeKind::Dwt => "DWT",
            PeKind::Neo => "NEO",
            PeKind::Fft => "FFT",
            PeKind::Xcor => "XCOR",
            PeKind::Bbf => "BBF",
            PeKind::Svm => "SVM",
            PeKind::Thr => "THR",
            PeKind::Gate => "GATE",
            PeKind::Aes => "AES",
            PeKind::Interleaver => "INTERLEAVER",
        }
    }

    /// The kind whose [`PeKind::name`] is `name`, if any — maps profiler
    /// frame paths and exposition labels back to the cost model.
    pub fn from_name(name: &str) -> Option<PeKind> {
        PeKind::all().into_iter().find(|k| k.name() == name)
    }

    /// Nominal clock cycles this PE charges per input token.
    ///
    /// Derived from Table IV: each PE's anchor frequency is the minimum
    /// sustaining the 46 Mbps array rate, so cycles-per-token is that
    /// frequency divided by the token rate offered at the PE's pipeline
    /// position (5.76 M tokens/s for byte streams, 2.88 M tokens/s for
    /// sample streams), rounded to an integer. E.g. LZ: 129 MHz at
    /// 5.76 MB/s ≈ 22 cycles/byte. These drive telemetry's busy-cycle
    /// counters; they are a first-order model, not an RTL-accurate count.
    /// SVM sees low-rate feature tokens, so it is charged its per-class
    /// dot-product cost instead of a rate-derived value.
    pub fn cycles_per_token(&self) -> u64 {
        match self {
            PeKind::Lz => 22,
            PeKind::Lic => 4,
            PeKind::Ma => 16,
            PeKind::Rc => 16,
            PeKind::Dwt => 1,
            PeKind::Neo => 1,
            PeKind::Fft => 5,
            PeKind::Xcor => 30,
            PeKind::Bbf => 2,
            PeKind::Svm => 50,
            PeKind::Thr => 6,
            PeKind::Gate => 2,
            PeKind::Aes => 1,
            PeKind::Interleaver => 1,
        }
    }
}

impl std::fmt::Display for PeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A hardware processing element.
///
/// PEs are push/pull stream machines: the runtime pushes tokens into typed
/// input ports and drains the output FIFO. `flush` signals end of stream so
/// block-based PEs (LZ, DWT, XCOR, FFT) can finalize a partial block.
///
/// Implementations must be [`Send`]: a configured device (and therefore
/// every PE in its array) is moved onto a worker thread when many sessions
/// are served concurrently, so PE state may not be thread-pinned.
///
/// # Example
///
/// ```
/// use halo_pe::{pes::NeoPe, ProcessingElement, Token};
/// let mut neo = NeoPe::new();
/// for s in [0i16, 100, 0] {
///     neo.push(0, Token::Sample(s)).unwrap();
/// }
/// // Two priming zeros keep the stream in lock-step, then ψ = 100².
/// assert_eq!(neo.pull(), Some(Token::Value(0)));
/// assert_eq!(neo.pull(), Some(Token::Value(0)));
/// assert_eq!(neo.pull(), Some(Token::Value(10_000)));
/// ```
pub trait ProcessingElement: Send {
    /// Which PE this is (power-model key).
    fn kind(&self) -> PeKind;

    /// Interface types of the input ports (port 0 is the data port; GATE
    /// adds port 1 for control).
    fn input_ports(&self) -> &[InterfaceKind];

    /// Interface type of the output stream.
    fn output_kind(&self) -> InterfaceKind;

    /// Pushes a token into `port`.
    ///
    /// # Errors
    ///
    /// Returns [`PeError`] if the port does not exist or the token's
    /// interface does not match ([`Token::BlockEnd`] is accepted anywhere).
    fn push(&mut self, port: usize, token: Token) -> Result<(), PeError>;

    /// Drains one output token, if any.
    fn pull(&mut self) -> Option<Token>;

    /// Moves every queued output token into `into`, preserving order.
    ///
    /// Semantically identical to `while let Some(t) = self.pull()`, but a
    /// FIFO-backed PE hands over its whole buffer in O(1) (see
    /// [`Fifo::drain_into`]), so the streaming runtime pays one virtual
    /// call per burst instead of one per token.
    fn drain_output(&mut self, into: &mut std::collections::VecDeque<Token>) {
        match self.output_fifo_mut() {
            Some(f) => f.drain_into(into),
            None => {
                while let Some(t) = self.pull() {
                    into.push_back(t);
                }
            }
        }
    }

    /// Signals end of stream: block-based PEs finalize partial state.
    fn flush(&mut self);

    /// Private memory the current configuration occupies, in bytes.
    fn memory_bytes(&self) -> usize;

    /// The PE's output FIFO, if it exposes one for observability (every
    /// shipped PE does). Telemetry reads occupancy high-water marks and
    /// push totals from here without disturbing the stream.
    fn output_fifo(&self) -> Option<&Fifo> {
        None
    }

    /// Mutable access to the output FIFO — the bulk-drain hook behind
    /// [`ProcessingElement::drain_output`]. Implementations exposing
    /// [`ProcessingElement::output_fifo`] should expose it here too.
    fn output_fifo_mut(&mut self) -> Option<&mut Fifo> {
        None
    }

    /// How many upcoming *whole frames* of `frame_samples` samples this PE
    /// is guaranteed to absorb on port 0 without producing a single output
    /// token, given its current fill state.
    ///
    /// The runtime uses the minimum across a pipeline's source PEs to
    /// dispatch quiet stretches as one batched push (SoA block fill, no
    /// per-sample virtual calls, no NoC propagation) while staying
    /// *bit-identical* to per-token streaming — a quiet frame has no
    /// outputs, so there is nothing to propagate, stall, or trace.
    ///
    /// `0` (the conservative default) means "the next frame may emit";
    /// the runtime then falls back to the scalar per-token path for that
    /// frame. Implementations must never overestimate: emitting a token
    /// inside a promised-quiet window would corrupt delivery order.
    fn quiet_frames(&self, _frame_samples: usize) -> u64 {
        0
    }

    /// Pushes a contiguous run of samples into `port` at once.
    ///
    /// Semantically identical to pushing `Token::Sample` per element; the
    /// default does exactly that. Batch-aware PEs (FFT, XCOR, BBF, Hjorth)
    /// override it to run their structure-of-arrays kernels over the slice
    /// — same arithmetic, same output order, one virtual call.
    ///
    /// # Errors
    ///
    /// Returns [`PeError`] if the port does not exist or is not a sample
    /// port.
    fn push_samples(&mut self, port: usize, samples: &[i16]) -> Result<(), PeError> {
        for &s in samples {
            self.push(port, Token::Sample(s))?;
        }
        Ok(())
    }

    /// Validates an incoming token against a port (helper for
    /// implementations).
    fn check_port(&self, port: usize, token: &Token) -> Result<(), PeError> {
        let ports = self.input_ports();
        let expected = *ports.get(port).ok_or(PeError::NoSuchPort {
            pe: self.kind().name(),
            port,
        })?;
        match token.kind() {
            None => Ok(()), // control markers pass everywhere
            Some(k) if k == expected => Ok(()),
            got => Err(PeError::WrongInterface {
                pe: self.kind().name(),
                port,
                expected,
                got,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_unique() {
        let names: Vec<_> = PeKind::all().iter().map(|k| k.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn from_name_round_trips_every_kind() {
        for kind in PeKind::all() {
            assert_eq!(PeKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(PeKind::from_name("lz"), None, "lookup is case-exact");
        assert_eq!(PeKind::from_name("NOPE"), None);
    }
}
