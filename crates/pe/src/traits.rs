//! The processing-element contract.

use crate::error::PeError;
use crate::token::{InterfaceKind, Token};

/// Identity of a PE type — the key into the power model's Table IV anchors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PeKind {
    /// Lempel-Ziv match search.
    Lz,
    /// Linear integer coding.
    Lic,
    /// Markov adaptive frequency model.
    Ma,
    /// Range coder.
    Rc,
    /// Discrete wavelet transform.
    Dwt,
    /// Nonlinear energy operator.
    Neo,
    /// Fast Fourier transform.
    Fft,
    /// Pairwise cross-correlation.
    Xcor,
    /// Butterworth bandpass filter.
    Bbf,
    /// Support vector machine.
    Svm,
    /// Threshold comparator.
    Thr,
    /// Stream gate.
    Gate,
    /// AES-128 encryption.
    Aes,
    /// The standalone interleaver (§IV).
    Interleaver,
}

impl PeKind {
    /// All kinds with Table IV power anchors (everything except the
    /// interleaver, which the paper folds into the NoC overhead line).
    pub fn all() -> [PeKind; 14] {
        [
            PeKind::Lz,
            PeKind::Lic,
            PeKind::Ma,
            PeKind::Rc,
            PeKind::Dwt,
            PeKind::Neo,
            PeKind::Fft,
            PeKind::Xcor,
            PeKind::Bbf,
            PeKind::Svm,
            PeKind::Thr,
            PeKind::Gate,
            PeKind::Aes,
            PeKind::Interleaver,
        ]
    }

    /// Table III name.
    pub fn name(&self) -> &'static str {
        match self {
            PeKind::Lz => "LZ",
            PeKind::Lic => "LIC",
            PeKind::Ma => "MA",
            PeKind::Rc => "RC",
            PeKind::Dwt => "DWT",
            PeKind::Neo => "NEO",
            PeKind::Fft => "FFT",
            PeKind::Xcor => "XCOR",
            PeKind::Bbf => "BBF",
            PeKind::Svm => "SVM",
            PeKind::Thr => "THR",
            PeKind::Gate => "GATE",
            PeKind::Aes => "AES",
            PeKind::Interleaver => "INTERLEAVER",
        }
    }
}

impl std::fmt::Display for PeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A hardware processing element.
///
/// PEs are push/pull stream machines: the runtime pushes tokens into typed
/// input ports and drains the output FIFO. `flush` signals end of stream so
/// block-based PEs (LZ, DWT, XCOR, FFT) can finalize a partial block.
///
/// # Example
///
/// ```
/// use halo_pe::{pes::NeoPe, ProcessingElement, Token};
/// let mut neo = NeoPe::new();
/// for s in [0i16, 100, 0] {
///     neo.push(0, Token::Sample(s)).unwrap();
/// }
/// // Two priming zeros keep the stream in lock-step, then ψ = 100².
/// assert_eq!(neo.pull(), Some(Token::Value(0)));
/// assert_eq!(neo.pull(), Some(Token::Value(0)));
/// assert_eq!(neo.pull(), Some(Token::Value(10_000)));
/// ```
pub trait ProcessingElement {
    /// Which PE this is (power-model key).
    fn kind(&self) -> PeKind;

    /// Interface types of the input ports (port 0 is the data port; GATE
    /// adds port 1 for control).
    fn input_ports(&self) -> &[InterfaceKind];

    /// Interface type of the output stream.
    fn output_kind(&self) -> InterfaceKind;

    /// Pushes a token into `port`.
    ///
    /// # Errors
    ///
    /// Returns [`PeError`] if the port does not exist or the token's
    /// interface does not match ([`Token::BlockEnd`] is accepted anywhere).
    fn push(&mut self, port: usize, token: Token) -> Result<(), PeError>;

    /// Drains one output token, if any.
    fn pull(&mut self) -> Option<Token>;

    /// Signals end of stream: block-based PEs finalize partial state.
    fn flush(&mut self);

    /// Private memory the current configuration occupies, in bytes.
    fn memory_bytes(&self) -> usize;

    /// Validates an incoming token against a port (helper for
    /// implementations).
    fn check_port(&self, port: usize, token: &Token) -> Result<(), PeError> {
        let ports = self.input_ports();
        let expected = *ports.get(port).ok_or(PeError::NoSuchPort {
            pe: self.kind().name(),
            port,
        })?;
        match token.kind() {
            None => Ok(()), // control markers pass everywhere
            Some(k) if k == expected => Ok(()),
            got => Err(PeError::WrongInterface {
                pe: self.kind().name(),
                port,
                expected,
                got,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_unique() {
        let names: Vec<_> = PeKind::all().iter().map(|k| k.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
