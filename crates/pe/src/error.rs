//! PE-level errors.

use crate::token::InterfaceKind;

/// Errors raised by [`crate::ProcessingElement`] implementations.
#[derive(Debug, Clone, PartialEq)]
pub enum PeError {
    /// A token of the wrong interface type arrived on a port.
    WrongInterface {
        /// The PE that rejected the token.
        pe: &'static str,
        /// The port index.
        port: usize,
        /// What the port accepts.
        expected: InterfaceKind,
        /// What arrived.
        got: Option<InterfaceKind>,
    },
    /// A token arrived on a port the PE does not have.
    NoSuchPort {
        /// The PE that rejected the token.
        pe: &'static str,
        /// The port index.
        port: usize,
    },
}

impl std::fmt::Display for PeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::WrongInterface {
                pe,
                port,
                expected,
                got,
            } => match got {
                Some(got) => write!(f, "{pe} port {port} expects {expected} but received {got}"),
                None => write!(f, "{pe} port {port} expects {expected}"),
            },
            Self::NoSuchPort { pe, port } => write!(f, "{pe} has no port {port}"),
        }
    }
}

impl std::error::Error for PeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = PeError::WrongInterface {
            pe: "THR",
            port: 0,
            expected: InterfaceKind::Values,
            got: Some(InterfaceKind::Bytes),
        };
        assert!(e.to_string().contains("THR"));
        assert!(e.to_string().contains("values"));
        assert!(e.to_string().contains("bytes"));
        let e = PeError::NoSuchPort { pe: "NEO", port: 1 };
        assert!(e.to_string().contains("no port 1"));
    }
}
