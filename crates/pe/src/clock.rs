//! Per-PE clock domains.
//!
//! §IV-D: "We clock each PE at the lowest frequency needed to meet data
//! processing rates … local synchronization is based on per-PE pausable
//! clock generators" (ring oscillators with extracted delay lines). The
//! simulator models a clock domain as a frequency chosen from an offered
//! token rate and a cycles-per-token cost, which the power model then turns
//! into dynamic power.

/// A PE clock domain.
///
/// # Example
///
/// ```
/// use halo_pe::ClockDomain;
/// // 5.76 MB/s of bytes at 22.4 cycles/byte needs ~129 MHz (the LZ PE's
/// // Table IV operating point).
/// let clk = ClockDomain::for_rate(5_760_000.0, 22.4);
/// assert!((clk.frequency_hz() - 129.0e6).abs() / 129.0e6 < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockDomain {
    frequency_hz: f64,
}

impl ClockDomain {
    /// Creates a domain at an explicit frequency.
    ///
    /// # Panics
    ///
    /// Panics if `frequency_hz` is not strictly positive.
    pub fn new(frequency_hz: f64) -> Self {
        assert!(frequency_hz > 0.0, "frequency must be positive");
        Self { frequency_hz }
    }

    /// The minimum frequency sustaining `tokens_per_second` at
    /// `cycles_per_token`.
    ///
    /// # Panics
    ///
    /// Panics if either argument is not strictly positive.
    pub fn for_rate(tokens_per_second: f64, cycles_per_token: f64) -> Self {
        assert!(tokens_per_second > 0.0, "rate must be positive");
        assert!(cycles_per_token > 0.0, "cycle cost must be positive");
        Self::new(tokens_per_second * cycles_per_token)
    }

    /// The domain frequency in Hz.
    pub fn frequency_hz(&self) -> f64 {
        self.frequency_hz
    }

    /// The domain frequency in MHz.
    pub fn frequency_mhz(&self) -> f64 {
        self.frequency_hz / 1e6
    }

    /// Cycles elapsed over a wall-clock duration in seconds.
    pub fn cycles_in(&self, seconds: f64) -> u64 {
        (self.frequency_hz * seconds) as u64
    }

    /// Scales the domain (e.g. pipelining halves the required frequency).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        Self::new(self.frequency_hz * factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_to_frequency() {
        let clk = ClockDomain::for_rate(1_000_000.0, 3.0);
        assert_eq!(clk.frequency_hz(), 3_000_000.0);
        assert_eq!(clk.frequency_mhz(), 3.0);
    }

    #[test]
    fn cycles_elapsed() {
        let clk = ClockDomain::new(10.0e6);
        assert_eq!(clk.cycles_in(0.5), 5_000_000);
    }

    #[test]
    fn scaling() {
        let clk = ClockDomain::new(100.0e6).scaled(0.5);
        assert_eq!(clk.frequency_mhz(), 50.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_rejected() {
        let _ = ClockDomain::new(0.0);
    }
}
