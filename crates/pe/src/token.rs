//! Typed token streams exchanged between PEs.

use halo_kernels::LzOp;

/// One message on the inter-PE interconnect.
///
/// §IV-D: "HALO's interconnect sends messages in streams of bytes, bits,
/// and tokens (packets of multiple values)." Each variant corresponds to a
/// wire-level stream format; [`Token::kind`] gives the interface type used
/// for route validation.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A 16-bit ADC sample.
    Sample(i16),
    /// A raw byte (serialized streams, compressed output).
    Byte(u8),
    /// A single bit (THR output, GATE control).
    Flag(bool),
    /// A scalar value (NEO energy, band power, correlation).
    Value(i64),
    /// A DWT coefficient.
    Coeff(i32),
    /// An LZ parse op (LZ → LIC / MA).
    Op(LzOp),
    /// A probability triple (MA → RC), exactly the counter values Table III
    /// says MA "emits to RC for each input".
    Prob {
        /// Cumulative frequency below the symbol.
        cum: u32,
        /// Symbol frequency.
        freq: u32,
        /// Table total.
        total: u32,
    },
    /// Raw bits routed through RC at uniform probability (MA → RC).
    Bits {
        /// The bit payload.
        value: u32,
        /// Number of bits (≤ 32).
        bits: u32,
    },
    /// End-of-block control marker carrying the raw byte/sample count of
    /// the finished block. Valid on every interface.
    BlockEnd {
        /// Uncompressed length of the block just ended.
        raw_len: u32,
    },
    /// A packet of values (FFT spectra, XCOR correlation sets).
    Vector(Vec<i32>),
}

/// The interface type of a PE port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterfaceKind {
    /// 16-bit samples.
    Samples,
    /// Raw bytes.
    Bytes,
    /// Single bits.
    Flags,
    /// 64-bit scalars.
    Values,
    /// 32-bit DWT coefficients.
    Coeffs,
    /// LZ parse ops.
    Ops,
    /// Probability triples and direct bits.
    Probs,
    /// Value packets.
    Vectors,
}

impl std::fmt::Display for InterfaceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Self::Samples => "samples",
            Self::Bytes => "bytes",
            Self::Flags => "flags",
            Self::Values => "values",
            Self::Coeffs => "coeffs",
            Self::Ops => "ops",
            Self::Probs => "probs",
            Self::Vectors => "vectors",
        };
        f.write_str(s)
    }
}

impl Token {
    /// The interface this token travels on, or `None` for control markers
    /// ([`Token::BlockEnd`]) which are valid on every interface.
    pub fn kind(&self) -> Option<InterfaceKind> {
        match self {
            Token::Sample(_) => Some(InterfaceKind::Samples),
            Token::Byte(_) => Some(InterfaceKind::Bytes),
            Token::Flag(_) => Some(InterfaceKind::Flags),
            Token::Value(_) => Some(InterfaceKind::Values),
            Token::Coeff(_) => Some(InterfaceKind::Coeffs),
            Token::Op(_) => Some(InterfaceKind::Ops),
            Token::Prob { .. } | Token::Bits { .. } => Some(InterfaceKind::Probs),
            Token::BlockEnd { .. } => None,
            Token::Vector(_) => Some(InterfaceKind::Vectors),
        }
    }

    /// Flips one payload bit in place — the single-event-upset model the
    /// fault-injection harness uses. `bit` is reduced modulo the payload
    /// width, so any index lands deterministically. Control markers
    /// ([`Token::BlockEnd`]) and ops flip their numeric fields; an empty
    /// [`Token::Vector`] has no payload and is left unchanged.
    pub fn flip_bit(&mut self, bit: u32) {
        fn flip<const N: u32>(v: u64, bit: u32) -> u64 {
            v ^ (1 << (bit % N))
        }
        match self {
            Token::Sample(s) => *s = flip::<16>(*s as u64, bit) as i16,
            Token::Byte(b) => *b = flip::<8>(*b as u64, bit) as u8,
            Token::Flag(f) => *f = !*f,
            Token::Value(v) => *v = flip::<64>(*v as u64, bit) as i64,
            Token::Coeff(c) => *c = flip::<32>(*c as u64, bit) as i32,
            Token::Op(_) => {}
            Token::Prob { cum, .. } => *cum = flip::<32>(*cum as u64, bit) as u32,
            Token::Bits { value, .. } => *value = flip::<32>(*value as u64, bit) as u32,
            Token::BlockEnd { raw_len } => *raw_len = flip::<32>(*raw_len as u64, bit) as u32,
            Token::Vector(v) => {
                if !v.is_empty() {
                    let idx = (bit / 32) as usize % v.len();
                    v[idx] ^= 1 << (bit % 32);
                }
            }
        }
    }

    /// Payload size on the 8-bit interconnect bus, in bytes — what the
    /// SEND-ACK accounting charges per transfer.
    pub fn wire_bytes(&self) -> usize {
        match self {
            Token::Sample(_) => 2,
            Token::Byte(_) => 1,
            Token::Flag(_) => 1,
            Token::Value(_) => 8,
            Token::Coeff(_) => 4,
            Token::Op(_) => 5,
            Token::Prob { .. } => 8,
            Token::Bits { .. } => 5,
            Token::BlockEnd { .. } => 4,
            Token::Vector(v) => 4 * v.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable() {
        assert_eq!(Token::Sample(0).kind(), Some(InterfaceKind::Samples));
        assert_eq!(Token::Byte(0).kind(), Some(InterfaceKind::Bytes));
        assert_eq!(Token::Flag(true).kind(), Some(InterfaceKind::Flags));
        assert_eq!(Token::Value(1).kind(), Some(InterfaceKind::Values));
        assert_eq!(Token::Coeff(1).kind(), Some(InterfaceKind::Coeffs));
        assert_eq!(
            Token::Prob {
                cum: 0,
                freq: 1,
                total: 2
            }
            .kind(),
            Some(InterfaceKind::Probs)
        );
        assert_eq!(
            Token::Bits { value: 0, bits: 1 }.kind(),
            Some(InterfaceKind::Probs)
        );
        assert_eq!(Token::BlockEnd { raw_len: 0 }.kind(), None);
        assert_eq!(Token::Vector(vec![]).kind(), Some(InterfaceKind::Vectors));
    }

    #[test]
    fn wire_bytes_scale_with_payload() {
        assert_eq!(Token::Byte(1).wire_bytes(), 1);
        assert_eq!(Token::Sample(1).wire_bytes(), 2);
        assert_eq!(Token::Vector(vec![1, 2, 3]).wire_bytes(), 12);
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(InterfaceKind::Samples.to_string(), "samples");
        assert_eq!(InterfaceKind::Probs.to_string(), "probs");
    }
}
