//! Threshold comparator (THR kernel).
//!
//! Table III: "Emits a set bit if input is below threshold
//! (user-defined threshold value, 32-bit)". THR is the poster child of PE
//! reuse generalization (§IV-A): the same PE terminates the movement-intent
//! pipeline (detecting *drops* in beta-band power) and the spike-detection
//! pipelines (detecting energy *excursions*), so the comparison sense is a
//! configuration parameter.

/// Which comparison raises the output bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThresholdSense {
    /// Fire when `input < threshold` (paper default; movement intent).
    Below,
    /// Fire when `input > threshold` (spike detection configurations).
    Above,
}

/// The THR processing kernel: a configurable 64-bit comparator.
///
/// The hardware PE holds a user-defined 32-bit threshold; we widen the
/// comparison input to `i64` because NEO outputs are products of 16-bit
/// samples.
///
/// # Example
///
/// ```
/// use halo_kernels::Threshold;
/// let thr = Threshold::below(100);
/// assert!(thr.check(50));
/// assert!(!thr.check(100));
/// let thr = Threshold::above(100);
/// assert!(thr.check(101));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Threshold {
    value: i64,
    sense: ThresholdSense,
}

impl Threshold {
    /// Fires when input is strictly below `value`.
    pub fn below(value: i64) -> Self {
        Self {
            value,
            sense: ThresholdSense::Below,
        }
    }

    /// Fires when input is strictly above `value`.
    pub fn above(value: i64) -> Self {
        Self {
            value,
            sense: ThresholdSense::Above,
        }
    }

    /// The configured threshold value.
    pub fn value(&self) -> i64 {
        self.value
    }

    /// The configured comparison sense.
    pub fn sense(&self) -> ThresholdSense {
        self.sense
    }

    /// Evaluates the comparator for one input.
    pub fn check(&self, input: i64) -> bool {
        match self.sense {
            ThresholdSense::Below => input < self.value,
            ThresholdSense::Above => input > self.value,
        }
    }

    /// Evaluates a block, producing one flag per input.
    pub fn check_block(&self, inputs: &[i64]) -> Vec<bool> {
        inputs.iter().map(|&x| self.check(x)).collect()
    }

    /// Evaluates a block into bit-packed `u64` words, LSB-first: bit `k`
    /// of `out[w]` is `check(inputs[64*w + k])`. The final word's unused
    /// high bits are zero.
    ///
    /// This is the bit-sliced form of the comparator — 64 channel-bits
    /// per word, with a branchless inner loop over full words. Appends to
    /// `out` without clearing it.
    pub fn check_block_packed(&self, inputs: &[i64], out: &mut Vec<u64>) {
        let value = self.value;
        let sense = self.sense;
        let mut chunks = inputs.chunks_exact(64);
        for chunk in &mut chunks {
            let mut word = 0u64;
            match sense {
                ThresholdSense::Below => {
                    for (k, &x) in chunk.iter().enumerate() {
                        word |= ((x < value) as u64) << k;
                    }
                }
                ThresholdSense::Above => {
                    for (k, &x) in chunk.iter().enumerate() {
                        word |= ((x > value) as u64) << k;
                    }
                }
            }
            out.push(word);
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = 0u64;
            for (k, &x) in tail.iter().enumerate() {
                word |= (self.check(x) as u64) << k;
            }
            out.push(word);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_sense() {
        let t = Threshold::below(0);
        assert!(t.check(-1));
        assert!(!t.check(0));
        assert!(!t.check(1));
    }

    #[test]
    fn above_sense() {
        let t = Threshold::above(0);
        assert!(t.check(1));
        assert!(!t.check(0));
        assert!(!t.check(-1));
    }

    #[test]
    fn block_matches_scalar() {
        let t = Threshold::above(10);
        let xs = [5i64, 10, 11, 100, -3];
        assert_eq!(
            t.check_block(&xs),
            xs.iter().map(|&x| t.check(x)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn extremes() {
        let t = Threshold::below(i64::MIN);
        assert!(!t.check(i64::MIN));
        let t = Threshold::above(i64::MAX);
        assert!(!t.check(i64::MAX));
    }

    #[test]
    fn packed_matches_scalar_across_lengths() {
        for sense in [Threshold::below(37), Threshold::above(-11)] {
            for len in [0usize, 1, 63, 64, 65, 128, 200] {
                let inputs: Vec<i64> = (0..len)
                    .map(|k| {
                        let x = (k as i64).wrapping_mul(2654435761) % 101 - 50;
                        match k % 5 {
                            0 => i64::MIN,
                            1 => i64::MAX,
                            _ => x,
                        }
                    })
                    .collect();
                let mut packed = Vec::new();
                sense.check_block_packed(&inputs, &mut packed);
                assert_eq!(packed.len(), len.div_ceil(64));
                for (k, &x) in inputs.iter().enumerate() {
                    let bit = packed[k / 64] >> (k % 64) & 1 == 1;
                    assert_eq!(bit, sense.check(x), "len={len} k={k}");
                }
                // Unused high bits of the final word stay zero.
                if len % 64 != 0 {
                    assert_eq!(packed[len / 64] >> (len % 64), 0);
                }
            }
        }
    }
}
