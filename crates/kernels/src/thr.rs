//! Threshold comparator (THR kernel).
//!
//! Table III: "Emits a set bit if input is below threshold
//! (user-defined threshold value, 32-bit)". THR is the poster child of PE
//! reuse generalization (§IV-A): the same PE terminates the movement-intent
//! pipeline (detecting *drops* in beta-band power) and the spike-detection
//! pipelines (detecting energy *excursions*), so the comparison sense is a
//! configuration parameter.

/// Which comparison raises the output bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThresholdSense {
    /// Fire when `input < threshold` (paper default; movement intent).
    Below,
    /// Fire when `input > threshold` (spike detection configurations).
    Above,
}

/// The THR processing kernel: a configurable 64-bit comparator.
///
/// The hardware PE holds a user-defined 32-bit threshold; we widen the
/// comparison input to `i64` because NEO outputs are products of 16-bit
/// samples.
///
/// # Example
///
/// ```
/// use halo_kernels::Threshold;
/// let thr = Threshold::below(100);
/// assert!(thr.check(50));
/// assert!(!thr.check(100));
/// let thr = Threshold::above(100);
/// assert!(thr.check(101));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Threshold {
    value: i64,
    sense: ThresholdSense,
}

impl Threshold {
    /// Fires when input is strictly below `value`.
    pub fn below(value: i64) -> Self {
        Self {
            value,
            sense: ThresholdSense::Below,
        }
    }

    /// Fires when input is strictly above `value`.
    pub fn above(value: i64) -> Self {
        Self {
            value,
            sense: ThresholdSense::Above,
        }
    }

    /// The configured threshold value.
    pub fn value(&self) -> i64 {
        self.value
    }

    /// The configured comparison sense.
    pub fn sense(&self) -> ThresholdSense {
        self.sense
    }

    /// Evaluates the comparator for one input.
    pub fn check(&self, input: i64) -> bool {
        match self.sense {
            ThresholdSense::Below => input < self.value,
            ThresholdSense::Above => input > self.value,
        }
    }

    /// Evaluates a block, producing one flag per input.
    pub fn check_block(&self, inputs: &[i64]) -> Vec<bool> {
        inputs.iter().map(|&x| self.check(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_sense() {
        let t = Threshold::below(0);
        assert!(t.check(-1));
        assert!(!t.check(0));
        assert!(!t.check(1));
    }

    #[test]
    fn above_sense() {
        let t = Threshold::above(0);
        assert!(t.check(1));
        assert!(!t.check(0));
        assert!(!t.check(-1));
    }

    #[test]
    fn block_matches_scalar() {
        let t = Threshold::above(10);
        let xs = [5i64, 10, 11, 100, -3];
        assert_eq!(
            t.check_block(&xs),
            xs.iter().map(|&x| t.check(x)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn extremes() {
        let t = Threshold::below(i64::MIN);
        assert!(!t.check(i64::MIN));
        let t = Threshold::above(i64::MAX);
        assert!(!t.check(i64::MAX));
    }
}
