//! Range coder (RC kernel).
//!
//! Table III: RC "encodes data using range encoding with the probability
//! information from MA". Splitting RC from MA is the paper's flagship
//! *locality refactoring* result (§IV-A, Figure 3): the frequency table
//! lives in MA, the encoder state lives in RC, and the two PEs communicate
//! only `(cumulative, frequency, total)` triples — which is exactly this
//! module's interface.
//!
//! The implementation is a carry-less 32-bit range coder (Subbotin style):
//! the encoder renormalizes by emitting the top byte whenever it has
//! settled, and resolves potential carries by trimming the range, so no
//! carry propagation into already-emitted bytes is ever needed — a property
//! that maps directly onto streaming hardware.

/// Upper bound (inclusive) on the `total` passed to the coder: 2^16, the
/// same 16-bit limit the MA PE's saturating counters enforce.
pub const MAX_TOTAL: u32 = 1 << 16;

const TOP: u32 = 1 << 24;
const BOT: u32 = 1 << 16;

/// Streaming range encoder.
///
/// # Example
///
/// ```
/// use halo_kernels::{RangeEncoder, RangeDecoder};
/// // Alphabet {a, b} with frequencies 3 and 1 (total 4).
/// let mut enc = RangeEncoder::new();
/// enc.encode(0, 3, 4); // 'a': cumulative 0, freq 3
/// enc.encode(3, 1, 4); // 'b': cumulative 3, freq 1
/// let bytes = enc.finish();
/// let mut dec = RangeDecoder::new(&bytes);
/// assert!(dec.decode_freq(4) < 3); // 'a'
/// dec.decode_update(0, 3, 4);
/// assert!(dec.decode_freq(4) >= 3); // 'b'
/// dec.decode_update(3, 1, 4);
/// ```
#[derive(Debug, Clone)]
pub struct RangeEncoder {
    low: u32,
    range: u32,
    out: Vec<u8>,
}

impl Default for RangeEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl RangeEncoder {
    /// Creates an encoder with full range.
    pub fn new() -> Self {
        Self {
            low: 0,
            range: u32::MAX,
            out: Vec::new(),
        }
    }

    /// Encodes a symbol occupying `[cum, cum + freq)` out of `total`.
    ///
    /// # Panics
    ///
    /// Panics if `freq == 0`, `cum + freq > total`, or
    /// `total > MAX_TOTAL`.
    pub fn encode(&mut self, cum: u32, freq: u32, total: u32) {
        assert!(freq > 0, "zero-frequency symbol");
        assert!(cum + freq <= total, "interval outside total");
        assert!(total <= MAX_TOTAL, "total {total} exceeds {MAX_TOTAL}");
        let r = self.range / total;
        self.low = self.low.wrapping_add(r * cum);
        self.range = r * freq;
        self.normalize();
    }

    /// Encodes `bits` raw bits of `value` (uniform probability), for the
    /// "direct bits" of match lengths and offsets.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 32` or `value` does not fit in `bits`.
    pub fn encode_bits(&mut self, value: u32, bits: u32) {
        assert!(bits <= 32, "too many bits");
        if bits == 0 {
            return;
        }
        assert!(
            bits == 32 || value < (1u32 << bits),
            "value {value} does not fit in {bits} bits"
        );
        let mut remaining = bits;
        while remaining > 0 {
            // Chunks are at most 16 bits so each fits under MAX_TOTAL.
            let chunk = remaining.min(16);
            let shift = remaining - chunk;
            let piece = (value >> shift) & ((1u32 << chunk) - 1);
            self.encode(piece, 1, 1u32 << chunk);
            remaining -= chunk;
        }
    }

    fn normalize(&mut self) {
        loop {
            if (self.low ^ self.low.wrapping_add(self.range)) < TOP {
                // Top byte settled; fall through to emit.
            } else if self.range < BOT {
                // Range underflow: trim so the top byte settles.
                self.range = self.low.wrapping_neg() & (BOT - 1);
            } else {
                break;
            }
            self.out.push((self.low >> 24) as u8);
            self.low <<= 8;
            self.range <<= 8;
        }
    }

    /// Flushes the remaining state and returns the encoded bytes.
    pub fn finish(mut self) -> Vec<u8> {
        for _ in 0..4 {
            self.out.push((self.low >> 24) as u8);
            self.low <<= 8;
        }
        self.out
    }

    /// Bytes emitted so far (excluding the final flush).
    pub fn bytes_written(&self) -> usize {
        self.out.len()
    }

    /// View of the bytes emitted so far — append-only between calls, so
    /// streaming consumers can drain incrementally.
    pub fn as_bytes(&self) -> &[u8] {
        &self.out
    }
}

/// Streaming range decoder, mirroring [`RangeEncoder`].
#[derive(Debug, Clone)]
pub struct RangeDecoder<'a> {
    low: u32,
    range: u32,
    code: u32,
    input: &'a [u8],
    pos: usize,
}

impl<'a> RangeDecoder<'a> {
    /// Creates a decoder over an encoded byte stream.
    pub fn new(input: &'a [u8]) -> Self {
        let mut dec = Self {
            low: 0,
            range: u32::MAX,
            code: 0,
            input,
            pos: 0,
        };
        for _ in 0..4 {
            dec.code = (dec.code << 8) | dec.next_byte() as u32;
        }
        dec
    }

    fn next_byte(&mut self) -> u8 {
        let b = self.input.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    /// Returns a cumulative-frequency target in `[0, total)`; the caller
    /// looks up which symbol owns it (e.g. [`crate::FenwickTree::find`]) and
    /// then calls [`RangeDecoder::decode_update`].
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero or exceeds [`MAX_TOTAL`].
    pub fn decode_freq(&mut self, total: u32) -> u32 {
        assert!(total > 0 && total <= MAX_TOTAL, "bad total {total}");
        let r = self.range / total;
        let target = self.code.wrapping_sub(self.low) / r;
        target.min(total - 1)
    }

    /// Consumes the symbol occupying `[cum, cum + freq)` out of `total`.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`RangeEncoder::encode`].
    pub fn decode_update(&mut self, cum: u32, freq: u32, total: u32) {
        assert!(freq > 0, "zero-frequency symbol");
        assert!(cum + freq <= total, "interval outside total");
        assert!(total <= MAX_TOTAL, "total {total} exceeds {MAX_TOTAL}");
        let r = self.range / total;
        self.low = self.low.wrapping_add(r * cum);
        self.range = r * freq;
        self.normalize();
    }

    /// Decodes `bits` raw bits written by [`RangeEncoder::encode_bits`].
    pub fn decode_bits(&mut self, bits: u32) -> u32 {
        assert!(bits <= 32, "too many bits");
        let mut remaining = bits;
        let mut value = 0u32;
        while remaining > 0 {
            let chunk = remaining.min(16);
            let total = 1u32 << chunk;
            let piece = self.decode_freq(total);
            self.decode_update(piece, 1, total);
            value = (value << chunk) | piece;
            remaining -= chunk;
        }
        value
    }

    fn normalize(&mut self) {
        loop {
            if (self.low ^ self.low.wrapping_add(self.range)) < TOP {
                // settled
            } else if self.range < BOT {
                self.range = self.low.wrapping_neg() & (BOT - 1);
            } else {
                break;
            }
            self.code = (self.code << 8) | self.next_byte() as u32;
            self.low <<= 8;
            self.range <<= 8;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Round-trips a symbol sequence through a static frequency table.
    fn round_trip(symbols: &[usize], freqs: &[u32]) {
        let total: u32 = freqs.iter().sum();
        let cums: Vec<u32> = freqs
            .iter()
            .scan(0, |acc, &f| {
                let c = *acc;
                *acc += f;
                Some(c)
            })
            .collect();
        let mut enc = RangeEncoder::new();
        for &s in symbols {
            enc.encode(cums[s], freqs[s], total);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        for &s in symbols {
            let target = dec.decode_freq(total);
            let sym = cums
                .iter()
                .rposition(|&c| c <= target)
                .expect("target in table");
            assert_eq!(sym, s, "symbol mismatch");
            dec.decode_update(cums[sym], freqs[sym], total);
        }
    }

    #[test]
    fn skewed_table_round_trip() {
        let freqs = [1000u32, 10, 5, 1];
        let symbols: Vec<usize> = (0..5000).map(|i| [0, 0, 0, 0, 0, 1, 2, 3][i % 8]).collect();
        round_trip(&symbols, &freqs);
    }

    #[test]
    fn uniform_table_round_trip() {
        let freqs = [1u32; 256];
        let symbols: Vec<usize> = (0..4096).map(|i| (i * 7919) % 256).collect();
        round_trip(&symbols, &freqs);
    }

    #[test]
    fn max_total_round_trip() {
        // One fat symbol taking nearly the whole 16-bit total.
        let freqs = [MAX_TOTAL - 3, 1, 1, 1];
        let symbols = [0usize, 0, 1, 0, 2, 0, 3, 0, 0, 0];
        round_trip(&symbols, &freqs);
    }

    #[test]
    fn skewed_input_compresses() {
        let freqs = [4096u32, 1];
        let total = 4097;
        let mut enc = RangeEncoder::new();
        for _ in 0..10_000 {
            enc.encode(0, freqs[0], total);
        }
        let bytes = enc.finish();
        // ~0.00035 bits/symbol ideal; allow generous slack.
        assert!(bytes.len() < 40, "compressed to {} bytes", bytes.len());
    }

    #[test]
    fn direct_bits_round_trip() {
        let values = [
            (0u32, 1u32),
            (1, 1),
            (5, 3),
            (0xffff, 16),
            (0x1ffff, 17),
            (0xdead_beef, 32),
            (0, 0),
        ];
        let mut enc = RangeEncoder::new();
        for &(v, b) in &values {
            enc.encode_bits(v, b);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        for &(v, b) in &values {
            assert_eq!(dec.decode_bits(b), if b == 0 { 0 } else { v }, "bits {b}");
        }
    }

    #[test]
    #[should_panic(expected = "zero-frequency")]
    fn zero_freq_rejected() {
        let mut enc = RangeEncoder::new();
        enc.encode(0, 0, 10);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_total_rejected() {
        let mut enc = RangeEncoder::new();
        enc.encode(0, 1, MAX_TOTAL + 1);
    }
}
