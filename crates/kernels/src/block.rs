//! Structure-of-arrays channel block (SoA batching layout).
//!
//! The runtime delivers electrode data interleaved frame-by-frame
//! (`[c0 c1 … cN-1] [c0 c1 … cN-1] …` — the ADC scan order), but every
//! per-channel kernel wants each channel's samples *contiguous* so the
//! inner loop is a straight-line pass the autovectorizer can lift to
//! SIMD. [`ChannelBlock`] is the pivot between the two layouts: a
//! channel-major buffer (`channels` rows of `frames` samples each) that
//! PE wrappers refill per delivery via
//! [`fill_from_interleaved`](ChannelBlock::fill_from_interleaved).
//!
//! The buffer is reusable — refilling never reallocates once it has
//! grown to the steady-state block size, keeping the hot path
//! allocation-free (the PR 2 invariant).

/// A channel-major (structure-of-arrays) sample block.
///
/// Row `c` holds the consecutive samples of channel `c`; rows are packed
/// back to back in one flat buffer.
#[derive(Debug, Clone, Default)]
pub struct ChannelBlock {
    data: Vec<i16>,
    channels: usize,
    frames: usize,
}

impl ChannelBlock {
    /// Creates an empty block (zero channels, zero frames).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty block with room for `channels * frames` samples.
    pub fn with_capacity(channels: usize, frames: usize) -> Self {
        Self {
            data: Vec::with_capacity(channels * frames),
            channels: 0,
            frames: 0,
        }
    }

    /// Number of channel rows.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Number of frames (samples per channel row).
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Channel `c`'s samples, contiguous and in arrival order.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.channels()`.
    pub fn channel(&self, c: usize) -> &[i16] {
        assert!(c < self.channels, "channel {c} out of {}", self.channels);
        &self.data[c * self.frames..(c + 1) * self.frames]
    }

    /// De-interleaves `samples` (frame-major, `channels` samples per
    /// frame) into channel-major rows, replacing any previous contents.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero or `samples.len()` is not a multiple
    /// of `channels`.
    pub fn fill_from_interleaved(&mut self, samples: &[i16], channels: usize) {
        assert!(channels > 0, "need at least one channel");
        assert!(
            samples.len().is_multiple_of(channels),
            "sample count {} not a multiple of {channels} channels",
            samples.len()
        );
        let frames = samples.len() / channels;
        self.channels = channels;
        self.frames = frames;
        self.data.clear();
        self.data.resize(channels * frames, 0);
        if channels == 1 {
            self.data.copy_from_slice(samples);
            return;
        }
        // One strided gather pass per channel: each output row is written
        // sequentially, so the stores stay streaming even though the
        // loads stride by `channels`.
        for c in 0..channels {
            let row = &mut self.data[c * frames..(c + 1) * frames];
            for (dst, frame) in row.iter_mut().zip(samples.chunks_exact(channels)) {
                *dst = frame[c];
            }
        }
    }

    /// Re-interleaves the block back to frame-major order into `out`
    /// (cleared first). Mainly for tests and round-trip checks.
    pub fn write_interleaved(&self, out: &mut Vec<i16>) {
        out.clear();
        out.reserve(self.channels * self.frames);
        for f in 0..self.frames {
            for c in 0..self.channels {
                out.push(self.data[c * self.frames + f]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deinterleaves_rows() {
        let mut block = ChannelBlock::new();
        block.fill_from_interleaved(&[1, 10, 2, 20, 3, 30], 2);
        assert_eq!(block.channels(), 2);
        assert_eq!(block.frames(), 3);
        assert_eq!(block.channel(0), &[1, 2, 3]);
        assert_eq!(block.channel(1), &[10, 20, 30]);
    }

    #[test]
    fn single_channel_is_a_copy() {
        let mut block = ChannelBlock::new();
        block.fill_from_interleaved(&[5, 6, 7], 1);
        assert_eq!(block.channel(0), &[5, 6, 7]);
    }

    #[test]
    fn refill_resizes_and_round_trips() {
        let mut block = ChannelBlock::with_capacity(4, 8);
        block.fill_from_interleaved(&[1, 2, 3, 4], 4);
        assert_eq!(block.frames(), 1);
        let interleaved: Vec<i16> = (0..24).collect();
        block.fill_from_interleaved(&interleaved, 3);
        assert_eq!(block.frames(), 8);
        let mut out = Vec::new();
        block.write_interleaved(&mut out);
        assert_eq!(out, interleaved);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn rejects_ragged_input() {
        let mut block = ChannelBlock::new();
        block.fill_from_interleaved(&[1, 2, 3], 2);
    }
}
