//! Fenwick (binary indexed) tree — the MA PE's core data structure.
//!
//! Table III: the MA PE "maintains counters for each input type … in a
//! Fenwick tree. Counter lookups and increments are O(log N)." The range
//! coder needs cumulative frequencies, and the decoder needs the inverse
//! lookup (find the symbol containing a cumulative target), both of which
//! the Fenwick tree provides logarithmically.

/// A Fenwick tree over `u32` counts.
///
/// # Example
///
/// ```
/// use halo_kernels::FenwickTree;
/// let mut t = FenwickTree::new(8);
/// t.add(3, 5);
/// t.add(5, 2);
/// assert_eq!(t.prefix_sum(3), 0); // sum of indices < 3
/// assert_eq!(t.prefix_sum(4), 5);
/// assert_eq!(t.total(), 7);
/// assert_eq!(t.find(5), 5); // first index whose prefix passes 5
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FenwickTree {
    tree: Vec<u32>,
    len: usize,
    /// Running sum of all counters, so [`FenwickTree::total`] — queried on
    /// every adaptive-model probe — is O(1) instead of a full-depth walk.
    total: u32,
}

impl FenwickTree {
    /// Creates a tree over `len` zero counters.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "tree must have at least one counter");
        Self {
            tree: vec![0; len + 1],
            len,
            total: 0,
        }
    }

    /// Resets every counter to one in O(N) — the block-boundary
    /// initialization circuit of §IV-B, which replaces N logarithmic adds
    /// with a single combinational fill. A node at index `i` covers the
    /// `i & -i` counters below it, so with all counters one its value is
    /// exactly `i & -i`.
    pub fn reset_to_ones(&mut self) {
        for i in 1..=self.len {
            self.tree[i] = (i & i.wrapping_neg()) as u32;
        }
        self.total = self.len as u32;
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree has no counters (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Adds `delta` to counter `index` in O(log N).
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn add(&mut self, index: usize, delta: u32) {
        assert!(index < self.len, "index {index} out of range");
        self.total += delta;
        let mut i = index + 1;
        while i <= self.len {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of counters with index `< index` (i.e. an exclusive prefix sum),
    /// in O(log N).
    ///
    /// # Panics
    ///
    /// Panics if `index > len`.
    pub fn prefix_sum(&self, index: usize) -> u32 {
        assert!(index <= self.len, "index {index} out of range");
        let mut sum = 0;
        let mut i = index;
        while i > 0 {
            sum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// Count stored at `index`.
    pub fn get(&self, index: usize) -> u32 {
        self.cum_and_freq(index).1
    }

    /// `(prefix_sum(index), get(index))` in a single tree walk — the pair
    /// every range-coder probe needs. The node at `index + 1` covers the
    /// counters from its parent up to `index`, so subtracting the walk
    /// from `index` down to that parent peels the counter out of the node
    /// while the same walk, continued to the root, accumulates the prefix.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn cum_and_freq(&self, index: usize) -> (u32, u32) {
        assert!(index < self.len, "index {index} out of range");
        let node = index + 1;
        let mut freq = self.tree[node];
        let parent = node - (node & node.wrapping_neg());
        let mut cum = 0;
        let mut i = index;
        while i > parent {
            freq -= self.tree[i];
            cum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        while i > 0 {
            cum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        (cum, freq)
    }

    /// Sum of all counters.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Finds the smallest index `s` such that `prefix_sum(s + 1) > target`
    /// — the decoder-side symbol lookup, in O(log N).
    ///
    /// # Panics
    ///
    /// Panics if `target >= total()`.
    pub fn find(&self, target: u32) -> usize {
        assert!(target < self.total(), "target {target} beyond total");
        let mut pos = 0usize;
        let mut remaining = target;
        let mut step = self.len.next_power_of_two();
        while step > 0 {
            let next = pos + step;
            if next <= self.len && self.tree[next] <= remaining {
                remaining -= self.tree[next];
                pos = next;
            }
            step >>= 1;
        }
        pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_naive_prefix_sums() {
        let counts = [3u32, 0, 7, 1, 0, 0, 9, 2, 5, 4];
        let mut t = FenwickTree::new(counts.len());
        for (i, &c) in counts.iter().enumerate() {
            t.add(i, c);
        }
        let mut acc = 0;
        for i in 0..=counts.len() {
            assert_eq!(t.prefix_sum(i), acc);
            if i < counts.len() {
                acc += counts[i];
                assert_eq!(t.get(i), counts[i]);
            }
        }
        assert_eq!(t.total(), acc);
    }

    #[test]
    fn find_inverts_prefix_sum() {
        let counts = [2u32, 0, 3, 1, 0, 4];
        let mut t = FenwickTree::new(counts.len());
        for (i, &c) in counts.iter().enumerate() {
            t.add(i, c);
        }
        // Walk every cumulative value and verify the symbol found owns it.
        for target in 0..t.total() {
            let s = t.find(target);
            assert!(t.prefix_sum(s) <= target, "target {target} sym {s}");
            assert!(t.prefix_sum(s + 1) > target, "target {target} sym {s}");
        }
    }

    #[test]
    fn incremental_adds_accumulate() {
        let mut t = FenwickTree::new(4);
        t.add(2, 1);
        t.add(2, 1);
        t.add(2, 3);
        assert_eq!(t.get(2), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_out_of_range_panics() {
        let mut t = FenwickTree::new(4);
        t.add(4, 1);
    }

    #[test]
    #[should_panic(expected = "beyond total")]
    fn find_beyond_total_panics() {
        let mut t = FenwickTree::new(4);
        t.add(0, 1);
        let _ = t.find(1);
    }

    #[test]
    fn works_for_non_power_of_two_sizes() {
        for len in [1usize, 3, 7, 13, 100, 257] {
            let mut t = FenwickTree::new(len);
            for i in 0..len {
                t.add(i, (i % 5) as u32 + 1);
            }
            for target in 0..t.total() {
                let s = t.find(target);
                assert!(t.prefix_sum(s) <= target && t.prefix_sum(s + 1) > target);
            }
        }
    }
}
