//! Linear support vector machine (SVM kernel).
//!
//! The SVM PE "uses outputs of FFT, BBF, and XCOR to predict seizure onset;
//! multiplies input values and weights to perform classification" (Table
//! III) with "up to 5000 32-bit user-defined integer weights". Weights are
//! fit *offline* (on an external system, as in the clinical workflow of
//! Shiao et al. \[99\]) and loaded onto the device; we provide a small SGD
//! hinge-loss trainer so experiments can produce plausible weights, plus the
//! fixed-point inference datapath the PE implements.

/// Maximum number of weights the PE can hold (Table III).
pub const MAX_WEIGHTS: usize = 5000;

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// A linear classifier with integer weights — the SVM PE datapath.
///
/// Decision rule: `sign(Σ wᵢ·xᵢ + b)` evaluated in 64-bit integer
/// arithmetic.
///
/// # Example
///
/// ```
/// use halo_kernels::LinearSvm;
/// let svm = LinearSvm::new(vec![2, -1], 5).unwrap();
/// assert!(svm.classify(&[10, 3]));  // 2·10 − 3 + 5 > 0
/// assert!(!svm.classify(&[-10, 3]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearSvm {
    weights: Vec<i32>,
    bias: i64,
}

/// Error returned when the weight vector exceeds the PE capacity or is
/// empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidWeights(pub usize);

impl std::fmt::Display for InvalidWeights {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "weight count {} outside 1..={MAX_WEIGHTS}", self.0)
    }
}

impl std::error::Error for InvalidWeights {}

impl LinearSvm {
    /// Creates a classifier from integer weights and a bias.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidWeights`] if `weights` is empty or holds more than
    /// [`MAX_WEIGHTS`] entries.
    pub fn new(weights: Vec<i32>, bias: i64) -> Result<Self, InvalidWeights> {
        if weights.is_empty() || weights.len() > MAX_WEIGHTS {
            return Err(InvalidWeights(weights.len()));
        }
        Ok(Self { weights, bias })
    }

    /// The weight vector.
    pub fn weights(&self) -> &[i32] {
        &self.weights
    }

    /// The bias term.
    pub fn bias(&self) -> i64 {
        self.bias
    }

    /// Raw decision value `Σ wᵢ·xᵢ + b`.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the weight count.
    pub fn decision(&self, features: &[i32]) -> i64 {
        assert_eq!(
            features.len(),
            self.weights.len(),
            "feature vector length mismatch"
        );
        self.weights
            .iter()
            .zip(features)
            .map(|(&w, &x)| w as i64 * x as i64)
            .sum::<i64>()
            + self.bias
    }

    /// Raw decision value computed in eight independent accumulator
    /// lanes (`chunks_exact(8)` body plus a scalar tail).
    ///
    /// The lane split is what lets the autovectorizer lift the
    /// multiply-accumulate to SIMD on stable Rust; because the products
    /// and partial sums are exact `i64` integers, the reassociation is
    /// lossless and the result equals [`LinearSvm::decision`] bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the weight count.
    pub fn decision_lanes(&self, features: &[i32]) -> i64 {
        assert_eq!(
            features.len(),
            self.weights.len(),
            "feature vector length mismatch"
        );
        const LANES: usize = 8;
        let mut acc = [0i64; LANES];
        let w_chunks = self.weights.chunks_exact(LANES);
        let x_chunks = features.chunks_exact(LANES);
        let w_tail = w_chunks.remainder();
        let x_tail = x_chunks.remainder();
        for (w, x) in w_chunks.zip(x_chunks) {
            for l in 0..LANES {
                acc[l] += w[l] as i64 * x[l] as i64;
            }
        }
        let mut total: i64 = acc.iter().sum();
        for (&w, &x) in w_tail.iter().zip(x_tail) {
            total += w as i64 * x as i64;
        }
        total + self.bias
    }

    /// Binary classification: `decision > 0`.
    pub fn classify(&self, features: &[i32]) -> bool {
        self.decision_lanes(features) > 0
    }

    /// Fits weights with sub-gradient descent on the hinge loss (Pegasos
    /// style), then quantizes to the PE's integer weights.
    ///
    /// `examples` pairs a feature vector with a boolean label. This mimics
    /// the offline, per-patient personalization step of the clinical
    /// workflow; it is not part of the on-device pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `examples` is empty, the dimension is zero or exceeds
    /// [`MAX_WEIGHTS`], or feature vectors have inconsistent lengths.
    pub fn train(examples: &[(Vec<f64>, bool)], epochs: usize, lambda: f64) -> Self {
        assert!(!examples.is_empty(), "need at least one training example");
        let dim = examples[0].0.len();
        assert!(dim > 0 && dim <= MAX_WEIGHTS, "dimension {dim} unsupported");
        assert!(
            examples.iter().all(|(x, _)| x.len() == dim),
            "inconsistent feature dimensions"
        );
        // Averaged perceptron: SGD on the margin-0 hinge loss, with weight
        // averaging for stability. `lambda` shrinks weights between updates
        // (L2 regularization).
        let mut w = vec![0.0f64; dim];
        let mut b = 0.0f64;
        let mut w_avg = vec![0.0f64; dim];
        let mut b_avg = 0.0f64;
        // Visit examples in a decorrelated (but deterministic) order: a
        // stride coprime with the example count.
        let n = examples.len();
        let stride = (1..n.max(2)).rev().find(|s| gcd(*s, n) == 1).unwrap_or(1);
        for _ in 0..epochs.max(1) {
            for k in 0..n {
                let (x, label) = &examples[(k * stride) % n];
                let y = if *label { 1.0 } else { -1.0 };
                let margin = y * (w.iter().zip(x).map(|(w, x)| w * x).sum::<f64>() + b);
                if margin <= 0.0 {
                    for (wi, xi) in w.iter_mut().zip(x) {
                        *wi = *wi * (1.0 - lambda) + y * xi;
                    }
                    b += y;
                }
                for (a, wi) in w_avg.iter_mut().zip(&w) {
                    *a += wi;
                }
                b_avg += b;
            }
        }
        let steps = (epochs.max(1) * n) as f64;
        for (a, wi) in w_avg.iter_mut().zip(&w) {
            *a = (*a + wi) / steps;
        }
        b_avg = (b_avg + b) / steps;
        // Quantize: scale so the largest |w| uses a comfortable slice of the
        // i32 range while leaving headroom for features up to 2^20.
        let max_w = w_avg.iter().fold(0.0f64, |a, &x| a.max(x.abs())).max(1e-12);
        let scale = 1000.0 / max_w;
        let weights: Vec<i32> = w_avg.iter().map(|&x| (x * scale).round() as i32).collect();
        let bias = (b_avg * scale).round() as i64;
        Self { weights, bias }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_sizes() {
        assert!(LinearSvm::new(vec![], 0).is_err());
        assert!(LinearSvm::new(vec![0; MAX_WEIGHTS + 1], 0).is_err());
        assert!(LinearSvm::new(vec![0; MAX_WEIGHTS], 0).is_ok());
    }

    #[test]
    fn decision_is_dot_product_plus_bias() {
        let svm = LinearSvm::new(vec![1, 2, 3], -4).unwrap();
        assert_eq!(svm.decision(&[1, 1, 1]), 2);
        assert_eq!(svm.decision(&[0, 0, 0]), -4);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dimension_mismatch_panics() {
        let svm = LinearSvm::new(vec![1, 2], 0).unwrap();
        let _ = svm.decision(&[1]);
    }

    #[test]
    fn trains_a_separable_problem() {
        // Class = (x0 + x1 > 0).
        let mut examples = Vec::new();
        for i in -20..=20 {
            for j in -20..=20 {
                let x = vec![i as f64, j as f64];
                let label = i + j > 0;
                if i + j != 0 {
                    examples.push((x, label));
                }
            }
        }
        let svm = LinearSvm::train(&examples, 20, 0.01);
        let correct = examples
            .iter()
            .filter(|(x, label)| {
                let f: Vec<i32> = x.iter().map(|&v| v as i32).collect();
                svm.classify(&f) == *label
            })
            .count();
        let acc = correct as f64 / examples.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn no_overflow_with_large_weights_and_features() {
        let svm = LinearSvm::new(vec![i32::MAX; 10], 0).unwrap();
        let features = vec![1 << 20; 10];
        let d = svm.decision(&features);
        assert!(d > 0);
    }

    #[test]
    fn lane_decision_equals_scalar_across_lengths() {
        for dim in [1usize, 7, 8, 9, 16, 63, 100] {
            let weights: Vec<i32> = (0..dim)
                .map(|k| match k % 4 {
                    0 => i32::MAX,
                    1 => i32::MIN,
                    _ => (k as i32).wrapping_mul(-2654435761i64 as i32),
                })
                .collect();
            let features: Vec<i32> = (0..dim)
                .map(|k| ((k as i32).wrapping_mul(40503) % (1 << 20)) - (1 << 19))
                .collect();
            let svm = LinearSvm::new(weights, -987654321).unwrap();
            assert_eq!(
                svm.decision(&features),
                svm.decision_lanes(&features),
                "dim={dim}"
            );
        }
    }
}
