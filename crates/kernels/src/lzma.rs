//! LZMA-style compression pipeline: LZ → MA → RC.
//!
//! This is the paper's most heavily co-designed task (§IV-A, Figure 3,
//! Figure 6-right): the LZ PE finds matches, the MA PE maintains adaptive
//! frequency tables (Fenwick tree, saturating counters), and the RC PE range
//! encodes with MA's probabilities. The codec here is the functional
//! composition of those three kernels, with a full decoder proving
//! losslessness.
//!
//! Structure of the symbol stream per block (models reset at block
//! boundaries by the initialization circuits of §IV-B):
//!
//! * a *flag* model chooses literal vs match,
//! * literals use sixteen 256-ary context models selected by
//!   output-position parity and the previous byte's high bits (LZMA's
//!   classic `lc`/`lp` literal contexts; neural samples are 16-bit
//!   little-endian, so low and high bytes have very different,
//!   neighbour-dependent distributions),
//! * match lengths and distances are coded as adaptive bit-length classes
//!   followed by raw bits (RC's "direct bits").

use crate::lz::{LzMatcher, LzOp, MIN_MATCH};
use crate::markov::AdaptiveModel;
use crate::range::{RangeDecoder, RangeEncoder};

/// Default compression block size in bytes (the Figure 8 design point is
/// 2^22; the library default keeps working sets small).
pub const DEFAULT_BLOCK_SIZE: usize = 1 << 16;

/// Errors produced while decompressing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LzmaError {
    /// The container framing is truncated or inconsistent.
    Truncated,
    /// A decoded match referenced data before the block start.
    BadMatch,
    /// A block header claims a raw length beyond the configured block
    /// size (corrupted or hostile stream).
    BadHeader,
}

impl std::fmt::Display for LzmaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "lzma stream truncated"),
            Self::BadMatch => write!(f, "lzma stream contained an invalid match"),
            Self::BadHeader => write!(f, "lzma block header exceeds the block size"),
        }
    }
}

impl std::error::Error for LzmaError {}

/// Number of literal context models: position parity x {16 buckets of the
/// previous sample's same-role byte, or "unknown" when a match covered it}.
pub const LITERAL_CONTEXTS: usize = 34;

/// Literal-context tracker shared by the monolithic codec, its decoder,
/// and the decomposed MA PE.
///
/// The context of a literal is its output-position parity (low/high byte
/// of a little-endian sample) combined with the same-role byte of the
/// *previous* sample — but only when that byte was itself emitted as a
/// literal. Bytes produced by match copies are treated as unknown: the MA
/// PE owns only its frequency tables (§IV-A locality refactoring) and
/// never sees reconstructed data, so the context rule must not depend on
/// it. All three parties track the same two-entry history and therefore
/// pick identical models.
#[derive(Debug, Clone, Copy, Default)]
pub struct LiteralHistory {
    bytes: [u8; 2],
    known: [bool; 2],
    pos: usize,
}

impl LiteralHistory {
    /// Creates the block-start state.
    pub fn new() -> Self {
        Self::default()
    }

    /// The model index for the next literal.
    pub fn context(&self) -> usize {
        let bucket = if self.known[0] {
            (self.bytes[0] >> 4) as usize
        } else {
            16
        };
        ((self.pos & 1) * 17) + bucket
    }

    /// Records an emitted/decoded literal.
    pub fn push_literal(&mut self, b: u8) {
        self.bytes[0] = self.bytes[1];
        self.known[0] = self.known[1];
        self.bytes[1] = b;
        self.known[1] = true;
        self.pos += 1;
    }

    /// Records a match of `len` bytes (their values are unknown to MA).
    pub fn push_match(&mut self, len: usize) {
        self.known = [false, false];
        self.pos += len;
    }
}

/// The per-block model set shared by encoder and decoder.
struct Models {
    flag: AdaptiveModel,
    literal: Vec<AdaptiveModel>,
    len_class: AdaptiveModel,
    dist_class: AdaptiveModel,
}

impl Models {
    fn new(counter_bits: u32) -> Self {
        Self {
            flag: AdaptiveModel::with_counter_bits(2, counter_bits),
            literal: (0..LITERAL_CONTEXTS)
                .map(|_| AdaptiveModel::with_counter_bits(256, counter_bits))
                .collect(),
            len_class: AdaptiveModel::with_counter_bits(17, counter_bits),
            dist_class: AdaptiveModel::with_counter_bits(14, counter_bits),
        }
    }
}

/// Bit length of `v` (0 for 0).
fn bit_class(v: u32) -> u32 {
    32 - v.leading_zeros()
}

fn encode_classed(enc: &mut RangeEncoder, model: &mut AdaptiveModel, v: u32) {
    let class = bit_class(v);
    model.encode(enc, class as usize);
    if class > 1 {
        // Top bit is implied by the class; send the rest raw.
        enc.encode_bits(v & ((1 << (class - 1)) - 1), class - 1);
    }
}

fn decode_classed(dec: &mut RangeDecoder<'_>, model: &mut AdaptiveModel) -> u32 {
    let class = model.decode(dec) as u32;
    match class {
        0 => 0,
        1 => 1,
        c => (1 << (c - 1)) | dec.decode_bits(c - 1),
    }
}

/// The LZMA-style codec (LZ + MA + RC kernels composed).
///
/// # Example
///
/// ```
/// use halo_kernels::LzmaCodec;
/// let codec = LzmaCodec::new(4096).unwrap();
/// let data = b"extracellular voltage stream ".repeat(64);
/// let compressed = codec.compress(&data);
/// assert!(compressed.len() < data.len());
/// assert_eq!(codec.decompress(&compressed).unwrap(), data);
/// ```
#[derive(Debug, Clone)]
pub struct LzmaCodec {
    matcher: LzMatcher,
    block_size: usize,
    counter_bits: u32,
    plain_literals: bool,
}

impl LzmaCodec {
    /// Creates a codec with the given LZ history (power of two, 256–8192).
    ///
    /// # Errors
    ///
    /// Returns [`crate::lz::InvalidHistory`] for unsupported histories.
    pub fn new(history: usize) -> Result<Self, crate::lz::InvalidHistory> {
        Ok(Self {
            // Strong literal models make 4-byte matches a net loss; parse
            // with an 8-byte floor (see `LzMatcher::with_min_match`).
            matcher: LzMatcher::new(history)?.with_min_match(8),
            block_size: DEFAULT_BLOCK_SIZE,
            counter_bits: crate::markov::DEFAULT_COUNTER_BITS,
            plain_literals: false,
        })
    }

    /// Ablation knob: disable the literal context models (a single 256-ary
    /// model instead of [`LITERAL_CONTEXTS`]). Used by the design-choice
    /// ablations to quantify what context modeling buys on neural data.
    pub fn with_plain_literals(mut self) -> Self {
        self.plain_literals = true;
        self
    }

    /// Ablation knob: replace the default parser (8-byte minimum match,
    /// lazy) with the plain greedy 4-byte parser.
    pub fn with_greedy_parser(mut self) -> Self {
        self.matcher = LzMatcher::new(self.matcher.history())
            .expect("history already validated")
            .with_min_match(crate::lz::MIN_MATCH);
        self
    }

    /// Sets the compression block size (bytes). Models reset per block.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn with_block_size(mut self, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        self.block_size = block_size;
        self
    }

    /// Sets the MA counter width in bits (2–16).
    pub fn with_counter_bits(mut self, bits: u32) -> Self {
        self.counter_bits = bits;
        self
    }

    /// The configured block size.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The configured LZ history.
    pub fn history(&self) -> usize {
        self.matcher.history()
    }

    /// Compresses `data`, returning the framed compressed stream.
    pub fn compress(&self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        for block in data.chunks(self.block_size.max(1)) {
            let payload = self.compress_block(block);
            out.extend_from_slice(&(block.len() as u32).to_le_bytes());
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(&payload);
        }
        out
    }

    fn compress_block(&self, block: &[u8]) -> Vec<u8> {
        let ops = self.matcher.parse(block);
        let mut enc = RangeEncoder::new();
        let mut models = Models::new(self.counter_bits);
        let mut history = LiteralHistory::new();
        for op in &ops {
            match *op {
                LzOp::Literal(b) => {
                    models.flag.encode(&mut enc, 0);
                    let ctx = if self.plain_literals {
                        0
                    } else {
                        history.context()
                    };
                    models.literal[ctx].encode(&mut enc, b as usize);
                    history.push_literal(b);
                }
                LzOp::Match { len, dist } => {
                    models.flag.encode(&mut enc, 1);
                    encode_classed(&mut enc, &mut models.len_class, len - MIN_MATCH as u32);
                    encode_classed(&mut enc, &mut models.dist_class, dist - 1);
                    history.push_match(len as usize);
                }
            }
        }
        enc.finish()
    }

    /// Decompresses a stream produced by [`LzmaCodec::compress`].
    ///
    /// # Errors
    ///
    /// Returns [`LzmaError`] on malformed input.
    pub fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, LzmaError> {
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos < data.len() {
            if pos + 8 > data.len() {
                return Err(LzmaError::Truncated);
            }
            let raw_len =
                u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let comp_len =
                u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes")) as usize;
            pos += 8;
            if raw_len > self.block_size {
                return Err(LzmaError::BadHeader);
            }
            if pos + comp_len > data.len() {
                return Err(LzmaError::Truncated);
            }
            self.decompress_block(&data[pos..pos + comp_len], raw_len, &mut out)?;
            pos += comp_len;
        }
        Ok(out)
    }

    fn decompress_block(
        &self,
        payload: &[u8],
        raw_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), LzmaError> {
        let mut dec = RangeDecoder::new(payload);
        let mut models = Models::new(self.counter_bits);
        let mut history = LiteralHistory::new();
        let block_start = out.len();
        while out.len() - block_start < raw_len {
            let produced = out.len() - block_start;
            let flag = models.flag.decode(&mut dec);
            if flag == 0 {
                let ctx = if self.plain_literals {
                    0
                } else {
                    history.context()
                };
                let b = models.literal[ctx].decode(&mut dec) as u8;
                history.push_literal(b);
                out.push(b);
            } else {
                let len = decode_classed(&mut dec, &mut models.len_class) as usize + MIN_MATCH;
                let dist = decode_classed(&mut dec, &mut models.dist_class) as usize + 1;
                if dist > produced || produced + len > raw_len {
                    return Err(LzmaError::BadMatch);
                }
                history.push_match(len);
                let start = out.len() - dist;
                for i in 0..len {
                    let b = out[start + i];
                    out.push(b);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codec() -> LzmaCodec {
        LzmaCodec::new(4096).unwrap()
    }

    fn round_trip(codec: &LzmaCodec, data: &[u8]) -> usize {
        let compressed = codec.compress(data);
        assert_eq!(
            codec.decompress(&compressed).expect("decompress"),
            data,
            "round-trip failed for {} bytes",
            data.len()
        );
        compressed.len()
    }

    #[test]
    fn empty_input() {
        assert_eq!(round_trip(&codec(), &[]), 0);
    }

    #[test]
    fn small_inputs() {
        for data in [&b"a"[..], b"ab", b"abcd", b"abcdabcdabcd"] {
            round_trip(&codec(), data);
        }
    }

    #[test]
    fn repetitive_data_compresses_hard() {
        let data = b"stimulate the cortex ".repeat(300);
        let n = round_trip(&codec(), &data);
        assert!(n < data.len() / 10, "{n} vs {}", data.len());
    }

    #[test]
    fn multi_block_round_trip() {
        let codec = codec().with_block_size(100);
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 7) as u8 * 31).collect();
        round_trip(&codec, &data);
    }

    #[test]
    fn skewed_literals_beat_eight_bits() {
        // No matches (values stride oddly) but heavy byte skew.
        let data: Vec<u8> = (0..20_000)
            .map(|i: u32| {
                if i.is_multiple_of(10) {
                    (i / 10 % 256) as u8
                } else {
                    0x40
                }
            })
            .collect();
        let n = round_trip(&codec(), &data);
        assert!(n < data.len() / 2, "{n} vs {}", data.len());
    }

    #[test]
    fn counter_width_changes_stream_but_not_contents() {
        let data: Vec<u8> = b"seizure onset ".repeat(500);
        let a = codec().with_counter_bits(16);
        let b = codec().with_counter_bits(8);
        let ca = a.compress(&data);
        let cb = b.compress(&data);
        assert_eq!(a.decompress(&ca).unwrap(), data);
        assert_eq!(b.decompress(&cb).unwrap(), data);
    }

    #[test]
    fn truncated_stream_is_an_error_not_a_panic() {
        let data = b"motor cortex beta band".repeat(20);
        let compressed = codec().compress(&data);
        for cut in 0..compressed.len().min(64) {
            let _ = codec().decompress(&compressed[..cut]);
        }
        assert!(matches!(
            codec().decompress(&compressed[..4]),
            Err(LzmaError::Truncated)
        ));
    }

    #[test]
    fn bit_class_boundaries() {
        assert_eq!(bit_class(0), 0);
        assert_eq!(bit_class(1), 1);
        assert_eq!(bit_class(2), 2);
        assert_eq!(bit_class(3), 2);
        assert_eq!(bit_class(4), 3);
        assert_eq!(bit_class(65_531), 16);
    }
}
