//! AES-128 encryption (AES kernel).
//!
//! §III: "HIPAA, NIST, and NSA require using AES with an encryption key of
//! at least 128 bits" for patient data leaving the implant; Table III
//! specifies AES-128 in ECB mode. This is a from-scratch FIPS-197
//! implementation (encrypt and decrypt; decrypt exists so round-trip tests
//! can prove correctness — the device itself only encrypts).
//!
//! ECB mode is what the paper's PE implements, so that is what we model;
//! its well-known pattern-leakage caveat is a property of the paper's
//! design point, not of this reproduction.

/// AES S-box (FIPS-197 §5.1.1).
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Round constants for key expansion.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Inverse S-box, generated from [`SBOX`] at construction time.
fn inv_sbox() -> [u8; 256] {
    let mut inv = [0u8; 256];
    for (i, &s) in SBOX.iter().enumerate() {
        inv[s as usize] = i as u8;
    }
    inv
}

/// Multiplication in GF(2^8) with the AES polynomial 0x11b.
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

/// AES-128 block cipher in ECB mode — the AES PE.
///
/// # Example
///
/// ```
/// use halo_kernels::Aes128;
/// let aes = Aes128::new([0u8; 16]);
/// let mut block = *b"0123456789abcdef";
/// let original = block;
/// aes.encrypt_block(&mut block);
/// assert_ne!(block, original);
/// aes.decrypt_block(&mut block);
/// assert_eq!(block, original);
/// ```
#[derive(Debug, Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
    inv_sbox: [u8; 256],
    bitsliced: BitslicedAes,
}

impl Aes128 {
    /// Expands a 128-bit key into the round-key schedule.
    pub fn new(key: [u8; 16]) -> Self {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for t in &mut temp {
                    *t = SBOX[*t as usize];
                }
                temp[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Self {
            bitsliced: BitslicedAes::new(&round_keys),
            round_keys,
            inv_sbox: inv_sbox(),
        }
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk) {
            *s ^= k;
        }
    }

    fn sub_bytes(state: &mut [u8; 16]) {
        for s in state.iter_mut() {
            *s = SBOX[*s as usize];
        }
    }

    fn shift_rows(state: &mut [u8; 16]) {
        // State is column-major: state[r + 4c]. Row r rotates left by r.
        let copy = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[r + 4 * c] = copy[r + 4 * ((c + r) % 4)];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] = gmul(col[0], 2) ^ gmul(col[1], 3) ^ col[2] ^ col[3];
            state[4 * c + 1] = col[0] ^ gmul(col[1], 2) ^ gmul(col[2], 3) ^ col[3];
            state[4 * c + 2] = col[0] ^ col[1] ^ gmul(col[2], 2) ^ gmul(col[3], 3);
            state[4 * c + 3] = gmul(col[0], 3) ^ col[1] ^ col[2] ^ gmul(col[3], 2);
        }
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        Self::add_round_key(block, &self.round_keys[0]);
        for round in 1..10 {
            Self::sub_bytes(block);
            Self::shift_rows(block);
            Self::mix_columns(block);
            Self::add_round_key(block, &self.round_keys[round]);
        }
        Self::sub_bytes(block);
        Self::shift_rows(block);
        Self::add_round_key(block, &self.round_keys[10]);
    }

    fn inv_sub_bytes(&self, state: &mut [u8; 16]) {
        for s in state.iter_mut() {
            *s = self.inv_sbox[*s as usize];
        }
    }

    fn inv_shift_rows(state: &mut [u8; 16]) {
        let copy = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[r + 4 * ((c + r) % 4)] = copy[r + 4 * c];
            }
        }
    }

    fn inv_mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] = gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
            state[4 * c + 1] =
                gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
            state[4 * c + 2] =
                gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
            state[4 * c + 3] =
                gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
        }
    }

    /// Decrypts one 16-byte block in place (test/verification support; the
    /// implant-side PE only encrypts).
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        Self::add_round_key(block, &self.round_keys[10]);
        Self::inv_shift_rows(block);
        self.inv_sub_bytes(block);
        for round in (1..10).rev() {
            Self::add_round_key(block, &self.round_keys[round]);
            Self::inv_mix_columns(block);
            Self::inv_shift_rows(block);
            self.inv_sub_bytes(block);
        }
        Self::add_round_key(block, &self.round_keys[0]);
    }

    /// Encrypts a byte stream in ECB mode, zero-padding the final partial
    /// block. Output length is `data.len()` rounded up to 16.
    ///
    /// Full groups of four blocks are encrypted by the bit-sliced engine
    /// ([`BitslicedAes`], 64 block-bits per `u64` instruction); ECB blocks
    /// are independent, so the output is byte-identical to the scalar
    /// per-block path that handles the tail.
    pub fn encrypt_ecb(&self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len().div_ceil(16) * 16);
        let mut groups = data.chunks_exact(64);
        for group in &mut groups {
            let mut four: [u8; 64] = group.try_into().expect("exact chunk");
            self.bitsliced.encrypt_blocks4(&mut four);
            out.extend_from_slice(&four);
        }
        for chunk in groups.remainder().chunks(16) {
            let mut block = [0u8; 16];
            block[..chunk.len()].copy_from_slice(chunk);
            self.encrypt_block(&mut block);
            out.extend_from_slice(&block);
        }
        out
    }

    /// Decrypts an ECB stream produced by [`Aes128::encrypt_ecb`]. The
    /// caller must strip any zero padding using its own length records.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of 16.
    pub fn decrypt_ecb(&self, data: &[u8]) -> Vec<u8> {
        assert!(
            data.len().is_multiple_of(16),
            "ciphertext must be block aligned"
        );
        let mut out = Vec::with_capacity(data.len());
        for chunk in data.chunks_exact(16) {
            let mut block = [0u8; 16];
            block.copy_from_slice(chunk);
            self.decrypt_block(&mut block);
            out.extend_from_slice(&block);
        }
        out
    }
}

/// Bit-sliced AES-128 encryption: four blocks per call, one bit-plane per
/// `u64`.
///
/// The 64 state bytes of four ECB blocks are transposed into 8 bit-planes
/// (`planes[b]` bit `p` = bit `b` of byte `p`, where `p = block*16 +
/// r + 4c` in the scalar engine's column-major order). Every AES step then
/// becomes wide boolean algebra over whole planes — 64 byte-lanes per
/// instruction:
///
/// * **SubBytes** is computed, not looked up: the GF(2⁸) inversion as the
///   power `x^254` via a square-and-multiply chain, followed by the
///   FIPS-197 affine map. The GF multiply is the bilinear expansion over
///   basis products `gmul(2^i, 2^j)` and squaring is the linear 8×8
///   bit-matrix `gmul(2^i, 2^i)` — both tables derived from the same
///   [`gmul`] the scalar path uses, so correctness reduces to the scalar
///   reference (and is pinned by exhaustive tests against [`SBOX`]).
/// * **ShiftRows**/**MixColumns** are byte-position permutations, i.e.
///   masked shifts within each 16-bit block group (4-bit column group for
///   MixColumns) applied to all planes.
///
/// No secret-indexed table lookups remain, which is the classic constant-
/// time argument for bit-slicing; here the draw is throughput for the
/// exfiltration stream.
#[derive(Debug, Clone)]
pub struct BitslicedAes {
    /// Round keys bit-sliced with each 16-byte key replicated across the
    /// four block lanes.
    rk_planes: [[u64; 8]; 11],
    /// `mul_tab[i][j] = gmul(2^i, 2^j)` — bilinear GF(2⁸) product basis.
    mul_tab: [[u8; 8]; 8],
    /// `sq_tab[i] = gmul(2^i, 2^i)` — the linear squaring matrix.
    sq_tab: [u8; 8],
}

/// Replicates a 4-bit row-set mask across all sixteen 4-byte columns.
const fn col_mask(rows: u8) -> u64 {
    (rows as u64) * 0x1111_1111_1111_1111
}

/// Replicates a 16-bit in-block byte mask across the four block lanes.
const fn block_mask(bytes: u16) -> u64 {
    (bytes as u64) * 0x0001_0001_0001_0001
}

impl BitslicedAes {
    /// Builds the bit-sliced engine from an expanded key schedule.
    fn new(round_keys: &[[u8; 16]; 11]) -> Self {
        let mut rk_planes = [[0u64; 8]; 11];
        for (round, rk) in round_keys.iter().enumerate() {
            let mut four = [0u8; 64];
            for lane in 0..4 {
                four[lane * 16..(lane + 1) * 16].copy_from_slice(rk);
            }
            rk_planes[round] = Self::slice_bytes(&four);
        }
        let mut mul_tab = [[0u8; 8]; 8];
        let mut sq_tab = [0u8; 8];
        for (i, (row, sq)) in mul_tab.iter_mut().zip(sq_tab.iter_mut()).enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = gmul(1 << i, 1 << j);
            }
            *sq = gmul(1 << i, 1 << i);
        }
        Self {
            rk_planes,
            mul_tab,
            sq_tab,
        }
    }

    /// Transposes 64 bytes into 8 bit-planes.
    fn slice_bytes(bytes: &[u8; 64]) -> [u64; 8] {
        let mut planes = [0u64; 8];
        for (p, &byte) in bytes.iter().enumerate() {
            for (b, plane) in planes.iter_mut().enumerate() {
                *plane |= ((byte >> b & 1) as u64) << p;
            }
        }
        planes
    }

    /// Transposes 8 bit-planes back into 64 bytes.
    fn unslice_bytes(planes: &[u64; 8], out: &mut [u8; 64]) {
        for (p, byte) in out.iter_mut().enumerate() {
            let mut v = 0u8;
            for (b, plane) in planes.iter().enumerate() {
                v |= ((plane >> p & 1) as u8) << b;
            }
            *byte = v;
        }
    }

    /// GF(2⁸) product of two bit-sliced values, expanded bilinearly over
    /// the `2^i · 2^j` basis products.
    fn gf_mul(&self, a: &[u64; 8], b: &[u64; 8]) -> [u64; 8] {
        let mut out = [0u64; 8];
        for (&ai, row) in a.iter().zip(&self.mul_tab) {
            for (&bj, &basis) in b.iter().zip(row) {
                let term = ai & bj;
                if term == 0 {
                    continue;
                }
                for (k, plane) in out.iter_mut().enumerate() {
                    if basis >> k & 1 == 1 {
                        *plane ^= term;
                    }
                }
            }
        }
        out
    }

    /// GF(2⁸) squaring — linear over GF(2), so a plain bit-matrix apply.
    fn gf_sq(&self, a: &[u64; 8]) -> [u64; 8] {
        let mut out = [0u64; 8];
        for (&ai, &basis) in a.iter().zip(&self.sq_tab) {
            for (k, plane) in out.iter_mut().enumerate() {
                if basis >> k & 1 == 1 {
                    *plane ^= ai;
                }
            }
        }
        out
    }

    /// GF(2⁸) inversion as `x^254` (with `0 → 0`, matching the S-box
    /// convention) via an addition chain: 254 = (15·16) + 12 + 2.
    fn gf_inv(&self, x: &[u64; 8]) -> [u64; 8] {
        let x2 = self.gf_sq(x); // x^2
        let x3 = self.gf_mul(&x2, x); // x^3
        let x6 = self.gf_sq(&x3); // x^6
        let x12 = self.gf_sq(&x6); // x^12
        let x14 = self.gf_mul(&x12, &x2); // x^14
        let x15 = self.gf_mul(&x12, &x3); // x^15
        let mut x240 = x15; // x^15 → x^240 by four squarings
        for _ in 0..4 {
            x240 = self.gf_sq(&x240);
        }
        self.gf_mul(&x240, &x14) // x^254
    }

    /// Bit-sliced SubBytes: GF inversion then the FIPS-197 §5.1.1 affine
    /// transform `b'ᵢ = bᵢ ⊕ b₍ᵢ₊₄₎ ⊕ b₍ᵢ₊₅₎ ⊕ b₍ᵢ₊₆₎ ⊕ b₍ᵢ₊₇₎ ⊕ cᵢ`
    /// with `c = 0x63`.
    fn sub_bytes(&self, planes: &mut [u64; 8]) {
        let inv = self.gf_inv(planes);
        for i in 0..8 {
            let mut v =
                inv[i] ^ inv[(i + 4) % 8] ^ inv[(i + 5) % 8] ^ inv[(i + 6) % 8] ^ inv[(i + 7) % 8];
            if 0x63 >> i & 1 == 1 {
                v = !v;
            }
            planes[i] = v;
        }
    }

    /// Bit-sliced ShiftRows: row `r` rotates its columns left by `r`,
    /// which in byte-position space is a two-mask shift within each
    /// 16-bit block group (byte `r + 4c` ← byte `r + 4((c+r) % 4)`).
    fn shift_rows(planes: &mut [u64; 8]) {
        // Per row r: the bytes of columns c >= r move down 4r positions;
        // columns c < r wrap up by 16 - 4r.
        let mut down_mask = [0u64; 4];
        let mut up_mask = [0u64; 4];
        for r in 1..4usize {
            let mut down = 0u16;
            let mut up = 0u16;
            for c in 0..4usize {
                let bit = 1u16 << (r + 4 * c);
                if c >= r {
                    down |= bit;
                } else {
                    up |= bit;
                }
            }
            down_mask[r] = block_mask(down);
            up_mask[r] = block_mask(up);
        }
        let row0 = block_mask(0x1111);
        for plane in planes.iter_mut() {
            let mut v = *plane & row0;
            for r in 1..4 {
                v |= (*plane & down_mask[r]) >> (4 * r);
                v |= (*plane & up_mask[r]) << (16 - 4 * r);
            }
            *plane = v;
        }
    }

    /// Rotates each 4-byte column's bytes so position `r` takes the byte
    /// from position `(r + k) % 4` — the byte-gather MixColumns needs.
    fn rot_col(plane: u64, k: usize) -> u64 {
        debug_assert!((1..4).contains(&k));
        // Input rows >= k land k positions lower; rows < k wrap upward.
        let rows_ge: u8 = match k {
            1 => 0b1110,
            2 => 0b1100,
            _ => 0b1000,
        };
        let ge = col_mask(rows_ge);
        ((plane & ge) >> k) | ((plane & !ge & col_mask(0xf)) << (4 - k))
    }

    /// Bit-sliced xtime (multiply by 2 in GF(2⁸)): plane shift with the
    /// 0x1b reduction folded into planes 0, 1, 3, 4.
    fn xtime(planes: &[u64; 8]) -> [u64; 8] {
        let hi = planes[7];
        [
            hi,
            planes[0] ^ hi,
            planes[1],
            planes[2] ^ hi,
            planes[3] ^ hi,
            planes[4],
            planes[5],
            planes[6],
        ]
    }

    /// Bit-sliced MixColumns: `new[r] = 2·col[r] ⊕ 3·col[r+1] ⊕ col[r+2]
    /// ⊕ col[r+3]` (indices mod 4), assembled from column rotations and
    /// two xtimes.
    fn mix_columns(planes: &mut [u64; 8]) {
        let a = *planes;
        let mut b = [0u64; 8];
        for (i, plane) in b.iter_mut().enumerate() {
            *plane = Self::rot_col(a[i], 1);
        }
        let two_a = Self::xtime(&a);
        let two_b = Self::xtime(&b);
        for i in 0..8 {
            planes[i] =
                two_a[i] ^ two_b[i] ^ b[i] ^ Self::rot_col(a[i], 2) ^ Self::rot_col(a[i], 3);
        }
    }

    fn add_round_key(planes: &mut [u64; 8], rk: &[u64; 8]) {
        for (p, k) in planes.iter_mut().zip(rk) {
            *p ^= k;
        }
    }

    /// Encrypts four consecutive 16-byte ECB blocks in place. Each block
    /// is byte-identical to [`Aes128::encrypt_block`] of that block.
    pub fn encrypt_blocks4(&self, blocks: &mut [u8; 64]) {
        let mut planes = Self::slice_bytes(blocks);
        Self::add_round_key(&mut planes, &self.rk_planes[0]);
        for round in 1..10 {
            self.sub_bytes(&mut planes);
            Self::shift_rows(&mut planes);
            Self::mix_columns(&mut planes);
            Self::add_round_key(&mut planes, &self.rk_planes[round]);
        }
        self.sub_bytes(&mut planes);
        Self::shift_rows(&mut planes);
        Self::add_round_key(&mut planes, &self.rk_planes[10]);
        Self::unslice_bytes(&planes, blocks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS-197 Appendix B: the canonical AES-128 example.
    #[test]
    fn fips197_appendix_b_vector() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let mut block = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expected = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        let aes = Aes128::new(key);
        aes.encrypt_block(&mut block);
        assert_eq!(block, expected);
    }

    /// FIPS-197 Appendix C.1: AES-128 known-answer test.
    #[test]
    fn fips197_appendix_c1_vector() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let mut block: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
        let expected = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        let aes = Aes128::new(key);
        aes.encrypt_block(&mut block);
        assert_eq!(block, expected);
        aes.decrypt_block(&mut block);
        let original: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
        assert_eq!(block, original);
    }

    #[test]
    fn ecb_round_trip_with_padding() {
        let aes = Aes128::new([7u8; 16]);
        let data: Vec<u8> = (0..53u8).collect(); // not block aligned
        let ct = aes.encrypt_ecb(&data);
        assert_eq!(ct.len(), 64);
        let pt = aes.decrypt_ecb(&ct);
        assert_eq!(&pt[..53], &data[..]);
        assert!(pt[53..].iter().all(|&b| b == 0));
    }

    #[test]
    fn ecb_output_length_is_input_rounded_up() {
        let aes = Aes128::new([0u8; 16]);
        assert_eq!(aes.encrypt_ecb(&[]).len(), 0);
        assert_eq!(aes.encrypt_ecb(&[1]).len(), 16);
        assert_eq!(aes.encrypt_ecb(&[0; 16]).len(), 16);
        assert_eq!(aes.encrypt_ecb(&[0; 17]).len(), 32);
    }

    #[test]
    fn different_keys_differ() {
        let a = Aes128::new([1u8; 16]);
        let b = Aes128::new([2u8; 16]);
        let mut x = [9u8; 16];
        let mut y = [9u8; 16];
        a.encrypt_block(&mut x);
        b.encrypt_block(&mut y);
        assert_ne!(x, y);
    }

    #[test]
    fn gf_multiplication_identities() {
        assert_eq!(gmul(0x57, 0x13), 0xfe); // FIPS-197 §4.2 example
        assert_eq!(gmul(1, 0xab), 0xab);
        assert_eq!(gmul(0, 0xff), 0);
    }

    #[test]
    fn sbox_is_a_permutation() {
        let mut seen = [false; 256];
        for &s in SBOX.iter() {
            assert!(!seen[s as usize], "duplicate sbox entry {s:#x}");
            seen[s as usize] = true;
        }
    }

    fn test_engine() -> (Aes128, BitslicedAes) {
        let key: [u8; 16] = core::array::from_fn(|i| (i as u8).wrapping_mul(0x11));
        let aes = Aes128::new(key);
        let bs = aes.bitsliced.clone();
        (aes, bs)
    }

    /// Deterministic pseudo-random 64-byte state (four blocks).
    fn pseudo_state(seed: u64) -> [u8; 64] {
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        core::array::from_fn(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 32) as u8
        })
    }

    #[test]
    fn bitsliced_transpose_round_trips() {
        let bytes = pseudo_state(1);
        let planes = BitslicedAes::slice_bytes(&bytes);
        let mut back = [0u8; 64];
        BitslicedAes::unslice_bytes(&planes, &mut back);
        assert_eq!(bytes, back);
    }

    #[test]
    fn bitsliced_sub_bytes_matches_sbox_for_all_inputs() {
        let (_, bs) = test_engine();
        // All 256 byte values across four 64-byte batches.
        for batch in 0..4u16 {
            let mut bytes: [u8; 64] = core::array::from_fn(|i| (batch * 64 + i as u16) as u8);
            let want: [u8; 64] = core::array::from_fn(|i| SBOX[bytes[i] as usize]);
            let mut planes = BitslicedAes::slice_bytes(&bytes);
            bs.sub_bytes(&mut planes);
            BitslicedAes::unslice_bytes(&planes, &mut bytes);
            assert_eq!(bytes, want, "batch {batch}");
        }
    }

    #[test]
    fn bitsliced_shift_rows_matches_scalar() {
        for seed in 0..8 {
            let mut bytes = pseudo_state(seed);
            let mut want = bytes;
            for block in want.chunks_exact_mut(16) {
                Aes128::shift_rows(block.try_into().unwrap());
            }
            let mut planes = BitslicedAes::slice_bytes(&bytes);
            BitslicedAes::shift_rows(&mut planes);
            BitslicedAes::unslice_bytes(&planes, &mut bytes);
            assert_eq!(bytes, want, "seed {seed}");
        }
    }

    #[test]
    fn bitsliced_mix_columns_matches_scalar() {
        for seed in 0..8 {
            let mut bytes = pseudo_state(seed);
            let mut want = bytes;
            for block in want.chunks_exact_mut(16) {
                Aes128::mix_columns(block.try_into().unwrap());
            }
            let mut planes = BitslicedAes::slice_bytes(&bytes);
            BitslicedAes::mix_columns(&mut planes);
            BitslicedAes::unslice_bytes(&planes, &mut bytes);
            assert_eq!(bytes, want, "seed {seed}");
        }
    }

    #[test]
    fn bitsliced_encrypt_matches_scalar_blocks() {
        let (aes, bs) = test_engine();
        for seed in 0..16 {
            let mut four = pseudo_state(seed);
            let mut want = four;
            for block in want.chunks_exact_mut(16) {
                aes.encrypt_block(block.try_into().unwrap());
            }
            bs.encrypt_blocks4(&mut four);
            assert_eq!(four, want, "seed {seed}");
        }
    }

    #[test]
    fn bitsliced_path_reproduces_fips_vector() {
        // FIPS-197 Appendix B plaintext/key, replicated across all four
        // lanes so the 64-byte bit-sliced path carries the whole call.
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let plain = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let want = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        let aes = Aes128::new(key);
        let mut data = Vec::new();
        for _ in 0..4 {
            data.extend_from_slice(&plain);
        }
        let out = aes.encrypt_ecb(&data);
        assert_eq!(out.len(), 64);
        for block in out.chunks_exact(16) {
            assert_eq!(block, want);
        }
    }

    #[test]
    fn ecb_mixed_group_and_remainder_matches_blockwise_scalar() {
        // 7 blocks: one bit-sliced group of four plus a 3-block scalar
        // remainder; must equal per-block scalar encryption exactly.
        let (aes, _) = test_engine();
        let mut data = Vec::new();
        for seed in 0..2 {
            data.extend_from_slice(&pseudo_state(seed));
        }
        data.truncate(7 * 16);
        let got = aes.encrypt_ecb(&data);
        let mut want = Vec::new();
        for block in data.chunks_exact(16) {
            let mut b: [u8; 16] = block.try_into().unwrap();
            aes.encrypt_block(&mut b);
            want.extend_from_slice(&b);
        }
        assert_eq!(got, want);
    }
}
