//! AES-128 encryption (AES kernel).
//!
//! §III: "HIPAA, NIST, and NSA require using AES with an encryption key of
//! at least 128 bits" for patient data leaving the implant; Table III
//! specifies AES-128 in ECB mode. This is a from-scratch FIPS-197
//! implementation (encrypt and decrypt; decrypt exists so round-trip tests
//! can prove correctness — the device itself only encrypts).
//!
//! ECB mode is what the paper's PE implements, so that is what we model;
//! its well-known pattern-leakage caveat is a property of the paper's
//! design point, not of this reproduction.

/// AES S-box (FIPS-197 §5.1.1).
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Round constants for key expansion.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Inverse S-box, generated from [`SBOX`] at construction time.
fn inv_sbox() -> [u8; 256] {
    let mut inv = [0u8; 256];
    for (i, &s) in SBOX.iter().enumerate() {
        inv[s as usize] = i as u8;
    }
    inv
}

/// Multiplication in GF(2^8) with the AES polynomial 0x11b.
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

/// AES-128 block cipher in ECB mode — the AES PE.
///
/// # Example
///
/// ```
/// use halo_kernels::Aes128;
/// let aes = Aes128::new([0u8; 16]);
/// let mut block = *b"0123456789abcdef";
/// let original = block;
/// aes.encrypt_block(&mut block);
/// assert_ne!(block, original);
/// aes.decrypt_block(&mut block);
/// assert_eq!(block, original);
/// ```
#[derive(Debug, Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
    inv_sbox: [u8; 256],
}

impl Aes128 {
    /// Expands a 128-bit key into the round-key schedule.
    pub fn new(key: [u8; 16]) -> Self {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for t in &mut temp {
                    *t = SBOX[*t as usize];
                }
                temp[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Self {
            round_keys,
            inv_sbox: inv_sbox(),
        }
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk) {
            *s ^= k;
        }
    }

    fn sub_bytes(state: &mut [u8; 16]) {
        for s in state.iter_mut() {
            *s = SBOX[*s as usize];
        }
    }

    fn shift_rows(state: &mut [u8; 16]) {
        // State is column-major: state[r + 4c]. Row r rotates left by r.
        let copy = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[r + 4 * c] = copy[r + 4 * ((c + r) % 4)];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] = gmul(col[0], 2) ^ gmul(col[1], 3) ^ col[2] ^ col[3];
            state[4 * c + 1] = col[0] ^ gmul(col[1], 2) ^ gmul(col[2], 3) ^ col[3];
            state[4 * c + 2] = col[0] ^ col[1] ^ gmul(col[2], 2) ^ gmul(col[3], 3);
            state[4 * c + 3] = gmul(col[0], 3) ^ col[1] ^ col[2] ^ gmul(col[3], 2);
        }
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        Self::add_round_key(block, &self.round_keys[0]);
        for round in 1..10 {
            Self::sub_bytes(block);
            Self::shift_rows(block);
            Self::mix_columns(block);
            Self::add_round_key(block, &self.round_keys[round]);
        }
        Self::sub_bytes(block);
        Self::shift_rows(block);
        Self::add_round_key(block, &self.round_keys[10]);
    }

    fn inv_sub_bytes(&self, state: &mut [u8; 16]) {
        for s in state.iter_mut() {
            *s = self.inv_sbox[*s as usize];
        }
    }

    fn inv_shift_rows(state: &mut [u8; 16]) {
        let copy = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[r + 4 * ((c + r) % 4)] = copy[r + 4 * c];
            }
        }
    }

    fn inv_mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] = gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
            state[4 * c + 1] =
                gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
            state[4 * c + 2] =
                gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
            state[4 * c + 3] =
                gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
        }
    }

    /// Decrypts one 16-byte block in place (test/verification support; the
    /// implant-side PE only encrypts).
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        Self::add_round_key(block, &self.round_keys[10]);
        Self::inv_shift_rows(block);
        self.inv_sub_bytes(block);
        for round in (1..10).rev() {
            Self::add_round_key(block, &self.round_keys[round]);
            Self::inv_mix_columns(block);
            Self::inv_shift_rows(block);
            self.inv_sub_bytes(block);
        }
        Self::add_round_key(block, &self.round_keys[0]);
    }

    /// Encrypts a byte stream in ECB mode, zero-padding the final partial
    /// block. Output length is `data.len()` rounded up to 16.
    pub fn encrypt_ecb(&self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len().div_ceil(16) * 16);
        for chunk in data.chunks(16) {
            let mut block = [0u8; 16];
            block[..chunk.len()].copy_from_slice(chunk);
            self.encrypt_block(&mut block);
            out.extend_from_slice(&block);
        }
        out
    }

    /// Decrypts an ECB stream produced by [`Aes128::encrypt_ecb`]. The
    /// caller must strip any zero padding using its own length records.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of 16.
    pub fn decrypt_ecb(&self, data: &[u8]) -> Vec<u8> {
        assert!(
            data.len().is_multiple_of(16),
            "ciphertext must be block aligned"
        );
        let mut out = Vec::with_capacity(data.len());
        for chunk in data.chunks_exact(16) {
            let mut block = [0u8; 16];
            block.copy_from_slice(chunk);
            self.decrypt_block(&mut block);
            out.extend_from_slice(&block);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS-197 Appendix B: the canonical AES-128 example.
    #[test]
    fn fips197_appendix_b_vector() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let mut block = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expected = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        let aes = Aes128::new(key);
        aes.encrypt_block(&mut block);
        assert_eq!(block, expected);
    }

    /// FIPS-197 Appendix C.1: AES-128 known-answer test.
    #[test]
    fn fips197_appendix_c1_vector() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let mut block: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
        let expected = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        let aes = Aes128::new(key);
        aes.encrypt_block(&mut block);
        assert_eq!(block, expected);
        aes.decrypt_block(&mut block);
        let original: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
        assert_eq!(block, original);
    }

    #[test]
    fn ecb_round_trip_with_padding() {
        let aes = Aes128::new([7u8; 16]);
        let data: Vec<u8> = (0..53u8).collect(); // not block aligned
        let ct = aes.encrypt_ecb(&data);
        assert_eq!(ct.len(), 64);
        let pt = aes.decrypt_ecb(&ct);
        assert_eq!(&pt[..53], &data[..]);
        assert!(pt[53..].iter().all(|&b| b == 0));
    }

    #[test]
    fn ecb_output_length_is_input_rounded_up() {
        let aes = Aes128::new([0u8; 16]);
        assert_eq!(aes.encrypt_ecb(&[]).len(), 0);
        assert_eq!(aes.encrypt_ecb(&[1]).len(), 16);
        assert_eq!(aes.encrypt_ecb(&[0; 16]).len(), 16);
        assert_eq!(aes.encrypt_ecb(&[0; 17]).len(), 32);
    }

    #[test]
    fn different_keys_differ() {
        let a = Aes128::new([1u8; 16]);
        let b = Aes128::new([2u8; 16]);
        let mut x = [9u8; 16];
        let mut y = [9u8; 16];
        a.encrypt_block(&mut x);
        b.encrypt_block(&mut y);
        assert_ne!(x, y);
    }

    #[test]
    fn gf_multiplication_identities() {
        assert_eq!(gmul(0x57, 0x13), 0xfe); // FIPS-197 §4.2 example
        assert_eq!(gmul(1, 0xab), 0xab);
        assert_eq!(gmul(0, 0xff), 0);
    }

    #[test]
    fn sbox_is_a_permutation() {
        let mut seen = [false; 256];
        for &s in SBOX.iter() {
            assert!(!seen[s as usize], "duplicate sbox entry {s:#x}");
            seen[s as usize] = true;
        }
    }
}
