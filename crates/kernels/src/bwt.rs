//! Burrows-Wheeler transform and the Bzip2-style BWTMA codec (§VII).
//!
//! The paper's modularity discussion: "compression based on the
//! Burrows-Wheeler transform (e.g., Bzip2) may be particularly effective
//! for certain classes of neural data. Implementing a monolithic ASIC for
//! Bzip2 will be overly complex and power-hungry, but HALO's modularity
//! offers a lower-power alternative … we simply need to implement the
//! Burrows-Wheeler transform, but can reuse the MA and RC PEs."
//!
//! This module is that extension: a from-scratch BWT (prefix-doubling
//! suffix ranking), a move-to-front stage, and [`BwtmaCodec`] which feeds
//! the MTF symbols through the *same* [`crate::AdaptiveModel`] /
//! [`crate::RangeEncoder`] pair every other MA/RC pipeline uses.

use crate::markov::AdaptiveModel;
use crate::range::{RangeDecoder, RangeEncoder};

/// Output of the forward transform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BwtBlock {
    /// The last column of the sorted rotation matrix.
    pub data: Vec<u8>,
    /// Row index of the original string among the sorted rotations.
    pub primary: u32,
}

/// Forward Burrows-Wheeler transform by prefix-doubling rank sort
/// (O(n log² n), no sentinel — rotations, not suffixes).
///
/// # Example
///
/// ```
/// use halo_kernels::bwt::{bwt_forward, bwt_inverse};
/// let block = bwt_forward(b"banana");
/// assert_eq!(bwt_inverse(&block), b"banana");
/// ```
pub fn bwt_forward(input: &[u8]) -> BwtBlock {
    let n = input.len();
    if n == 0 {
        return BwtBlock {
            data: Vec::new(),
            primary: 0,
        };
    }
    // rank[i]: equivalence class of rotation starting at i, refined by
    // doubling the compared prefix length each round.
    let mut rank: Vec<u32> = input.iter().map(|&b| b as u32).collect();
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut tmp = vec![0u32; n];
    let mut k = 1usize;
    loop {
        let key = |i: u32| -> (u32, u32) {
            let i = i as usize;
            (rank[i], rank[(i + k) % n])
        };
        order.sort_unstable_by_key(|&i| key(i));
        // Re-rank.
        tmp[order[0] as usize] = 0;
        let mut distinct = 1u32;
        for w in 1..n {
            let a = order[w - 1];
            let b = order[w];
            if key(a) != key(b) {
                distinct += 1;
            }
            tmp[b as usize] = distinct - 1;
        }
        rank.copy_from_slice(&tmp);
        if distinct as usize == n || k >= n {
            break;
        }
        k *= 2;
    }
    let mut data = Vec::with_capacity(n);
    let mut primary = 0u32;
    for (row, &start) in order.iter().enumerate() {
        let start = start as usize;
        data.push(input[(start + n - 1) % n]);
        if start == 0 {
            primary = row as u32;
        }
    }
    BwtBlock { data, primary }
}

/// Inverse Burrows-Wheeler transform via LF-mapping.
///
/// # Panics
///
/// Panics if `block.primary` is out of range for a non-empty block.
pub fn bwt_inverse(block: &BwtBlock) -> Vec<u8> {
    let n = block.data.len();
    if n == 0 {
        return Vec::new();
    }
    assert!((block.primary as usize) < n, "primary index out of range");
    // counts[c]: number of occurrences of byte c; starts[c]: first row of
    // the first column beginning with c.
    let mut counts = [0u32; 256];
    for &b in &block.data {
        counts[b as usize] += 1;
    }
    let mut starts = [0u32; 256];
    let mut acc = 0u32;
    for c in 0..256 {
        starts[c] = acc;
        acc += counts[c];
    }
    // lf[row]: row in the sorted column reached by following the cycle.
    let mut occ = [0u32; 256];
    let mut lf = vec![0u32; n];
    for (row, &b) in block.data.iter().enumerate() {
        lf[row] = starts[b as usize] + occ[b as usize];
        occ[b as usize] += 1;
    }
    let mut out = vec![0u8; n];
    let mut row = block.primary as usize;
    for slot in out.iter_mut().rev() {
        *slot = block.data[row];
        row = lf[row] as usize;
    }
    out
}

/// Move-to-front encoding: small symbols for recently-seen bytes, which is
/// what makes post-BWT data compressible by an order-0 adaptive model.
pub fn mtf_encode(data: &[u8]) -> Vec<u8> {
    let mut table: Vec<u8> = (0..=255).collect();
    data.iter()
        .map(|&b| {
            let pos = table.iter().position(|&x| x == b).expect("byte in table");
            table.remove(pos);
            table.insert(0, b);
            pos as u8
        })
        .collect()
}

/// Move-to-front decoding.
pub fn mtf_decode(codes: &[u8]) -> Vec<u8> {
    let mut table: Vec<u8> = (0..=255).collect();
    codes
        .iter()
        .map(|&c| {
            let b = table.remove(c as usize);
            table.insert(0, b);
            b
        })
        .collect()
}

/// Errors produced while decompressing a BWTMA stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BwtmaError {
    /// The container framing is truncated or inconsistent.
    Truncated,
    /// A block header is invalid.
    BadHeader,
}

impl std::fmt::Display for BwtmaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "bwtma stream truncated"),
            Self::BadHeader => write!(f, "bwtma block header invalid"),
        }
    }
}

impl std::error::Error for BwtmaError {}

/// The Bzip2-style codec: BWT → MTF → MA/RC.
///
/// # Example
///
/// ```
/// use halo_kernels::bwt::BwtmaCodec;
/// let codec = BwtmaCodec::new();
/// let data = b"ictal interictal ictal interictal".repeat(20);
/// let compressed = codec.compress(&data);
/// assert!(compressed.len() < data.len());
/// assert_eq!(codec.decompress(&compressed).unwrap(), data);
/// ```
#[derive(Debug, Clone)]
pub struct BwtmaCodec {
    block_size: usize,
    counter_bits: u32,
}

impl Default for BwtmaCodec {
    fn default() -> Self {
        Self::new()
    }
}

impl BwtmaCodec {
    /// Creates a codec with 64 KB blocks and 16-bit counters.
    pub fn new() -> Self {
        Self {
            block_size: 1 << 16,
            counter_bits: crate::markov::DEFAULT_COUNTER_BITS,
        }
    }

    /// Sets the block size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn with_block_size(mut self, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        self.block_size = block_size;
        self
    }

    /// Compresses `data` into framed blocks
    /// (`[raw_len][primary][payload_len][payload]`).
    pub fn compress(&self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        for block in data.chunks(self.block_size) {
            let bwt = bwt_forward(block);
            let mtf = mtf_encode(&bwt.data);
            let mut enc = RangeEncoder::new();
            let mut model = AdaptiveModel::with_counter_bits(256, self.counter_bits);
            for &sym in &mtf {
                model.encode(&mut enc, sym as usize);
            }
            let payload = enc.finish();
            out.extend_from_slice(&(block.len() as u32).to_le_bytes());
            out.extend_from_slice(&bwt.primary.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(&payload);
        }
        out
    }

    /// Decompresses a stream produced by [`BwtmaCodec::compress`].
    ///
    /// # Errors
    ///
    /// Returns [`BwtmaError`] on malformed input.
    pub fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, BwtmaError> {
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos < data.len() {
            if pos + 12 > data.len() {
                return Err(BwtmaError::Truncated);
            }
            let read_u32 =
                |p: usize| u32::from_le_bytes(data[p..p + 4].try_into().expect("4 bytes"));
            let raw_len = read_u32(pos) as usize;
            let primary = read_u32(pos + 4);
            let comp_len = read_u32(pos + 8) as usize;
            pos += 12;
            if raw_len > self.block_size {
                return Err(BwtmaError::BadHeader);
            }
            if pos + comp_len > data.len() {
                return Err(BwtmaError::Truncated);
            }
            if raw_len > 0 && primary as usize >= raw_len {
                return Err(BwtmaError::BadHeader);
            }
            let mut dec = RangeDecoder::new(&data[pos..pos + comp_len]);
            let mut model = AdaptiveModel::with_counter_bits(256, self.counter_bits);
            let mtf: Vec<u8> = (0..raw_len).map(|_| model.decode(&mut dec) as u8).collect();
            let block = BwtBlock {
                data: mtf_decode(&mtf),
                primary,
            };
            out.extend_from_slice(&bwt_inverse(&block));
            pos += comp_len;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bwt_canonical_example() {
        // The classic: BWT("banana") with rotations (not suffixes).
        let b = bwt_forward(b"banana");
        assert_eq!(bwt_inverse(&b), b"banana");
    }

    #[test]
    fn bwt_round_trips_edge_cases() {
        for data in [
            &b""[..],
            b"a",
            b"aa",
            b"ab",
            b"abcabcabc",
            b"zzzzzzzzzz",
            b"\x00\xff\x00\xff",
        ] {
            let block = bwt_forward(data);
            assert_eq!(bwt_inverse(&block), data, "data {data:?}");
        }
    }

    #[test]
    fn bwt_groups_like_contexts() {
        // BWT of repetitive text clusters equal bytes into runs.
        let data = b"the quick the quick the quick the quick".repeat(4);
        let block = bwt_forward(&data);
        let runs = block.data.windows(2).filter(|w| w[0] == w[1]).count();
        let baseline = data.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(runs > 3 * baseline, "bwt runs {runs} vs input {baseline}");
    }

    #[test]
    fn mtf_round_trips() {
        let data: Vec<u8> = (0..512u32).map(|i| (i * 37 % 251) as u8).collect();
        assert_eq!(mtf_decode(&mtf_encode(&data)), data);
    }

    #[test]
    fn mtf_favors_runs() {
        let codes = mtf_encode(b"aaaabbbbaaaa");
        // After the first occurrence, repeated bytes code to 0.
        assert_eq!(&codes[1..4], &[0, 0, 0]);
    }

    #[test]
    fn codec_round_trips() {
        let codec = BwtmaCodec::new().with_block_size(512);
        let data: Vec<u8> = (0..4000u32).map(|i| (i % 7) as u8 * 31).collect();
        let c = codec.compress(&data);
        assert_eq!(codec.decompress(&c).unwrap(), data);
        assert!(c.len() < data.len() / 4);
    }

    #[test]
    fn codec_handles_empty_and_tiny() {
        let codec = BwtmaCodec::new();
        for data in [&b""[..], b"x", b"xy"] {
            let c = codec.compress(data);
            assert_eq!(codec.decompress(&c).unwrap(), data);
        }
    }

    #[test]
    fn truncation_detected() {
        let codec = BwtmaCodec::new();
        let c = codec.compress(b"some neural telemetry bytes");
        assert!(codec.decompress(&c[..5]).is_err());
        assert!(codec.decompress(&c[..c.len() - 1]).is_err());
    }

    #[test]
    fn beats_raw_on_text_like_data() {
        let codec = BwtmaCodec::new();
        let data = b"interictal spiking with periodic discharges ".repeat(100);
        let c = codec.compress(&data);
        assert!(
            c.len() * 8 < data.len(),
            "bwtma: {} vs {}",
            c.len(),
            data.len()
        );
    }
}
