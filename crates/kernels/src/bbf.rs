//! Butterworth bandpass filter (BBF kernel).
//!
//! BBF isolates the frequency bands correlated with seizures (Table III). It
//! is "a simple filter with minimal arithmetic that scales linearly with
//! channel count" (§IV-A) — which is why HALO separates it from XCOR and
//! clocks it over an order of magnitude slower. The hardware PE replaces
//! floating point with fixed point, "achieving an order of magnitude
//! reduction in power with only <0.1% increase in relative error" (§IV-B);
//! this module implements both the `f64` reference ([`BbfFloat`]) and the
//! fixed-point datapath ([`Bbf`]) so that claim is testable.

use crate::fixed::sat16;

/// Second-order section coefficients (normalized, `a0 == 1`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Biquad {
    /// Feedforward coefficients.
    pub b: [f64; 3],
    /// Feedback coefficients (`a\[0\]` is `a1`, `a\[1\]` is `a2`).
    pub a: [f64; 2],
}

/// A Butterworth bandpass design: a 2nd-order highpass at the low edge
/// cascaded with a 2nd-order lowpass at the high edge (Q = 1/√2).
///
/// # Example
///
/// ```
/// use halo_kernels::BbfDesign;
/// let design = BbfDesign::new(14.0, 25.0, 30_000).unwrap();
/// assert_eq!(design.sections().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BbfDesign {
    lo_hz: f64,
    hi_hz: f64,
    sample_rate_hz: u32,
    sections: Vec<Biquad>,
}

/// Error returned for invalid band edges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidBand {
    /// Low edge requested (Hz).
    pub lo_hz: f64,
    /// High edge requested (Hz).
    pub hi_hz: f64,
}

impl std::fmt::Display for InvalidBand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid band edges {}..{} Hz (must satisfy 0 < lo < hi < Nyquist)",
            self.lo_hz, self.hi_hz
        )
    }
}

impl std::error::Error for InvalidBand {}

impl BbfDesign {
    /// Designs a bandpass over `[lo_hz, hi_hz]` at the given sample rate.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidBand`] unless `0 < lo_hz < hi_hz <` Nyquist
    /// ("frequencies up to ADC Nyquist limit", Table III).
    pub fn new(lo_hz: f64, hi_hz: f64, sample_rate_hz: u32) -> Result<Self, InvalidBand> {
        let nyquist = sample_rate_hz as f64 / 2.0;
        if !(lo_hz > 0.0 && lo_hz < hi_hz && hi_hz < nyquist) {
            return Err(InvalidBand { lo_hz, hi_hz });
        }
        let q = std::f64::consts::FRAC_1_SQRT_2;
        let sections = vec![
            Self::rbj_highpass(lo_hz, q, sample_rate_hz),
            Self::rbj_lowpass(hi_hz, q, sample_rate_hz),
        ];
        Ok(Self {
            lo_hz,
            hi_hz,
            sample_rate_hz,
            sections,
        })
    }

    /// Low band edge in Hz.
    pub fn lo_hz(&self) -> f64 {
        self.lo_hz
    }

    /// High band edge in Hz.
    pub fn hi_hz(&self) -> f64 {
        self.hi_hz
    }

    /// Sample rate in Hz.
    pub fn sample_rate_hz(&self) -> u32 {
        self.sample_rate_hz
    }

    /// The cascade's second-order sections.
    pub fn sections(&self) -> &[Biquad] {
        &self.sections
    }

    fn rbj_lowpass(fc: f64, q: f64, fs: u32) -> Biquad {
        let w0 = std::f64::consts::TAU * fc / fs as f64;
        let alpha = w0.sin() / (2.0 * q);
        let cosw = w0.cos();
        let a0 = 1.0 + alpha;
        Biquad {
            b: [
                (1.0 - cosw) / 2.0 / a0,
                (1.0 - cosw) / a0,
                (1.0 - cosw) / 2.0 / a0,
            ],
            a: [-2.0 * cosw / a0, (1.0 - alpha) / a0],
        }
    }

    fn rbj_highpass(fc: f64, q: f64, fs: u32) -> Biquad {
        let w0 = std::f64::consts::TAU * fc / fs as f64;
        let alpha = w0.sin() / (2.0 * q);
        let cosw = w0.cos();
        let a0 = 1.0 + alpha;
        Biquad {
            b: [
                (1.0 + cosw) / 2.0 / a0,
                -(1.0 + cosw) / a0,
                (1.0 + cosw) / 2.0 / a0,
            ],
            a: [-2.0 * cosw / a0, (1.0 - alpha) / a0],
        }
    }
}

/// Floating-point reference implementation of the bandpass cascade.
#[derive(Debug, Clone)]
pub struct BbfFloat {
    sections: Vec<Biquad>,
    state: Vec<[f64; 4]>, // x1, x2, y1, y2 per section
}

impl BbfFloat {
    /// Builds the reference filter from a design.
    pub fn new(design: &BbfDesign) -> Self {
        Self {
            sections: design.sections().to_vec(),
            state: vec![[0.0; 4]; design.sections().len()],
        }
    }

    /// Filters one sample.
    pub fn process(&mut self, x: f64) -> f64 {
        let mut v = x;
        for (s, st) in self.sections.iter().zip(self.state.iter_mut()) {
            let y = s.b[0] * v + s.b[1] * st[0] + s.b[2] * st[1] - s.a[0] * st[2] - s.a[1] * st[3];
            st[1] = st[0];
            st[0] = v;
            st[3] = st[2];
            st[2] = y;
            v = y;
        }
        v
    }

    /// Filters a block of samples.
    pub fn process_block(&mut self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.process(x)).collect()
    }
}

/// Fixed-point Butterworth bandpass — the BBF PE datapath.
///
/// Coefficients are quantized to Q20 `i32` (narrow bands put poles close to
/// the unit circle, so coefficient resolution dominates the error budget);
/// section state carries six fractional guard bits, the accumulator is
/// 64-bit, and the stream output is a saturated `i16`. Together these keep
/// the paper's <0.1% relative-error claim testable.
///
/// # Example
///
/// ```
/// use halo_kernels::{Bbf, BbfDesign};
/// let design = BbfDesign::new(14.0, 25.0, 1_000).unwrap();
/// let mut bbf = Bbf::new(&design);
/// let out = bbf.process(100);
/// assert!(out.abs() <= i16::MAX);
/// ```
#[derive(Debug, Clone)]
pub struct Bbf {
    coeffs: Vec<[i32; 5]>, // b0 b1 b2 a1 a2 in Q20
    state: Vec<[i32; 4]>,  // x1 x2 y1 y2 in Q6
    err: Vec<i64>,         // error-feedback residual per section
}

impl Bbf {
    /// Fractional bits of the coefficient format (Q20).
    const COEF_SHIFT: u32 = 20;

    /// Quantizes a design into the fixed-point datapath.
    pub fn new(design: &BbfDesign) -> Self {
        let q = |x: f64| (x * (1i64 << Self::COEF_SHIFT) as f64).round() as i32;
        let coeffs = design
            .sections()
            .iter()
            .map(|s| [q(s.b[0]), q(s.b[1]), q(s.b[2]), q(s.a[0]), q(s.a[1])])
            .collect();
        let state = vec![[0i32; 4]; design.sections().len()];
        let err = vec![0i64; design.sections().len()];
        Self { coeffs, state, err }
    }

    /// The quantized coefficients actually used (for inspection), as `f64`.
    pub fn effective_sections(&self) -> Vec<Biquad> {
        let f = |x: i32| x as f64 / (1i64 << Self::COEF_SHIFT) as f64;
        self.coeffs
            .iter()
            .map(|c| Biquad {
                b: [f(c[0]), f(c[1]), f(c[2])],
                a: [f(c[3]), f(c[4])],
            })
            .collect()
    }

    /// Fractional guard bits carried by section state.
    const GUARD: u32 = 6;

    /// Filters one 16-bit sample, saturating the output.
    pub fn process(&mut self, x: i16) -> i16 {
        // State lives in Q6 (guard bits) to control quantization noise.
        let mut v = (x as i32) << Self::GUARD;
        for ((c, st), err) in self
            .coeffs
            .iter()
            .zip(self.state.iter_mut())
            .zip(self.err.iter_mut())
        {
            // First-order error feedback: re-inject last step's rounding
            // residual so quantization noise is high-pass shaped. Without
            // it, the high-Q sections exhibit large DC dead bands (a classic
            // fixed-point IIR failure the hardware must also guard against).
            let acc =
                c[0] as i64 * v as i64 + c[1] as i64 * st[0] as i64 + c[2] as i64 * st[1] as i64
                    - c[3] as i64 * st[2] as i64
                    - c[4] as i64 * st[3] as i64
                    + *err;
            // Round-to-nearest back to the Q6 state domain.
            let y = ((acc + (1 << (Self::COEF_SHIFT - 1))) >> Self::COEF_SHIFT) as i32;
            *err = acc - ((y as i64) << Self::COEF_SHIFT);
            st[1] = st[0];
            st[0] = v;
            st[3] = st[2];
            st[2] = y;
            v = y;
        }
        sat16((v >> Self::GUARD) as i64)
    }

    /// Filters a block of samples.
    pub fn process_block(&mut self, xs: &[i16]) -> Vec<i16> {
        xs.iter().map(|&x| self.process(x)).collect()
    }

    /// Filters a contiguous run of samples and returns the summed squared
    /// output energy, `Σ y²` as exact `i64` — the inner loop of the BBF
    /// PE's energy mode, kept in the kernel so a whole channel row is one
    /// straight-line pass. The IIR recurrence is inherently sequential,
    /// so each sample is computed by exactly the scalar [`Bbf::process`];
    /// the accumulation order matches the per-sample path, making the
    /// result bit-identical.
    pub fn energy_of(&mut self, xs: &[i16]) -> i64 {
        let mut acc = 0i64;
        for &x in xs {
            let y = self.process(x) as i64;
            acc += y * y;
        }
        acc
    }

    /// Resets the filter state.
    pub fn reset(&mut self) {
        for st in &mut self.state {
            *st = [0; 4];
        }
        for e in &mut self.err {
            *e = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f64, fs: f64, n: usize, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|t| amp * (std::f64::consts::TAU * freq * t as f64 / fs).sin())
            .collect()
    }

    fn rms(xs: &[f64]) -> f64 {
        (xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt()
    }

    #[test]
    fn rejects_invalid_edges() {
        assert!(BbfDesign::new(0.0, 10.0, 1000).is_err());
        assert!(BbfDesign::new(20.0, 10.0, 1000).is_err());
        assert!(BbfDesign::new(10.0, 600.0, 1000).is_err());
        assert!(BbfDesign::new(14.0, 25.0, 1000).is_ok());
    }

    #[test]
    fn passband_passes_and_stopband_attenuates() {
        let fs = 1000.0;
        let design = BbfDesign::new(50.0, 150.0, 1000).unwrap();
        let mut f = BbfFloat::new(&design);
        let n = 4000;
        let inband: Vec<f64> = f.process_block(&tone(100.0, fs, n, 1.0));
        let mut f = BbfFloat::new(&design);
        let low: Vec<f64> = f.process_block(&tone(5.0, fs, n, 1.0));
        let mut f = BbfFloat::new(&design);
        let high: Vec<f64> = f.process_block(&tone(450.0, fs, n, 1.0));
        // Skip the transient.
        let g_in = rms(&inband[n / 2..]);
        let g_lo = rms(&low[n / 2..]);
        let g_hi = rms(&high[n / 2..]);
        assert!(g_in > 0.6, "in-band gain {g_in}");
        assert!(g_lo < 0.05, "low stopband gain {g_lo}");
        assert!(g_hi < 0.05, "high stopband gain {g_hi}");
    }

    /// The paper's fixed-point claim: <0.1% relative error vs floating point.
    #[test]
    fn fixed_point_tracks_float_within_claimed_error() {
        let design = BbfDesign::new(14.0, 25.0, 1000).unwrap();
        let mut float = BbfFloat::new(&design);
        let mut fixed = Bbf::new(&design);
        let n = 6000;
        // Mixed-band large-amplitude test signal.
        let xs: Vec<f64> = (0..n)
            .map(|t| {
                let t = t as f64;
                8000.0 * (std::f64::consts::TAU * 19.0 * t / 1000.0).sin()
                    + 3000.0 * (std::f64::consts::TAU * 3.0 * t / 1000.0).sin()
                    + 2000.0 * (std::f64::consts::TAU * 180.0 * t / 1000.0).sin()
            })
            .collect();
        let want: Vec<f64> = float.process_block(&xs);
        let got: Vec<i16> = fixed.process_block(&xs.iter().map(|&x| x as i16).collect::<Vec<_>>());
        let signal_rms = rms(&want[n / 4..]);
        let err_rms = rms(&want[n / 4..]
            .iter()
            .zip(&got[n / 4..])
            .map(|(w, &g)| w - g as f64)
            .collect::<Vec<_>>());
        let rel = err_rms / signal_rms;
        assert!(rel < 0.001, "relative error {rel} exceeds 0.1%");
    }

    #[test]
    fn impulse_response_is_stable() {
        let design = BbfDesign::new(14.0, 25.0, 30_000).unwrap();
        let mut bbf = Bbf::new(&design);
        let first = bbf.process(16_000);
        let _ = first;
        // Fixed-point IIR filters may sustain tiny limit cycles; "stable"
        // means the response decays to within a couple of LSBs, not blows up.
        let mut tail_peak = 0i64;
        for i in 0..200_000 {
            let y = bbf.process(0) as i64;
            if i > 150_000 {
                tail_peak = tail_peak.max(y.abs());
            }
        }
        assert!(tail_peak <= 2, "impulse tail peak {tail_peak} LSBs");
    }

    #[test]
    fn reset_clears_state() {
        let design = BbfDesign::new(50.0, 150.0, 1000).unwrap();
        let mut bbf = Bbf::new(&design);
        for _ in 0..100 {
            bbf.process(12_345);
        }
        bbf.reset();
        let mut fresh = Bbf::new(&design);
        for x in [100, -200, 300, 0, 50] {
            assert_eq!(bbf.process(x), fresh.process(x));
        }
    }
}
