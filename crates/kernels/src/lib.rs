//! Signal-processing, compression, and crypto kernels for HALO.
//!
//! HALO (§IV-A) decomposes BCI tasks into computational *kernels*, each of
//! which becomes a hardware processing element (PE). This crate implements
//! every kernel from Table III of the paper, bit-faithfully and from scratch:
//!
//! | Kernel | Module | Used by |
//! |---|---|---|
//! | LZ match search | [`lz`] | LZ4, LZMA compression |
//! | LIC linear integer coding | [`lic`] | LZ4 |
//! | MA Markov frequency model (Fenwick tree, saturating counters) | [`markov`], [`fenwick`] | LZMA, DWTMA |
//! | RC range coder | [`range`] | LZMA, DWTMA |
//! | DWT discrete wavelet transform | [`dwt`] | Spike detection, DWTMA |
//! | NEO nonlinear energy operator | [`neo`] | Spike detection |
//! | FFT | [`fft`] | Seizure prediction, movement intent |
//! | XCOR cross-correlation | [`xcor`] | Seizure prediction |
//! | BBF Butterworth bandpass | [`bbf`] | Seizure prediction |
//! | SVM classifier | [`svm`] | Seizure prediction |
//! | THR threshold | [`thr`] | Movement intent, spike detection |
//! | GATE stream gate | [`gate`] | Spike detection, closed loop |
//! | AES-128 | [`aes`] | Encrypted exfiltration |
//!
//! The composed codecs ([`lz4`], [`lzma`], [`dwtma`], and the §VII
//! extension [`bwt`]) pair every encoder with a full decoder so
//! losslessness — a hard requirement the paper inherits from the
//! neuroscience community (§III) — is provable by round-trip tests. The
//! paper's §VII kernel roadmap is also implemented: [`bwt`] (Bzip2-style
//! compression reusing MA/RC), [`hjorth`], [`apen`], and [`hann`].
//!
//! Kernels are implemented the way the hardware computes them: fixed-point
//! arithmetic ([`fixed`]), 16-bit saturating counters, bounded histories.
//! Where the paper describes two algorithmic variants (the naive block XCOR
//! of Algorithm 2 and the spatially-reprogrammed streaming XCOR of
//! Algorithm 3), both are implemented and tested for output equivalence.

pub mod aes;
pub mod apen;
pub mod bbf;
pub mod block;
pub mod bwt;
pub mod dwt;
pub mod dwtma;
pub mod fenwick;
pub mod fft;
pub mod fixed;
pub mod gate;
pub mod hann;
pub mod hjorth;
pub mod lic;
pub mod lz;
pub mod lz4;
pub mod lzma;
pub mod markov;
pub mod neo;
pub mod range;
pub mod svm;
pub mod thr;
pub mod xcor;

pub use aes::{Aes128, BitslicedAes};
pub use bbf::{Bbf, BbfDesign, BbfFloat};
pub use block::ChannelBlock;
pub use bwt::BwtmaCodec;
pub use dwt::Dwt;
pub use dwtma::DwtmaCodec;
pub use fenwick::FenwickTree;
pub use fft::Fft;
pub use gate::Gate;
pub use lic::{lic_decode, lic_encode};
pub use lz::{LzMatcher, LzOp};
pub use lz4::Lz4Codec;
pub use lzma::LzmaCodec;
pub use markov::AdaptiveModel;
pub use neo::Neo;
pub use range::{RangeDecoder, RangeEncoder};
pub use svm::LinearSvm;
pub use thr::Threshold;
pub use xcor::{BlockXcor, StreamingXcor, XcorConfig};
