//! Linear integer coding (LIC kernel).
//!
//! Table III: LIC "encodes LZ output with linear integer coding. \[A\]
//! 256-byte array stores literals (bytes with no previous matches).
//! Literals are output on matches and identified with headers/lengths."
//! This is the byte-aligned token format of the LZ4 family: each sequence
//! carries a header token with literal-run and match lengths (with linear
//! extension bytes for long runs), the literal bytes, and a 16-bit offset.
//!
//! LIC terminates the LZ4 pipeline; unlike the MA/RC path it needs no
//! probability state, which is why the LZ4 pipeline burns less logic power
//! than LZMA at a lower compression ratio (Figure 5).

use crate::lz::LzOp;

/// Errors produced while decoding a LIC stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LicError {
    /// The stream ended in the middle of a field.
    Truncated,
    /// A match referenced data before the start of the output.
    BadOffset {
        /// The offending distance.
        dist: u16,
        /// Output length at the time of the reference.
        have: usize,
    },
}

impl std::fmt::Display for LicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "lic stream truncated"),
            Self::BadOffset { dist, have } => {
                write!(f, "lic offset {dist} exceeds produced output {have}")
            }
        }
    }
}

impl std::error::Error for LicError {}

/// Encodes an LZ parse into the LIC byte format.
///
/// # Example
///
/// ```
/// use halo_kernels::{lic_encode, lic_decode, LzMatcher};
/// let data = b"spike spike spike spike!";
/// let ops = LzMatcher::new(256).unwrap().parse(data);
/// let encoded = lic_encode(&ops);
/// assert_eq!(lic_decode(&encoded).unwrap(), data);
/// ```
///
/// # Panics
///
/// Panics if a match distance exceeds 16 bits (the LZ PE's history is at
/// most 8192, so this cannot happen for parses produced by
/// [`crate::LzMatcher`]).
pub fn lic_encode(ops: &[LzOp]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut literals: Vec<u8> = Vec::new();
    let flush = |out: &mut Vec<u8>, literals: &mut Vec<u8>, m: Option<(u32, u32)>| {
        let lit_len = literals.len();
        let match_extra = m.map(|(len, _)| len as usize - 4);
        let token_lit = lit_len.min(15) as u8;
        let token_match = match_extra.map_or(0, |e| e.min(15)) as u8;
        out.push((token_lit << 4) | token_match);
        if lit_len >= 15 {
            write_linear(out, lit_len - 15);
        }
        out.extend_from_slice(literals);
        literals.clear();
        if let Some((len, dist)) = m {
            assert!(dist <= u16::MAX as u32, "distance {dist} exceeds 16 bits");
            out.extend_from_slice(&(dist as u16).to_le_bytes());
            let extra = len as usize - 4;
            if extra >= 15 {
                write_linear(out, extra - 15);
            }
        }
    };
    for op in ops {
        match *op {
            LzOp::Literal(b) => literals.push(b),
            LzOp::Match { len, dist } => flush(&mut out, &mut literals, Some((len, dist))),
        }
    }
    if !literals.is_empty() || ops.is_empty() {
        flush(&mut out, &mut literals, None);
    }
    out
}

/// Linear (byte-at-a-time) length extension: 255-valued bytes followed by a
/// terminator byte, as in LZ4.
fn write_linear(out: &mut Vec<u8>, mut v: usize) {
    while v >= 255 {
        out.push(255);
        v -= 255;
    }
    out.push(v as u8);
}

fn read_linear(input: &[u8], pos: &mut usize) -> Result<usize, LicError> {
    let mut v = 0usize;
    loop {
        let b = *input.get(*pos).ok_or(LicError::Truncated)?;
        *pos += 1;
        v += b as usize;
        if b != 255 {
            return Ok(v);
        }
    }
}

/// Decodes a LIC stream back into the original bytes.
///
/// # Errors
///
/// Returns [`LicError`] if the stream is truncated or a back-reference is
/// invalid.
pub fn lic_decode(input: &[u8]) -> Result<Vec<u8>, LicError> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < input.len() {
        let token = input[pos];
        pos += 1;
        let mut lit_len = (token >> 4) as usize;
        if lit_len == 15 {
            lit_len += read_linear(input, &mut pos)?;
        }
        if pos + lit_len > input.len() {
            return Err(LicError::Truncated);
        }
        out.extend_from_slice(&input[pos..pos + lit_len]);
        pos += lit_len;
        if pos >= input.len() {
            break; // final sequence: literals only
        }
        let dist =
            u16::from_le_bytes([input[pos], *input.get(pos + 1).ok_or(LicError::Truncated)?]);
        pos += 2;
        let mut match_len = (token & 0x0f) as usize;
        if match_len == 15 {
            match_len += read_linear(input, &mut pos)?;
        }
        match_len += 4;
        if dist == 0 || dist as usize > out.len() {
            return Err(LicError::BadOffset {
                dist,
                have: out.len(),
            });
        }
        let start = out.len() - dist as usize;
        for i in 0..match_len {
            let b = out[start + i];
            out.push(b);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lz::LzMatcher;

    fn round_trip(data: &[u8]) -> usize {
        let ops = LzMatcher::new(4096).unwrap().parse(data);
        let enc = lic_encode(&ops);
        assert_eq!(lic_decode(&enc).unwrap(), data);
        enc.len()
    }

    #[test]
    fn empty_input() {
        assert_eq!(round_trip(&[]), 1); // a single zero token
        assert_eq!(lic_decode(&[0]).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn literal_only_stream() {
        let data: Vec<u8> = (0..100u8).collect();
        round_trip(&data);
    }

    #[test]
    fn long_literal_runs_use_extensions() {
        let data: Vec<u8> = (0..2000u32).map(|i| (i % 251) as u8).collect();
        round_trip(&data);
    }

    #[test]
    fn long_matches_use_extensions() {
        let data = vec![7u8; 10_000];
        let n = round_trip(&data);
        assert!(n < 100, "highly repetitive data should shrink: {n}");
    }

    #[test]
    fn compresses_repetitive_data() {
        let data: Vec<u8> = b"neural spikes ".repeat(200);
        let n = round_trip(&data);
        assert!(n < data.len() / 5, "{n} vs {}", data.len());
    }

    #[test]
    fn truncated_stream_errors() {
        let data: Vec<u8> = b"abcdabcdabcdabcd".to_vec();
        let ops = LzMatcher::new(256).unwrap().parse(&data);
        let enc = lic_encode(&ops);
        for cut in 1..enc.len().saturating_sub(1) {
            // Either an error or a (shorter) prefix decode; never a panic.
            let _ = lic_decode(&enc[..cut]);
        }
    }

    #[test]
    fn bad_offset_detected() {
        // token: 0 literals, match len 4; offset 9 with empty output.
        let stream = [0x00u8, 9, 0];
        assert!(matches!(
            lic_decode(&stream),
            Err(LicError::BadOffset { dist: 9, have: 0 })
        ));
    }
}
