//! Lempel-Ziv match search (LZ kernel).
//!
//! Table III: LZ "hashes four input bytes to index into \[the\] first array of
//! \[the\] hash-chain, which records \[the\] position of \[the\] previous instance
//! of the same data; indexes \[the\] second array … and find[s the] distance
//! to \[the\] previous occurrence." The same PE front-ends both the LZ4 and
//! LZMA pipelines (PE reuse generalization, §IV-A); the history length is
//! the doctor-tunable parameter swept in Figure 7 (256–4096 bytes in Table
//! III, with 8192 evaluated — and rejected for power — in the sweep).

/// Minimum match length worth emitting (4 bytes — the hash width).
pub const MIN_MATCH: usize = 4;

/// Maximum match length a single op may carry.
pub const MAX_MATCH: usize = 65_535;

/// Smallest legal history window.
pub const MIN_HISTORY: usize = 256;

/// Largest history evaluated in the paper's design-space sweep (Figure 7).
pub const MAX_HISTORY: usize = 8_192;

/// One step of an LZ parse: a raw byte or a back-reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LzOp {
    /// A byte with no usable previous occurrence.
    Literal(u8),
    /// Copy `len` bytes from `dist` bytes back.
    Match {
        /// Match length in bytes (`MIN_MATCH..=MAX_MATCH`).
        len: u32,
        /// Back-reference distance in bytes (`1..=history`).
        dist: u32,
    },
}

/// Error returned for an unsupported history length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidHistory(pub usize);

impl std::fmt::Display for InvalidHistory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "history {} outside {MIN_HISTORY}..={MAX_HISTORY} or not a power of two",
            self.0
        )
    }
}

impl std::error::Error for InvalidHistory {}

/// Hash-chain match finder over a bounded history window.
///
/// # Example
///
/// ```
/// use halo_kernels::{LzMatcher, LzOp};
/// let lz = LzMatcher::new(4096).unwrap();
/// let data = b"neural data neural data neural data";
/// let ops = lz.parse(data);
/// assert!(ops.iter().any(|op| matches!(op, LzOp::Match { .. })));
/// assert_eq!(LzMatcher::reconstruct(&ops), data);
/// ```
#[derive(Debug, Clone)]
pub struct LzMatcher {
    history: usize,
    max_chain: usize,
    min_match: usize,
}

impl LzMatcher {
    /// Number of head-table entries ("first array size is 8KB": 2048 × u32).
    const HASH_ENTRIES: usize = 2048;

    /// Creates a matcher with the given power-of-two history window.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidHistory`] unless `history` is a power of two in
    /// `256..=8192`.
    pub fn new(history: usize) -> Result<Self, InvalidHistory> {
        if !history.is_power_of_two() || !(MIN_HISTORY..=MAX_HISTORY).contains(&history) {
            return Err(InvalidHistory(history));
        }
        Ok(Self {
            history,
            max_chain: 32,
            min_match: MIN_MATCH,
        })
    }

    /// Raises the minimum match length the parser will emit (≥ 4). Entropy
    /// coders with strong literal models (the MA/RC pair) price short
    /// matches above the literals they replace, so the LZMA pipeline parses
    /// with a higher floor.
    ///
    /// # Panics
    ///
    /// Panics if `min_match < MIN_MATCH`.
    pub fn with_min_match(mut self, min_match: usize) -> Self {
        assert!(min_match >= MIN_MATCH, "minimum match below {MIN_MATCH}");
        self.min_match = min_match;
        self
    }

    /// The configured minimum emitted match length.
    pub fn min_match(&self) -> usize {
        self.min_match
    }

    /// The configured history window in bytes.
    pub fn history(&self) -> usize {
        self.history
    }

    /// Total PE memory implied by the configuration, in bytes: the 8 KB
    /// head array plus the `2 × history` chain array plus the history
    /// window itself (Table III caps the total at 24 KB for H = 4096).
    pub fn memory_bytes(&self) -> usize {
        Self::HASH_ENTRIES * 4 + 2 * self.history + self.history
    }

    fn hash(window: &[u8]) -> usize {
        let v = u32::from_le_bytes([window[0], window[1], window[2], window[3]]);
        (v.wrapping_mul(2654435761) >> 21) as usize % Self::HASH_ENTRIES
    }

    /// Parses `input` into literals and matches, with one-step lazy
    /// matching: if deferring a match by one byte yields a strictly longer
    /// match, the current byte is emitted as a literal instead (the
    /// standard high-compression refinement of hash-chain parsers).
    pub fn parse(&self, input: &[u8]) -> Vec<LzOp> {
        let n = input.len();
        let mut ops = Vec::new();
        if n == 0 {
            return ops;
        }
        // head[h]: most recent position with hash h (+1; 0 = none).
        let mut head = vec![0u32; Self::HASH_ENTRIES];
        // chain[pos % history]: previous position with the same hash (+1).
        let mut chain = vec![0u32; self.history];
        let mut pos = 0usize;
        while pos < n {
            let (best_len, best_dist) = self.find_match(input, pos, &head, &chain);
            if best_len >= self.min_match {
                // Lazy check: would starting one byte later find a longer
                // match?
                if pos + 1 < n {
                    self.insert(input, pos, &mut head, &mut chain);
                    let (next_len, _) = self.find_match(input, pos + 1, &head, &chain);
                    if next_len > best_len {
                        ops.push(LzOp::Literal(input[pos]));
                        pos += 1;
                        continue;
                    }
                    // Committed: cover the match (pos already inserted).
                    ops.push(LzOp::Match {
                        len: best_len as u32,
                        dist: best_dist as u32,
                    });
                    let end = pos + best_len;
                    pos += 1;
                    while pos < end {
                        self.insert(input, pos, &mut head, &mut chain);
                        pos += 1;
                    }
                    continue;
                }
                ops.push(LzOp::Match {
                    len: best_len as u32,
                    dist: best_dist as u32,
                });
                pos += best_len;
            } else {
                ops.push(LzOp::Literal(input[pos]));
                self.insert(input, pos, &mut head, &mut chain);
                pos += 1;
            }
        }
        ops
    }

    /// Walks the hash chain at `pos` for the longest in-window match.
    fn find_match(&self, input: &[u8], pos: usize, head: &[u32], chain: &[u32]) -> (usize, usize) {
        let n = input.len();
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if pos + MIN_MATCH <= n {
            let h = Self::hash(&input[pos..]);
            let mut candidate = head[h] as usize;
            let mut depth = 0;
            while candidate > 0 && depth < self.max_chain {
                let cand = candidate - 1;
                if cand >= pos || pos - cand > self.history {
                    break;
                }
                let len = Self::match_len(input, cand, pos);
                if len > best_len {
                    best_len = len;
                    best_dist = pos - cand;
                    if len >= MAX_MATCH {
                        break;
                    }
                }
                candidate = chain[cand % self.history] as usize;
                depth += 1;
            }
        }
        (best_len, best_dist)
    }

    fn insert(&self, input: &[u8], pos: usize, head: &mut [u32], chain: &mut [u32]) {
        if pos + MIN_MATCH <= input.len() {
            let h = Self::hash(&input[pos..]);
            chain[pos % self.history] = head[h];
            head[h] = (pos + 1) as u32;
        }
    }

    fn match_len(input: &[u8], cand: usize, pos: usize) -> usize {
        let max = (input.len() - pos).min(MAX_MATCH);
        let mut len = 0;
        // Overlapping matches (dist < len) are legal: compare through `pos`.
        while len < max && input[cand + len] == input[pos + len] {
            len += 1;
        }
        len
    }

    /// Rebuilds the original bytes from a parse — the decoder-side copy
    /// loop shared by the LZ4 and LZMA decompressors.
    pub fn reconstruct(ops: &[LzOp]) -> Vec<u8> {
        let mut out = Vec::new();
        for op in ops {
            match *op {
                LzOp::Literal(b) => out.push(b),
                LzOp::Match { len, dist } => {
                    let dist = dist as usize;
                    assert!(dist >= 1 && dist <= out.len(), "bad distance {dist}");
                    let start = out.len() - dist;
                    // Byte-by-byte to support overlapped copies.
                    for i in 0..len as usize {
                        let b = out[start + i];
                        out.push(b);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(lz: &LzMatcher, data: &[u8]) -> Vec<LzOp> {
        let ops = lz.parse(data);
        assert_eq!(LzMatcher::reconstruct(&ops), data, "round-trip failed");
        ops
    }

    #[test]
    fn history_validation() {
        assert!(LzMatcher::new(128).is_err());
        assert!(LzMatcher::new(300).is_err());
        assert!(LzMatcher::new(16_384).is_err());
        for h in [256, 512, 1024, 2048, 4096, 8192] {
            assert!(LzMatcher::new(h).is_ok(), "history {h}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let lz = LzMatcher::new(256).unwrap();
        assert!(lz.parse(&[]).is_empty());
        round_trip(&lz, b"a");
        round_trip(&lz, b"abc");
    }

    #[test]
    fn repetitive_data_produces_matches() {
        let lz = LzMatcher::new(1024).unwrap();
        let data: Vec<u8> = b"0123456789".repeat(50);
        let ops = round_trip(&lz, &data);
        let matches = ops
            .iter()
            .filter(|op| matches!(op, LzOp::Match { .. }))
            .count();
        assert!(matches >= 1);
        // Parse should be much shorter than the input.
        assert!(ops.len() < data.len() / 4, "{} ops", ops.len());
    }

    #[test]
    fn incompressible_data_is_all_literals() {
        let lz = LzMatcher::new(4096).unwrap();
        // A de Bruijn-ish sequence with no 4-byte repeats.
        let data: Vec<u8> = (0u32..1000)
            .flat_map(|i| i.wrapping_mul(2654435761).to_le_bytes())
            .collect();
        let ops = round_trip(&lz, &data);
        let literals = ops
            .iter()
            .filter(|op| matches!(op, LzOp::Literal(_)))
            .count();
        assert!(literals as f64 > ops.len() as f64 * 0.9);
    }

    #[test]
    fn overlapped_match_round_trips() {
        let lz = LzMatcher::new(256).unwrap();
        // "aaaaaaaa…" forces dist=1, len>1 overlapped copies.
        let data = vec![b'a'; 300];
        let ops = round_trip(&lz, &data);
        assert!(ops
            .iter()
            .any(|op| matches!(op, LzOp::Match { dist: 1, len } if *len > 1)));
    }

    #[test]
    fn matches_respect_history_window() {
        let lz = LzMatcher::new(256).unwrap();
        // Repeat a motif at distance 512 — outside the 256-byte window.
        let mut data = b"UNIQUEMOTIF".to_vec();
        data.extend(
            std::iter::repeat_n(0xAB, 512)
                .enumerate()
                .map(|(i, _)| (i % 251) as u8),
        );
        data.extend_from_slice(b"UNIQUEMOTIF");
        let ops = round_trip(&lz, &data);
        for op in &ops {
            if let LzOp::Match { dist, .. } = op {
                assert!(*dist as usize <= 256, "match crossed the window: {dist}");
            }
        }
    }

    #[test]
    fn larger_history_finds_more_matches() {
        // Motifs recur at ~1.5 KB spacing; only the larger window sees them.
        let motif: Vec<u8> = (0..64u8).collect();
        let mut data = Vec::new();
        for i in 0..20u32 {
            data.extend_from_slice(&motif);
            data.extend((0..1500u32).map(|j| ((i * 7 + j) % 251) as u8));
        }
        let small = LzMatcher::new(256).unwrap().parse(&data);
        let large = LzMatcher::new(4096).unwrap().parse(&data);
        assert!(
            large.len() < small.len(),
            "{} !< {}",
            large.len(),
            small.len()
        );
    }

    #[test]
    fn memory_model_matches_table_iii() {
        // Table III: max memory 24 KB at H = 4096 (8 KB head + 2H chain + window).
        let lz = LzMatcher::new(4096).unwrap();
        assert!(lz.memory_bytes() <= 24 * 1024);
    }
}
