//! Nonlinear energy operator (NEO kernel).
//!
//! NEO estimates the instantaneous energy of a signal and is the classic
//! front-end for spike detection (Gibson, Judy & Marković \[44\]):
//! `ψ[n] = x[n]² − x[n−1]·x[n+1]`. It emphasizes high-frequency,
//! high-amplitude transients — exactly the shape of an extracellular action
//! potential — while suppressing the low-frequency LFP background.

/// Streaming NEO operator.
///
/// Emits one output per input once primed (after two samples); the output
/// for `x[n]` is produced when `x[n+1]` arrives, so the stream is delayed by
/// one sample — the same single-sample latency the hardware PE exhibits.
///
/// # Example
///
/// ```
/// use halo_kernels::Neo;
/// let mut neo = Neo::new();
/// let outputs: Vec<i64> = [0i16, 100, 0].iter().filter_map(|&x| neo.process(x)).collect();
/// // ψ = 100² − 0·0 = 10_000 for the middle sample.
/// assert_eq!(outputs, vec![10_000]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Neo {
    prev: Option<i16>,
    curr: Option<i16>,
}

impl Neo {
    /// Creates an unprimed operator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pushes a sample; returns `ψ` for the previous sample once primed.
    pub fn process(&mut self, x: i16) -> Option<i64> {
        let out = match (self.prev, self.curr) {
            (Some(p), Some(c)) => Some(c as i64 * c as i64 - p as i64 * x as i64),
            _ => None,
        };
        self.prev = self.curr;
        self.curr = Some(x);
        out
    }

    /// Applies NEO to a block, returning `len − 2` outputs.
    pub fn process_block(xs: &[i16]) -> Vec<i64> {
        let mut neo = Neo::new();
        xs.iter().filter_map(|&x| neo.process(x)).collect()
    }

    /// Resets the operator to the unprimed state.
    pub fn reset(&mut self) {
        self.prev = None;
        self.curr = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn needs_three_samples() {
        let mut neo = Neo::new();
        assert_eq!(neo.process(1), None);
        assert_eq!(neo.process(2), None);
        assert!(neo.process(3).is_some());
    }

    #[test]
    fn matches_definition() {
        let xs = [3i16, -7, 20, 5, -2];
        let out = Neo::process_block(&xs);
        assert_eq!(out.len(), 3);
        for (i, &psi) in out.iter().enumerate() {
            let n = i + 1;
            let expect = xs[n] as i64 * xs[n] as i64 - xs[n - 1] as i64 * xs[n + 1] as i64;
            assert_eq!(psi, expect);
        }
    }

    #[test]
    fn transient_scores_higher_than_slow_wave() {
        // Slow ramp (LFP-like) vs a sharp spike of the same peak amplitude.
        let slow: Vec<i16> = (0..100).map(|t| (t * 10) as i16).collect();
        let mut spike = vec![0i16; 100];
        spike[50] = 990;
        let max_slow = Neo::process_block(&slow).into_iter().max().unwrap();
        let max_spike = Neo::process_block(&spike).into_iter().max().unwrap();
        assert!(
            max_spike > 10 * max_slow.max(1),
            "spike {max_spike} vs slow {max_slow}"
        );
    }

    #[test]
    fn no_overflow_at_extremes() {
        let xs = [i16::MIN, i16::MAX, i16::MIN, i16::MAX];
        let out = Neo::process_block(&xs);
        // ψ = MAX² − MIN·MAX > 0; just ensure it computed without panic.
        assert!(out.iter().all(|&p| p != i64::MIN));
    }

    #[test]
    fn reset_unprimes() {
        let mut neo = Neo::new();
        neo.process(1);
        neo.process(2);
        neo.reset();
        assert_eq!(neo.process(3), None);
    }
}
