//! Markov adaptive frequency model (MA kernel).
//!
//! Table III: MA "receives data to encode from LZ and DWT. Maintains
//! counters for each input type … in a Fenwick tree … emits counter values
//! to RC for each input." Two co-design techniques from §IV-B live here:
//!
//! * **Counter saturation** — counters are 16 bits and *saturate* rather
//!   than rescale, decoupling the compression block size from the counter
//!   width ("the frequencies of values within a block remain largely
//!   unchanged after they have stabilized"). Saturation can only degrade
//!   the compression ratio marginally; it never loses data, because encoder
//!   and decoder saturate identically.
//! * **Initialization circuits** — starting a new block re-initializes the
//!   table in one step ([`AdaptiveModel::reset`]), modeling the
//!   combinational init logic that replaced a standalone initialization
//!   phase (1.8× PE power saving).

use crate::fenwick::FenwickTree;
use crate::range::{RangeDecoder, RangeEncoder, MAX_TOTAL};

/// Default counter width in bits (§IV-B: "16 bit counters").
pub const DEFAULT_COUNTER_BITS: u32 = 16;

/// An adaptive symbol-frequency model with saturating counters.
///
/// Encoder and decoder sides construct identical models and call
/// [`AdaptiveModel::encode`] / [`AdaptiveModel::decode`] symbol by symbol;
/// the internal update rule keeps both sides in lock-step.
///
/// # Example
///
/// ```
/// use halo_kernels::{AdaptiveModel, RangeEncoder, RangeDecoder};
/// let symbols = [3usize, 3, 3, 1, 3, 0, 3];
/// let mut enc = RangeEncoder::new();
/// let mut model = AdaptiveModel::new(4);
/// for &s in &symbols {
///     model.encode(&mut enc, s);
/// }
/// let bytes = enc.finish();
/// let mut dec = RangeDecoder::new(&bytes);
/// let mut model = AdaptiveModel::new(4);
/// for &s in &symbols {
///     assert_eq!(model.decode(&mut dec), s);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveModel {
    tree: FenwickTree,
    alphabet: usize,
    counter_max: u32,
    increment: u32,
}

impl AdaptiveModel {
    /// Creates a model over `alphabet` symbols with 16-bit counters.
    ///
    /// # Panics
    ///
    /// Panics if `alphabet` is zero or exceeds [`MAX_TOTAL`] (every symbol
    /// needs an initial count of one).
    pub fn new(alphabet: usize) -> Self {
        Self::with_counter_bits(alphabet, DEFAULT_COUNTER_BITS)
    }

    /// Creates a model with a custom counter width (used by the block-size
    /// design-space study, Figure 8).
    ///
    /// # Panics
    ///
    /// Panics if `alphabet` is zero or exceeds [`MAX_TOTAL`], or if
    /// `counter_bits` is outside `2..=16`.
    pub fn with_counter_bits(alphabet: usize, counter_bits: u32) -> Self {
        assert!(
            alphabet > 0 && alphabet <= MAX_TOTAL as usize,
            "alphabet size {alphabet} unsupported"
        );
        assert!(
            (2..=16).contains(&counter_bits),
            "counter width {counter_bits} outside 2..=16"
        );
        let mut model = Self {
            tree: FenwickTree::new(alphabet),
            alphabet,
            counter_max: (1u32 << counter_bits) - 1,
            increment: 16,
        };
        model.reset();
        model
    }

    /// Number of symbols in the alphabet.
    pub fn alphabet(&self) -> usize {
        self.alphabet
    }

    /// Re-initializes all counters to one — the block-boundary
    /// initialization circuit (§IV-B), a single O(N) fill that reuses the
    /// existing table storage.
    pub fn reset(&mut self) {
        self.tree.reset_to_ones();
    }

    /// Current count of a symbol.
    pub fn count(&self, symbol: usize) -> u32 {
        self.tree.get(symbol)
    }

    /// Sum of all counters.
    pub fn total(&self) -> u32 {
        self.tree.total()
    }

    /// Looks up `(cumulative, frequency, total)` for `symbol` and updates
    /// the model — the exact triple Table III says MA "emits to RC for each
    /// input". This is the MA-side half of the MA/RC locality split.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` is out of range.
    pub fn probe(&mut self, symbol: usize) -> (u32, u32, u32) {
        assert!(symbol < self.alphabet, "symbol {symbol} out of range");
        let (cum, freq) = self.tree.cum_and_freq(symbol);
        let total = self.tree.total();
        self.update_with(symbol, freq, total);
        (cum, freq, total)
    }

    /// Encodes `symbol` and updates the model.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` is out of range.
    pub fn encode(&mut self, enc: &mut RangeEncoder, symbol: usize) {
        let (cum, freq, total) = self.probe(symbol);
        enc.encode(cum, freq, total);
    }

    /// Decodes the next symbol and updates the model.
    pub fn decode(&mut self, dec: &mut RangeDecoder<'_>) -> usize {
        let total = self.tree.total();
        let target = dec.decode_freq(total);
        let symbol = self.tree.find(target);
        let (cum, freq) = self.tree.cum_and_freq(symbol);
        dec.decode_update(cum, freq, total);
        self.update_with(symbol, freq, total);
        symbol
    }

    /// The saturating update rule: stop incrementing when either the
    /// symbol's counter or the table total would overflow its width.
    /// `count` and `total` are the values the caller already looked up for
    /// the coder, so the update costs one tree walk, not three.
    fn update_with(&mut self, symbol: usize, count: u32, total: u32) {
        if count + self.increment <= self.counter_max && total + self.increment <= MAX_TOTAL {
            self.tree.add(symbol, self.increment);
        }
    }

    /// Whether the model has stopped adapting (any further update would
    /// violate a counter or total bound for the hottest symbol).
    pub fn saturated(&self) -> bool {
        self.total() + self.increment > MAX_TOTAL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_random_symbols() {
        let alphabet = 64;
        let symbols: Vec<usize> = (0..20_000).map(|i| (i * i * 31 + i) % alphabet).collect();
        let mut enc = RangeEncoder::new();
        let mut m = AdaptiveModel::new(alphabet);
        for &s in &symbols {
            m.encode(&mut enc, s);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        let mut m = AdaptiveModel::new(alphabet);
        for (i, &s) in symbols.iter().enumerate() {
            assert_eq!(m.decode(&mut dec), s, "at {i}");
        }
    }

    #[test]
    fn adapts_to_skew() {
        // A heavily skewed stream should compress well below 8 bits/symbol.
        let symbols: Vec<usize> = (0..50_000)
            .map(|i| if i % 50 == 0 { i % 256 } else { 7 })
            .collect();
        let mut enc = RangeEncoder::new();
        let mut m = AdaptiveModel::new(256);
        for &s in &symbols {
            m.encode(&mut enc, s);
        }
        let bytes = enc.finish();
        let bits_per_symbol = bytes.len() as f64 * 8.0 / symbols.len() as f64;
        assert!(bits_per_symbol < 1.0, "got {bits_per_symbol} bits/symbol");
    }

    #[test]
    fn saturation_keeps_encoder_decoder_in_lockstep() {
        // Push far past saturation and verify losslessness survives.
        let symbols: Vec<usize> = (0..300_000).map(|i| (i / 3) % 4).collect();
        let mut enc = RangeEncoder::new();
        let mut m = AdaptiveModel::new(4);
        for &s in &symbols {
            m.encode(&mut enc, s);
        }
        assert!(m.saturated(), "model should have saturated");
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        let mut m = AdaptiveModel::new(4);
        for (i, &s) in symbols.iter().enumerate() {
            assert_eq!(m.decode(&mut dec), s, "at {i}");
        }
    }

    #[test]
    fn counters_never_exceed_width() {
        let mut m = AdaptiveModel::with_counter_bits(4, 8);
        let mut enc = RangeEncoder::new();
        for _ in 0..10_000 {
            m.encode(&mut enc, 2);
        }
        assert!(m.count(2) <= 255, "counter {} exceeded 8 bits", m.count(2));
    }

    #[test]
    fn reset_restores_uniform_state() {
        let mut m = AdaptiveModel::new(8);
        let mut enc = RangeEncoder::new();
        for _ in 0..100 {
            m.encode(&mut enc, 3);
        }
        m.reset();
        for s in 0..8 {
            assert_eq!(m.count(s), 1);
        }
        assert_eq!(m.total(), 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_symbol_panics() {
        let mut m = AdaptiveModel::new(4);
        let mut enc = RangeEncoder::new();
        m.encode(&mut enc, 4);
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn oversized_alphabet_rejected() {
        let _ = AdaptiveModel::new(MAX_TOTAL as usize + 1);
    }
}
