//! Fixed-point arithmetic helpers.
//!
//! HALO's PEs trade floating point for fixed point wherever possible: "we
//! replace floating point arithmetic with fixed point arithmetic in the BBF
//! PE and achieve an order of magnitude reduction in power, with only <0.1%
//! increase in relative error" (§IV-B). These helpers implement the Q-format
//! operations those PEs use.

/// Fractional bits of the Q15 format (range −1.0..1.0 in an `i16`).
pub const Q15_SHIFT: u32 = 15;

/// Fractional bits of the Q14 format used by filter coefficients
/// (range −2.0..2.0 in an `i32`), leaving headroom for biquad feedback
/// coefficients slightly above 1.
pub const Q14_SHIFT: u32 = 14;

/// Converts an `f64` in `[-1.0, 1.0)` to Q15.
///
/// Values outside the representable range saturate.
///
/// # Example
///
/// ```
/// use halo_kernels::fixed::{to_q15, Q15_SHIFT};
/// assert_eq!(to_q15(0.5), 1 << (Q15_SHIFT - 1));
/// assert_eq!(to_q15(2.0), i16::MAX); // saturates
/// ```
pub fn to_q15(x: f64) -> i16 {
    let v = (x * (1i32 << Q15_SHIFT) as f64).round();
    sat16(v as i64)
}

/// Converts a Q15 value back to `f64`.
pub fn from_q15(x: i16) -> f64 {
    x as f64 / (1i32 << Q15_SHIFT) as f64
}

/// Converts an `f64` in `[-2.0, 2.0)` to Q14 (stored in `i32`).
pub fn to_q14(x: f64) -> i32 {
    let v = (x * (1i32 << Q14_SHIFT) as f64).round();
    v.clamp(i32::MIN as f64, i32::MAX as f64) as i32
}

/// Converts a Q14 value back to `f64`.
pub fn from_q14(x: i32) -> f64 {
    x as f64 / (1i32 << Q14_SHIFT) as f64
}

/// Q15 × Q15 → Q15 multiply with rounding.
///
/// # Example
///
/// ```
/// use halo_kernels::fixed::{q15_mul, to_q15, from_q15};
/// let half = to_q15(0.5);
/// let quarter = q15_mul(half, half);
/// assert!((from_q15(quarter) - 0.25).abs() < 1e-4);
/// ```
pub fn q15_mul(a: i16, b: i16) -> i16 {
    let p = a as i32 * b as i32;
    sat16(((p + (1 << (Q15_SHIFT - 1))) >> Q15_SHIFT) as i64)
}

/// Saturates a 64-bit value into `i16`.
pub fn sat16(v: i64) -> i16 {
    if v > i16::MAX as i64 {
        i16::MAX
    } else if v < i16::MIN as i64 {
        i16::MIN
    } else {
        v as i16
    }
}

/// Saturates a 64-bit value into `i32`.
pub fn sat32(v: i64) -> i32 {
    if v > i32::MAX as i64 {
        i32::MAX
    } else if v < i32::MIN as i64 {
        i32::MIN
    } else {
        v as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q15_round_trip() {
        for x in [-0.999, -0.5, -0.001, 0.0, 0.001, 0.25, 0.9999] {
            let err = (from_q15(to_q15(x)) - x).abs();
            assert!(err < 1.0 / 32768.0, "x={x} err={err}");
        }
    }

    #[test]
    fn q15_saturation() {
        assert_eq!(to_q15(1.5), i16::MAX);
        assert_eq!(to_q15(-1.5), i16::MIN);
    }

    #[test]
    fn q14_represents_coefficients_above_one() {
        let c = 1.9;
        assert!((from_q14(to_q14(c)) - c).abs() < 1.0 / 16384.0);
    }

    #[test]
    fn mul_identity_and_zero() {
        let almost_one = i16::MAX;
        let x = to_q15(0.7);
        let y = q15_mul(x, almost_one);
        assert!((from_q15(y) - 0.7).abs() < 1e-3);
        assert_eq!(q15_mul(x, 0), 0);
    }

    #[test]
    fn sat_bounds() {
        assert_eq!(sat16(1 << 20), i16::MAX);
        assert_eq!(sat16(-(1 << 20)), i16::MIN);
        assert_eq!(sat16(123), 123);
        assert_eq!(sat32(1 << 40), i32::MAX);
        assert_eq!(sat32(-(1 << 40)), i32::MIN);
        assert_eq!(sat32(-5), -5);
    }
}
