//! Hann window (§VII extension).
//!
//! On the paper's kernel roadmap (Harris \[47\]): tapering FFT windows with
//! a Hann function suppresses the spectral leakage that otherwise smears
//! band-power features. The window is precomputed in Q15, matching the
//! FFT PE's fixed-point datapath.

use crate::fixed::to_q15;

/// A precomputed Q15 Hann window.
///
/// # Example
///
/// ```
/// use halo_kernels::hann::HannWindow;
/// let w = HannWindow::new(64);
/// let tapered = w.apply(&[1000i16; 64]);
/// assert_eq!(tapered[0], 0);                 // edges taper to zero
/// assert!(tapered[32] > 900);                // center nearly unity
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HannWindow {
    coeffs: Vec<i16>,
}

impl HannWindow {
    /// Builds a window of `n` points.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "window needs at least two points");
        let coeffs = (0..n)
            .map(|i| {
                let w = 0.5 * (1.0 - (std::f64::consts::TAU * i as f64 / (n - 1) as f64).cos());
                to_q15(w.min(0.999_97))
            })
            .collect();
        Self { coeffs }
    }

    /// Window length.
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// Whether the window is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// The Q15 coefficients.
    pub fn coeffs(&self) -> &[i16] {
        &self.coeffs
    }

    /// Applies the window to a sample block (Q15 multiply per sample).
    ///
    /// # Panics
    ///
    /// Panics if `samples.len() != self.len()`.
    pub fn apply(&self, samples: &[i16]) -> Vec<i16> {
        assert_eq!(samples.len(), self.coeffs.len(), "window length mismatch");
        samples
            .iter()
            .zip(&self.coeffs)
            .map(|(&s, &w)| ((s as i32 * w as i32) >> 15) as i16)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::Fft;

    #[test]
    fn shape_is_symmetric_and_normalized() {
        let w = HannWindow::new(128);
        let c = w.coeffs();
        for i in 0..64 {
            assert!((c[i] - c[127 - i]).abs() <= 1, "asymmetry at {i}");
        }
        assert_eq!(c[0], 0);
        assert!(c[64] > 32_000); // ~1.0 at the center
    }

    #[test]
    fn reduces_spectral_leakage() {
        // An off-bin tone leaks into distant bins without a window.
        let n = 256;
        let fft = Fft::new(n).unwrap();
        let tone: Vec<i16> = (0..n)
            .map(|t| {
                (12_000.0 * (std::f64::consts::TAU * 10.37 * t as f64 / n as f64).sin()) as i16
            })
            .collect();
        let raw = fft.power_spectrum(&tone);
        let windowed = fft.power_spectrum(&HannWindow::new(n).apply(&tone));
        // Compare energy far from the tone (bins 60..110).
        let far = |s: &[u64]| s[60..110].iter().sum::<u64>();
        assert!(
            far(&windowed) * 4 < far(&raw),
            "windowed leakage {} vs raw {}",
            far(&windowed),
            far(&raw)
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let _ = HannWindow::new(8).apply(&[0i16; 4]);
    }
}
