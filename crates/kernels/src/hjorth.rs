//! Hjorth parameters (§VII extension).
//!
//! The paper's near-term roadmap: "we are further enhancing HALO's seizure
//! prediction algorithm by implementing kernels for calculation of
//! approximate entropy, Hann functions, and Hjorth parameters [47, 51,
//! 87]." Hjorth's time-domain descriptors (1970) are cheap,
//! hardware-friendly features:
//!
//! * **activity** — the signal variance,
//! * **mobility** — `sqrt(var(dx) / var(x))`, a mean-frequency proxy,
//! * **complexity** — `mobility(dx) / mobility(x)`, a bandwidth proxy.

/// Hjorth descriptors for one window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HjorthParams {
    /// Variance of the signal (µV², in sample units).
    pub activity: f64,
    /// Mean-frequency proxy in (0, 1] of Nyquist-ish scale.
    pub mobility: f64,
    /// Bandwidth proxy (≥ 1 for most physical signals).
    pub complexity: f64,
}

impl HjorthParams {
    /// Packs the descriptors into the integer feature form the SVM PE
    /// consumes (activity saturates; mobility/complexity in Q10).
    pub fn to_features(&self) -> [i64; 3] {
        [
            self.activity.min(i64::MAX as f64 / 2.0) as i64,
            (self.mobility * 1024.0) as i64,
            (self.complexity * 1024.0) as i64,
        ]
    }
}

fn variance(xs: impl Iterator<Item = f64> + Clone) -> f64 {
    let n = xs.clone().count();
    if n == 0 {
        return 0.0;
    }
    let mean = xs.clone().sum::<f64>() / n as f64;
    xs.map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64
}

/// Computes the Hjorth parameters of a sample window.
///
/// Returns zeroed parameters for windows shorter than 3 samples or with
/// zero variance.
///
/// # Example
///
/// ```
/// use halo_kernels::hjorth::hjorth;
/// // A fast oscillation has higher mobility than a slow one.
/// let fast: Vec<i16> = (0..256).map(|t| if t % 2 == 0 { 1000 } else { -1000 }).collect();
/// let slow: Vec<i16> = (0..256).map(|t| (1000.0 * (t as f64 / 40.0).sin()) as i16).collect();
/// assert!(hjorth(&fast).mobility > hjorth(&slow).mobility);
/// ```
pub fn hjorth(window: &[i16]) -> HjorthParams {
    if window.len() < 3 {
        return HjorthParams {
            activity: 0.0,
            mobility: 0.0,
            complexity: 0.0,
        };
    }
    let x = window.iter().map(|&s| s as f64);
    // Widen before differencing: a full-scale swing (MAX to MIN) overflows
    // i16 but is a legitimate neural-signal artifact.
    let dx: Vec<f64> = window
        .windows(2)
        .map(|w| (w[1] as i32 - w[0] as i32) as f64)
        .collect();
    let ddx: Vec<f64> = dx.windows(2).map(|w| w[1] - w[0]).collect();
    let var_x = variance(x);
    let var_dx = variance(dx.iter().copied());
    let var_ddx = variance(ddx.iter().copied());
    if var_x == 0.0 || var_dx == 0.0 {
        return HjorthParams {
            activity: var_x,
            mobility: 0.0,
            complexity: 0.0,
        };
    }
    let mobility = (var_dx / var_x).sqrt();
    let mobility_dx = (var_ddx / var_dx).sqrt();
    HjorthParams {
        activity: var_x,
        mobility,
        complexity: mobility_dx / mobility,
    }
}

/// Computes Hjorth parameters for several channels' windows.
///
/// Each lane is evaluated with exactly the scalar [`hjorth`] arithmetic
/// (floating-point summation order per lane is preserved), so lane `l`
/// is bit-identical to `hjorth(windows[l])`; the batching win comes from
/// the caller filling the lanes contiguously (SoA) instead of
/// de-interleaving per window.
pub fn hjorth_lanes(windows: &[&[i16]]) -> Vec<HjorthParams> {
    windows.iter().map(|w| hjorth(w)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_match_scalar() {
        let w0: Vec<i16> = (0..128).map(|t| (t * 13 % 997) as i16).collect();
        let w1 = vec![i16::MAX; 64];
        let w2: Vec<i16> = (0..64)
            .map(|t| if t % 2 == 0 { i16::MAX } else { i16::MIN })
            .collect();
        let batched = hjorth_lanes(&[&w0, &w1, &w2]);
        for (got, want) in batched.iter().zip([hjorth(&w0), hjorth(&w1), hjorth(&w2)]) {
            assert_eq!(got.activity.to_bits(), want.activity.to_bits());
            assert_eq!(got.mobility.to_bits(), want.mobility.to_bits());
            assert_eq!(got.complexity.to_bits(), want.complexity.to_bits());
        }
    }

    #[test]
    fn constant_signal_is_inert() {
        let p = hjorth(&[100i16; 64]);
        assert_eq!(p.activity, 0.0);
        assert_eq!(p.mobility, 0.0);
    }

    #[test]
    fn activity_tracks_amplitude() {
        let small: Vec<i16> = (0..128).map(|t| ((t % 7) as i16 - 3) * 10).collect();
        let large: Vec<i16> = small.iter().map(|&s| s * 10).collect();
        assert!(hjorth(&large).activity > 50.0 * hjorth(&small).activity);
    }

    #[test]
    fn mobility_tracks_frequency() {
        let make = |period: f64| -> Vec<i16> {
            (0..512)
                .map(|t| (2000.0 * (std::f64::consts::TAU * t as f64 / period).sin()) as i16)
                .collect()
        };
        let slow = hjorth(&make(128.0));
        let fast = hjorth(&make(8.0));
        assert!(fast.mobility > 5.0 * slow.mobility);
    }

    #[test]
    fn pure_tone_has_unit_ish_complexity() {
        let tone: Vec<i16> = (0..1024)
            .map(|t| (5000.0 * (std::f64::consts::TAU * t as f64 / 32.0).sin()) as i16)
            .collect();
        let p = hjorth(&tone);
        assert!(
            (p.complexity - 1.0).abs() < 0.1,
            "complexity {}",
            p.complexity
        );
    }

    #[test]
    fn broadband_beats_tone_on_complexity() {
        let tone: Vec<i16> = (0..1024)
            .map(|t| (5000.0 * (std::f64::consts::TAU * t as f64 / 64.0).sin()) as i16)
            .collect();
        let mut noisy = tone.clone();
        let mut state = 12345u64;
        for s in noisy.iter_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            *s = s.saturating_add(((state >> 48) as i16) / 8);
        }
        assert!(hjorth(&noisy).complexity > hjorth(&tone).complexity);
    }

    #[test]
    fn short_windows_are_safe() {
        assert_eq!(hjorth(&[]).activity, 0.0);
        assert_eq!(hjorth(&[1]).mobility, 0.0);
        assert_eq!(hjorth(&[1, 2]).complexity, 0.0);
    }

    #[test]
    fn features_are_finite_integers() {
        let tone: Vec<i16> = (0..128).map(|t| (t * 13 % 997) as i16).collect();
        let f = hjorth(&tone).to_features();
        assert!(f[0] >= 0);
        assert!(f[1] >= 0);
        assert!(f[2] >= 0);
    }
}
