//! Pairwise cross-correlation (XCOR kernel) — both algorithm variants.
//!
//! XCOR "accepts a list of channel numbers for which pair-wise
//! cross-correlation is calculated, using input parameter LAG to control the
//! delay between the two channels" (Table III). It is the power-hungriest
//! kernel in seizure prediction: divisions and square roots that scale
//! quadratically with channel count (§IV-A).
//!
//! The paper uses XCOR to showcase *spatial reprogramming* (§IV-B):
//!
//! * [`BlockXcor`] is Algorithm 2 — buffer the whole window, then compute in
//!   one burst. It needs `window × channels` samples of buffer and a burst
//!   of end-of-window work.
//! * [`StreamingXcor`] is Algorithm 3 extended to full Pearson correlation —
//!   process inputs as they arrive, keeping only a `lag`-deep delay line and
//!   running sums, so the final step is a handful of divisions per pair.
//!
//! Both produce **bit-identical** outputs (the refactoring "must not change
//! algorithmic functionality", §IV-A); the equivalence is enforced by tests
//! here and by property tests in the workspace test suite.

/// Maximum LAG supported by the PE (Table III: `LAG [0-64]`).
pub const MAX_LAG: usize = 64;

/// Configuration shared by both XCOR implementations.
///
/// # Example
///
/// ```
/// use halo_kernels::XcorConfig;
/// let cfg = XcorConfig::new(4, 256, 8, vec![(0, 1), (2, 3)]).unwrap();
/// assert_eq!(cfg.pairs().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XcorConfig {
    channels: usize,
    window: usize,
    lag: usize,
    pairs: Vec<(u8, u8)>,
}

/// Error returned for invalid XCOR configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XcorConfigError {
    /// LAG exceeds [`MAX_LAG`] or does not leave at least two samples of
    /// overlap within the window.
    BadLag {
        /// Requested lag.
        lag: usize,
        /// Window size.
        window: usize,
    },
    /// A channel index in the pair map is out of range.
    BadChannel(u8),
    /// The channel map is empty.
    NoPairs,
    /// The window is too small.
    BadWindow(usize),
}

impl std::fmt::Display for XcorConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadLag { lag, window } => {
                write!(f, "lag {lag} invalid for window {window} (max {MAX_LAG})")
            }
            Self::BadChannel(c) => write!(f, "channel {c} out of range"),
            Self::NoPairs => write!(f, "channel map is empty"),
            Self::BadWindow(w) => write!(f, "window {w} too small"),
        }
    }
}

impl std::error::Error for XcorConfigError {}

impl XcorConfig {
    /// Creates a configuration for `channels` input channels, correlation
    /// windows of `window` frames, delay `lag`, and the given channel map.
    ///
    /// # Errors
    ///
    /// Returns an error if the window is shorter than 4 frames, the lag
    /// exceeds [`MAX_LAG`] or `window - 2`, the map is empty, or any mapped
    /// channel is out of range.
    pub fn new(
        channels: usize,
        window: usize,
        lag: usize,
        pairs: Vec<(u8, u8)>,
    ) -> Result<Self, XcorConfigError> {
        if window < 4 {
            return Err(XcorConfigError::BadWindow(window));
        }
        if lag > MAX_LAG || lag + 2 > window {
            return Err(XcorConfigError::BadLag { lag, window });
        }
        if pairs.is_empty() {
            return Err(XcorConfigError::NoPairs);
        }
        for &(a, b) in &pairs {
            if a as usize >= channels {
                return Err(XcorConfigError::BadChannel(a));
            }
            if b as usize >= channels {
                return Err(XcorConfigError::BadChannel(b));
            }
        }
        Ok(Self {
            channels,
            window,
            lag,
            pairs,
        })
    }

    /// Number of input channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Window length in frames.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Correlation lag in frames.
    pub fn lag(&self) -> usize {
        self.lag
    }

    /// The channel map.
    pub fn pairs(&self) -> &[(u8, u8)] {
        &self.pairs
    }

    /// Effective overlap length `window - lag`.
    fn overlap(&self) -> usize {
        self.window - self.lag
    }
}

/// Integer sufficient statistics for one pair, from which the correlation is
/// computed identically by both implementations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct PairSums {
    n: i64,
    sum_i: i64,
    sum_j: i64,
    sumsq_i: i64,
    sumsq_j: i64,
    sumprod: i64,
}

impl PairSums {
    /// Pearson correlation from the integer sums (the only floating-point
    /// step, shared by both variants so outputs are bit-identical).
    fn correlation(&self) -> f64 {
        let n = self.n as f64;
        let cov = self.sumprod as f64 - self.sum_i as f64 * self.sum_j as f64 / n;
        let var_i = self.sumsq_i as f64 - self.sum_i as f64 * self.sum_i as f64 / n;
        let var_j = self.sumsq_j as f64 - self.sum_j as f64 * self.sum_j as f64 / n;
        let denom = (var_i * var_j).sqrt();
        if denom == 0.0 {
            0.0
        } else {
            cov / denom
        }
    }
}

/// Algorithm 2: buffer the entire window, then compute in a burst.
#[derive(Debug, Clone)]
pub struct BlockXcor {
    config: XcorConfig,
    frames: Vec<i16>,
    filled: usize,
}

impl BlockXcor {
    /// Creates the block implementation.
    pub fn new(config: XcorConfig) -> Self {
        let cap = config.window * config.channels;
        Self {
            config,
            frames: Vec::with_capacity(cap),
            filled: 0,
        }
    }

    /// Buffer requirement in samples — `window × channels` (the cost spatial
    /// reprogramming removes).
    pub fn buffer_samples(&self) -> usize {
        self.config.window * self.config.channels
    }

    /// Whole frames this instance will absorb before its next emission.
    pub fn frames_until_emit(&self) -> usize {
        self.config.window - self.filled
    }

    /// Pushes one frame (all channels at one time step). Returns the
    /// per-pair correlations when the window fills.
    ///
    /// # Panics
    ///
    /// Panics if `frame.len()` differs from the configured channel count.
    pub fn push_frame(&mut self, frame: &[i16]) -> Option<Vec<f64>> {
        assert_eq!(frame.len(), self.config.channels, "frame width");
        self.frames.extend_from_slice(frame);
        self.filled += 1;
        if self.filled < self.config.window {
            return None;
        }
        Some(self.compute_window())
    }

    /// Pushes many frames at once (interleaved, `channels` samples per
    /// frame), appending one correlation vector to `out` per completed
    /// window. Window buffering is a bulk `extend_from_slice` instead of a
    /// per-frame call; the burst computation is shared with
    /// [`BlockXcor::push_frame`], so outputs are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `samples.len()` is not a multiple of the channel count.
    pub fn push_interleaved(&mut self, samples: &[i16], out: &mut Vec<Vec<f64>>) {
        let ch = self.config.channels;
        assert!(samples.len().is_multiple_of(ch), "frame width");
        let mut rest = samples;
        while !rest.is_empty() {
            let need = (self.config.window - self.filled) * ch;
            let take = need.min(rest.len());
            self.frames.extend_from_slice(&rest[..take]);
            self.filled += take / ch;
            rest = &rest[take..];
            if self.filled == self.config.window {
                out.push(self.compute_window());
            }
        }
    }

    /// Burst computation over the filled window, consuming the buffer.
    fn compute_window(&mut self) -> Vec<f64> {
        debug_assert_eq!(self.filled, self.config.window);
        let ch = self.config.channels;
        let lag = self.config.lag;
        let overlap = self.config.overlap();
        let mut out = Vec::with_capacity(self.config.pairs.len());
        for &(i, j) in &self.config.pairs {
            let (i, j) = (i as usize, j as usize);
            let mut sums = PairSums {
                n: overlap as i64,
                ..PairSums::default()
            };
            for t in 0..overlap {
                let xi = self.frames[t * ch + i] as i64;
                let xj = self.frames[(t + lag) * ch + j] as i64;
                sums.sum_i += xi;
                sums.sum_j += xj;
                sums.sumsq_i += xi * xi;
                sums.sumsq_j += xj * xj;
                sums.sumprod += xi * xj;
            }
            out.push(sums.correlation());
        }
        self.frames.clear();
        self.filled = 0;
        out
    }
}

/// Algorithm 3: spatially-reprogrammed streaming implementation.
///
/// Keeps a `lag`-deep delay line instead of the whole window and updates
/// running sums as frames arrive, so the end-of-window step is only the
/// final divisions — "reducing the amount of computation needed in the final
/// step, as well as the number of buffers needed to store the inputs"
/// (§IV-B).
#[derive(Debug, Clone)]
pub struct StreamingXcor {
    config: XcorConfig,
    /// `lag`-deep delay line as a flat frame-major ring buffer — no
    /// per-frame allocation on the hot path.
    delay: Vec<i16>,
    /// Ring index (in frames) of the oldest buffered frame.
    delay_head: usize,
    /// Frames currently buffered (`<= lag`).
    delay_len: usize,
    sums: Vec<PairSums>,
    t: usize,
}

impl StreamingXcor {
    /// Creates the streaming implementation.
    pub fn new(config: XcorConfig) -> Self {
        let pairs = config.pairs.len();
        let delay = vec![0i16; config.lag * config.channels];
        Self {
            config,
            delay,
            delay_head: 0,
            delay_len: 0,
            sums: vec![PairSums::default(); pairs],
            t: 0,
        }
    }

    /// Buffer requirement in samples — only `lag × channels`.
    pub fn buffer_samples(&self) -> usize {
        self.config.lag * self.config.channels
    }

    /// Whole frames this instance will absorb before its next emission.
    pub fn frames_until_emit(&self) -> usize {
        self.config.window - self.t
    }

    /// Pushes one frame; returns correlations at window end.
    ///
    /// # Panics
    ///
    /// Panics if `frame.len()` differs from the configured channel count.
    pub fn push_frame(&mut self, frame: &[i16]) -> Option<Vec<f64>> {
        assert_eq!(frame.len(), self.config.channels, "frame width");
        let ch = self.config.channels;
        let lag = self.config.lag;
        let overlap = self.config.overlap();
        // The i-side sample is the frame from `lag` steps ago; the j-side is
        // the current frame. Pairs (t, t+lag) exist for t in [0, overlap).
        if self.t >= lag && self.t < lag + overlap {
            let old_row = self.delay_head * ch;
            for (p, &(i, j)) in self.config.pairs.iter().enumerate() {
                let xi = if lag == 0 {
                    frame[i as usize]
                } else {
                    self.delay[old_row + i as usize]
                } as i64;
                let xj = frame[j as usize] as i64;
                let s = &mut self.sums[p];
                s.n += 1;
                s.sum_i += xi;
                s.sum_j += xj;
                s.sumsq_i += xi * xi;
                s.sumsq_j += xj * xj;
                s.sumprod += xi * xj;
            }
        }
        if lag > 0 {
            // Append the frame, evicting the oldest once the ring is full.
            let row = if self.delay_len == lag {
                let row = self.delay_head;
                self.delay_head = (self.delay_head + 1) % lag;
                row
            } else {
                let row = (self.delay_head + self.delay_len) % lag;
                self.delay_len += 1;
                row
            };
            self.delay[row * ch..(row + 1) * ch].copy_from_slice(frame);
        }
        self.t += 1;
        if self.t == self.config.window {
            let out = self.sums.iter().map(PairSums::correlation).collect();
            for s in &mut self.sums {
                *s = PairSums::default();
            }
            self.delay_head = 0;
            self.delay_len = 0;
            self.t = 0;
            Some(out)
        } else {
            None
        }
    }

    /// Pushes a whole channel-major block of frames, appending one
    /// correlation vector to `out` per completed window.
    ///
    /// For the bulk of the block — every frame whose `lag`-delayed partner
    /// also lies inside the block — the per-pair sums update is a fused
    /// pass over two *contiguous* channel rows, which the autovectorizer
    /// can lift to SIMD. The few frames that touch the delay line (block
    /// head, post-emission refill) fall back to [`Self::push_frame`]. All
    /// sums are exact integer accumulations, so the result is bit-identical
    /// to pushing the frames one at a time.
    ///
    /// # Panics
    ///
    /// Panics if `block.channels()` differs from the configured count.
    pub fn push_block(&mut self, block: &crate::block::ChannelBlock, out: &mut Vec<Vec<f64>>) {
        assert_eq!(block.channels(), self.config.channels, "frame width");
        let ch = self.config.channels;
        let lag = self.config.lag;
        let window = self.config.window;
        let n = block.frames();
        let mut scratch = vec![0i16; ch];
        let mut f = 0usize;
        while f < n {
            // Frames whose i-side partner predates this block (f < lag) or
            // that are still refilling the delay line after an emission
            // (t < lag) take the scalar path.
            if self.t < lag || f < lag {
                for (c, slot) in scratch.iter_mut().enumerate() {
                    *slot = block.channel(c)[f];
                }
                if let Some(v) = self.push_frame(&scratch) {
                    out.push(v);
                }
                f += 1;
                continue;
            }
            // t in [lag, window): every remaining frame of this window is
            // active, with i-side = block frame f-lag and j-side = frame f.
            let run = (n - f).min(window - self.t);
            for (p, &(i, j)) in self.config.pairs.iter().enumerate() {
                let xi_run = &block.channel(i as usize)[f - lag..f - lag + run];
                let xj_run = &block.channel(j as usize)[f..f + run];
                let mut sum_i = 0i64;
                let mut sum_j = 0i64;
                let mut sumsq_i = 0i64;
                let mut sumsq_j = 0i64;
                let mut sumprod = 0i64;
                for (&a, &b) in xi_run.iter().zip(xj_run) {
                    let xi = a as i64;
                    let xj = b as i64;
                    sum_i += xi;
                    sum_j += xj;
                    sumsq_i += xi * xi;
                    sumsq_j += xj * xj;
                    sumprod += xi * xj;
                }
                let s = &mut self.sums[p];
                s.n += run as i64;
                s.sum_i += sum_i;
                s.sum_j += sum_j;
                s.sumsq_i += sumsq_i;
                s.sumsq_j += sumsq_j;
                s.sumprod += sumprod;
            }
            self.t += run;
            f += run;
            if self.t == window {
                out.push(self.sums.iter().map(PairSums::correlation).collect());
                for s in &mut self.sums {
                    *s = PairSums::default();
                }
                self.delay_head = 0;
                self.delay_len = 0;
                self.t = 0;
            }
        }
        // The fused path never writes the delay line; rebuild it from the
        // block tail so the next call's scalar frames read correct history.
        // When the whole block went scalar (n <= lag), the ring is already
        // up to date.
        let need = lag.min(self.t);
        if need > 0 && n >= need {
            self.delay_head = 0;
            self.delay_len = need;
            for k in 0..need {
                let src = n - need + k;
                for c in 0..ch {
                    self.delay[k * ch + c] = block.channel(c)[src];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_both(config: XcorConfig, frames: &[Vec<i16>]) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut block = BlockXcor::new(config.clone());
        let mut stream = StreamingXcor::new(config);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for f in frames {
            if let Some(out) = block.push_frame(f) {
                a.push(out);
            }
            if let Some(out) = stream.push_frame(f) {
                b.push(out);
            }
        }
        (a, b)
    }

    fn pseudo_frames(channels: usize, n: usize, seed: u64) -> Vec<Vec<i16>> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                (0..channels)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        (state >> 48) as i16
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn config_validation() {
        assert!(XcorConfig::new(4, 64, 65, vec![(0, 1)]).is_err()); // lag > 64
        assert!(XcorConfig::new(4, 8, 7, vec![(0, 1)]).is_err()); // overlap < 2
        assert!(XcorConfig::new(4, 64, 8, vec![]).is_err());
        assert!(XcorConfig::new(4, 64, 8, vec![(0, 9)]).is_err());
        assert!(XcorConfig::new(4, 2, 0, vec![(0, 1)]).is_err());
        assert!(XcorConfig::new(4, 64, 8, vec![(0, 1)]).is_ok());
    }

    #[test]
    fn identical_channels_correlate_to_one() {
        let config = XcorConfig::new(2, 32, 0, vec![(0, 1)]).unwrap();
        let frames: Vec<Vec<i16>> = (0..32)
            .map(|t| {
                let v = ((t * 37) % 101) as i16 - 50;
                vec![v, v]
            })
            .collect();
        let (a, _) = run_both(config, &frames);
        assert!((a[0][0] - 1.0).abs() < 1e-12, "got {}", a[0][0]);
    }

    #[test]
    fn inverted_channels_correlate_to_minus_one() {
        let config = XcorConfig::new(2, 32, 0, vec![(0, 1)]).unwrap();
        let frames: Vec<Vec<i16>> = (0..32)
            .map(|t| {
                let v = ((t * 37) % 101) as i16 - 50;
                vec![v, -v]
            })
            .collect();
        let (a, _) = run_both(config, &frames);
        assert!((a[0][0] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn lag_alignment_detects_shifted_copy() {
        // Channel 1 is channel 0 delayed by 8 frames; with lag 8 the
        // correlation must be exactly 1.
        let lag = 8;
        let window = 64;
        let config = XcorConfig::new(2, window, lag, vec![(0, 1)]).unwrap();
        let base: Vec<i16> = (0..window + lag)
            .map(|t| (((t * 2654435761usize) >> 8) & 0x7fff) as i16 - 16384)
            .collect();
        let frames: Vec<Vec<i16>> = (0..window).map(|t| vec![base[t + lag], base[t]]).collect();
        // x1[t + lag] = base[t], x0[t] = base[t + lag]; pairing x0[t] with
        // x1[t+lag] gives base[t+lag] vs base[t+lag]: exact match.
        let (a, b) = run_both(config, &frames);
        assert!((a[0][0] - 1.0).abs() < 1e-12, "block {}", a[0][0]);
        assert!((b[0][0] - 1.0).abs() < 1e-12, "stream {}", b[0][0]);
    }

    #[test]
    fn streaming_equals_block_bit_for_bit() {
        for (channels, window, lag, seed) in [
            (4, 32, 0, 1u64),
            (6, 64, 8, 2),
            (3, 50, 17, 3),
            (8, 96, 64, 4),
        ] {
            if lag + 2 > window {
                continue;
            }
            let mut pairs = Vec::new();
            for i in 0..channels as u8 {
                for j in 0..channels as u8 {
                    if i < j {
                        pairs.push((i, j));
                    }
                }
            }
            let config = XcorConfig::new(channels, window, lag, pairs).unwrap();
            let frames = pseudo_frames(channels, window * 3, seed);
            let (a, b) = run_both(config, &frames);
            assert_eq!(a.len(), 3);
            assert_eq!(a, b, "divergence at c={channels} w={window} l={lag}");
        }
    }

    #[test]
    fn streaming_block_push_equals_frame_push_bit_for_bit() {
        use crate::block::ChannelBlock;
        for (channels, window, lag, seed) in [
            (4usize, 32usize, 0usize, 11u64),
            (6, 64, 8, 12),
            (3, 50, 17, 13),
            (8, 96, 64, 14),
            (2, 7, 5, 15),
        ] {
            let mut pairs = Vec::new();
            for i in 0..channels as u8 {
                for j in 0..channels as u8 {
                    if i < j {
                        pairs.push((i, j));
                    }
                }
            }
            let config = XcorConfig::new(channels, window, lag, pairs).unwrap();
            let frames = pseudo_frames(channels, window * 3 + window / 2, seed);
            let mut scalar = StreamingXcor::new(config.clone());
            let mut batched = StreamingXcor::new(config);
            let mut want = Vec::new();
            for f in &frames {
                if let Some(v) = scalar.push_frame(f) {
                    want.push(v);
                }
            }
            // Deliver the same frames in awkward block sizes, including
            // blocks smaller than the lag and blocks spanning emissions.
            let mut got = Vec::new();
            let mut block = ChannelBlock::new();
            let sizes = [1usize, lag.max(1), 3, window / 2 + 1, window * 2, 2];
            let mut idx = 0;
            let mut k = 0;
            while idx < frames.len() {
                let take = sizes[k % sizes.len()].min(frames.len() - idx);
                k += 1;
                let interleaved: Vec<i16> = frames[idx..idx + take]
                    .iter()
                    .flat_map(|f| f.iter().copied())
                    .collect();
                block.fill_from_interleaved(&interleaved, channels);
                batched.push_block(&block, &mut got);
                idx += take;
            }
            let want_bits: Vec<Vec<u64>> = want
                .iter()
                .map(|v| v.iter().map(|x| x.to_bits()).collect())
                .collect();
            let got_bits: Vec<Vec<u64>> = got
                .iter()
                .map(|v| v.iter().map(|x| x.to_bits()).collect())
                .collect();
            assert_eq!(
                want_bits, got_bits,
                "divergence at c={channels} w={window} l={lag}"
            );
        }
    }

    #[test]
    fn block_interleaved_push_equals_frame_push() {
        let config = XcorConfig::new(3, 16, 4, vec![(0, 2), (1, 2)]).unwrap();
        let frames = pseudo_frames(3, 40, 9);
        let mut a = BlockXcor::new(config.clone());
        let mut b = BlockXcor::new(config);
        let mut want = Vec::new();
        for f in &frames {
            if let Some(v) = a.push_frame(f) {
                want.push(v);
            }
        }
        let flat: Vec<i16> = frames.iter().flat_map(|f| f.iter().copied()).collect();
        let mut got = Vec::new();
        b.push_interleaved(&flat, &mut got);
        assert_eq!(want, got);
    }

    #[test]
    fn streaming_needs_less_buffering() {
        let config = XcorConfig::new(96, 1024, 16, vec![(0, 1)]).unwrap();
        let block = BlockXcor::new(config.clone());
        let stream = StreamingXcor::new(config);
        assert!(stream.buffer_samples() * 32 < block.buffer_samples());
    }

    #[test]
    fn constant_channel_yields_zero() {
        let config = XcorConfig::new(2, 16, 0, vec![(0, 1)]).unwrap();
        let frames: Vec<Vec<i16>> = (0..16).map(|t| vec![5, (t % 7) as i16]).collect();
        let (a, b) = run_both(config, &frames);
        assert_eq!(a[0][0], 0.0);
        assert_eq!(b[0][0], 0.0);
    }
}
