//! Pairwise cross-correlation (XCOR kernel) — both algorithm variants.
//!
//! XCOR "accepts a list of channel numbers for which pair-wise
//! cross-correlation is calculated, using input parameter LAG to control the
//! delay between the two channels" (Table III). It is the power-hungriest
//! kernel in seizure prediction: divisions and square roots that scale
//! quadratically with channel count (§IV-A).
//!
//! The paper uses XCOR to showcase *spatial reprogramming* (§IV-B):
//!
//! * [`BlockXcor`] is Algorithm 2 — buffer the whole window, then compute in
//!   one burst. It needs `window × channels` samples of buffer and a burst
//!   of end-of-window work.
//! * [`StreamingXcor`] is Algorithm 3 extended to full Pearson correlation —
//!   process inputs as they arrive, keeping only a `lag`-deep delay line and
//!   running sums, so the final step is a handful of divisions per pair.
//!
//! Both produce **bit-identical** outputs (the refactoring "must not change
//! algorithmic functionality", §IV-A); the equivalence is enforced by tests
//! here and by property tests in the workspace test suite.

/// Maximum LAG supported by the PE (Table III: `LAG [0-64]`).
pub const MAX_LAG: usize = 64;

/// Configuration shared by both XCOR implementations.
///
/// # Example
///
/// ```
/// use halo_kernels::XcorConfig;
/// let cfg = XcorConfig::new(4, 256, 8, vec![(0, 1), (2, 3)]).unwrap();
/// assert_eq!(cfg.pairs().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XcorConfig {
    channels: usize,
    window: usize,
    lag: usize,
    pairs: Vec<(u8, u8)>,
}

/// Error returned for invalid XCOR configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XcorConfigError {
    /// LAG exceeds [`MAX_LAG`] or does not leave at least two samples of
    /// overlap within the window.
    BadLag {
        /// Requested lag.
        lag: usize,
        /// Window size.
        window: usize,
    },
    /// A channel index in the pair map is out of range.
    BadChannel(u8),
    /// The channel map is empty.
    NoPairs,
    /// The window is too small.
    BadWindow(usize),
}

impl std::fmt::Display for XcorConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadLag { lag, window } => {
                write!(f, "lag {lag} invalid for window {window} (max {MAX_LAG})")
            }
            Self::BadChannel(c) => write!(f, "channel {c} out of range"),
            Self::NoPairs => write!(f, "channel map is empty"),
            Self::BadWindow(w) => write!(f, "window {w} too small"),
        }
    }
}

impl std::error::Error for XcorConfigError {}

impl XcorConfig {
    /// Creates a configuration for `channels` input channels, correlation
    /// windows of `window` frames, delay `lag`, and the given channel map.
    ///
    /// # Errors
    ///
    /// Returns an error if the window is shorter than 4 frames, the lag
    /// exceeds [`MAX_LAG`] or `window - 2`, the map is empty, or any mapped
    /// channel is out of range.
    pub fn new(
        channels: usize,
        window: usize,
        lag: usize,
        pairs: Vec<(u8, u8)>,
    ) -> Result<Self, XcorConfigError> {
        if window < 4 {
            return Err(XcorConfigError::BadWindow(window));
        }
        if lag > MAX_LAG || lag + 2 > window {
            return Err(XcorConfigError::BadLag { lag, window });
        }
        if pairs.is_empty() {
            return Err(XcorConfigError::NoPairs);
        }
        for &(a, b) in &pairs {
            if a as usize >= channels {
                return Err(XcorConfigError::BadChannel(a));
            }
            if b as usize >= channels {
                return Err(XcorConfigError::BadChannel(b));
            }
        }
        Ok(Self {
            channels,
            window,
            lag,
            pairs,
        })
    }

    /// Number of input channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Window length in frames.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Correlation lag in frames.
    pub fn lag(&self) -> usize {
        self.lag
    }

    /// The channel map.
    pub fn pairs(&self) -> &[(u8, u8)] {
        &self.pairs
    }

    /// Effective overlap length `window - lag`.
    fn overlap(&self) -> usize {
        self.window - self.lag
    }
}

/// Integer sufficient statistics for one pair, from which the correlation is
/// computed identically by both implementations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct PairSums {
    n: i64,
    sum_i: i64,
    sum_j: i64,
    sumsq_i: i64,
    sumsq_j: i64,
    sumprod: i64,
}

impl PairSums {
    /// Pearson correlation from the integer sums (the only floating-point
    /// step, shared by both variants so outputs are bit-identical).
    fn correlation(&self) -> f64 {
        let n = self.n as f64;
        let cov = self.sumprod as f64 - self.sum_i as f64 * self.sum_j as f64 / n;
        let var_i = self.sumsq_i as f64 - self.sum_i as f64 * self.sum_i as f64 / n;
        let var_j = self.sumsq_j as f64 - self.sum_j as f64 * self.sum_j as f64 / n;
        let denom = (var_i * var_j).sqrt();
        if denom == 0.0 {
            0.0
        } else {
            cov / denom
        }
    }
}

/// Algorithm 2: buffer the entire window, then compute in a burst.
#[derive(Debug, Clone)]
pub struct BlockXcor {
    config: XcorConfig,
    frames: Vec<i16>,
    filled: usize,
}

impl BlockXcor {
    /// Creates the block implementation.
    pub fn new(config: XcorConfig) -> Self {
        let cap = config.window * config.channels;
        Self {
            config,
            frames: Vec::with_capacity(cap),
            filled: 0,
        }
    }

    /// Buffer requirement in samples — `window × channels` (the cost spatial
    /// reprogramming removes).
    pub fn buffer_samples(&self) -> usize {
        self.config.window * self.config.channels
    }

    /// Pushes one frame (all channels at one time step). Returns the
    /// per-pair correlations when the window fills.
    ///
    /// # Panics
    ///
    /// Panics if `frame.len()` differs from the configured channel count.
    pub fn push_frame(&mut self, frame: &[i16]) -> Option<Vec<f64>> {
        assert_eq!(frame.len(), self.config.channels, "frame width");
        self.frames.extend_from_slice(frame);
        self.filled += 1;
        if self.filled < self.config.window {
            return None;
        }
        // Burst computation over the whole window.
        let ch = self.config.channels;
        let lag = self.config.lag;
        let overlap = self.config.overlap();
        let mut out = Vec::with_capacity(self.config.pairs.len());
        for &(i, j) in &self.config.pairs {
            let (i, j) = (i as usize, j as usize);
            let mut sums = PairSums {
                n: overlap as i64,
                ..PairSums::default()
            };
            for t in 0..overlap {
                let xi = self.frames[t * ch + i] as i64;
                let xj = self.frames[(t + lag) * ch + j] as i64;
                sums.sum_i += xi;
                sums.sum_j += xj;
                sums.sumsq_i += xi * xi;
                sums.sumsq_j += xj * xj;
                sums.sumprod += xi * xj;
            }
            out.push(sums.correlation());
        }
        self.frames.clear();
        self.filled = 0;
        Some(out)
    }
}

/// Algorithm 3: spatially-reprogrammed streaming implementation.
///
/// Keeps a `lag`-deep delay line instead of the whole window and updates
/// running sums as frames arrive, so the end-of-window step is only the
/// final divisions — "reducing the amount of computation needed in the final
/// step, as well as the number of buffers needed to store the inputs"
/// (§IV-B).
#[derive(Debug, Clone)]
pub struct StreamingXcor {
    config: XcorConfig,
    delay: std::collections::VecDeque<Vec<i16>>,
    sums: Vec<PairSums>,
    t: usize,
}

impl StreamingXcor {
    /// Creates the streaming implementation.
    pub fn new(config: XcorConfig) -> Self {
        let pairs = config.pairs.len();
        Self {
            config,
            delay: std::collections::VecDeque::new(),
            sums: vec![PairSums::default(); pairs],
            t: 0,
        }
    }

    /// Buffer requirement in samples — only `lag × channels`.
    pub fn buffer_samples(&self) -> usize {
        self.config.lag * self.config.channels
    }

    /// Pushes one frame; returns correlations at window end.
    ///
    /// # Panics
    ///
    /// Panics if `frame.len()` differs from the configured channel count.
    pub fn push_frame(&mut self, frame: &[i16]) -> Option<Vec<f64>> {
        assert_eq!(frame.len(), self.config.channels, "frame width");
        let lag = self.config.lag;
        let overlap = self.config.overlap();
        // The i-side sample is the frame from `lag` steps ago; the j-side is
        // the current frame. Pairs (t, t+lag) exist for t in [0, overlap).
        self.delay.push_back(frame.to_vec());
        if self.t >= lag && self.t < lag + overlap {
            let old = self.delay.front().expect("delay line primed").clone();
            for (p, &(i, j)) in self.config.pairs.iter().enumerate() {
                let xi = old[i as usize] as i64;
                let xj = frame[j as usize] as i64;
                let s = &mut self.sums[p];
                s.n += 1;
                s.sum_i += xi;
                s.sum_j += xj;
                s.sumsq_i += xi * xi;
                s.sumsq_j += xj * xj;
                s.sumprod += xi * xj;
            }
        }
        if self.delay.len() > lag {
            self.delay.pop_front();
        }
        self.t += 1;
        if self.t == self.config.window {
            let out = self.sums.iter().map(PairSums::correlation).collect();
            for s in &mut self.sums {
                *s = PairSums::default();
            }
            self.delay.clear();
            self.t = 0;
            Some(out)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_both(config: XcorConfig, frames: &[Vec<i16>]) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut block = BlockXcor::new(config.clone());
        let mut stream = StreamingXcor::new(config);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for f in frames {
            if let Some(out) = block.push_frame(f) {
                a.push(out);
            }
            if let Some(out) = stream.push_frame(f) {
                b.push(out);
            }
        }
        (a, b)
    }

    fn pseudo_frames(channels: usize, n: usize, seed: u64) -> Vec<Vec<i16>> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                (0..channels)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        (state >> 48) as i16
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn config_validation() {
        assert!(XcorConfig::new(4, 64, 65, vec![(0, 1)]).is_err()); // lag > 64
        assert!(XcorConfig::new(4, 8, 7, vec![(0, 1)]).is_err()); // overlap < 2
        assert!(XcorConfig::new(4, 64, 8, vec![]).is_err());
        assert!(XcorConfig::new(4, 64, 8, vec![(0, 9)]).is_err());
        assert!(XcorConfig::new(4, 2, 0, vec![(0, 1)]).is_err());
        assert!(XcorConfig::new(4, 64, 8, vec![(0, 1)]).is_ok());
    }

    #[test]
    fn identical_channels_correlate_to_one() {
        let config = XcorConfig::new(2, 32, 0, vec![(0, 1)]).unwrap();
        let frames: Vec<Vec<i16>> = (0..32)
            .map(|t| {
                let v = ((t * 37) % 101) as i16 - 50;
                vec![v, v]
            })
            .collect();
        let (a, _) = run_both(config, &frames);
        assert!((a[0][0] - 1.0).abs() < 1e-12, "got {}", a[0][0]);
    }

    #[test]
    fn inverted_channels_correlate_to_minus_one() {
        let config = XcorConfig::new(2, 32, 0, vec![(0, 1)]).unwrap();
        let frames: Vec<Vec<i16>> = (0..32)
            .map(|t| {
                let v = ((t * 37) % 101) as i16 - 50;
                vec![v, -v]
            })
            .collect();
        let (a, _) = run_both(config, &frames);
        assert!((a[0][0] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn lag_alignment_detects_shifted_copy() {
        // Channel 1 is channel 0 delayed by 8 frames; with lag 8 the
        // correlation must be exactly 1.
        let lag = 8;
        let window = 64;
        let config = XcorConfig::new(2, window, lag, vec![(0, 1)]).unwrap();
        let base: Vec<i16> = (0..window + lag)
            .map(|t| (((t * 2654435761usize) >> 8) & 0x7fff) as i16 - 16384)
            .collect();
        let frames: Vec<Vec<i16>> = (0..window).map(|t| vec![base[t + lag], base[t]]).collect();
        // x1[t + lag] = base[t], x0[t] = base[t + lag]; pairing x0[t] with
        // x1[t+lag] gives base[t+lag] vs base[t+lag]: exact match.
        let (a, b) = run_both(config, &frames);
        assert!((a[0][0] - 1.0).abs() < 1e-12, "block {}", a[0][0]);
        assert!((b[0][0] - 1.0).abs() < 1e-12, "stream {}", b[0][0]);
    }

    #[test]
    fn streaming_equals_block_bit_for_bit() {
        for (channels, window, lag, seed) in [
            (4, 32, 0, 1u64),
            (6, 64, 8, 2),
            (3, 50, 17, 3),
            (8, 96, 64, 4),
        ] {
            if lag + 2 > window {
                continue;
            }
            let mut pairs = Vec::new();
            for i in 0..channels as u8 {
                for j in 0..channels as u8 {
                    if i < j {
                        pairs.push((i, j));
                    }
                }
            }
            let config = XcorConfig::new(channels, window, lag, pairs).unwrap();
            let frames = pseudo_frames(channels, window * 3, seed);
            let (a, b) = run_both(config, &frames);
            assert_eq!(a.len(), 3);
            assert_eq!(a, b, "divergence at c={channels} w={window} l={lag}");
        }
    }

    #[test]
    fn streaming_needs_less_buffering() {
        let config = XcorConfig::new(96, 1024, 16, vec![(0, 1)]).unwrap();
        let block = BlockXcor::new(config.clone());
        let stream = StreamingXcor::new(config);
        assert!(stream.buffer_samples() * 32 < block.buffer_samples());
    }

    #[test]
    fn constant_channel_yields_zero() {
        let config = XcorConfig::new(2, 16, 0, vec![(0, 1)]).unwrap();
        let frames: Vec<Vec<i16>> = (0..16).map(|t| vec![5, (t % 7) as i16]).collect();
        let (a, b) = run_both(config, &frames);
        assert_eq!(a[0][0], 0.0);
        assert_eq!(b[0][0], 0.0);
    }
}
