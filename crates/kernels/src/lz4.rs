//! LZ4-style compression pipeline: LZ → LIC.
//!
//! The lighter of the two general-purpose compressors (Figure 2, blue
//! path): the shared LZ match-search PE feeds the LIC byte coder. No
//! probability state means less logic and memory power than LZMA, at a
//! lower compression ratio — the trade Figure 5 and Figure 9 quantify.

use crate::lic::{lic_decode, lic_encode, LicError};
use crate::lz::LzMatcher;

/// Default block size in bytes. "LZ4 encoding does not depend on block
/// size" for ratio (Figure 8), but blocking still bounds PE memory.
pub const DEFAULT_BLOCK_SIZE: usize = 1 << 16;

/// Errors produced while decompressing an LZ4-framed stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lz4Error {
    /// The container framing is truncated or inconsistent.
    Truncated,
    /// A block header claims a raw length beyond the configured block
    /// size (corrupted or hostile stream).
    BadHeader,
    /// A block payload failed to decode.
    Block(LicError),
    /// A block decoded to the wrong length.
    LengthMismatch {
        /// Length the frame header promised.
        expected: usize,
        /// Length actually produced.
        got: usize,
    },
}

impl std::fmt::Display for Lz4Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "lz4 stream truncated"),
            Self::BadHeader => write!(f, "lz4 block header exceeds the block size"),
            Self::Block(e) => write!(f, "lz4 block error: {e}"),
            Self::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "lz4 block length mismatch: expected {expected}, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for Lz4Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Block(e) => Some(e),
            _ => None,
        }
    }
}

/// The LZ4-style codec (LZ + LIC kernels composed).
///
/// # Example
///
/// ```
/// use halo_kernels::Lz4Codec;
/// let codec = Lz4Codec::new(4096).unwrap();
/// let data = b"local field potential ".repeat(50);
/// let compressed = codec.compress(&data);
/// assert!(compressed.len() < data.len());
/// assert_eq!(codec.decompress(&compressed).unwrap(), data);
/// ```
#[derive(Debug, Clone)]
pub struct Lz4Codec {
    matcher: LzMatcher,
    block_size: usize,
}

impl Lz4Codec {
    /// Creates a codec with the given LZ history (power of two, 256–8192).
    ///
    /// # Errors
    ///
    /// Returns [`crate::lz::InvalidHistory`] for unsupported histories.
    pub fn new(history: usize) -> Result<Self, crate::lz::InvalidHistory> {
        Ok(Self {
            matcher: LzMatcher::new(history)?,
            block_size: DEFAULT_BLOCK_SIZE,
        })
    }

    /// Sets the block size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn with_block_size(mut self, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        self.block_size = block_size;
        self
    }

    /// The configured block size.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The configured LZ history.
    pub fn history(&self) -> usize {
        self.matcher.history()
    }

    /// Compresses `data` into a framed stream of LIC blocks.
    pub fn compress(&self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        for block in data.chunks(self.block_size) {
            let payload = lic_encode(&self.matcher.parse(block));
            out.extend_from_slice(&(block.len() as u32).to_le_bytes());
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(&payload);
        }
        out
    }

    /// Decompresses a stream produced by [`Lz4Codec::compress`].
    ///
    /// # Errors
    ///
    /// Returns [`Lz4Error`] on malformed input.
    pub fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, Lz4Error> {
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos < data.len() {
            if pos + 8 > data.len() {
                return Err(Lz4Error::Truncated);
            }
            let raw_len =
                u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let comp_len =
                u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes")) as usize;
            pos += 8;
            if raw_len > self.block_size {
                return Err(Lz4Error::BadHeader);
            }
            if pos + comp_len > data.len() {
                return Err(Lz4Error::Truncated);
            }
            if raw_len == 0 {
                // A zero raw length marks an undecodable partial tail (a
                // framed stream that ended mid-block); skip its payload.
                pos += comp_len;
                continue;
            }
            let block = lic_decode(&data[pos..pos + comp_len]).map_err(Lz4Error::Block)?;
            if block.len() != raw_len {
                return Err(Lz4Error::LengthMismatch {
                    expected: raw_len,
                    got: block.len(),
                });
            }
            out.extend_from_slice(&block);
            pos += comp_len;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(codec: &Lz4Codec, data: &[u8]) -> usize {
        let c = codec.compress(data);
        assert_eq!(codec.decompress(&c).unwrap(), data);
        c.len()
    }

    #[test]
    fn empty_and_small() {
        let codec = Lz4Codec::new(1024).unwrap();
        assert_eq!(round_trip(&codec, &[]), 0);
        round_trip(&codec, b"x");
        round_trip(&codec, b"abcd");
    }

    #[test]
    fn multi_block() {
        let codec = Lz4Codec::new(256).unwrap().with_block_size(64);
        let data: Vec<u8> = b"theta rhythm ".repeat(100);
        round_trip(&codec, &data);
    }

    #[test]
    fn compresses_repetitive_data() {
        let codec = Lz4Codec::new(4096).unwrap();
        let data = b"spike train ".repeat(1000);
        let n = round_trip(&codec, &data);
        assert!(n < data.len() / 8);
    }

    #[test]
    fn incompressible_data_expands_only_slightly() {
        let codec = Lz4Codec::new(4096).unwrap();
        let data: Vec<u8> = (0..10_000u32)
            .flat_map(|i| i.wrapping_mul(2654435761).to_le_bytes())
            .collect();
        let n = round_trip(&codec, &data);
        assert!(n < data.len() + data.len() / 16 + 64, "{n}");
    }

    /// A framed stream that ended mid-block carries a zero-raw-length
    /// tail (see the runtime's radio collector); the decoder must skip
    /// its payload rather than misread it.
    #[test]
    fn zero_raw_len_tail_block_is_skipped() {
        let codec = Lz4Codec::new(1024).unwrap();
        let data = b"beta burst ".repeat(20);
        let mut c = codec.compress(&data);
        let tail = [0x13, 0x37, 0x42];
        c.extend_from_slice(&0u32.to_le_bytes());
        c.extend_from_slice(&(tail.len() as u32).to_le_bytes());
        c.extend_from_slice(&tail);
        assert_eq!(codec.decompress(&c).unwrap(), data);
    }

    #[test]
    fn truncation_is_detected() {
        let codec = Lz4Codec::new(1024).unwrap();
        let data = b"gamma band power".repeat(10);
        let c = codec.compress(&data);
        assert!(matches!(
            codec.decompress(&c[..3]),
            Err(Lz4Error::Truncated)
        ));
        assert!(codec.decompress(&c[..c.len() - 1]).is_err());
    }
}
