//! Stream gate (GATE kernel).
//!
//! Table III: "Passes one input stream based on the value of the second
//! input line (provided by THR)". In the spike-detection pipelines the gate
//! is what turns detection into *compression*: only the signal segments that
//! contain a detected spike are transmitted, cutting radio bandwidth by
//! orders of magnitude (§III). A configurable hold window keeps the gate
//! open long enough to pass the full spike waveform after its trigger.

/// A control-gated pass-through with a hold window.
///
/// # Example
///
/// ```
/// use halo_kernels::Gate;
/// let mut gate = Gate::new(2);
/// assert_eq!(gate.process(10, false), None);
/// assert_eq!(gate.process(11, true), Some(11)); // trigger opens the gate
/// assert_eq!(gate.process(12, false), Some(12)); // hold keeps it open
/// assert_eq!(gate.process(13, false), Some(13));
/// assert_eq!(gate.process(14, false), None); // hold expired
/// ```
#[derive(Debug, Clone)]
pub struct Gate {
    hold: usize,
    remaining: usize,
}

impl Gate {
    /// Creates a gate that stays open for `hold` extra samples after each
    /// asserted control input.
    pub fn new(hold: usize) -> Self {
        Self { hold, remaining: 0 }
    }

    /// The configured hold length.
    pub fn hold(&self) -> usize {
        self.hold
    }

    /// Pushes one data sample and its control bit; returns the sample if the
    /// gate is open.
    pub fn process<T>(&mut self, data: T, control: bool) -> Option<T> {
        if control {
            self.remaining = self.hold + 1;
        }
        if self.remaining > 0 {
            self.remaining -= 1;
            Some(data)
        } else {
            None
        }
    }

    /// Gates a block of data with a parallel control stream.
    ///
    /// # Panics
    ///
    /// Panics if the streams differ in length.
    pub fn process_block<T: Copy>(&mut self, data: &[T], control: &[bool]) -> Vec<T> {
        assert_eq!(data.len(), control.len(), "stream length mismatch");
        data.iter()
            .zip(control)
            .filter_map(|(&d, &c)| self.process(d, c))
            .collect()
    }

    /// Closes the gate immediately.
    pub fn reset(&mut self) {
        self.remaining = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_by_default() {
        let mut g = Gate::new(0);
        assert_eq!(g.process(1, false), None);
    }

    #[test]
    fn zero_hold_passes_only_triggered_samples() {
        let mut g = Gate::new(0);
        let out = g.process_block(&[1, 2, 3, 4], &[false, true, false, true]);
        assert_eq!(out, vec![2, 4]);
    }

    #[test]
    fn retrigger_extends_window() {
        let mut g = Gate::new(1);
        let out = g.process_block(&[1, 2, 3, 4, 5], &[true, false, true, false, false]);
        // open at 1 (hold thru 2), retrigger at 3 (hold thru 4), closed at 5.
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn reset_closes_gate() {
        let mut g = Gate::new(10);
        g.process(1, true);
        g.reset();
        assert_eq!(g.process(2, false), None);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_streams_panic() {
        let mut g = Gate::new(0);
        let _ = g.process_block(&[1, 2], &[true]);
    }
}
