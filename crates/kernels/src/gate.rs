//! Stream gate (GATE kernel).
//!
//! Table III: "Passes one input stream based on the value of the second
//! input line (provided by THR)". In the spike-detection pipelines the gate
//! is what turns detection into *compression*: only the signal segments that
//! contain a detected spike are transmitted, cutting radio bandwidth by
//! orders of magnitude (§III). A configurable hold window keeps the gate
//! open long enough to pass the full spike waveform after its trigger.

/// A control-gated pass-through with a hold window.
///
/// # Example
///
/// ```
/// use halo_kernels::Gate;
/// let mut gate = Gate::new(2);
/// assert_eq!(gate.process(10, false), None);
/// assert_eq!(gate.process(11, true), Some(11)); // trigger opens the gate
/// assert_eq!(gate.process(12, false), Some(12)); // hold keeps it open
/// assert_eq!(gate.process(13, false), Some(13));
/// assert_eq!(gate.process(14, false), None); // hold expired
/// ```
#[derive(Debug, Clone)]
pub struct Gate {
    hold: usize,
    remaining: usize,
}

impl Gate {
    /// Creates a gate that stays open for `hold` extra samples after each
    /// asserted control input.
    pub fn new(hold: usize) -> Self {
        Self { hold, remaining: 0 }
    }

    /// The configured hold length.
    pub fn hold(&self) -> usize {
        self.hold
    }

    /// Pushes one data sample and its control bit; returns the sample if the
    /// gate is open.
    pub fn process<T>(&mut self, data: T, control: bool) -> Option<T> {
        if control {
            self.remaining = self.hold + 1;
        }
        if self.remaining > 0 {
            self.remaining -= 1;
            Some(data)
        } else {
            None
        }
    }

    /// Gates a block of data with a parallel control stream.
    ///
    /// # Panics
    ///
    /// Panics if the streams differ in length.
    pub fn process_block<T: Copy>(&mut self, data: &[T], control: &[bool]) -> Vec<T> {
        assert_eq!(data.len(), control.len(), "stream length mismatch");
        data.iter()
            .zip(control)
            .filter_map(|(&d, &c)| self.process(d, c))
            .collect()
    }

    /// Closes the gate immediately.
    pub fn reset(&mut self) {
        self.remaining = 0;
    }

    /// Gates a block whose control stream arrives bit-packed (LSB-first
    /// `u64` words, as produced by
    /// [`Threshold::check_block_packed`](crate::Threshold::check_block_packed));
    /// passed samples are appended to `out`.
    ///
    /// Whole control words short-circuit: an all-ones word passes 64
    /// samples with one `extend_from_slice`, and an all-zeros word with no
    /// hold pending skips 64 samples outright — the bit-at-a-time loop
    /// only runs on mixed words. Output is identical to calling
    /// [`Gate::process`] per sample.
    ///
    /// # Panics
    ///
    /// Panics if `control` has fewer than `data.len().div_ceil(64)` words.
    pub fn process_packed<T: Copy>(&mut self, data: &[T], control: &[u64], out: &mut Vec<T>) {
        assert!(
            control.len() >= data.len().div_ceil(64),
            "stream length mismatch"
        );
        for (w, chunk) in data.chunks(64).enumerate() {
            let word = control[w];
            let n = chunk.len();
            let full = n == 64;
            if full && word == u64::MAX {
                // Every sample triggered: all pass, hold rearmed by the
                // final trigger.
                self.remaining = self.hold + 1;
                self.remaining -= 1;
                out.extend_from_slice(chunk);
                continue;
            }
            if word == 0 {
                // No triggers in this word: pass while the hold drains,
                // then drop the rest in bulk.
                let pass = self.remaining.min(n);
                out.extend_from_slice(&chunk[..pass]);
                self.remaining -= pass;
                continue;
            }
            for (k, &d) in chunk.iter().enumerate() {
                if let Some(d) = self.process(d, word >> k & 1 == 1) {
                    out.push(d);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_by_default() {
        let mut g = Gate::new(0);
        assert_eq!(g.process(1, false), None);
    }

    #[test]
    fn zero_hold_passes_only_triggered_samples() {
        let mut g = Gate::new(0);
        let out = g.process_block(&[1, 2, 3, 4], &[false, true, false, true]);
        assert_eq!(out, vec![2, 4]);
    }

    #[test]
    fn retrigger_extends_window() {
        let mut g = Gate::new(1);
        let out = g.process_block(&[1, 2, 3, 4, 5], &[true, false, true, false, false]);
        // open at 1 (hold thru 2), retrigger at 3 (hold thru 4), closed at 5.
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn reset_closes_gate() {
        let mut g = Gate::new(10);
        g.process(1, true);
        g.reset();
        assert_eq!(g.process(2, false), None);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_streams_panic() {
        let mut g = Gate::new(0);
        let _ = g.process_block(&[1, 2], &[true]);
    }

    #[test]
    fn packed_matches_scalar_including_word_fast_paths() {
        for hold in [0usize, 1, 3, 70] {
            for len in [0usize, 1, 63, 64, 65, 130, 320] {
                // Stretches of all-true and all-false words plus mixed
                // tails, so every fast path and the bit loop all run.
                let control: Vec<bool> = (0..len)
                    .map(|k| match k / 64 % 3 {
                        0 => true,
                        1 => false,
                        _ => k % 7 == 0,
                    })
                    .collect();
                let data: Vec<i16> = (0..len as i16).collect();
                let mut scalar = Gate::new(hold);
                let want = scalar.process_block(&data, &control);
                let mut packed_control = vec![0u64; len.div_ceil(64)];
                for (k, &c) in control.iter().enumerate() {
                    packed_control[k / 64] |= (c as u64) << (k % 64);
                }
                let mut batched = Gate::new(hold);
                let mut got = Vec::new();
                batched.process_packed(&data, &packed_control, &mut got);
                assert_eq!(want, got, "hold={hold} len={len}");
                assert_eq!(scalar.remaining, batched.remaining);
            }
        }
    }
}
