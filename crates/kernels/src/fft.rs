//! Fixed-point fast Fourier transform (FFT kernel).
//!
//! The FFT PE is shared between seizure prediction (1024-point transforms,
//! Shiao et al. \[99\]) and movement intent (power in the 14–25 Hz band, Herron
//! et al. \[49\]); configurability of the point count is what enables PE reuse
//! (§IV-A). The hardware uses fixed-point butterflies, so this kernel uses
//! Q15 twiddle factors and per-stage scaling (a standard guard against
//! overflow in fixed-point FFT datapaths), giving an overall 1/N scaling.

use crate::fixed::to_q15;

/// Maximum transform size supported by the PE (Table III).
pub const MAX_POINTS: usize = 1024;

/// A radix-2 decimation-in-time fixed-point FFT of a fixed size.
///
/// # Example
///
/// ```
/// use halo_kernels::Fft;
/// let fft = Fft::new(8).unwrap();
/// // A DC signal has all its energy in bin 0.
/// let spectrum = fft.power_spectrum(&[1000i16; 8]);
/// assert!(spectrum[0] > 0);
/// assert!(spectrum[1..].iter().all(|&b| b <= spectrum[0] / 100));
/// ```
#[derive(Debug, Clone)]
pub struct Fft {
    points: usize,
    twiddle_re: Vec<i16>,
    twiddle_im: Vec<i16>,
    bit_rev: Vec<u16>,
}

/// Error returned when constructing an [`Fft`] with an unsupported size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidFftSize(pub usize);

impl std::fmt::Display for InvalidFftSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fft size {} is not a power of two in 2..={MAX_POINTS}",
            self.0
        )
    }
}

impl std::error::Error for InvalidFftSize {}

impl Fft {
    /// Creates an FFT of `points` (a power of two in `2..=1024`).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidFftSize`] if `points` is not a power of two or is
    /// outside the PE's supported range.
    pub fn new(points: usize) -> Result<Self, InvalidFftSize> {
        if !points.is_power_of_two() || !(2..=MAX_POINTS).contains(&points) {
            return Err(InvalidFftSize(points));
        }
        let half = points / 2;
        let mut twiddle_re = Vec::with_capacity(half);
        let mut twiddle_im = Vec::with_capacity(half);
        for k in 0..half {
            let angle = -std::f64::consts::TAU * k as f64 / points as f64;
            twiddle_re.push(to_q15(angle.cos().clamp(-0.999_97, 0.999_97)));
            twiddle_im.push(to_q15(angle.sin().clamp(-0.999_97, 0.999_97)));
        }
        let bits = points.trailing_zeros();
        let bit_rev = (0..points)
            .map(|i| ((i as u32).reverse_bits() >> (32 - bits)) as u16)
            .collect();
        Ok(Self {
            points,
            twiddle_re,
            twiddle_im,
            bit_rev,
        })
    }

    /// Transform size.
    pub fn points(&self) -> usize {
        self.points
    }

    /// In-place fixed-point FFT over `re`/`im`.
    ///
    /// Each stage scales by 1/2, so the result carries an overall 1/N factor
    /// relative to the mathematical DFT.
    ///
    /// # Panics
    ///
    /// Panics if `re` or `im` length differs from [`Fft::points`].
    pub fn transform(&self, re: &mut [i32], im: &mut [i32]) {
        assert_eq!(re.len(), self.points, "re length");
        assert_eq!(im.len(), self.points, "im length");
        let n = self.points;
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.bit_rev[i] as usize;
            if i < j {
                re.swap(i, j);
                im.swap(i, j);
            }
        }
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let step = n / len;
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let w_re = self.twiddle_re[k * step] as i64;
                    let w_im = self.twiddle_im[k * step] as i64;
                    let a = start + k;
                    let b = a + half;
                    let b_re = re[b] as i64;
                    let b_im = im[b] as i64;
                    let t_re = (w_re * b_re - w_im * b_im) >> 15;
                    let t_im = (w_re * b_im + w_im * b_re) >> 15;
                    let a_re = re[a] as i64;
                    let a_im = im[a] as i64;
                    re[a] = ((a_re + t_re) >> 1) as i32;
                    im[a] = ((a_im + t_im) >> 1) as i32;
                    re[b] = ((a_re - t_re) >> 1) as i32;
                    im[b] = ((a_im - t_im) >> 1) as i32;
                }
            }
            len *= 2;
        }
    }

    /// In-place fixed-point FFT over `lanes` interleaved transforms.
    ///
    /// `re`/`im` hold `points * lanes` values in `[bin][lane]` order: the
    /// `lanes` values of bin `b` sit at `b*lanes..(b+1)*lanes`, one per
    /// channel. Every butterfly then touches two *contiguous* lane groups
    /// and the inner per-lane loop is a fixed-trip straight-line pass the
    /// autovectorizer can lift to SIMD — each lane computes exactly the
    /// arithmetic of [`Fft::transform`], so lane `l` is bit-identical to a
    /// scalar transform of that channel.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero or `re`/`im` length differs from
    /// `points * lanes`.
    pub fn transform_lanes(&self, re: &mut [i32], im: &mut [i32], lanes: usize) {
        assert!(lanes > 0, "need at least one lane");
        assert_eq!(re.len(), self.points * lanes, "re length");
        assert_eq!(im.len(), self.points * lanes, "im length");
        let n = self.points;
        // Bit-reversal permutation, one lane group at a time.
        for i in 0..n {
            let j = self.bit_rev[i] as usize;
            if i < j {
                for l in 0..lanes {
                    re.swap(i * lanes + l, j * lanes + l);
                    im.swap(i * lanes + l, j * lanes + l);
                }
            }
        }
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let step = n / len;
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let w_re = self.twiddle_re[k * step] as i64;
                    let w_im = self.twiddle_im[k * step] as i64;
                    let a = (start + k) * lanes;
                    let b = a + half * lanes;
                    // Split so the `a` and `b` lane groups borrow
                    // disjointly; both are contiguous runs of `lanes`.
                    let (re_a, re_b) = re.split_at_mut(b);
                    let (im_a, im_b) = im.split_at_mut(b);
                    let re_a = &mut re_a[a..a + lanes];
                    let im_a = &mut im_a[a..a + lanes];
                    let re_b = &mut re_b[..lanes];
                    let im_b = &mut im_b[..lanes];
                    for l in 0..lanes {
                        let b_re = re_b[l] as i64;
                        let b_im = im_b[l] as i64;
                        let t_re = (w_re * b_re - w_im * b_im) >> 15;
                        let t_im = (w_re * b_im + w_im * b_re) >> 15;
                        let a_re = re_a[l] as i64;
                        let a_im = im_a[l] as i64;
                        re_a[l] = ((a_re + t_re) >> 1) as i32;
                        im_a[l] = ((a_im + t_im) >> 1) as i32;
                        re_b[l] = ((a_re - t_re) >> 1) as i32;
                        im_b[l] = ((a_im - t_im) >> 1) as i32;
                    }
                }
            }
            len *= 2;
        }
    }

    /// Computes the power spectra of several channels' sample blocks in
    /// one lane-interleaved pass. Each returned spectrum is bit-identical
    /// to [`Fft::power_spectrum`] of the same window.
    ///
    /// # Panics
    ///
    /// Panics if any window's length differs from [`Fft::points`].
    pub fn power_spectrum_lanes(&self, windows: &[&[i16]]) -> Vec<Vec<u64>> {
        let lanes = windows.len();
        if lanes == 0 {
            return Vec::new();
        }
        if lanes == 1 {
            return vec![self.power_spectrum(windows[0])];
        }
        for w in windows {
            assert_eq!(w.len(), self.points, "sample block length");
        }
        let mut re = vec![0i32; self.points * lanes];
        let im_len = re.len();
        for (l, w) in windows.iter().enumerate() {
            for (bin, &s) in w.iter().enumerate() {
                re[bin * lanes + l] = s as i32;
            }
        }
        let mut im = vec![0i32; im_len];
        self.transform_lanes(&mut re, &mut im, lanes);
        (0..lanes)
            .map(|l| {
                (0..=self.points / 2)
                    .map(|k| {
                        let r = re[k * lanes + l] as i64;
                        let i = im[k * lanes + l] as i64;
                        (r * r + i * i) as u64
                    })
                    .collect()
            })
            .collect()
    }

    /// Computes the one-sided power spectrum (`points/2 + 1` bins) of a real
    /// sample block.
    ///
    /// # Panics
    ///
    /// Panics if `samples.len() != self.points()`.
    pub fn power_spectrum(&self, samples: &[i16]) -> Vec<u64> {
        assert_eq!(samples.len(), self.points, "sample block length");
        let mut re: Vec<i32> = samples.iter().map(|&s| s as i32).collect();
        let mut im = vec![0i32; self.points];
        self.transform(&mut re, &mut im);
        (0..=self.points / 2)
            .map(|k| {
                let r = re[k] as i64;
                let i = im[k] as i64;
                (r * r + i * i) as u64
            })
            .collect()
    }

    /// Sums spectrum bins whose center frequency lies in `[lo_hz, hi_hz]`.
    ///
    /// `spectrum` must come from [`Fft::power_spectrum`] with data sampled at
    /// `sample_rate_hz`.
    pub fn band_power(&self, spectrum: &[u64], sample_rate_hz: u32, lo_hz: f64, hi_hz: f64) -> u64 {
        let bin_hz = sample_rate_hz as f64 / self.points as f64;
        spectrum
            .iter()
            .enumerate()
            .filter(|(k, _)| {
                let f = *k as f64 * bin_hz;
                f >= lo_hz && f <= hi_hz
            })
            .map(|(_, &p)| p)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[f64]) -> Vec<(f64, f64)> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut re = 0.0;
                let mut im = 0.0;
                for (t, &v) in x.iter().enumerate() {
                    let a = -std::f64::consts::TAU * k as f64 * t as f64 / n as f64;
                    re += v * a.cos();
                    im += v * a.sin();
                }
                (re, im)
            })
            .collect()
    }

    #[test]
    fn rejects_bad_sizes() {
        assert!(Fft::new(0).is_err());
        assert!(Fft::new(3).is_err());
        assert!(Fft::new(1).is_err());
        assert!(Fft::new(2048).is_err());
        assert!(Fft::new(1024).is_ok());
    }

    #[test]
    fn sinusoid_lands_in_correct_bin() {
        let n = 256;
        let fft = Fft::new(n).unwrap();
        let bin = 16;
        let samples: Vec<i16> = (0..n)
            .map(|t| {
                let a = std::f64::consts::TAU * bin as f64 * t as f64 / n as f64;
                (10_000.0 * a.cos()) as i16
            })
            .collect();
        let spec = fft.power_spectrum(&samples);
        let peak = spec
            .iter()
            .enumerate()
            .max_by_key(|(_, &p)| p)
            .map(|(k, _)| k)
            .unwrap();
        assert_eq!(peak, bin);
    }

    #[test]
    fn matches_reference_dft_within_quantization() {
        let n = 128;
        let fft = Fft::new(n).unwrap();
        // Deterministic pseudo-random test signal.
        let samples: Vec<i16> = (0..n)
            .map(|t| (((t * 2654435761usize) >> 16) as i16).wrapping_mul(3) / 4)
            .collect();
        let float: Vec<f64> = samples.iter().map(|&s| s as f64).collect();
        let reference = naive_dft(&float);
        let mut re: Vec<i32> = samples.iter().map(|&s| s as i32).collect();
        let mut im = vec![0i32; n];
        fft.transform(&mut re, &mut im);
        // Fixed-point output carries 1/N scaling.
        let scale = n as f64;
        let norm: f64 = reference
            .iter()
            .map(|(r, i)| r * r + i * i)
            .sum::<f64>()
            .sqrt();
        for k in 0..n {
            let er = reference[k].0 / scale - re[k] as f64;
            let ei = reference[k].1 / scale - im[k] as f64;
            let err = (er * er + ei * ei).sqrt();
            assert!(
                err < norm / scale * 0.02 + 4.0,
                "bin {k}: err {err}, ref ({}, {})",
                reference[k].0 / scale,
                reference[k].1 / scale
            );
        }
    }

    #[test]
    fn band_power_selects_correct_bins() {
        let n = 512;
        let fft = Fft::new(n).unwrap();
        let fs = 1000;
        // 100 Hz tone sampled at 1 kHz -> bin 51.2 area.
        let samples: Vec<i16> = (0..n)
            .map(|t| {
                let a = std::f64::consts::TAU * 100.0 * t as f64 / fs as f64;
                (8_000.0 * a.sin()) as i16
            })
            .collect();
        let spec = fft.power_spectrum(&samples);
        let in_band = fft.band_power(&spec, fs, 90.0, 110.0);
        let out_band = fft.band_power(&spec, fs, 200.0, 400.0);
        assert!(in_band > 20 * out_band, "in {in_band} out {out_band}");
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let n = 64;
        let fft = Fft::new(n).unwrap();
        let mut samples = vec![0i16; n];
        samples[0] = 16_000;
        let spec = fft.power_spectrum(&samples);
        let max = *spec.iter().max().unwrap() as f64;
        let min = *spec.iter().min().unwrap() as f64;
        // Flat within fixed-point tolerance.
        assert!(min > max * 0.5, "impulse spectrum not flat: {min} vs {max}");
    }

    #[test]
    #[should_panic(expected = "sample block length")]
    fn wrong_block_length_panics() {
        let fft = Fft::new(64).unwrap();
        let _ = fft.power_spectrum(&[0i16; 32]);
    }

    #[test]
    fn lane_transform_is_bit_identical_to_scalar() {
        for &n in &[8usize, 64, 256] {
            let fft = Fft::new(n).unwrap();
            for lanes in 1..=5usize {
                let windows: Vec<Vec<i16>> = (0..lanes)
                    .map(|l| {
                        (0..n)
                            .map(|t| {
                                let x = (t * 2654435761usize).wrapping_add(l * 97);
                                ((x >> 13) as i16).wrapping_mul(7)
                            })
                            .collect()
                    })
                    .collect();
                let refs: Vec<&[i16]> = windows.iter().map(|w| w.as_slice()).collect();
                let batched = fft.power_spectrum_lanes(&refs);
                for (l, w) in windows.iter().enumerate() {
                    assert_eq!(batched[l], fft.power_spectrum(w), "n={n} lane {l}");
                }
            }
        }
    }

    #[test]
    fn lane_transform_survives_extreme_inputs() {
        let n = 128;
        let fft = Fft::new(n).unwrap();
        let w0 = vec![i16::MAX; n];
        let w1 = vec![i16::MIN; n];
        let w2: Vec<i16> = (0..n)
            .map(|t| if t % 2 == 0 { i16::MAX } else { i16::MIN })
            .collect();
        let batched = fft.power_spectrum_lanes(&[&w0, &w1, &w2]);
        assert_eq!(batched[0], fft.power_spectrum(&w0));
        assert_eq!(batched[1], fft.power_spectrum(&w1));
        assert_eq!(batched[2], fft.power_spectrum(&w2));
    }
}
