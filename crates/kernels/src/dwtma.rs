//! DWTMA compression pipeline: DWT → MA → RC.
//!
//! The paper's custom wavelet compressor (Figure 2): the integer DWT
//! decorrelates the sample stream, and the resulting coefficients — spiky
//! around zero — are entropy coded by the shared MA/RC pair. Because the
//! 5/3 lifting transform is exactly invertible in integer arithmetic, the
//! pipeline is lossless end to end.
//!
//! Coefficients are coded as adaptive bit-length classes plus direct bits,
//! with separate class models for the approximation and detail sub-bands
//! (their magnitude distributions differ by an order of magnitude).

use crate::dwt::Dwt;
use crate::markov::AdaptiveModel;
use crate::range::{RangeDecoder, RangeEncoder};

/// Default block size in samples (must be a multiple of `2^levels`).
pub const DEFAULT_BLOCK_SAMPLES: usize = 1 << 12;

/// Errors produced while decompressing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DwtmaError {
    /// The container framing is truncated or inconsistent.
    Truncated,
    /// A frame header is internally inconsistent.
    BadHeader,
}

impl std::fmt::Display for DwtmaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "dwtma stream truncated"),
            Self::BadHeader => write!(f, "dwtma frame header invalid"),
        }
    }
}

impl std::error::Error for DwtmaError {}

/// Number of coefficient bit-length classes. LeGall 5/3 over 16-bit inputs
/// with ≤5 levels keeps coefficients comfortably below 2^24. Public so the
/// decomposed MA PE can build identical models.
pub const COEFF_CLASSES: usize = 25;

const MAX_CLASS: usize = COEFF_CLASSES;

fn zigzag(v: i32) -> u32 {
    ((v << 1) ^ (v >> 31)) as u32
}

fn unzigzag(z: u32) -> i32 {
    ((z >> 1) as i32) ^ -((z & 1) as i32)
}

/// The DWTMA codec (DWT + MA + RC kernels composed).
///
/// Operates on 16-bit samples — the pipeline sits directly behind the
/// interleaver, before any byte serialization.
///
/// # Example
///
/// ```
/// use halo_kernels::DwtmaCodec;
/// let codec = DwtmaCodec::new(1).unwrap();
/// let samples: Vec<i16> = (0..4096).map(|t| ((t as f64 / 20.0).sin() * 500.0) as i16).collect();
/// let compressed = codec.compress(&samples);
/// assert!(compressed.len() < samples.len() * 2);
/// assert_eq!(codec.decompress(&compressed).unwrap(), samples);
/// ```
#[derive(Debug, Clone)]
pub struct DwtmaCodec {
    dwt: Dwt,
    block_samples: usize,
    counter_bits: u32,
}

impl DwtmaCodec {
    /// Creates a codec with the given DWT depth (1–5 levels).
    ///
    /// # Errors
    ///
    /// Returns [`crate::dwt::InvalidLevels`] for unsupported depths.
    pub fn new(levels: usize) -> Result<Self, crate::dwt::InvalidLevels> {
        let dwt = Dwt::new(levels)?;
        Ok(Self {
            dwt,
            block_samples: DEFAULT_BLOCK_SAMPLES,
            counter_bits: crate::markov::DEFAULT_COUNTER_BITS,
        })
    }

    /// Sets the block size in samples (rounded up to the transform
    /// granularity).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is zero.
    pub fn with_block_samples(mut self, samples: usize) -> Self {
        assert!(samples > 0, "block size must be positive");
        let m = self.dwt.block_multiple();
        self.block_samples = samples.div_ceil(m) * m;
        self
    }

    /// Sets the MA counter width in bits (2–16).
    pub fn with_counter_bits(mut self, bits: u32) -> Self {
        self.counter_bits = bits;
        self
    }

    /// The configured block size in samples.
    pub fn block_samples(&self) -> usize {
        self.block_samples
    }

    /// The configured DWT depth.
    pub fn levels(&self) -> usize {
        self.dwt.levels()
    }

    /// Compresses a sample stream.
    pub fn compress(&self, samples: &[i16]) -> Vec<u8> {
        let mut out = Vec::new();
        for block in samples.chunks(self.block_samples) {
            let payload = self.compress_block(block);
            out.extend_from_slice(&(block.len() as u32).to_le_bytes());
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(&payload);
        }
        out
    }

    fn compress_block(&self, block: &[i16]) -> Vec<u8> {
        // Zero-pad to the transform granularity; the header's true sample
        // count lets the decoder strip the padding.
        let m = self.dwt.block_multiple();
        let padded_len = block.len().div_ceil(m) * m;
        let mut coeffs: Vec<i32> = Vec::with_capacity(padded_len);
        coeffs.extend(block.iter().map(|&s| s as i32));
        coeffs.resize(padded_len, 0);
        self.dwt.forward(&mut coeffs);

        let approx_len = padded_len >> self.dwt.levels();
        let mut enc = RangeEncoder::new();
        let mut approx_model = AdaptiveModel::with_counter_bits(MAX_CLASS, self.counter_bits);
        let mut detail_model = AdaptiveModel::with_counter_bits(MAX_CLASS, self.counter_bits);
        for (i, &c) in coeffs.iter().enumerate() {
            let model = if i < approx_len {
                &mut approx_model
            } else {
                &mut detail_model
            };
            let z = zigzag(c);
            let class = 32 - z.leading_zeros();
            model.encode(&mut enc, class as usize);
            if class > 1 {
                enc.encode_bits(z & ((1 << (class - 1)) - 1), class - 1);
            }
        }
        enc.finish()
    }

    /// Decompresses a stream produced by [`DwtmaCodec::compress`].
    ///
    /// # Errors
    ///
    /// Returns [`DwtmaError`] on malformed input.
    pub fn decompress(&self, data: &[u8]) -> Result<Vec<i16>, DwtmaError> {
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos < data.len() {
            if pos + 8 > data.len() {
                return Err(DwtmaError::Truncated);
            }
            let raw_samples =
                u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let comp_len =
                u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes")) as usize;
            pos += 8;
            if pos + comp_len > data.len() {
                return Err(DwtmaError::Truncated);
            }
            if raw_samples > self.block_samples {
                return Err(DwtmaError::BadHeader);
            }
            self.decompress_block(&data[pos..pos + comp_len], raw_samples, &mut out)?;
            pos += comp_len;
        }
        Ok(out)
    }

    fn decompress_block(
        &self,
        payload: &[u8],
        raw_samples: usize,
        out: &mut Vec<i16>,
    ) -> Result<(), DwtmaError> {
        let m = self.dwt.block_multiple();
        let padded_len = raw_samples.div_ceil(m) * m;
        if padded_len == 0 {
            return Ok(());
        }
        let approx_len = padded_len >> self.dwt.levels();
        let mut dec = RangeDecoder::new(payload);
        let mut approx_model = AdaptiveModel::with_counter_bits(MAX_CLASS, self.counter_bits);
        let mut detail_model = AdaptiveModel::with_counter_bits(MAX_CLASS, self.counter_bits);
        let mut coeffs = Vec::with_capacity(padded_len);
        for i in 0..padded_len {
            let model = if i < approx_len {
                &mut approx_model
            } else {
                &mut detail_model
            };
            let class = model.decode(&mut dec) as u32;
            let z = match class {
                0 => 0,
                1 => 1,
                c => (1u32 << (c - 1)) | dec.decode_bits(c - 1),
            };
            coeffs.push(unzigzag(z));
        }
        self.dwt.inverse(&mut coeffs);
        for &c in coeffs.iter().take(raw_samples) {
            if !(i16::MIN as i32..=i16::MAX as i32).contains(&c) {
                return Err(DwtmaError::BadHeader);
            }
            out.push(c as i16);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(codec: &DwtmaCodec, samples: &[i16]) -> usize {
        let c = codec.compress(samples);
        assert_eq!(codec.decompress(&c).unwrap(), samples);
        c.len()
    }

    #[test]
    fn empty_input() {
        let codec = DwtmaCodec::new(3).unwrap();
        assert_eq!(round_trip(&codec, &[]), 0);
    }

    #[test]
    fn non_multiple_lengths_are_padded() {
        let codec = DwtmaCodec::new(4).unwrap();
        for n in [1usize, 7, 15, 100, 1023] {
            let samples: Vec<i16> = (0..n).map(|i| (i as i16) * 13 - 500).collect();
            round_trip(&codec, &samples);
        }
    }

    #[test]
    fn all_levels_round_trip() {
        for levels in 1..=5 {
            let codec = DwtmaCodec::new(levels).unwrap();
            let samples: Vec<i16> = (0..3000)
                .map(|t| ((t as f64 / 17.0).sin() * 2000.0 + (t % 13) as f64) as i16)
                .collect();
            round_trip(&codec, &samples);
        }
    }

    #[test]
    fn smooth_signals_compress_well() {
        let codec = DwtmaCodec::new(3).unwrap();
        let samples: Vec<i16> = (0..8192)
            .map(|t| ((t as f64 / 100.0).sin() * 5000.0) as i16)
            .collect();
        let n = round_trip(&codec, &samples);
        assert!(
            n < samples.len(), // < 1 byte per 2-byte sample => ratio > 2
            "{n} bytes for {} samples",
            samples.len()
        );
    }

    #[test]
    fn extreme_values_round_trip() {
        let codec = DwtmaCodec::new(5).unwrap();
        let mut samples = vec![i16::MAX; 64];
        samples.extend(vec![i16::MIN; 64]);
        samples.extend((0..64).map(|i| if i % 2 == 0 { i16::MAX } else { i16::MIN }));
        round_trip(&codec, &samples);
    }

    #[test]
    fn multi_block_round_trip() {
        let codec = DwtmaCodec::new(2).unwrap().with_block_samples(256);
        let samples: Vec<i16> = (0..2000).map(|t| (t % 251) as i16 * 7).collect();
        round_trip(&codec, &samples);
    }

    #[test]
    fn truncation_detected() {
        let codec = DwtmaCodec::new(1).unwrap();
        let samples: Vec<i16> = (0..512).collect();
        let c = codec.compress(&samples);
        assert!(codec.decompress(&c[..5]).is_err());
    }

    #[test]
    fn zigzag_inverts() {
        for v in [i32::MIN / 2, -1000, -1, 0, 1, 7, 1 << 20] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
