//! Approximate entropy (§VII extension).
//!
//! ApEn (Pincus 1991 \[87\]) measures the unpredictability of a time series:
//! regular, self-similar signals (like ictal discharges) score *low*,
//! irregular background activity scores high — which is why it is a
//! classic seizure-prediction feature and on the paper's kernel roadmap.

/// Approximate entropy `ApEn(m, r)` of a window.
///
/// `m` is the template length (2 is customary), `r` the tolerance in the
/// same units as the samples (typically 0.2 × the window's standard
/// deviation). The O(N²) template matching limits practical windows to a
/// few hundred samples — which is also what a low-power PE would do.
///
/// Returns 0 for windows shorter than `m + 2`.
///
/// # Example
///
/// ```
/// use halo_kernels::apen::apen;
/// // A perfectly regular alternation is far more predictable than noise.
/// let regular: Vec<i16> = (0..200).map(|t| if t % 2 == 0 { 100 } else { -100 }).collect();
/// let mut noisy = vec![0i16; 200];
/// let mut state = 7u64;
/// for s in noisy.iter_mut() {
///     state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
///     *s = (state >> 48) as i16 / 256;
/// }
/// assert!(apen(&regular, 2, 30.0) < apen(&noisy, 2, 30.0));
/// ```
///
/// # Panics
///
/// Panics if `m` is zero or `r` is not positive.
pub fn apen(window: &[i16], m: usize, r: f64) -> f64 {
    assert!(m > 0, "template length must be positive");
    assert!(r > 0.0, "tolerance must be positive");
    let n = window.len();
    if n < m + 2 {
        return 0.0;
    }
    let phi = |m: usize| -> f64 {
        let count = n - m + 1;
        let mut sum = 0.0;
        for i in 0..count {
            let mut matches = 0usize;
            for j in 0..count {
                let close =
                    (0..m).all(|k| ((window[i + k] as f64) - (window[j + k] as f64)).abs() <= r);
                if close {
                    matches += 1;
                }
            }
            // Self-match included, so matches >= 1 and the log is finite.
            sum += (matches as f64 / count as f64).ln();
        }
        sum / count as f64
    };
    phi(m) - phi(m + 1)
}

/// The customary tolerance: 0.2 × the window standard deviation, floored
/// to one LSB so constant windows stay well-defined.
pub fn default_tolerance(window: &[i16]) -> f64 {
    let n = window.len().max(1) as f64;
    let mean = window.iter().map(|&s| s as f64).sum::<f64>() / n;
    let var = window
        .iter()
        .map(|&s| (s as f64 - mean) * (s as f64 - mean))
        .sum::<f64>()
        / n;
    (0.2 * var.sqrt()).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise(n: usize, seed: u64, amp: i16) -> Vec<i16> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 48) as i16) % amp
            })
            .collect()
    }

    #[test]
    fn constant_signal_has_zero_entropy() {
        let x = vec![42i16; 128];
        let e = apen(&x, 2, 1.0);
        assert!(e.abs() < 1e-9, "{e}");
    }

    #[test]
    fn periodic_below_noise() {
        let periodic: Vec<i16> = (0..256)
            .map(|t| (1000.0 * (std::f64::consts::TAU * t as f64 / 16.0).sin()) as i16)
            .collect();
        let random = noise(256, 3, 1000);
        let e_p = apen(&periodic, 2, default_tolerance(&periodic));
        let e_r = apen(&random, 2, default_tolerance(&random));
        assert!(e_p < e_r / 2.0, "periodic {e_p} vs random {e_r}");
    }

    #[test]
    fn entropy_is_nonnegative_for_typical_signals() {
        for seed in 1..5 {
            let x = noise(200, seed, 500);
            assert!(apen(&x, 2, default_tolerance(&x)) >= -1e-9);
        }
    }

    #[test]
    fn short_windows_are_safe() {
        assert_eq!(apen(&[1, 2, 3], 2, 1.0), 0.0);
        assert_eq!(apen(&[], 2, 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn zero_tolerance_rejected() {
        let _ = apen(&[1i16; 16], 2, 0.0);
    }
}
