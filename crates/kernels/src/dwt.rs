//! Discrete wavelet transform (DWT kernel).
//!
//! The DWT PE is shared between spike detection (recursive application,
//! "usually three, four, or five times" \[44\]) and compression (a single
//! level feeding the MA/RC pipeline) — Table III exposes the level count
//! (1–5) as the PE's configuration parameter.
//!
//! We implement the LeGall 5/3 integer lifting wavelet: it is exactly
//! invertible in integer arithmetic, which is what makes the DWTMA
//! compression pipeline lossless end to end.

/// Maximum recursion depth supported by the PE (Table III).
pub const MAX_LEVELS: usize = 5;

/// A multi-level integer 5/3 lifting DWT.
///
/// Forward output layout for `levels = L` over a block of length `n`:
/// `[approx_L (n/2^L) | detail_L (n/2^L) | detail_{L-1} (n/2^{L-1}) | … | detail_1 (n/2)]`.
///
/// # Example
///
/// ```
/// use halo_kernels::Dwt;
/// let dwt = Dwt::new(2).unwrap();
/// let data: Vec<i32> = (0..16).map(|x| x * 3 - 10).collect();
/// let mut buf = data.clone();
/// dwt.forward(&mut buf);
/// dwt.inverse(&mut buf);
/// assert_eq!(buf, data); // perfect reconstruction
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dwt {
    levels: usize,
}

/// Error returned when the level count is outside `1..=5`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidLevels(pub usize);

impl std::fmt::Display for InvalidLevels {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dwt levels {} outside 1..={MAX_LEVELS}", self.0)
    }
}

impl std::error::Error for InvalidLevels {}

impl Dwt {
    /// Creates a transform with the given recursion depth.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidLevels`] if `levels` is outside `1..=5`.
    pub fn new(levels: usize) -> Result<Self, InvalidLevels> {
        if levels == 0 || levels > MAX_LEVELS {
            return Err(InvalidLevels(levels));
        }
        Ok(Self { levels })
    }

    /// Recursion depth.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The block-length granularity: blocks must be a multiple of this.
    pub fn block_multiple(&self) -> usize {
        1 << self.levels
    }

    /// In-place forward transform.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is zero or not a multiple of
    /// [`Dwt::block_multiple`].
    pub fn forward(&self, data: &mut [i32]) {
        self.check_len(data.len());
        let mut n = data.len();
        for _ in 0..self.levels {
            Self::forward_level(&mut data[..n]);
            n /= 2;
        }
    }

    /// In-place inverse transform.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is zero or not a multiple of
    /// [`Dwt::block_multiple`].
    pub fn inverse(&self, data: &mut [i32]) {
        self.check_len(data.len());
        let mut n = data.len() >> (self.levels - 1);
        for _ in 0..self.levels {
            Self::inverse_level(&mut data[..n]);
            n *= 2;
        }
    }

    fn check_len(&self, len: usize) {
        assert!(
            len > 0 && len.is_multiple_of(self.block_multiple()),
            "block length {len} must be a positive multiple of {}",
            self.block_multiple()
        );
    }

    /// One forward lifting level: `data` becomes `[approx | detail]`.
    fn forward_level(data: &mut [i32]) {
        let n = data.len();
        let half = n / 2;
        let mut s: Vec<i32> = (0..half).map(|i| data[2 * i]).collect();
        let mut d: Vec<i32> = (0..half).map(|i| data[2 * i + 1]).collect();
        // Predict: d[i] -= floor((s[i] + s[i+1]) / 2), symmetric extension.
        for i in 0..half {
            let right = if i + 1 < half { s[i + 1] } else { s[i] };
            d[i] -= (s[i] + right) >> 1;
        }
        // Update: s[i] += floor((d[i-1] + d[i] + 2) / 4), symmetric extension.
        for i in 0..half {
            let left = if i > 0 { d[i - 1] } else { d[i] };
            s[i] += (left + d[i] + 2) >> 2;
        }
        data[..half].copy_from_slice(&s);
        data[half..].copy_from_slice(&d);
    }

    /// One inverse lifting level: `[approx | detail]` becomes samples.
    fn inverse_level(data: &mut [i32]) {
        let n = data.len();
        let half = n / 2;
        let mut s: Vec<i32> = data[..half].to_vec();
        let mut d: Vec<i32> = data[half..].to_vec();
        // Undo update.
        for i in 0..half {
            let left = if i > 0 { d[i - 1] } else { d[i] };
            s[i] -= (left + d[i] + 2) >> 2;
        }
        // Undo predict.
        for i in 0..half {
            let right = if i + 1 < half { s[i + 1] } else { s[i] };
            d[i] += (s[i] + right) >> 1;
        }
        for i in 0..half {
            data[2 * i] = s[i];
            data[2 * i + 1] = d[i];
        }
    }

    /// In-place forward transform of `lanes` channels at once, in
    /// lane-interleaved (structure-of-arrays) layout: element `i` of lane
    /// `l` lives at `data[i * lanes + l]`, so each lifting step walks
    /// contiguous lane groups the autovectorizer can lift to SIMD on
    /// stable Rust. All arithmetic is the exact integer lifting of
    /// [`Dwt::forward`], so lane `l` is bit-identical to a scalar
    /// transform of that channel.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero or `data.len()` is not `lanes` times a
    /// positive multiple of [`Dwt::block_multiple`].
    pub fn forward_lanes(&self, data: &mut [i32], lanes: usize) {
        assert!(lanes > 0, "need at least one lane");
        assert!(data.len().is_multiple_of(lanes), "data length");
        self.check_len(data.len() / lanes);
        let mut n = data.len() / lanes;
        for _ in 0..self.levels {
            Self::forward_level_lanes(&mut data[..n * lanes], lanes);
            n /= 2;
        }
    }

    /// One forward lifting level across `lanes` interleaved channels —
    /// the same predict/update arithmetic as [`Dwt::forward_level`], with
    /// the symmetric-extension branches hoisted out of the lane loop.
    fn forward_level_lanes(data: &mut [i32], lanes: usize) {
        let n = data.len() / lanes;
        let half = n / 2;
        let mut s: Vec<i32> = Vec::with_capacity(half * lanes);
        let mut d: Vec<i32> = Vec::with_capacity(half * lanes);
        for i in 0..half {
            s.extend_from_slice(&data[2 * i * lanes..(2 * i + 1) * lanes]);
            d.extend_from_slice(&data[(2 * i + 1) * lanes..(2 * i + 2) * lanes]);
        }
        // Predict: d[i] -= floor((s[i] + s[i+1]) / 2), symmetric extension.
        for i in 0..half {
            let right = if i + 1 < half { i + 1 } else { i };
            let (s_i, s_r) = (&s[i * lanes..], &s[right * lanes..]);
            for (l, dv) in d[i * lanes..(i + 1) * lanes].iter_mut().enumerate() {
                *dv -= (s_i[l] + s_r[l]) >> 1;
            }
        }
        // Update: s[i] += floor((d[i-1] + d[i] + 2) / 4), symmetric extension.
        for i in 0..half {
            let left = if i > 0 { i - 1 } else { i };
            let (d_l, d_i) = (&d[left * lanes..], &d[i * lanes..]);
            for (l, sv) in s[i * lanes..(i + 1) * lanes].iter_mut().enumerate() {
                *sv += (d_l[l] + d_i[l] + 2) >> 2;
            }
        }
        data[..half * lanes].copy_from_slice(&s);
        data[half * lanes..].copy_from_slice(&d);
    }

    /// Convenience: forward-transforms 16-bit samples into coefficients.
    pub fn forward_i16(&self, samples: &[i16]) -> Vec<i32> {
        let mut buf: Vec<i32> = samples.iter().map(|&s| s as i32).collect();
        self.forward(&mut buf);
        buf
    }

    /// The detail coefficients of the deepest level — the sub-band spike
    /// detection thresholds (detail magnitudes spike on fast transients).
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len()` is not a multiple of
    /// [`Dwt::block_multiple`].
    pub fn deepest_detail<'a>(&self, coeffs: &'a [i32]) -> &'a [i32] {
        self.check_len(coeffs.len());
        let n = coeffs.len() >> self.levels;
        &coeffs[n..2 * n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_levels() {
        assert!(Dwt::new(0).is_err());
        assert!(Dwt::new(6).is_err());
        for l in 1..=5 {
            assert!(Dwt::new(l).is_ok());
        }
    }

    #[test]
    fn perfect_reconstruction_all_levels() {
        for levels in 1..=5 {
            let dwt = Dwt::new(levels).unwrap();
            let n = 32 * dwt.block_multiple();
            let data: Vec<i32> = (0..n as i32)
                .map(|x| x.wrapping_mul(2654435761u32 as i32) % 30_000)
                .collect();
            let mut buf = data.clone();
            dwt.forward(&mut buf);
            assert_ne!(buf, data, "transform should change the data");
            dwt.inverse(&mut buf);
            assert_eq!(buf, data, "levels={levels}");
        }
    }

    #[test]
    fn smooth_signal_has_small_details() {
        let dwt = Dwt::new(1).unwrap();
        let data: Vec<i32> = (0..64).map(|x| 100 + x).collect(); // linear ramp
        let mut buf = data.clone();
        dwt.forward(&mut buf);
        // 5/3 predicts linear signals exactly; details should be ~0.
        for &d in &buf[32..] {
            assert!(d.abs() <= 1, "detail {d} too large for a ramp");
        }
    }

    #[test]
    fn spike_shows_in_detail_band() {
        let dwt = Dwt::new(3).unwrap();
        let mut data = vec![0i32; 128];
        data[64] = 10_000;
        let mut buf = data.clone();
        dwt.forward(&mut buf);
        let max_detail = buf[16..].iter().map(|d| d.abs()).max().unwrap();
        assert!(max_detail > 1000, "spike energy missing from details");
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn length_must_match_granularity() {
        let dwt = Dwt::new(3).unwrap();
        let mut data = vec![0i32; 12]; // not a multiple of 8
        dwt.forward(&mut data);
    }

    #[test]
    fn deepest_detail_slice() {
        let dwt = Dwt::new(2).unwrap();
        let coeffs: Vec<i32> = (0..16).collect();
        assert_eq!(dwt.deepest_detail(&coeffs), &[4, 5, 6, 7]);
    }

    #[test]
    fn lanes_match_scalar_per_channel() {
        for levels in 1..=4 {
            let dwt = Dwt::new(levels).unwrap();
            let n = 8 * dwt.block_multiple();
            for lanes in [1usize, 2, 3, 7, 8] {
                // Lane-interleaved input with a distinct pattern per lane.
                let mut soa = vec![0i32; n * lanes];
                let mut per_lane: Vec<Vec<i32>> = vec![Vec::with_capacity(n); lanes];
                for i in 0..n {
                    for l in 0..lanes {
                        let v = ((i * 31 + l * 7919) as i32).wrapping_mul(2654435761u32 as i32)
                            % 30_000;
                        soa[i * lanes + l] = v;
                        per_lane[l].push(v);
                    }
                }
                dwt.forward_lanes(&mut soa, lanes);
                for (l, chan) in per_lane.iter_mut().enumerate() {
                    dwt.forward(chan);
                    let got: Vec<i32> = (0..n).map(|i| soa[i * lanes + l]).collect();
                    assert_eq!(&got, chan, "levels={levels} lanes={lanes} lane={l}");
                }
            }
        }
    }

    #[test]
    fn i16_helper_matches_manual() {
        let dwt = Dwt::new(1).unwrap();
        let samples: Vec<i16> = (0..16).map(|x| (x * 100) as i16).collect();
        let via_helper = dwt.forward_i16(&samples);
        let mut manual: Vec<i32> = samples.iter().map(|&s| s as i32).collect();
        dwt.forward(&mut manual);
        assert_eq!(via_helper, manual);
    }
}
