//! Noise sources: Gaussian (thermal) and pink (1/f LFP background).

use crate::rng::SimRng;

/// Gaussian white-noise source using the Marsaglia polar method.
///
/// Extracellular recordings carry thermal and amplifier noise that is well
/// approximated as white Gaussian noise; this source produces it with a
/// configurable standard deviation (in microvolts).
///
/// # Example
///
/// ```
/// use halo_signal::GaussianNoise;
/// let mut noise = GaussianNoise::new(10.0, 7);
/// let sample = noise.next_sample();
/// assert!(sample.is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct GaussianNoise {
    sigma: f64,
    rng: SimRng,
    spare: Option<f64>,
}

impl GaussianNoise {
    /// Creates a Gaussian source with standard deviation `sigma` (µV).
    pub fn new(sigma: f64, seed: u64) -> Self {
        Self {
            sigma,
            rng: SimRng::new(seed ^ 0x9e37_79b9_7f4a_7c15),
            spare: None,
        }
    }

    /// Standard deviation of the source in microvolts.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws the next noise sample (µV).
    pub fn next_sample(&mut self) -> f64 {
        if let Some(s) = self.spare.take() {
            return s * self.sigma;
        }
        loop {
            let u: f64 = self.rng.range_f64(-1.0, 1.0);
            let v: f64 = self.rng.range_f64(-1.0, 1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * factor);
                return u * factor * self.sigma;
            }
        }
    }
}

/// Pink-noise (1/f) source using the Voss–McCartney algorithm.
///
/// Local field potentials have an approximately 1/f power spectrum; this
/// source sums `OCTAVES` independent white generators updated at
/// octave-spaced rates.
///
/// # Example
///
/// ```
/// use halo_signal::PinkNoise;
/// let mut lfp = PinkNoise::new(120.0, 3);
/// let x = lfp.next_sample();
/// assert!(x.abs() < 120.0 * 16.0);
/// ```
#[derive(Debug, Clone)]
pub struct PinkNoise {
    rows: [f64; Self::OCTAVES],
    running_sum: f64,
    counter: u32,
    amplitude: f64,
    rng: SimRng,
}

impl PinkNoise {
    /// Number of octave rows in the Voss–McCartney lattice.
    pub const OCTAVES: usize = 12;

    /// Creates a pink-noise source with RMS amplitude roughly `amplitude` (µV).
    pub fn new(amplitude: f64, seed: u64) -> Self {
        let mut rng = SimRng::new(seed ^ 0x5851_f42d_4c95_7f2d);
        let mut rows = [0.0; Self::OCTAVES];
        let mut running_sum = 0.0;
        for row in &mut rows {
            *row = rng.range_f64(-1.0, 1.0);
            running_sum += *row;
        }
        Self {
            rows,
            running_sum,
            counter: 0,
            amplitude,
            rng,
        }
    }

    /// Draws the next pink-noise sample (µV).
    pub fn next_sample(&mut self) -> f64 {
        self.counter = self.counter.wrapping_add(1);
        // Update the row selected by the lowest set bit of the counter:
        // row k updates every 2^k samples, yielding the 1/f spectrum.
        let row = (self.counter.trailing_zeros() as usize).min(Self::OCTAVES - 1);
        self.running_sum -= self.rows[row];
        self.rows[row] = self.rng.range_f64(-1.0, 1.0);
        self.running_sum += self.rows[row];
        // No per-sample white term: extracellular LFP rolls off steeply
        // above a few hundred hertz, and the broadband floor is modeled
        // separately by `GaussianNoise`.
        self.running_sum * self.amplitude / (Self::OCTAVES as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_moments() {
        let mut src = GaussianNoise::new(5.0, 1);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| src.next_sample()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 5.0).abs() < 0.1, "sd {}", var.sqrt());
    }

    #[test]
    fn gaussian_deterministic_per_seed() {
        let a: Vec<f64> = {
            let mut s = GaussianNoise::new(1.0, 9);
            (0..32).map(|_| s.next_sample()).collect()
        };
        let b: Vec<f64> = {
            let mut s = GaussianNoise::new(1.0, 9);
            (0..32).map(|_| s.next_sample()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn pink_noise_bounded_and_nontrivial() {
        let mut src = PinkNoise::new(10.0, 2);
        let samples: Vec<f64> = (0..10_000).map(|_| src.next_sample()).collect();
        let max = samples.iter().cloned().fold(0.0f64, |a, b| a.max(b.abs()));
        assert!(max < 10.0 * (PinkNoise::OCTAVES as f64 + 1.0));
        assert!(max > 1.0, "pink noise should not be silent");
    }

    /// Pink noise must have more low-frequency energy than white noise: the
    /// lag-1 autocorrelation of a 1/f process is strongly positive.
    #[test]
    fn pink_noise_is_correlated() {
        let mut src = PinkNoise::new(1.0, 3);
        let samples: Vec<f64> = (0..50_000).map(|_| src.next_sample()).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var: f64 = samples.iter().map(|x| (x - mean).powi(2)).sum();
        let cov: f64 = samples
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum();
        let rho = cov / var;
        assert!(
            rho > 0.5,
            "lag-1 autocorrelation {rho} too low for 1/f noise"
        );
    }
}
